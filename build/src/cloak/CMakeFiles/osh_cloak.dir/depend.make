# Empty dependencies file for osh_cloak.
# This may be replaced when dependencies are built.
