
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloak/engine.cc" "src/cloak/CMakeFiles/osh_cloak.dir/engine.cc.o" "gcc" "src/cloak/CMakeFiles/osh_cloak.dir/engine.cc.o.d"
  "/root/repo/src/cloak/metadata.cc" "src/cloak/CMakeFiles/osh_cloak.dir/metadata.cc.o" "gcc" "src/cloak/CMakeFiles/osh_cloak.dir/metadata.cc.o.d"
  "/root/repo/src/cloak/runtime.cc" "src/cloak/CMakeFiles/osh_cloak.dir/runtime.cc.o" "gcc" "src/cloak/CMakeFiles/osh_cloak.dir/runtime.cc.o.d"
  "/root/repo/src/cloak/shim.cc" "src/cloak/CMakeFiles/osh_cloak.dir/shim.cc.o" "gcc" "src/cloak/CMakeFiles/osh_cloak.dir/shim.cc.o.d"
  "/root/repo/src/cloak/transfer.cc" "src/cloak/CMakeFiles/osh_cloak.dir/transfer.cc.o" "gcc" "src/cloak/CMakeFiles/osh_cloak.dir/transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/osh_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/osh_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/osh_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/osh_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
