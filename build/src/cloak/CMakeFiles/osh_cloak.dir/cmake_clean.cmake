file(REMOVE_RECURSE
  "CMakeFiles/osh_cloak.dir/engine.cc.o"
  "CMakeFiles/osh_cloak.dir/engine.cc.o.d"
  "CMakeFiles/osh_cloak.dir/metadata.cc.o"
  "CMakeFiles/osh_cloak.dir/metadata.cc.o.d"
  "CMakeFiles/osh_cloak.dir/runtime.cc.o"
  "CMakeFiles/osh_cloak.dir/runtime.cc.o.d"
  "CMakeFiles/osh_cloak.dir/shim.cc.o"
  "CMakeFiles/osh_cloak.dir/shim.cc.o.d"
  "CMakeFiles/osh_cloak.dir/transfer.cc.o"
  "CMakeFiles/osh_cloak.dir/transfer.cc.o.d"
  "libosh_cloak.a"
  "libosh_cloak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_cloak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
