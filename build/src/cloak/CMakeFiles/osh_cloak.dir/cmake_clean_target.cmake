file(REMOVE_RECURSE
  "libosh_cloak.a"
)
