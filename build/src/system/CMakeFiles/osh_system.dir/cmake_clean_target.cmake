file(REMOVE_RECURSE
  "libosh_system.a"
)
