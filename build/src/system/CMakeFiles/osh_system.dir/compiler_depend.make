# Empty compiler generated dependencies file for osh_system.
# This may be replaced when dependencies are built.
