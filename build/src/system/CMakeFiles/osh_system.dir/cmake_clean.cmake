file(REMOVE_RECURSE
  "CMakeFiles/osh_system.dir/system.cc.o"
  "CMakeFiles/osh_system.dir/system.cc.o.d"
  "libosh_system.a"
  "libosh_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
