file(REMOVE_RECURSE
  "CMakeFiles/osh_workloads.dir/workloads.cc.o"
  "CMakeFiles/osh_workloads.dir/workloads.cc.o.d"
  "libosh_workloads.a"
  "libosh_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
