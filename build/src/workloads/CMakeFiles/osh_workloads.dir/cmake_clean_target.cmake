file(REMOVE_RECURSE
  "libosh_workloads.a"
)
