# Empty dependencies file for osh_workloads.
# This may be replaced when dependencies are built.
