# Empty compiler generated dependencies file for osh_crypto.
# This may be replaced when dependencies are built.
