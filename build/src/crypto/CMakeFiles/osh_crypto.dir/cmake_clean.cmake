file(REMOVE_RECURSE
  "CMakeFiles/osh_crypto.dir/aes.cc.o"
  "CMakeFiles/osh_crypto.dir/aes.cc.o.d"
  "CMakeFiles/osh_crypto.dir/ctr.cc.o"
  "CMakeFiles/osh_crypto.dir/ctr.cc.o.d"
  "CMakeFiles/osh_crypto.dir/hmac.cc.o"
  "CMakeFiles/osh_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/osh_crypto.dir/keys.cc.o"
  "CMakeFiles/osh_crypto.dir/keys.cc.o.d"
  "CMakeFiles/osh_crypto.dir/sha256.cc.o"
  "CMakeFiles/osh_crypto.dir/sha256.cc.o.d"
  "libosh_crypto.a"
  "libosh_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
