file(REMOVE_RECURSE
  "libosh_crypto.a"
)
