file(REMOVE_RECURSE
  "libosh_base.a"
)
