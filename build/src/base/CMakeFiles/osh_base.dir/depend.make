# Empty dependencies file for osh_base.
# This may be replaced when dependencies are built.
