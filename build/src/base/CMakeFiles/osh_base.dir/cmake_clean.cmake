file(REMOVE_RECURSE
  "CMakeFiles/osh_base.dir/logging.cc.o"
  "CMakeFiles/osh_base.dir/logging.cc.o.d"
  "CMakeFiles/osh_base.dir/rng.cc.o"
  "CMakeFiles/osh_base.dir/rng.cc.o.d"
  "CMakeFiles/osh_base.dir/stats.cc.o"
  "CMakeFiles/osh_base.dir/stats.cc.o.d"
  "libosh_base.a"
  "libosh_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
