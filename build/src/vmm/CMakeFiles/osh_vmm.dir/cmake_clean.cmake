file(REMOVE_RECURSE
  "CMakeFiles/osh_vmm.dir/pmap.cc.o"
  "CMakeFiles/osh_vmm.dir/pmap.cc.o.d"
  "CMakeFiles/osh_vmm.dir/shadow.cc.o"
  "CMakeFiles/osh_vmm.dir/shadow.cc.o.d"
  "CMakeFiles/osh_vmm.dir/tlb.cc.o"
  "CMakeFiles/osh_vmm.dir/tlb.cc.o.d"
  "CMakeFiles/osh_vmm.dir/vcpu.cc.o"
  "CMakeFiles/osh_vmm.dir/vcpu.cc.o.d"
  "CMakeFiles/osh_vmm.dir/vmm.cc.o"
  "CMakeFiles/osh_vmm.dir/vmm.cc.o.d"
  "libosh_vmm.a"
  "libosh_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
