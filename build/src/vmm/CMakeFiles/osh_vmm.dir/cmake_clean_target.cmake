file(REMOVE_RECURSE
  "libosh_vmm.a"
)
