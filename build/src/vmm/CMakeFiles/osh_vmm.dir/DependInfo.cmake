
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmm/pmap.cc" "src/vmm/CMakeFiles/osh_vmm.dir/pmap.cc.o" "gcc" "src/vmm/CMakeFiles/osh_vmm.dir/pmap.cc.o.d"
  "/root/repo/src/vmm/shadow.cc" "src/vmm/CMakeFiles/osh_vmm.dir/shadow.cc.o" "gcc" "src/vmm/CMakeFiles/osh_vmm.dir/shadow.cc.o.d"
  "/root/repo/src/vmm/tlb.cc" "src/vmm/CMakeFiles/osh_vmm.dir/tlb.cc.o" "gcc" "src/vmm/CMakeFiles/osh_vmm.dir/tlb.cc.o.d"
  "/root/repo/src/vmm/vcpu.cc" "src/vmm/CMakeFiles/osh_vmm.dir/vcpu.cc.o" "gcc" "src/vmm/CMakeFiles/osh_vmm.dir/vcpu.cc.o.d"
  "/root/repo/src/vmm/vmm.cc" "src/vmm/CMakeFiles/osh_vmm.dir/vmm.cc.o" "gcc" "src/vmm/CMakeFiles/osh_vmm.dir/vmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/osh_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
