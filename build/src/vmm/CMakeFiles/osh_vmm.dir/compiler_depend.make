# Empty compiler generated dependencies file for osh_vmm.
# This may be replaced when dependencies are built.
