# Empty compiler generated dependencies file for osh_sim.
# This may be replaced when dependencies are built.
