file(REMOVE_RECURSE
  "CMakeFiles/osh_sim.dir/cost_model.cc.o"
  "CMakeFiles/osh_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/osh_sim.dir/machine.cc.o"
  "CMakeFiles/osh_sim.dir/machine.cc.o.d"
  "CMakeFiles/osh_sim.dir/memory.cc.o"
  "CMakeFiles/osh_sim.dir/memory.cc.o.d"
  "libosh_sim.a"
  "libosh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
