file(REMOVE_RECURSE
  "libosh_sim.a"
)
