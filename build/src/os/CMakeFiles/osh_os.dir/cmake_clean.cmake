file(REMOVE_RECURSE
  "CMakeFiles/osh_os.dir/addrspace.cc.o"
  "CMakeFiles/osh_os.dir/addrspace.cc.o.d"
  "CMakeFiles/osh_os.dir/env.cc.o"
  "CMakeFiles/osh_os.dir/env.cc.o.d"
  "CMakeFiles/osh_os.dir/frames.cc.o"
  "CMakeFiles/osh_os.dir/frames.cc.o.d"
  "CMakeFiles/osh_os.dir/kernel.cc.o"
  "CMakeFiles/osh_os.dir/kernel.cc.o.d"
  "CMakeFiles/osh_os.dir/kernel_syscalls.cc.o"
  "CMakeFiles/osh_os.dir/kernel_syscalls.cc.o.d"
  "CMakeFiles/osh_os.dir/swap.cc.o"
  "CMakeFiles/osh_os.dir/swap.cc.o.d"
  "CMakeFiles/osh_os.dir/thread.cc.o"
  "CMakeFiles/osh_os.dir/thread.cc.o.d"
  "CMakeFiles/osh_os.dir/vfs.cc.o"
  "CMakeFiles/osh_os.dir/vfs.cc.o.d"
  "libosh_os.a"
  "libosh_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osh_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
