file(REMOVE_RECURSE
  "libosh_os.a"
)
