# Empty compiler generated dependencies file for osh_os.
# This may be replaced when dependencies are built.
