
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/addrspace.cc" "src/os/CMakeFiles/osh_os.dir/addrspace.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/addrspace.cc.o.d"
  "/root/repo/src/os/env.cc" "src/os/CMakeFiles/osh_os.dir/env.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/env.cc.o.d"
  "/root/repo/src/os/frames.cc" "src/os/CMakeFiles/osh_os.dir/frames.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/frames.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/osh_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/kernel_syscalls.cc" "src/os/CMakeFiles/osh_os.dir/kernel_syscalls.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/kernel_syscalls.cc.o.d"
  "/root/repo/src/os/swap.cc" "src/os/CMakeFiles/osh_os.dir/swap.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/swap.cc.o.d"
  "/root/repo/src/os/thread.cc" "src/os/CMakeFiles/osh_os.dir/thread.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/thread.cc.o.d"
  "/root/repo/src/os/vfs.cc" "src/os/CMakeFiles/osh_os.dir/vfs.cc.o" "gcc" "src/os/CMakeFiles/osh_os.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/osh_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/osh_vmm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
