# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_base "/root/repo/build/tests/test_base")
set_tests_properties(test_base PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_crypto "/root/repo/build/tests/test_crypto")
set_tests_properties(test_crypto PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vmm "/root/repo/build/tests/test_vmm")
set_tests_properties(test_vmm PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_os "/root/repo/build/tests/test_os")
set_tests_properties(test_os PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_engine "/root/repo/build/tests/test_engine")
set_tests_properties(test_engine PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_metadata "/root/repo/build/tests/test_metadata")
set_tests_properties(test_metadata PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cloak "/root/repo/build/tests/test_cloak")
set_tests_properties(test_cloak PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_os_units "/root/repo/build/tests/test_os_units")
set_tests_properties(test_os_units PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_shim "/root/repo/build/tests/test_shim")
set_tests_properties(test_shim PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;osh_add_test;/root/repo/tests/CMakeLists.txt;0;")
