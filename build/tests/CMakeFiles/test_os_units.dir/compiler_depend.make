# Empty compiler generated dependencies file for test_os_units.
# This may be replaced when dependencies are built.
