file(REMOVE_RECURSE
  "CMakeFiles/test_os_units.dir/test_os_units.cc.o"
  "CMakeFiles/test_os_units.dir/test_os_units.cc.o.d"
  "test_os_units"
  "test_os_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_os_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
