file(REMOVE_RECURSE
  "CMakeFiles/test_vmm.dir/test_vmm.cc.o"
  "CMakeFiles/test_vmm.dir/test_vmm.cc.o.d"
  "test_vmm"
  "test_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
