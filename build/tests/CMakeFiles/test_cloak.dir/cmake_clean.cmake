file(REMOVE_RECURSE
  "CMakeFiles/test_cloak.dir/test_cloak.cc.o"
  "CMakeFiles/test_cloak.dir/test_cloak.cc.o.d"
  "test_cloak"
  "test_cloak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cloak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
