# Empty compiler generated dependencies file for test_cloak.
# This may be replaced when dependencies are built.
