# Empty dependencies file for malicious_os.
# This may be replaced when dependencies are built.
