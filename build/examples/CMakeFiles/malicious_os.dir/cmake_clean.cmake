file(REMOVE_RECURSE
  "CMakeFiles/malicious_os.dir/malicious_os.cc.o"
  "CMakeFiles/malicious_os.dir/malicious_os.cc.o.d"
  "malicious_os"
  "malicious_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/malicious_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
