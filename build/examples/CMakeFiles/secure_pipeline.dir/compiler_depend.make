# Empty compiler generated dependencies file for secure_pipeline.
# This may be replaced when dependencies are built.
