file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_compute.dir/bench_f1_compute.cc.o"
  "CMakeFiles/bench_f1_compute.dir/bench_f1_compute.cc.o.d"
  "bench_f1_compute"
  "bench_f1_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
