file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_paging.dir/bench_f5_paging.cc.o"
  "CMakeFiles/bench_f5_paging.dir/bench_f5_paging.cc.o.d"
  "bench_f5_paging"
  "bench_f5_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
