# Empty dependencies file for bench_f5_paging.
# This may be replaced when dependencies are built.
