# Empty dependencies file for bench_f2_server.
# This may be replaced when dependencies are built.
