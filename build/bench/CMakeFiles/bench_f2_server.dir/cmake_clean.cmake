file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_server.dir/bench_f2_server.cc.o"
  "CMakeFiles/bench_f2_server.dir/bench_f2_server.cc.o.d"
  "bench_f2_server"
  "bench_f2_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
