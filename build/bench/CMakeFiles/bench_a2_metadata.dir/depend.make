# Empty dependencies file for bench_a2_metadata.
# This may be replaced when dependencies are built.
