file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_metadata.dir/bench_a2_metadata.cc.o"
  "CMakeFiles/bench_a2_metadata.dir/bench_a2_metadata.cc.o.d"
  "bench_a2_metadata"
  "bench_a2_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
