# Empty dependencies file for bench_a1_cleanopt.
# This may be replaced when dependencies are built.
