file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_cleanopt.dir/bench_a1_cleanopt.cc.o"
  "CMakeFiles/bench_a1_cleanopt.dir/bench_a1_cleanopt.cc.o.d"
  "bench_a1_cleanopt"
  "bench_a1_cleanopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_cleanopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
