# Empty compiler generated dependencies file for bench_f4_fileio.
# This may be replaced when dependencies are built.
