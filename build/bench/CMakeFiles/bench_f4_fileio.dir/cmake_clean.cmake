file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_fileio.dir/bench_f4_fileio.cc.o"
  "CMakeFiles/bench_f4_fileio.dir/bench_f4_fileio.cc.o.d"
  "bench_f4_fileio"
  "bench_f4_fileio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_fileio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
