file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_build.dir/bench_f3_build.cc.o"
  "CMakeFiles/bench_f3_build.dir/bench_f3_build.cc.o.d"
  "bench_f3_build"
  "bench_f3_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
