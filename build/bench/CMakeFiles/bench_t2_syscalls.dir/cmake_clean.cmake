file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_syscalls.dir/bench_t2_syscalls.cc.o"
  "CMakeFiles/bench_t2_syscalls.dir/bench_t2_syscalls.cc.o.d"
  "bench_t2_syscalls"
  "bench_t2_syscalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_syscalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
