# Empty dependencies file for bench_t2_syscalls.
# This may be replaced when dependencies are built.
