/**
 * @file
 * The registered hostile-kernel injection points.
 *
 * Each AttackPoint names one way a malicious commodity kernel can try
 * to break a cloaked application: tampering with swap traffic,
 * corrupting sealed metadata bundles at persistence boundaries,
 * snooping or scribbling user memory at syscall entry, probing trap
 * frames, lying to the VMM's shadow walker about guest page tables, or
 * molesting checkpoint images and live pre-copy streams in the
 * untrusted migration transport between two machines.
 * The AttackDirector implements the behavior; campaigns sweep the
 * whole enum against every victim workload.
 *
 * Points split into two classes the tests rely on:
 *
 *   - tampering points (isTamperPoint): if one fires, the run MUST end
 *     with the engine detecting it and killing the victim gracefully;
 *   - probe points: allowed to fire without detection, because the
 *     kernel only ever observes ciphertext/scrubbed state (the leak
 *     oracle checks that nothing cloaked was actually exposed), or —
 *     for ReadCorrupt — because unprotected file contents are outside
 *     Overshadow's guarantee entirely.
 */

#ifndef OSH_ATTACK_POINTS_HH
#define OSH_ATTACK_POINTS_HH

#include <cstdint>
#include <vector>

namespace osh::attack
{

/** One hostile-kernel behavior a campaign cell enables. */
enum class AttackPoint : std::uint8_t
{
    Baseline,        ///< No attack; validates oracle + determinism.
    SwapTamperByte,  ///< Flip byte 0 of every cloaked page swapped out.
    SwapTamperPage,  ///< Seeded multi-bit flips across the swapped page.
    SwapReplay,      ///< Substitute the first version seen per page.
    SwapResurrect,   ///< Serve stale freed-slot contents on swap-in.
    SealCorrupt,     ///< Flip a byte of a sealed bundle at exec.
    SealTruncate,    ///< Truncate a sealed bundle at exec.
    SealRollback,    ///< Save bundles at fsync, restore old ones later.
    SyscallSnoop,    ///< Read cloaked user pages at syscall entry.
    SyscallScribble, ///< Overwrite cloaked user pages at syscall entry.
    ReadCorrupt,     ///< Scribble over read() return buffers.
    TrapFrameProbe,  ///< Record register files at syscall entry.
    ShadowRemap,     ///< Lie to the shadow walker: va_a -> frame(va_b).
    ShadowDoubleMap, ///< Swap two VAs' translations (one frame, two VAs).
    MigImageTamper,  ///< Flip a seeded byte of a checkpoint image in flight.
    MigImageRollback,///< Re-present a stale checkpoint image to the target.
    MigStreamReplay, ///< Replay round 0's pre-copy segment in later rounds.
    MigManifestTrunc,///< Truncate the checkpoint image mid-transfer.
    RingTamper,      ///< Rewrite a submitted batch descriptor in the ring.
    RingCompForge,   ///< Forge batch completions (result + echo token).
    TimingVictimProbe,   ///< Time victim-cache hit vs full re-seal.
    TimingCleanProbe,    ///< Time clean-page re-encrypt vs dirty seal.
    TimingAsyncDrain,    ///< Time async-lane drain stalls.
    TimingMetadataProbe, ///< Time metadata cache hit vs miss.
    NumPoints,
};

/** Stable short name ("swap_tamper_byte", ...). */
const char* attackPointName(AttackPoint p);

/** Every point, Baseline first, in enum order. */
const std::vector<AttackPoint>& allAttackPoints();

/**
 * Tampering points must be Detected whenever they fire; probe points
 * may fire and stay Harmless (nothing cloaked is exposed).
 */
bool isTamperPoint(AttackPoint p);

/**
 * Migration points molest the checkpoint/live-migration transport
 * between two machines instead of one machine's kernel surfaces; the
 * campaign runs them through a dedicated two-System cell runner.
 */
bool isMigrationPoint(AttackPoint p);

/**
 * Timing points never touch victim state: they only observe the
 * virtualized TSC around probe accesses the kernel performs itself.
 * They are probe points (never Detected for firing), but the campaign
 * classifies a cell LEAK when the timing-recovered bit pattern matches
 * the timing victim's secret above chance.
 */
bool isTimingPoint(AttackPoint p);

} // namespace osh::attack

#endif // OSH_ATTACK_POINTS_HH
