/**
 * @file
 * AttackDirector: the seeded hostile kernel.
 *
 * The director generalizes the ad-hoc MaliceConfig knobs into one
 * object implementing both hostile-kernel interfaces:
 *
 *   - os::AttackHooks — called from inside the guest kernel at every
 *     OS touchpoint (syscall entry, read return, swap out/in/release,
 *     fsync, exec);
 *   - vmm::GuestOsHooks — a proxy the director installs *in front of*
 *     the real kernel's hooks, so it can lie to the VMM's shadow
 *     walker about guest page tables (hostile remap / double-map).
 *
 * Construction installs the director on a System (kernel attack hooks
 * + VMM guest-OS proxy); destruction restores the original wiring, so
 * a director must be destroyed before its System (declare it after).
 *
 * Everything the director does is driven by one splitmix64 stream
 * seeded from (attack seed, attack point), so a campaign cell is
 * exactly reproducible. The director also records what the "kernel"
 * observed — snooped buffers, trap frames, freed-slot copies, saved
 * bundles — which the campaign's leak oracle scans for plaintext.
 */

#ifndef OSH_ATTACK_DIRECTOR_HH
#define OSH_ATTACK_DIRECTOR_HH

#include "attack/points.hh"
#include "os/attack_hooks.hh"
#include "system/system.hh"
#include "vmm/hooks.hh"
#include "vmm/registers.hh"

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace osh::attack
{

/** Static configuration of one director. */
struct DirectorConfig
{
    AttackPoint point = AttackPoint::Baseline;

    /** Seed of the director's private randomness stream. */
    std::uint64_t seed = 1;
};

/** The hostile kernel. See the file comment. */
class AttackDirector final : public os::AttackHooks,
                             public vmm::GuestOsHooks
{
  public:
    AttackDirector(system::System& sys, const DirectorConfig& config);
    ~AttackDirector() override;

    AttackDirector(const AttackDirector&) = delete;
    AttackDirector& operator=(const AttackDirector&) = delete;

    AttackPoint point() const { return config_.point; }

    /** Times the configured attack actually mutated/observed state. */
    std::uint64_t firings() const { return firings_; }

    // Kernel-observed state (leak-oracle inputs) ------------------------
    const std::vector<std::vector<std::uint8_t>>& snoops() const
    {
        return snoops_;
    }
    const std::vector<vmm::RegisterFile>& trapFrames() const
    {
        return trapFrames_;
    }
    const std::vector<std::array<std::uint8_t, pageSize>>&
    graveyard() const
    {
        return graveyard_;
    }
    const std::map<std::uint64_t,
                   std::array<std::uint8_t, pageSize>>&
    firstSwapVersions() const
    {
        return firstSwapVersions_;
    }
    const std::map<std::uint64_t, std::vector<std::uint8_t>>&
    savedBundles() const
    {
        return savedBundles_;
    }

    // Timing-oracle recordings (timing points only) ---------------------
    /** Raw probe-window cycle deltas, one per probe. */
    const std::vector<Cycles>& probeDeltas() const { return probeDeltas_; }
    /** Bits the timing oracle recovered (thresholded deltas). */
    const std::vector<std::uint8_t>& recoveredBits() const
    {
        return recoveredBits_;
    }

    // os::AttackHooks ---------------------------------------------------
    void onSyscallEntry(os::Kernel& kernel, os::Thread& t) override;
    void onReadReturn(os::Kernel& kernel, os::Thread& t, GuestVA buf,
                      std::uint64_t len) override;
    void onSwapOut(os::Kernel& kernel, os::SwapSlot slot,
                   std::uint64_t replay_key) override;
    void onSwapIn(os::Kernel& kernel, os::SwapSlot slot,
                  std::uint64_t replay_key,
                  std::span<std::uint8_t> page) override;
    void onSwapRelease(os::Kernel& kernel, os::SwapSlot slot) override;
    void onBatchSubmit(os::Kernel& kernel, os::Thread& t,
                       GuestVA sub_va, std::uint64_t count) override;
    void onBatchComplete(os::Kernel& kernel, os::Thread& t,
                         GuestVA comp_va, std::uint64_t count) override;
    void onFsync(os::Kernel& kernel, os::Thread& t,
                 os::InodeId inode) override;
    void onExec(os::Kernel& kernel, os::Thread& t,
                const std::string& program) override;

    // vmm::GuestOsHooks (hostile proxy) ---------------------------------
    vmm::GuestPte translateGuest(Asid asid, GuestVA va) override;
    void handleGuestPageFault(vmm::Vcpu& vcpu, GuestVA va,
                              vmm::AccessType access) override;
    void notifyWrite(Asid asid, GuestVA va_page) override;

  private:
    std::uint64_t nextRand();
    void fired();

    /** Does @p replay_key name a page of a cloaked VMA? */
    bool cloakedSwapPage(os::Kernel& kernel,
                         std::uint64_t replay_key) const;

    /** Present cloaked mmap-arena pages of the current process. */
    std::vector<GuestVA> cloakedPresentPages(os::Kernel& kernel) const;

    /** Sealed-bundle attacks; @p exec_boundary gates corrupt/truncate. */
    void sealBoundary(os::Kernel& kernel, bool exec_boundary);

    /** Arm the shadow-table lie once two target pages exist. */
    void armShadowLie(os::Kernel& kernel);

    /**
     * Timing-oracle probe, run at the victim's Yield traps. Times one
     * kernel-side operation against the cloak engine's deterministic
     * cost model through the guest-visible clock (Vmm::readTsc) and
     * thresholds the delta into one recovered secret bit. Never touches
     * victim *contents* — the only channel is time.
     */
    void timingProbe(os::Kernel& kernel, os::Thread& t);

    /** Find the timing victim's signal arena (top 20 contiguous pages). */
    bool locateTimingArena(os::Kernel& kernel, GuestVA& top);

    /** Record one probe delta + thresholded bit; counts as a firing. */
    void recordProbe(Cycles delta, bool bit);

    system::System& sys_;
    DirectorConfig config_;
    os::Kernel& kernel_;
    std::uint64_t rng_;
    std::uint64_t firings_ = 0;
    std::uint64_t syscallEntries_ = 0;
    std::uint64_t scribbleAt_ = 0;
    bool scribbled_ = false;

    // Recordings (kernel-visible observations).
    std::vector<std::vector<std::uint8_t>> snoops_;
    std::vector<vmm::RegisterFile> trapFrames_;
    std::vector<std::array<std::uint8_t, pageSize>> graveyard_;
    std::map<std::uint64_t, std::array<std::uint8_t, pageSize>>
        firstSwapVersions_;
    std::map<std::uint64_t, std::vector<std::uint8_t>> savedBundles_;
    std::set<std::uint64_t> corruptedBundles_;
    std::set<std::uint64_t> truncatedBundles_;
    std::set<std::uint64_t> rolledBack_;

    // Timing-oracle recordings.
    std::vector<Cycles> probeDeltas_;
    std::vector<std::uint8_t> recoveredBits_;

    /** Shadow-walk lie state (remap / double-map). */
    struct ShadowLie
    {
        bool active = false;
        Asid asid = 0;
        GuestVA vaA = 0;
        GuestVA vaB = 0;
    };
    ShadowLie lie_;
};

} // namespace osh::attack

#endif // OSH_ATTACK_DIRECTOR_HH
