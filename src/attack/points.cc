#include "attack/points.hh"

namespace osh::attack
{

const char*
attackPointName(AttackPoint p)
{
    switch (p) {
      case AttackPoint::Baseline: return "baseline";
      case AttackPoint::SwapTamperByte: return "swap_tamper_byte";
      case AttackPoint::SwapTamperPage: return "swap_tamper_page";
      case AttackPoint::SwapReplay: return "swap_replay";
      case AttackPoint::SwapResurrect: return "swap_resurrect";
      case AttackPoint::SealCorrupt: return "seal_corrupt";
      case AttackPoint::SealTruncate: return "seal_truncate";
      case AttackPoint::SealRollback: return "seal_rollback";
      case AttackPoint::SyscallSnoop: return "syscall_snoop";
      case AttackPoint::SyscallScribble: return "syscall_scribble";
      case AttackPoint::ReadCorrupt: return "read_corrupt";
      case AttackPoint::TrapFrameProbe: return "trap_frame_probe";
      case AttackPoint::ShadowRemap: return "shadow_remap";
      case AttackPoint::ShadowDoubleMap: return "shadow_double_map";
      case AttackPoint::MigImageTamper: return "mig_image_tamper";
      case AttackPoint::MigImageRollback: return "mig_image_rollback";
      case AttackPoint::MigStreamReplay: return "mig_stream_replay";
      case AttackPoint::MigManifestTrunc: return "mig_manifest_trunc";
      case AttackPoint::RingTamper: return "ring_tamper";
      case AttackPoint::RingCompForge: return "ring_comp_forge";
      case AttackPoint::TimingVictimProbe: return "timing_victim";
      case AttackPoint::TimingCleanProbe: return "timing_clean_page";
      case AttackPoint::TimingAsyncDrain: return "timing_async_drain";
      case AttackPoint::TimingMetadataProbe: return "timing_metadata";
      case AttackPoint::NumPoints: break;
    }
    return "?";
}

const std::vector<AttackPoint>&
allAttackPoints()
{
    static const std::vector<AttackPoint> points = [] {
        std::vector<AttackPoint> v;
        for (std::uint8_t i = 0;
             i < static_cast<std::uint8_t>(AttackPoint::NumPoints); ++i)
            v.push_back(static_cast<AttackPoint>(i));
        return v;
    }();
    return points;
}

bool
isTamperPoint(AttackPoint p)
{
    switch (p) {
      case AttackPoint::SwapTamperByte:
      case AttackPoint::SwapTamperPage:
      case AttackPoint::SwapReplay:
      case AttackPoint::SwapResurrect:
      case AttackPoint::SealCorrupt:
      case AttackPoint::SealTruncate:
      case AttackPoint::SealRollback:
      case AttackPoint::SyscallScribble:
      case AttackPoint::ShadowRemap:
      case AttackPoint::ShadowDoubleMap:
      case AttackPoint::MigImageTamper:
      case AttackPoint::MigImageRollback:
      case AttackPoint::MigStreamReplay:
      case AttackPoint::MigManifestTrunc:
      case AttackPoint::RingTamper:
      case AttackPoint::RingCompForge:
        return true;
      default:
        return false;
    }
}

bool
isTimingPoint(AttackPoint p)
{
    switch (p) {
      case AttackPoint::TimingVictimProbe:
      case AttackPoint::TimingCleanProbe:
      case AttackPoint::TimingAsyncDrain:
      case AttackPoint::TimingMetadataProbe:
        return true;
      default:
        return false;
    }
}

bool
isMigrationPoint(AttackPoint p)
{
    switch (p) {
      case AttackPoint::MigImageTamper:
      case AttackPoint::MigImageRollback:
      case AttackPoint::MigStreamReplay:
      case AttackPoint::MigManifestTrunc:
        return true;
      default:
        return false;
    }
}

} // namespace osh::attack
