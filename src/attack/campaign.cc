#include "attack/campaign.hh"

#include "attack/director.hh"
#include "cloak/engine.hh"
#include "migrate/checkpoint.hh"
#include "migrate/live.hh"
#include "os/kernel.hh"
#include "os/swap.hh"
#include "os/vfs.hh"
#include "system/system.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>

namespace osh::attack
{

namespace
{

/** Little-endian byte image of the sentinel word. */
std::array<std::uint8_t, 8>
sentinelBytes(std::uint64_t sentinel)
{
    std::array<std::uint8_t, 8> out;
    for (std::size_t i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(sentinel >> (8 * i));
    return out;
}

bool
containsSentinel(std::span<const std::uint8_t> bytes,
                 const std::array<std::uint8_t, 8>& pattern)
{
    if (bytes.size() < pattern.size())
        return false;
    return std::search(bytes.begin(), bytes.end(), pattern.begin(),
                       pattern.end()) != bytes.end();
}

/** Deterministic seed expansion for migration-tamper placement. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

/**
 * Runs post-exit on purpose: while the victim lives, its plaintext
 * legitimately sits in frames the MMU fences off; once it exits (or is
 * killed) nothing cloaked may remain visible anywhere.
 */
std::string
findSentinelLeak(system::System& sys, const AttackDirector& director,
                 std::uint64_t sentinel)
{
    const auto pattern = sentinelBytes(sentinel);

    sim::MachineMemory& mem = sys.machine().memory();
    for (std::uint64_t f = 0; f < mem.numFrames(); ++f) {
        if (containsSentinel(mem.framePlain(f * pageSize), pattern))
            return "machine frame " + std::to_string(f);
    }

    os::SwapDevice& swap = sys.kernel().swap();
    for (os::SwapSlot s = 0; s < swap.slotsBacked(); ++s) {
        if (containsSentinel(swap.slotBytes(s), pattern))
            return "swap slot " + std::to_string(s);
    }

    os::Vfs& vfs = sys.kernel().vfs();
    for (os::InodeId id : vfs.inodeIds()) {
        if (containsSentinel(vfs.inode(id).diskData, pattern))
            return "vfs inode " + std::to_string(id);
    }

    if (cloak::CloakEngine* engine = sys.cloak()) {
        for (const auto& [key, bundle] : engine->sealedStore()) {
            if (containsSentinel(bundle, pattern))
                return "sealed bundle " + std::to_string(key);
        }
        // In-flight async evictions: the staging buffers hold sealed
        // ciphertext on its way to swap — never plaintext.
        for (const auto& entry : engine->asyncPendingEntries()) {
            if (containsSentinel(entry.sealed, pattern))
                return "async eviction staging buffer";
        }
    }

    for (const auto& peek : director.snoops())
        if (containsSentinel(peek, pattern))
            return "snooped syscall buffer";
    for (const auto& ghost : director.graveyard())
        if (containsSentinel(ghost, pattern))
            return "freed swap slot copy";
    for (const auto& [key, page] : director.firstSwapVersions())
        if (containsSentinel(page, pattern))
            return "recorded swap version";
    for (const auto& [key, bundle] : director.savedBundles())
        if (containsSentinel(bundle, pattern))
            return "recorded sealed bundle";
    for (const vmm::RegisterFile& regs : director.trapFrames()) {
        for (std::uint64_t g : regs.gpr)
            if (g == sentinel)
                return "trap-frame register";
        if (regs.pc == sentinel || regs.sp == sentinel ||
            regs.flags == sentinel)
            return "trap-frame register";
    }
    return {};
}

const char*
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Harmless: return "HARMLESS";
      case Verdict::Detected: return "DETECTED";
      case Verdict::Leak: return "LEAK";
      case Verdict::Crash: return "CRASH";
    }
    return "?";
}

void
CampaignConfig::validate() const
{
    if (seeds.empty())
        throw std::invalid_argument(
            "CampaignConfig: no seeds — a campaign needs at least one "
            "run per cell");
    if (std::set<std::uint64_t>(seeds.begin(), seeds.end()).size() !=
        seeds.size()) {
        throw std::invalid_argument(
            "CampaignConfig: duplicate seeds would rerun identical "
            "cells and skew the verdict counts");
    }
    std::set<std::string> wl(workloads.begin(), workloads.end());
    if (wl.size() != workloads.size())
        throw std::invalid_argument(
            "CampaignConfig: duplicate workloads");
    const auto& known = workloads::victimNames();
    for (const std::string& w : workloads) {
        if (std::find(known.begin(), known.end(), w) == known.end())
            throw std::invalid_argument(
                "CampaignConfig: unknown victim workload '" + w + "'");
    }
    std::set<AttackPoint> pts(points.begin(), points.end());
    if (pts.size() != points.size())
        throw std::invalid_argument("CampaignConfig: duplicate points");
    for (AttackPoint p : points) {
        if (p >= AttackPoint::NumPoints)
            throw std::invalid_argument(
                "CampaignConfig: attack point out of range");
    }
}

std::vector<AttackPoint>
CampaignConfig::effectivePoints() const
{
    return points.empty() ? allAttackPoints() : points;
}

std::vector<std::string>
CampaignConfig::effectiveWorkloads() const
{
    return workloads.empty() ? workloads::victimNames() : workloads;
}

std::size_t
CampaignReport::count(Verdict v) const
{
    return static_cast<std::size_t>(
        std::count_if(cells.begin(), cells.end(),
                      [v](const CampaignCell& c) {
                          return c.verdict == v;
                      }));
}

std::string
CampaignReport::table() const
{
    std::ostringstream out;
    out << std::left << std::setw(6) << "seed" << std::setw(19)
        << "point" << std::setw(20) << "workload" << std::setw(10)
        << "verdict" << std::right << std::setw(8) << "firings"
        << std::setw(8) << "audits" << std::setw(8) << "status"
        << "\n";
    out << std::string(79, '-') << "\n";
    for (const CampaignCell& c : cells) {
        out << std::left << std::setw(6) << c.seed << std::setw(19)
            << attackPointName(c.point) << std::setw(20) << c.workload
            << std::setw(10) << verdictName(c.verdict) << std::right
            << std::setw(8) << c.firings << std::setw(8)
            << c.auditEvents << std::setw(8) << c.status << "\n";
    }
    out << "totals: cells=" << cells.size()
        << " harmless=" << count(Verdict::Harmless)
        << " detected=" << count(Verdict::Detected)
        << " leak=" << count(Verdict::Leak)
        << " crash=" << count(Verdict::Crash) << "\n";
    return out.str();
}

namespace
{

/**
 * Chance recovery of the balanced 32-bit timing secret is 16/32; the
 * probability of >= 24/32 matches by luck is under 0.4%, so a cell
 * clearing this bar recovered real information through time.
 */
constexpr std::size_t timingLeakMatchBits = 24;

/** Virtual-clock knobs the hardened timing cells run with. */
constexpr Cycles hardenedClockFuzz = 1'000'000;
constexpr Cycles hardenedClockOffset = 1'000'000;

system::SystemConfig
victimSystemConfig(std::uint64_t seed, AttackPoint point,
                   const std::string& workload, std::size_t vcpus,
                   std::size_t async_depth, bool timing_hardening)
{
    // The paging victim must thrash: give it fewer frames than its
    // arena so every page cycles through the (hostile) swap device.
    bool paging = workload == "wl.victim.paging";
    auto b = system::SystemConfig::Builder{}
                 .seed(seed)
                 .guestFrames(paging ? 96 : 512)
                 .cloaking(true)
                 .vcpus(vcpus)
                 .asyncEvictDepth(async_depth);
    // Per-oracle environment pins, so each timing point exercises
    // exactly the cache it targets regardless of CLI knobs.
    if (point == AttackPoint::TimingCleanProbe)
        b.victimCacheEntries(0); // force the clean re-encrypt path
    if (point == AttackPoint::TimingMetadataProbe)
        b.metadataCacheEntries(12); // an LRU the noise set just evicts
    if (point == AttackPoint::TimingAsyncDrain)
        b.asyncEvictDepth(4); // the drain-stall oracle needs lanes
    // Hardening applies only to timing cells: every legacy cell keeps
    // the exact cost sequence its committed expectation row replays.
    if (timing_hardening && isTimingPoint(point)) {
        b.clockFuzzCycles(hardenedClockFuzz)
            .clockOffsetCycles(hardenedClockOffset)
            .constantCostCloak(true);
    }
    return b.build();
}

/**
 * Migration cells: two machines, an untrusted transport in between.
 * The "attack" is the transport molesting checkpoint images or
 * pre-copy stream segments; the defense is the chain-MAC'd image
 * format plus the ticket carried out-of-band over the trusted
 * VMM-to-VMM channel. A typed refusal (restore or stream apply) counts
 * as Detected; tampered state accepted by the target is a defense
 * failure. The leak oracle additionally scans every byte the transport
 * saw — images and segments are attacker-visible and must be
 * ciphertext-only.
 *
 * Only the compute and paging victims speak the cooperative-resume
 * protocol; for the others the transport never gets traffic to molest
 * and the victim just runs out its course on the source (Harmless).
 */
CampaignCell
runMigrationCell(std::uint64_t seed, AttackPoint point,
                 const std::string& workload, std::size_t vcpus,
                 std::size_t async_depth)
{
    CampaignCell cell;
    cell.seed = seed;
    cell.point = point;
    cell.workload = workload;

    system::SystemConfig cfg = victimSystemConfig(
        seed, point, workload, vcpus, async_depth, true);
    system::System src(cfg);
    workloads::registerAll(src);
    system::System dst(cfg);
    workloads::registerAll(dst);

    // Baseline directors: no hostile behavior on either kernel — the
    // attack lives in the transport — but the leak oracle wants each
    // machine's recorded surfaces.
    DirectorConfig dcfg;
    dcfg.point = AttackPoint::Baseline;
    dcfg.seed = cfg.effectiveAttackSeed();
    AttackDirector src_dir(src, dcfg);
    AttackDirector dst_dir(dst, dcfg);

    const std::uint64_t aseed =
        cfg.effectiveAttackSeed() ^ mix64(static_cast<std::uint64_t>(point));
    const std::uint64_t entries = 12;
    const std::uint64_t nonce = seed ^ 0x517e;

    bool migratable = workload == "wl.victim.compute" ||
                      workload == "wl.victim.paging";

    std::vector<std::vector<std::uint8_t>> exposed;
    std::string refusal;
    bool accepted = false;
    bool migrated = false;

    int init_status = -1;
    if (!migratable) {
        // The fork victim's children exit with designed nonzero
        // statuses; like the one-machine cells, only init's counts.
        init_status = src.runProgram(workload).status;
    } else if (point == AttackPoint::MigStreamReplay) {
        Pid pid = src.launch(workload);
        migrate::LiveOptions lopts;
        lopts.nonce = nonce;
        lopts.entriesPerRound = entries;
        std::vector<std::uint8_t> first_segment;
        lopts.interceptSegment = [&](std::uint64_t round,
                                     std::vector<std::uint8_t>& seg) {
            exposed.push_back(seg);
            if (round == 0) {
                first_segment = seg;
                return;
            }
            // Replay the bulk round on the wire in place of every
            // later round's traffic.
            seg = first_segment;
            ++cell.firings;
        };
        auto live = migrate::migrateLive(src, pid, dst, lopts);
        if (!live.ok()) {
            refusal = migrate::migrateErrorName(live.error());
            // The aborted migration leaves the victim thawed on the
            // source; let it run out its course there.
            if (src.kernel().isFrozen(pid))
                src.kernel().thaw(pid);
            src.run();
        } else {
            migrated = true;
            accepted = cell.firings > 0;
        }
    } else {
        Pid pid = src.launch(workload);
        src.kernel().requestFreeze(pid, entries);
        src.run();
        if (src.kernel().isFrozen(pid)) {
            migrate::CheckpointOptions copts;
            copts.nonce = nonce;
            auto ckpt = migrate::checkpoint(src, pid, copts);
            if (ckpt.ok()) {
                std::vector<std::uint8_t> bytes = (*ckpt).image;
                migrate::Ticket ticket = (*ckpt).ticket;
                if (point == AttackPoint::MigImageTamper) {
                    std::uint64_t off = mix64(aseed) % bytes.size();
                    bytes[off] ^= static_cast<std::uint8_t>(
                        1 + mix64(aseed ^ 1) % 255);
                    ++cell.firings;
                } else if (point == AttackPoint::MigManifestTrunc) {
                    bytes.resize(1 + mix64(aseed) % (bytes.size() - 1));
                    ++cell.firings;
                } else { // MigImageRollback
                    // Let the victim progress, cut a fresh image, then
                    // re-present the stale one under the new ticket.
                    src.kernel().thaw(pid);
                    src.kernel().requestFreeze(pid, entries);
                    src.run();
                    if (src.kernel().isFrozen(pid)) {
                        migrate::CheckpointOptions c2 = copts;
                        c2.imageVersion = copts.imageVersion + 1;
                        auto ckpt2 = migrate::checkpoint(src, pid, c2);
                        if (ckpt2.ok()) {
                            exposed.push_back((*ckpt2).image);
                            ticket = (*ckpt2).ticket;
                            ++cell.firings;
                        }
                    }
                }
                exposed.push_back(bytes);
                if (cell.firings > 0) {
                    auto restored =
                        migrate::restore(dst, bytes, ticket);
                    if (!restored.ok()) {
                        refusal =
                            migrate::migrateErrorName(restored.error());
                    } else {
                        accepted = true;
                        migrated = true;
                    }
                }
            }
        }
        // Whatever happened to the transfer, the source copy still
        // holds the victim: thaw and let it finish there.
        if (src.kernel().isFrozen(pid))
            src.kernel().thaw(pid);
        src.run();
    }
    if (migrated)
        dst.run();

    const cloak::CloakEngine* src_engine = src.cloak();
    const cloak::CloakEngine* dst_engine = dst.cloak();
    cell.auditEvents =
        (src_engine != nullptr ? src_engine->auditLog().size() : 0) +
        (dst_engine != nullptr ? dst_engine->auditLog().size() : 0);

    // Exit status of the victim wherever it actually finished.
    int status = -1;
    bool violation_kill = false;
    bool other_kill = false;
    std::string kill_reason;
    auto scanResults = [&](system::System& sys) {
        for (const auto& [pid, res] : sys.results()) {
            if (res.killed) {
                cell.killed = true;
                // A source copy abandoned after a successful transfer
                // is protocol, not damage.
                if (res.killReason == "migrated away")
                    continue;
                if (res.killReason.rfind("cloak violation", 0) == 0) {
                    violation_kill = true;
                    if (kill_reason.empty())
                        kill_reason = res.killReason;
                } else {
                    other_kill = true;
                    kill_reason = res.killReason;
                }
                continue;
            }
            status = res.status;
        }
    };
    scanResults(src);
    scanResults(dst);
    cell.status = init_status >= 0 ? init_status
                                   : (status < 0 ? 0 : status);

    std::uint64_t sentinel = workloads::attackSentinel(seed);
    const auto pattern = sentinelBytes(sentinel);
    std::string leak;
    for (const auto& bytes : exposed) {
        if (containsSentinel(bytes, pattern)) {
            leak = "migration transport bytes";
            break;
        }
    }
    if (leak.empty())
        leak = findSentinelLeak(src, src_dir, sentinel);
    if (leak.empty())
        leak = findSentinelLeak(dst, dst_dir, sentinel);

    if (!leak.empty()) {
        cell.verdict = Verdict::Leak;
        cell.detail = "sentinel found in " + leak;
    } else if (other_kill) {
        cell.verdict = Verdict::Crash;
        cell.detail = "killed: " + kill_reason;
    } else if (accepted) {
        cell.verdict = Verdict::Crash;
        cell.detail = "tampered migration state accepted";
    } else if (!refusal.empty() && cell.firings > 0) {
        cell.verdict = Verdict::Detected;
        cell.detail = "migration refused: " + refusal;
    } else if (violation_kill) {
        cell.verdict = Verdict::Detected;
        cell.detail = kill_reason;
    } else if (cell.status == 0) {
        cell.verdict = Verdict::Harmless;
        cell.detail = migratable
                          ? "attack never engaged the transfer"
                          : "not a migration-capable victim";
    } else {
        cell.verdict = Verdict::Crash;
        cell.detail = "exit status " + std::to_string(cell.status);
    }
    return cell;
}

} // namespace

CampaignCell
runCell(std::uint64_t seed, AttackPoint point,
        const std::string& workload, std::size_t vcpus,
        std::size_t async_depth, bool timing_hardening)
{
    if (isMigrationPoint(point))
        return runMigrationCell(seed, point, workload, vcpus,
                                async_depth);

    CampaignCell cell;
    cell.seed = seed;
    cell.point = point;
    cell.workload = workload;

    system::SystemConfig cfg = victimSystemConfig(
        seed, point, workload, vcpus, async_depth, timing_hardening);
    system::System sys(cfg);
    workloads::registerAll(sys);

    DirectorConfig dcfg;
    dcfg.point = point;
    dcfg.seed = cfg.effectiveAttackSeed();
    AttackDirector director(sys, dcfg);

    system::ExitResult init = sys.runProgram(workload);
    cell.firings = director.firings();
    cell.status = init.status;

    const cloak::CloakEngine* engine = sys.cloak();
    cell.auditEvents = engine != nullptr ? engine->auditLog().size() : 0;

    // Any process of the cell counts: a fork child killed for a cloak
    // violation is a detection even though the parent exits oddly.
    bool violation_kill = false;
    bool other_kill = false;
    std::string kill_reason;
    for (const auto& [pid, res] : sys.results()) {
        if (!res.killed)
            continue;
        cell.killed = true;
        if (res.killReason.rfind("cloak violation", 0) == 0) {
            violation_kill = true;
            if (kill_reason.empty())
                kill_reason = res.killReason;
        } else {
            other_kill = true;
            kill_reason = res.killReason;
        }
    }

    std::uint64_t sentinel = workloads::attackSentinel(seed);
    std::string leak = findSentinelLeak(sys, director, sentinel);

    // Timing-oracle classification: no cloaked byte ever reaches the
    // kernel, but if the probe's threshold-recovered bits match the
    // timing victim's balanced secret above chance, time itself was
    // the channel — and that is a leak.
    std::string timing_leak;
    if (leak.empty() && isTimingPoint(point) &&
        workload == "wl.victim.timing") {
        const auto secret = workloads::timingSecretBits(seed);
        const auto& got = director.recoveredBits();
        if (got.size() >= secret.size()) {
            // The victim's warmup round may have produced a leading
            // probe; the last |secret| probes line up with the bits.
            std::size_t off = got.size() - secret.size();
            std::size_t matches = 0;
            for (std::size_t i = 0; i < secret.size(); ++i)
                if (got[off + i] == secret[i])
                    ++matches;
            if (matches >= timingLeakMatchBits) {
                timing_leak = "timing oracle recovered " +
                              std::to_string(matches) + "/" +
                              std::to_string(secret.size()) +
                              " secret bits";
            }
        }
    }

    if (!leak.empty()) {
        cell.verdict = Verdict::Leak;
        cell.detail = "sentinel found in " + leak;
    } else if (!timing_leak.empty()) {
        cell.verdict = Verdict::Leak;
        cell.detail = timing_leak;
    } else if (other_kill) {
        cell.verdict = Verdict::Crash;
        cell.detail = "killed: " + kill_reason;
    } else if (violation_kill) {
        cell.verdict = Verdict::Detected;
        cell.detail = kill_reason;
    } else if (init.status == workloads::victimStatusRefused) {
        cell.verdict = Verdict::Detected;
        cell.detail = "protected-file open refused";
    } else if (init.status == 0) {
        cell.verdict = Verdict::Harmless;
        cell.detail = "clean exit";
    } else {
        cell.verdict = Verdict::Crash;
        cell.detail = "exit status " + std::to_string(init.status);
    }
    return cell;
}

CampaignReport
runCampaign(const CampaignConfig& config)
{
    config.validate();
    CampaignReport report;
    auto cat = static_cast<std::uint8_t>(trace::Category::Attack);
    const auto points = config.effectivePoints();
    const auto workloads = config.effectiveWorkloads();
    for (std::uint64_t seed : config.seeds) {
        for (AttackPoint point : points) {
            for (const std::string& wl : workloads) {
                CampaignCell cell =
                    runCell(seed, point, wl, config.vcpus,
                            config.asyncDepth,
                            config.timingHardening);
                report.metrics.counter(cat, "cells")++;
                report.metrics.counter(cat, "firings") +=
                    cell.firings;
                report.metrics.counter(
                    cat, std::string("verdict_") +
                             verdictName(cell.verdict))++;
                report.metrics.counter(
                    cat, std::string("point_") +
                             attackPointName(cell.point) + "_" +
                             verdictName(cell.verdict))++;
                report.cells.push_back(std::move(cell));
            }
        }
    }
    return report;
}

} // namespace osh::attack
