#include "attack/director.hh"

#include "base/bytes.hh"
#include "cloak/engine.hh"
#include "os/kernel.hh"
#include "os/layout.hh"
#include "os/process.hh"
#include "os/swap.hh"
#include "os/syscalls.hh"
#include "os/thread.hh"
#include "trace/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace osh::attack
{

namespace
{

/** Slots of a replay key: (asid << 40) | pageNumber(va_page). */
constexpr std::uint64_t replayPageMask = (std::uint64_t{1} << 40) - 1;

/** Most freed-slot copies the resurrection attack keeps around. */
constexpr std::size_t graveyardCapacity = 64;

// Timing-oracle geometry — must match wl.victim.timing (workloads.cc):
// a 20-page arena whose top page (A) is dirty-encoded (bit=1 write,
// bit=0 read), next page down (B) is always-clean and metadata-encoded
// through the 16 noise pages below it.
constexpr std::size_t timingArenaPages = 20;
constexpr std::size_t timingNoisePages = 16;

/**
 * Dirty-vs-clean threshold for the victim-cache and clean-page probes.
 * Inside the probe window a dirty page costs a full seal —
 * aesPerByte*4096 + shaPerByte*(4096+40) + cloakFaultFixed = 91,012
 * cycles — while the clean re-encrypt path costs 49,652 and a
 * victim-cache restore only ~2,000 (plus a constant ~1.3k of VM-exit /
 * shadow-fill overhead either way). 70,000 splits the clusters with a
 * wide margin.
 */
constexpr Cycles timingSealThreshold = 70'000;

/**
 * Metadata hit-vs-miss threshold. The probe re-seals the always-clean
 * signal page B for a constant base cost (a victim-cache restore plus
 * VM-exit/shadow overhead, ~2,985 cycles); the engine's metadata
 * lookup adds metadataHit (40) or metadataMiss (900) on top, so the
 * observed clusters are exactly 3,025 vs 3,885 and their midpoint
 * separates them.
 */
constexpr Cycles timingMetadataThreshold = 3'455;

/**
 * Async drain-stall threshold. Force-evicting page A parks a sealed
 * copy on an async lane whose occupancy is seal cost + diskAccess
 * (300,000) + diskPerByte*4096; the timed drain barrier stalls for the
 * remaining occupancy, so a dirty seal (~397k total) and a clean one
 * (~310-355k) straddle 370,000.
 */
constexpr Cycles timingDrainThreshold = 370'000;

} // namespace

AttackDirector::AttackDirector(system::System& sys,
                               const DirectorConfig& config)
    : sys_(sys), config_(config), kernel_(sys.kernel()),
      rng_(config.seed ^
           (0x9e3779b97f4a7c15ull *
            (static_cast<std::uint64_t>(config.point) + 1)))
{
    scribbleAt_ = 2 + nextRand() % 4;
    kernel_.setAttackHooks(this);
    sys_.vmm().setGuestOs(this);
}

AttackDirector::~AttackDirector()
{
    sys_.vmm().setGuestOs(&kernel_);
    kernel_.setAttackHooks(nullptr);
}

std::uint64_t
AttackDirector::nextRand()
{
    rng_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
AttackDirector::fired()
{
    ++firings_;
    OSH_TRACE_INSTANT(&sys_.tracer(), trace::Category::Attack,
                      attackPointName(config_.point));
}

bool
AttackDirector::cloakedSwapPage(os::Kernel& kernel,
                                std::uint64_t replay_key) const
{
    // Only target cloaked pages: corrupting an application's
    // *unprotected* swap traffic proves nothing about Overshadow (the
    // threat model concedes it) and makes victims fail unclassifiably.
    Asid asid = static_cast<Asid>(replay_key >> 40);
    GuestVA va_page = (replay_key & replayPageMask) * pageSize;
    os::Process* p = kernel.findProcess(static_cast<Pid>(asid));
    if (p == nullptr || !p->cloaked)
        return false;
    const os::Vma* vma =
        const_cast<const os::AddressSpace&>(p->as).findVma(va_page);
    return vma != nullptr && vma->cloaked;
}

std::vector<GuestVA>
AttackDirector::cloakedPresentPages(os::Kernel& kernel) const
{
    std::vector<GuestVA> vas;
    os::Process& p = kernel.currentProcess();
    if (!p.cloaked)
        return vas;
    const os::AddressSpace& as = p.as;
    for (const auto& [va, pte] : as.ptes()) {
        if (!pte.present || va < os::mmapBase)
            continue;
        const os::Vma* vma = as.findVma(va);
        if (vma == nullptr || !vma->cloaked)
            continue;
        vas.push_back(va);
    }
    // ptes() iterates an unordered_map; sort for determinism.
    std::sort(vas.begin(), vas.end());
    return vas;
}

// ---------------------------------------------------------------------------
// Syscall-boundary attacks
// ---------------------------------------------------------------------------

void
AttackDirector::onSyscallEntry(os::Kernel& kernel, os::Thread& t)
{
    ++syscallEntries_;
    switch (config_.point) {
      case AttackPoint::SyscallSnoop: {
        // Peek at a few cloaked pages through the kernel view on every
        // trap. The engine seals them first, so this records only
        // ciphertext — the leak oracle proves it.
        std::vector<GuestVA> vas = cloakedPresentPages(kernel);
        if (vas.empty())
            return;
        std::size_t peeks = std::min<std::size_t>(4, vas.size());
        for (std::size_t i = 0; i < peeks; ++i) {
            GuestVA va = vas[nextRand() % vas.size()];
            std::vector<std::uint8_t> peek(64);
            t.vcpu.readBytes(va, peek);
            snoops_.push_back(std::move(peek));
        }
        fired();
        return;
      }

      case AttackPoint::SyscallScribble: {
        // At one seeded trap, overwrite every present cloaked page.
        // This always hits the shim's CTC page, so the secure control
        // transfer's hash check catches it on syscall exit at the
        // latest.
        if (scribbled_ || syscallEntries_ < scribbleAt_)
            return;
        std::vector<GuestVA> vas = cloakedPresentPages(kernel);
        if (vas.empty())
            return;
        std::array<std::uint8_t, 32> junk;
        junk.fill(0x66);
        for (GuestVA va : vas)
            t.vcpu.writeBytes(va, junk);
        scribbled_ = true;
        fired();
        return;
      }

      case AttackPoint::TrapFrameProbe:
        // Record the register file the kernel sees; the secure control
        // transfer scrubbed it, and the oracle checks nothing cloaked
        // survived.
        trapFrames_.push_back(t.vcpu.regs());
        fired();
        return;

      case AttackPoint::ShadowRemap:
      case AttackPoint::ShadowDoubleMap:
        if (!lie_.active)
            armShadowLie(kernel);
        return;

      case AttackPoint::TimingVictimProbe:
      case AttackPoint::TimingCleanProbe:
      case AttackPoint::TimingAsyncDrain:
      case AttackPoint::TimingMetadataProbe:
        timingProbe(kernel, t);
        return;

      default:
        return;
    }
}

// ---------------------------------------------------------------------------
// Timing-oracle probes
// ---------------------------------------------------------------------------

bool
AttackDirector::locateTimingArena(os::Kernel& kernel, GuestVA& top)
{
    std::vector<GuestVA> vas = cloakedPresentPages(kernel);
    if (vas.size() < timingArenaPages)
        return false;
    // The timing victim's signal arena is the top timingArenaPages
    // contiguous cloaked pages. Victims with a different memory shape
    // simply never match, so the probe stays quiet against them
    // (0 firings -> Harmless).
    std::size_t n = vas.size();
    for (std::size_t i = n - timingArenaPages + 1; i < n; ++i) {
        if (vas[i] != vas[i - 1] + pageSize)
            return false;
    }
    top = vas[n - 1];
    return true;
}

void
AttackDirector::recordProbe(Cycles delta, bool bit)
{
    // OSH_TIMING_DEBUG dumps raw probe deltas to stderr — how the
    // classification thresholds above were calibrated.
    if (std::getenv("OSH_TIMING_DEBUG") != nullptr)
        std::fprintf(stderr, "probe delta=%llu bit=%d\n",
                     (unsigned long long)delta, bit ? 1 : 0);
    probeDeltas_.push_back(delta);
    recoveredBits_.push_back(bit ? 1 : 0);
    fired();
}

void
AttackDirector::timingProbe(os::Kernel& kernel, os::Thread& t)
{
    // One probe per victim round, synchronous with the secret bit the
    // round encodes: the victim yields exactly once per bit.
    if (static_cast<os::Sys>(t.vcpu.regs().gpr[0]) != os::Sys::Yield)
        return;
    os::Process& proc = kernel.currentProcess();
    if (!proc.cloaked)
        return;
    GuestVA top = 0;
    if (!locateTimingArena(kernel, top))
        return;
    GuestVA page_a = top;                 // Dirty-encoded signal page.
    GuestVA page_b = top - pageSize;      // Metadata-encoded signal page.
    vmm::Vmm& vmm = kernel.vmm();
    std::array<std::uint8_t, 64> window;

    switch (config_.point) {
      case AttackPoint::TimingVictimProbe:
      case AttackPoint::TimingCleanProbe: {
        // Read page A through the kernel view and time the seal the
        // engine performs before handing over the frame: a page the
        // victim wrote this round pays the full dirty seal, one it
        // only read pays the clean re-encrypt (or, with the victim
        // cache enabled, almost nothing).
        Cycles t0 = vmm.readTsc(0);
        t.vcpu.readBytes(page_a, window);
        Cycles t1 = vmm.readTsc(0);
        recordProbe(t1 - t0, t1 - t0 > timingSealThreshold);
        return;
      }

      case AttackPoint::TimingMetadataProbe: {
        // Time the re-seal of the always-clean page B: its constant
        // cost carries the engine's metadata lookup on top, hit or
        // miss depending on whether the victim's noise touches evicted
        // B from the metadata LRU this round.
        Cycles t0 = vmm.readTsc(0);
        t.vcpu.readBytes(page_b, window);
        Cycles t1 = vmm.readTsc(0);
        recordProbe(t1 - t0, t1 - t0 > timingMetadataThreshold);
        // Outside the timed window, drop the victim's cached noise
        // translations so next round's noise touches re-walk into the
        // cloak engine (and its metadata cache) again. Cost is the
        // same for either bit value, so this adds no signal.
        for (std::size_t i = 0; i < timingNoisePages; ++i) {
            vmm.invalidateVa(proc.as.asid(),
                             page_b - pageSize * (timingNoisePages - i));
        }
        return;
      }

      case AttackPoint::TimingAsyncDrain: {
        // Park a sealed copy of page A on an async eviction lane, then
        // time the drain barrier: the lane's occupancy embeds the seal
        // cost, so a dirty page stalls the drain measurably longer
        // than a clean one.
        if (!kernel.forceSwapOut(proc.pid, page_a))
            return;
        Cycles t0 = vmm.readTsc(0);
        vmm.drainAsyncEvictions();
        Cycles t1 = vmm.readTsc(0);
        recordProbe(t1 - t0, t1 - t0 > timingDrainThreshold);
        return;
      }

      default:
        return;
    }
}

void
AttackDirector::onReadReturn(os::Kernel& kernel, os::Thread& t,
                             GuestVA buf, std::uint64_t len)
{
    if (config_.point != AttackPoint::ReadCorrupt)
        return;
    std::array<std::uint8_t, 16> junk;
    junk.fill(0xcc);
    std::size_t m = std::min<std::size_t>(junk.size(), len);
    kernel.copyToUser(t, buf,
                      std::span<const std::uint8_t>(junk.data(), m));
    fired();
}

// ---------------------------------------------------------------------------
// Syscall-ring attacks
// ---------------------------------------------------------------------------

void
AttackDirector::onBatchSubmit(os::Kernel& kernel, os::Thread& t,
                              GuestVA sub_va, std::uint64_t count)
{
    if (config_.point != AttackPoint::RingTamper)
        return;
    // The submission ring lives in uncloaked memory the kernel can
    // write. Scribble one seeded descriptor in the window between the
    // caller's serialization and the kernel's single copy-out. The
    // shim's private echo token cannot survive the overwrite, so the
    // completion check kills the process. Only meaningful against
    // cloaked callers (the threat model concedes unprotected state).
    if (!kernel.currentProcess().cloaked)
        return;
    std::uint64_t slot = nextRand() % count;
    std::array<std::uint8_t, os::batchDescBytes> junk;
    for (auto& b : junk)
        b = static_cast<std::uint8_t>(nextRand());
    kernel.copyToUser(t, sub_va + slot * os::batchDescBytes, junk);
    fired();
}

void
AttackDirector::onBatchComplete(os::Kernel& kernel, os::Thread& t,
                                GuestVA comp_va, std::uint64_t count)
{
    if (config_.point != AttackPoint::RingCompForge)
        return;
    // Forge one completion after the kernel wrote the ring and before
    // the caller reads it: a plausible success result with a guessed
    // echo token. The shim compares against its private nonce stream
    // and refuses to act on the forgery.
    if (!kernel.currentProcess().cloaked)
        return;
    std::uint64_t slot = nextRand() % count;
    std::array<std::uint8_t, os::batchCompBytes> forged;
    storeLe64(forged.data(), nextRand() % 4096);
    storeLe64(forged.data() + 8, nextRand());
    kernel.copyToUser(t, comp_va + slot * os::batchCompBytes, forged);
    fired();
}

// ---------------------------------------------------------------------------
// Swap attacks
// ---------------------------------------------------------------------------

void
AttackDirector::onSwapOut(os::Kernel& kernel, os::SwapSlot slot,
                          std::uint64_t replay_key)
{
    switch (config_.point) {
      case AttackPoint::SwapTamperByte:
        if (!cloakedSwapPage(kernel, replay_key))
            return;
        kernel.swap().rawSlot(slot)[0] ^= 0xff;
        fired();
        return;

      case AttackPoint::SwapTamperPage: {
        if (!cloakedSwapPage(kernel, replay_key))
            return;
        auto& raw = kernel.swap().rawSlot(slot);
        std::uint64_t flips = 2 + nextRand() % 7;
        for (std::uint64_t i = 0; i < flips; ++i) {
            std::size_t off = nextRand() % pageSize;
            raw[off] ^= static_cast<std::uint8_t>(1u << (nextRand() % 8));
        }
        fired();
        return;
      }

      case AttackPoint::SwapReplay:
        // Remember the first version of every cloaked page swapped
        // out; substitution happens at swap-in (observation alone is
        // not a firing).
        if (!cloakedSwapPage(kernel, replay_key))
            return;
        firstSwapVersions_.emplace(replay_key,
                                   kernel.swap().rawSlot(slot));
        return;

      default:
        return;
    }
}

void
AttackDirector::onSwapIn(os::Kernel& kernel, os::SwapSlot,
                         std::uint64_t replay_key,
                         std::span<std::uint8_t> page)
{
    switch (config_.point) {
      case AttackPoint::SwapReplay: {
        auto it = firstSwapVersions_.find(replay_key);
        if (it == firstSwapVersions_.end() ||
            std::memcmp(it->second.data(), page.data(), page.size()) ==
                0) {
            return;
        }
        std::memcpy(page.data(), it->second.data(), page.size());
        fired();
        return;
      }

      case AttackPoint::SwapResurrect: {
        if (graveyard_.empty() || !cloakedSwapPage(kernel, replay_key))
            return;
        const auto& ghost = graveyard_[nextRand() % graveyard_.size()];
        if (std::memcmp(ghost.data(), page.data(), page.size()) == 0)
            return;
        std::memcpy(page.data(), ghost.data(), page.size());
        fired();
        return;
      }

      default:
        return;
    }
}

void
AttackDirector::onSwapRelease(os::Kernel& kernel, os::SwapSlot slot)
{
    if (config_.point != AttackPoint::SwapResurrect)
        return;
    // Copy the slot before the device scrubs it — the data a sloppy
    // (or hostile) kernel could keep serving after the free.
    if (graveyard_.size() < graveyardCapacity)
        graveyard_.push_back(kernel.swap().rawSlot(slot));
}

// ---------------------------------------------------------------------------
// Sealed-metadata attacks (fsync / exec boundaries)
// ---------------------------------------------------------------------------

void
AttackDirector::sealBoundary(os::Kernel&, bool exec_boundary)
{
    cloak::CloakEngine* engine = sys_.cloak();
    if (engine == nullptr)
        return;
    auto& store = engine->sealedStore();
    switch (config_.point) {
      case AttackPoint::SealCorrupt:
        if (!exec_boundary)
            return;
        for (auto& [key, bundle] : store) {
            if (bundle.empty() || corruptedBundles_.contains(key))
                continue;
            bundle[bundle.size() / 3] ^= 0x40;
            corruptedBundles_.insert(key);
            fired();
        }
        return;

      case AttackPoint::SealTruncate:
        if (!exec_boundary)
            return;
        for (auto& [key, bundle] : store) {
            if (bundle.size() < 16 || truncatedBundles_.contains(key))
                continue;
            bundle.resize(bundle.size() / 2);
            truncatedBundles_.insert(key);
            fired();
        }
        return;

      case AttackPoint::SealRollback:
        // First sight of a bundle: save it (observation). Later, when
        // the stored bundle has moved on, put the stale one back.
        for (auto& [key, bundle] : store) {
            auto it = savedBundles_.find(key);
            if (it == savedBundles_.end()) {
                savedBundles_[key] = bundle;
            } else if (bundle != it->second &&
                       !rolledBack_.contains(key)) {
                bundle = it->second;
                rolledBack_.insert(key);
                fired();
            }
        }
        return;

      default:
        return;
    }
}

void
AttackDirector::onFsync(os::Kernel& kernel, os::Thread&, os::InodeId)
{
    sealBoundary(kernel, false);
}

void
AttackDirector::onExec(os::Kernel& kernel, os::Thread&,
                       const std::string&)
{
    sealBoundary(kernel, true);
}

// ---------------------------------------------------------------------------
// Hostile shadow-walk proxy
// ---------------------------------------------------------------------------

void
AttackDirector::armShadowLie(os::Kernel& kernel)
{
    std::vector<GuestVA> vas = cloakedPresentPages(kernel);
    if (vas.size() < 2)
        return;
    std::size_t ia = nextRand() % vas.size();
    std::size_t ib = (ia + 1 + nextRand() % (vas.size() - 1)) % vas.size();
    lie_.active = true;
    lie_.asid = kernel.currentProcess().as.asid();
    lie_.vaA = vas[ia];
    lie_.vaB = vas[ib];
    // Drop the cached translations so the next access re-walks the
    // (now lying) guest page tables.
    kernel.vmm().invalidateVa(lie_.asid, lie_.vaA);
    if (config_.point == AttackPoint::ShadowDoubleMap)
        kernel.vmm().invalidateVa(lie_.asid, lie_.vaB);
}

vmm::GuestPte
AttackDirector::translateGuest(Asid asid, GuestVA va)
{
    vmm::GuestPte truth = kernel_.translateGuest(asid, va);
    if (!lie_.active || asid != lie_.asid)
        return truth;
    GuestVA page = pageBase(va);
    GuestVA target;
    if (page == lie_.vaA) {
        target = lie_.vaB;
    } else if (config_.point == AttackPoint::ShadowDoubleMap &&
               page == lie_.vaB) {
        target = lie_.vaA;
    } else {
        return truth;
    }
    vmm::GuestPte fake = kernel_.translateGuest(asid, target);
    // Only lie when both translations are live: returning a non-present
    // fake while the truth is present would livelock the fault path.
    if (!fake.present || !truth.present)
        return truth;
    fired();
    return fake;
}

void
AttackDirector::handleGuestPageFault(vmm::Vcpu& vcpu, GuestVA va,
                                     vmm::AccessType access)
{
    kernel_.handleGuestPageFault(vcpu, va, access);
}

void
AttackDirector::notifyWrite(Asid asid, GuestVA va_page)
{
    kernel_.notifyWrite(asid, va_page);
}

} // namespace osh::attack
