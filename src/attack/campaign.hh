/**
 * @file
 * Attack campaigns: sweep AttackPoint × victim workload × seed, run
 * each cell on a fresh System with an AttackDirector installed, and
 * classify the outcome.
 *
 * Verdicts:
 *
 *   - Detected: the cloak engine caught the attack — the victim was
 *     killed gracefully with a cloak-violation reason (never an
 *     osh_panic), or a protected-file open was refused after metadata
 *     tampering (victim exits workloads::victimStatusRefused with the
 *     rejection audited);
 *   - Harmless: the victim finished cleanly (exit 0). Probe attacks
 *     land here: they only ever observe ciphertext/scrubbed state;
 *   - Leak: the plaintext-sentinel oracle found cloaked bytes in
 *     kernel-visible state — machine frames after exit, swap slots,
 *     VFS disk images, sealed bundles, or anything the director's
 *     hostile kernel recorded (snoops, trap frames, freed slots).
 *     Always a defense failure;
 *   - Crash: anything else — the victim observed silent corruption of
 *     cloaked data, was killed for a non-cloak reason, or exited with
 *     an unexpected status. Always a harness/defense failure.
 *
 * A campaign is deterministic: same config, same verdict table, cell
 * for cell (the report's table() string is byte-identical).
 */

#ifndef OSH_ATTACK_CAMPAIGN_HH
#define OSH_ATTACK_CAMPAIGN_HH

#include "attack/points.hh"
#include "trace/metrics.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace osh::system
{
class System;
}

namespace osh::attack
{

/** Outcome class of one campaign cell. */
enum class Verdict : std::uint8_t
{
    Harmless,
    Detected,
    Leak,
    Crash,
};

const char* verdictName(Verdict v);

/** One (seed, point, workload) run and its classification. */
struct CampaignCell
{
    std::uint64_t seed = 0;
    AttackPoint point = AttackPoint::Baseline;
    std::string workload;
    Verdict verdict = Verdict::Crash;
    std::string detail;            ///< Human-readable classification cause.
    std::uint64_t firings = 0;     ///< Director firings during the run.
    std::uint64_t auditEvents = 0; ///< Audit-ring size after the run.
    bool killed = false;           ///< Any process killed (gracefully).
    int status = 0;                ///< Init process exit status.
};

/** What to sweep. Defaults cover everything. */
struct CampaignConfig
{
    std::vector<std::uint64_t> seeds = {1, 2, 3};

    /** Empty means all attack points. */
    std::vector<AttackPoint> points;

    /** Empty means all victim workloads (workloads::victimNames()). */
    std::vector<std::string> workloads;

    /**
     * vCPUs per victim System (0 = single-core legacy path). Verdicts
     * and the table() string are vCPU-count invariant — the SMP tests
     * pin that down — so campaigns may run multi-core to exercise
     * per-vCPU world switches without touching expectation files.
     */
    std::size_t vcpus = 0;

    /**
     * asyncEvictDepth for every victim System (0 = synchronous legacy
     * eviction). Like vcpus, verdicts and the table() string are
     * depth-invariant — the async pipeline defers only cycle charges,
     * never bytes — so the committed expectation tables hold at any
     * depth. The oracle additionally scans the engine's in-flight
     * staging buffers.
     */
    std::size_t asyncDepth = 0;

    /**
     * Timing-channel hardening for every victim System: virtualized
     * per-context clock (fuzz + offset) plus constant-cost cloak
     * responses. Defaults ON, so the full default sweep — including
     * the timing-oracle points against the timing victim — is clean.
     * Turning it off demonstrates the LEAK cells the hardening closes
     * (tools/attack_campaign --timing-hardening=0, and the dedicated
     * timing tests).
     */
    bool timingHardening = true;

    /** Throws std::invalid_argument on empty seeds or duplicates. */
    void validate() const;

    /** points / workloads with the empty-means-all defaults applied. */
    std::vector<AttackPoint> effectivePoints() const;
    std::vector<std::string> effectiveWorkloads() const;
};

/** Results of a whole campaign. */
struct CampaignReport
{
    std::vector<CampaignCell> cells;

    /** Aggregates (category trace::Category::Attack). */
    trace::MetricsRegistry metrics;

    std::size_t count(Verdict v) const;

    /** No Leak and no Crash cells. */
    bool clean() const
    {
        return count(Verdict::Leak) == 0 && count(Verdict::Crash) == 0;
    }

    /** Deterministic plain-text verdict table + totals line. */
    std::string table() const;
};

/** Run one cell: fresh System, director installed, victim run,
 *  oracle + classification. @p vcpus, @p async_depth and
 *  @p timing_hardening as in CampaignConfig. */
CampaignCell runCell(std::uint64_t seed, AttackPoint point,
                     const std::string& workload,
                     std::size_t vcpus = 0,
                     std::size_t async_depth = 0,
                     bool timing_hardening = true);

class AttackDirector;

/**
 * The leak oracle: scan every kernel-visible surface of @p sys (machine
 * frames, swap slots, VFS disk images, sealed bundles, plus everything
 * @p director recorded) for the little-endian byte image of
 * @p sentinel. Returns a description of the first hit, empty if clean.
 * Exposed so tests can prove the oracle actually finds planted bytes.
 */
std::string findSentinelLeak(system::System& sys,
                             const AttackDirector& director,
                             std::uint64_t sentinel);

/** Run the whole sweep. Throws std::invalid_argument on bad config. */
CampaignReport runCampaign(const CampaignConfig& config);

} // namespace osh::attack

#endif // OSH_ATTACK_CAMPAIGN_HH
