#include "sim/memory.hh"

#include "base/bytes.hh"
#include "base/logging.hh"

#include <cstring>

namespace osh::sim
{

MachineMemory::MachineMemory(std::uint64_t num_frames)
    : numFrames_(num_frames), data_(num_frames * pageSize, 0)
{
    osh_assert(num_frames > 0, "machine must have at least one frame");
}

void
MachineMemory::check(Mpa addr, std::uint64_t len) const
{
    if (addr + len > data_.size() || addr + len < addr) {
        osh_panic("machine memory access out of range: "
                  "addr=0x%llx len=%llu size=%zu",
                  static_cast<unsigned long long>(addr),
                  static_cast<unsigned long long>(len), data_.size());
    }
}

void
MachineMemory::read(Mpa addr, std::span<std::uint8_t> out) const
{
    check(addr, out.size());
    std::memcpy(out.data(), data_.data() + addr, out.size());
}

void
MachineMemory::write(Mpa addr, std::span<const std::uint8_t> data)
{
    check(addr, data.size());
    std::memcpy(data_.data() + addr, data.data(), data.size());
}

std::uint8_t
MachineMemory::read8(Mpa addr) const
{
    check(addr, 1);
    return data_[addr];
}

std::uint16_t
MachineMemory::read16(Mpa addr) const
{
    check(addr, 2);
    return loadLe16(data_.data() + addr);
}

std::uint32_t
MachineMemory::read32(Mpa addr) const
{
    check(addr, 4);
    return loadLe32(data_.data() + addr);
}

std::uint64_t
MachineMemory::read64(Mpa addr) const
{
    check(addr, 8);
    return loadLe64(data_.data() + addr);
}

void
MachineMemory::write8(Mpa addr, std::uint8_t v)
{
    check(addr, 1);
    data_[addr] = v;
}

void
MachineMemory::write16(Mpa addr, std::uint16_t v)
{
    check(addr, 2);
    storeLe16(data_.data() + addr, v);
}

void
MachineMemory::write32(Mpa addr, std::uint32_t v)
{
    check(addr, 4);
    storeLe32(data_.data() + addr, v);
}

void
MachineMemory::write64(Mpa addr, std::uint64_t v)
{
    check(addr, 8);
    storeLe64(data_.data() + addr, v);
}

std::span<std::uint8_t>
MachineMemory::framePlain(Mpa frame_base)
{
    osh_assert(pageOffset(frame_base) == 0,
               "frame base must be page aligned");
    check(frame_base, pageSize);
    return {data_.data() + frame_base, pageSize};
}

std::span<const std::uint8_t>
MachineMemory::framePlain(Mpa frame_base) const
{
    osh_assert(pageOffset(frame_base) == 0,
               "frame base must be page aligned");
    check(frame_base, pageSize);
    return {data_.data() + frame_base, pageSize};
}

void
MachineMemory::zeroFrame(Mpa frame_base)
{
    auto frame = framePlain(frame_base);
    std::memset(frame.data(), 0, frame.size());
}

} // namespace osh::sim
