/**
 * @file
 * Machine physical memory.
 *
 * A flat array of 4 KiB frames addressed by machine physical address
 * (MPA). Only the VMM hands out frames; the guest OS sees guest physical
 * addresses which the VMM's pmap translates to MPAs. Accesses are bounds
 * checked — an out-of-range MPA is a simulator bug (panic), because all
 * guest-originated addresses are validated earlier in the walk.
 */

#ifndef OSH_SIM_MEMORY_HH
#define OSH_SIM_MEMORY_HH

#include "base/types.hh"

#include <cstdint>
#include <span>
#include <vector>

namespace osh::sim
{

/** Flat simulated machine memory. */
class MachineMemory
{
  public:
    /** @param num_frames Number of 4 KiB machine frames. */
    explicit MachineMemory(std::uint64_t num_frames);

    std::uint64_t numFrames() const { return numFrames_; }
    std::uint64_t sizeBytes() const { return numFrames_ * pageSize; }

    /** Read bytes at an MPA. The range must lie inside memory. */
    void read(Mpa addr, std::span<std::uint8_t> out) const;

    /** Write bytes at an MPA. The range must lie inside memory. */
    void write(Mpa addr, std::span<const std::uint8_t> data);

    /** Fixed-width accessors. */
    std::uint8_t read8(Mpa addr) const;
    std::uint16_t read16(Mpa addr) const;
    std::uint32_t read32(Mpa addr) const;
    std::uint64_t read64(Mpa addr) const;
    void write8(Mpa addr, std::uint8_t v);
    void write16(Mpa addr, std::uint16_t v);
    void write32(Mpa addr, std::uint32_t v);
    void write64(Mpa addr, std::uint64_t v);

    /**
     * Direct mutable view of one whole frame. Used by the VMM/cloak
     * engine to encrypt or hash a page in place; never handed to guest
     * code.
     */
    std::span<std::uint8_t> framePlain(Mpa frame_base);
    std::span<const std::uint8_t> framePlain(Mpa frame_base) const;

    /** Zero a whole frame. */
    void zeroFrame(Mpa frame_base);

  private:
    void check(Mpa addr, std::uint64_t len) const;

    std::uint64_t numFrames_;
    std::vector<std::uint8_t> data_;
};

} // namespace osh::sim

#endif // OSH_SIM_MEMORY_HH
