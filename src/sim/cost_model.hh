/**
 * @file
 * Deterministic cycle cost model.
 *
 * The simulator does not measure host time; every simulated operation
 * charges a fixed number of cycles here. The defaults are calibrated to
 * a 2008-era x86 with a software VMM (the paper's platform): ~1 cycle
 * per cached memory access, a few hundred cycles for a trap, ~800 for a
 * VMM world-switch round trip, and software AES/SHA at ~12/10 cycles per
 * byte. Benchmarks report simulated cycles, so runs are bit-reproducible
 * and the *relative* overheads (the shape of the paper's figures) are
 * meaningful even though absolute numbers are synthetic.
 */

#ifndef OSH_SIM_COST_MODEL_HH
#define OSH_SIM_COST_MODEL_HH

#include "base/stats.hh"
#include "base/types.hh"

namespace osh::sim
{

/** All tunable cycle costs. Benchmarks may override for ablations. */
struct CostParams
{
    // Memory system.
    Cycles memAccess = 1;        ///< Load/store with a TLB hit.
    Cycles tlbMissWalk = 24;     ///< Shadow-page-table walk on TLB miss.
    Cycles shadowFill = 250;     ///< VMM fills a shadow entry (hidden fault).
    Cycles shadowRevalidate = 60;///< Reactivating a retained shadow entry.
    Cycles tlbFlush = 100;       ///< Flushing a context's TLB.

    // Traps and world switches.
    Cycles vmExit = 400;         ///< One-way guest -> VMM transition.
    Cycles vmResume = 400;       ///< One-way VMM -> guest transition.
    Cycles syscallTrap = 150;    ///< Guest user -> guest kernel.
    Cycles syscallReturn = 150;  ///< Guest kernel -> guest user.
    Cycles interruptDeliver = 200;  ///< Delivering a (timer) interrupt.
    Cycles contextSwitch = 1200; ///< Kernel process switch.

    // Cloaking machinery.
    Cycles ctcSaveRestore = 600; ///< Save+scrub or restore registers.
    Cycles cloakFaultFixed = 500;   ///< Fixed cloak-fault handling cost.
    Cycles aesPerByte = 12;      ///< Software AES-128-CTR.
    Cycles shaPerByte = 10;      ///< Software SHA-256.
    Cycles metadataHit = 40;     ///< Protection-metadata cache hit.
    Cycles metadataMiss = 900;   ///< Metadata cache miss (fetch+verify).
    Cycles victimHitCopy = 1500; ///< Victim-cache hit: page compare+copy.

    // Devices.
    Cycles diskAccess = 300000;  ///< Fixed latency per disk I/O.
    Cycles diskPerByte = 2;      ///< Streaming disk bandwidth.

    // Kernel-internal work.
    Cycles pageZero = 600;       ///< Zero-filling a fresh frame.
    Cycles pageCopy = 800;       ///< Copying one page (fork, COW).
    Cycles kernelOp = 50;        ///< Generic kernel bookkeeping unit.
    Cycles batchDispatch = 40;   ///< Decoding+routing one ring descriptor.
};

/** Global cycle accumulator plus per-event statistics. */
class CostModel
{
  public:
    explicit CostModel(const CostParams& params = {});

    /** Charge raw cycles. */
    void charge(Cycles c) { cycles_ += c; }

    /** Charge cycles and count the named event once. */
    void charge(Cycles c, const std::string& event);

    /** Simulated time so far. */
    Cycles cycles() const { return cycles_; }

    /** Reset simulated time (stats are kept). */
    void resetCycles() { cycles_ = 0; }

    const CostParams& params() const { return params_; }
    CostParams& params() { return params_; }

    /**
     * Stable pointer to the cycle accumulator, for the tracer's clock
     * binding (reads only; valid for the model's lifetime).
     */
    const Cycles* cycleCounter() const { return &cycles_; }

    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

  private:
    CostParams params_;
    Cycles cycles_ = 0;
    StatGroup stats_;
};

} // namespace osh::sim

#endif // OSH_SIM_COST_MODEL_HH
