#include "sim/machine.hh"

namespace osh::sim
{

Machine::Machine(const MachineConfig& config)
    : config_(config), memory_(config.numFrames), cost_(config.costs),
      rng_(config.seed)
{
}

} // namespace osh::sim
