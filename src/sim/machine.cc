#include "sim/machine.hh"

namespace osh::sim
{

Machine::Machine(const MachineConfig& config)
    : config_(config), memory_(config.numFrames), cost_(config.costs),
      rng_(config.seed), tracer_(config.trace)
{
    tracer_.bindClock(cost_.cycleCounter());
}

} // namespace osh::sim
