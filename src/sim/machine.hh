/**
 * @file
 * The simulated machine: physical memory plus the cycle cost model.
 *
 * This is the bottom layer of the stack. The VMM owns a Machine; the
 * guest OS and applications only ever reach memory through the VMM's
 * translation machinery.
 */

#ifndef OSH_SIM_MACHINE_HH
#define OSH_SIM_MACHINE_HH

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/cost_model.hh"
#include "sim/memory.hh"
#include "trace/trace.hh"

#include <cstdint>

namespace osh::sim
{

/** Static configuration of a simulated machine. */
struct MachineConfig
{
    /** Machine memory size in 4 KiB frames (default 16 MiB). */
    std::uint64_t numFrames = 4096;

    /** Deterministic seed for all simulation randomness. */
    std::uint64_t seed = Rng::defaultSeed;

    /** Cycle cost parameters. */
    CostParams costs;

    /** Event tracing / metrics configuration. */
    trace::TraceConfig trace;
};

/** A simulated physical machine. */
class Machine
{
  public:
    explicit Machine(const MachineConfig& config = {});

    MachineMemory& memory() { return memory_; }
    const MachineMemory& memory() const { return memory_; }

    CostModel& cost() { return cost_; }
    const CostModel& cost() const { return cost_; }

    /** Machine-level RNG (IV generation etc.); deterministic. */
    Rng& rng() { return rng_; }

    /**
     * The machine-wide tracing handle. Always a valid object; whether
     * it records is controlled by MachineConfig::trace.enabled (and
     * the OSH_TRACE compile switch).
     */
    trace::Tracer& tracer() { return tracer_; }
    const trace::Tracer& tracer() const { return tracer_; }

    const MachineConfig& config() const { return config_; }

  private:
    MachineConfig config_;
    MachineMemory memory_;
    CostModel cost_;
    Rng rng_;
    trace::Tracer tracer_;
};

} // namespace osh::sim

#endif // OSH_SIM_MACHINE_HH
