#include "sim/cost_model.hh"

namespace osh::sim
{

CostModel::CostModel(const CostParams& params)
    : params_(params), stats_("cost")
{
}

void
CostModel::charge(Cycles c, const std::string& event)
{
    cycles_ += c;
    stats_.counter(event).inc();
}

} // namespace osh::sim
