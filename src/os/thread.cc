#include "os/thread.hh"

#include "base/logging.hh"

namespace osh::os
{

namespace
{

/** The unique_lock of the running host thread, for scheduler calls. */
thread_local std::unique_lock<std::mutex>* tlsHostLock = nullptr;

} // namespace

Scheduler::Scheduler(sim::CostModel& cost) : cost_(cost), stats_("sched")
{
}

void
Scheduler::configureCpus(std::size_t count)
{
    osh_assert(count > 0, "scheduler needs at least one CPU");
    osh_assert(started_ == 0,
               "configureCpus after threads were created");
    cpuCount_ = count;
    nextCpuSlot_ = 0;
}

void
Scheduler::assignCpu(Thread* t)
{
    // Single-core runs take the exact legacy path: no slot bookkeeping,
    // no extra stat keys, cpu stays 0.
    if (cpuCount_ <= 1)
        return;
    auto slot = static_cast<std::uint32_t>(nextCpuSlot_);
    nextCpuSlot_ = (nextCpuSlot_ + 1) % cpuCount_;
    stats_.counter("dispatches").inc();
    if (t->vcpu.cpu() != slot) {
        stats_.counter("cpu_migrations").inc();
        t->vcpu.setCpu(slot);
    }
}

Scheduler::~Scheduler()
{
    {
        std::unique_lock<std::mutex> lk(lock_);
        osh_assert(liveCount_ == 0,
                   "scheduler destroyed with %llu live threads",
                   static_cast<unsigned long long>(liveCount_));
    }
    for (auto& t : threads_) {
        if (t->host.joinable())
            t->host.join();
    }
}

Thread&
Scheduler::createThread(Pid pid, vmm::Vmm& vmm, const vmm::Context& ctx,
                        std::function<void(Thread&)> body)
{
    auto owned = std::make_unique<Thread>(pid, vmm, ctx);
    Thread* t = owned.get();
    t->body = std::move(body);
    t->state = Thread::State::Ready;
    threads_.push_back(std::move(owned));
    active_.push_back(t);
    readyQueue_.push_back(t);
    ++liveCount_;
    ++started_;
    stats_.counter("threads_created").inc();
    t->host = std::thread([this, t] { threadMain(t); });
    return *t;
}

void
Scheduler::threadMain(Thread* t)
{
    std::unique_lock<std::mutex> lk(lock_);
    tlsHostLock = &lk;
    while (t->state != Thread::State::Running)
        t->cv.wait(lk);
    current_ = t;

    t->body(*t);

    t->state = Thread::State::Zombie;
    --liveCount_;
    switchFrom(t, lk, /*exiting=*/true);
    tlsHostLock = nullptr;
}

void
Scheduler::switchFrom(Thread* cur, std::unique_lock<std::mutex>& lk,
                      bool exiting)
{
    if (!readyQueue_.empty()) {
        Thread* next = readyQueue_.front();
        readyQueue_.pop_front();
        next->state = Thread::State::Running;
        current_ = next;
        if (next != cur) {
            cost_.charge(cost_.params().contextSwitch, "context_switch");
            assignCpu(next);
            if (switchHook_)
                switchHook_(*next);
            next->cv.notify_all();
        }
    } else {
        current_ = nullptr;
        if (liveCount_ == 0) {
            driverCv_.notify_all();
        } else {
            // No runnable thread, yet live threads remain: everything
            // else is blocked. If the caller is also going away (exit)
            // or blocking, the guest has deadlocked — unless threads
            // are frozen for a checkpoint, in which case control goes
            // back to the driver (the quiesced state it asked for).
            bool caller_runnable =
                !exiting && cur->state == Thread::State::Running;
            if (!caller_runnable) {
                if (frozenCount_ > 0) {
                    paused_ = true;
                    driverCv_.notify_all();
                } else {
                    osh_panic("guest deadlock: %llu live threads, "
                              "none runnable",
                              static_cast<unsigned long long>(
                                  liveCount_));
                }
            } else {
                // Caller yielded with nobody else to run: keep going.
                cur->state = Thread::State::Running;
                current_ = cur;
                return;
            }
        }
    }
    if (exiting)
        return;
    while (cur->state != Thread::State::Running)
        cur->cv.wait(lk);
    current_ = cur;
}

void
Scheduler::yield()
{
    Thread* cur = current_;
    osh_assert(cur != nullptr && tlsHostLock != nullptr,
               "yield outside guest context");
    if (readyQueue_.empty())
        return;
    cur->state = Thread::State::Ready;
    readyQueue_.push_back(cur);
    stats_.counter("yields").inc();
    switchFrom(cur, *tlsHostLock, false);
}

void
Scheduler::preempt()
{
    Thread* cur = current_;
    osh_assert(cur != nullptr && tlsHostLock != nullptr,
               "preempt outside guest context");
    if (readyQueue_.empty())
        return;
    cost_.charge(cost_.params().interruptDeliver, "timer_interrupt");
    cur->state = Thread::State::Ready;
    readyQueue_.push_back(cur);
    stats_.counter("preemptions").inc();
    switchFrom(cur, *tlsHostLock, false);
}

void
Scheduler::block(const void* channel)
{
    Thread* cur = current_;
    osh_assert(cur != nullptr && tlsHostLock != nullptr,
               "block outside guest context");
    cur->state = Thread::State::Blocked;
    cur->waitChannel = channel;
    stats_.counter("blocks").inc();
    switchFrom(cur, *tlsHostLock, false);
    cur->waitChannel = nullptr;
}

void
Scheduler::wakeAll(const void* channel)
{
    std::size_t out = 0;
    for (Thread* t : active_) {
        if (t->state == Thread::State::Zombie)
            continue; // Compact finished threads out of the scan set.
        if (t->state == Thread::State::Blocked &&
            t->waitChannel == channel) {
            t->state = Thread::State::Ready;
            t->waitChannel = nullptr;
            readyQueue_.push_back(t);
            stats_.counter("wakeups").inc();
        }
        active_[out++] = t;
    }
    active_.resize(out);
}

void
Scheduler::freezeCurrent()
{
    Thread* cur = current_;
    osh_assert(cur != nullptr && tlsHostLock != nullptr,
               "freeze outside guest context");
    cur->state = Thread::State::Blocked;
    cur->waitChannel = &frozenChannel_;
    ++frozenCount_;
    stats_.counter("freezes").inc();
    switchFrom(cur, *tlsHostLock, false);
    cur->waitChannel = nullptr;
}

bool
Scheduler::isFrozen(const Thread& t) const
{
    return t.state == Thread::State::Blocked &&
           t.waitChannel == &frozenChannel_;
}

void
Scheduler::resumeFrozen(Thread& t)
{
    std::unique_lock<std::mutex> lk(lock_);
    osh_assert(current_ == nullptr,
               "resumeFrozen while a guest thread is running");
    osh_assert(isFrozen(t), "resumeFrozen of a thread that is not frozen");
    osh_assert(frozenCount_ > 0, "frozen count underflow");
    t.state = Thread::State::Ready;
    t.waitChannel = nullptr;
    --frozenCount_;
    readyQueue_.push_back(&t);
    stats_.counter("thaws").inc();
}

std::size_t
Scheduler::reapFinished()
{
    {
        std::unique_lock<std::mutex> lk(lock_);
        osh_assert(current_ == nullptr,
                   "reapFinished while a guest thread is running");
    }
    std::size_t n = 0;
    for (auto& t : threads_) {
        if (t->state == Thread::State::Zombie && t->host.joinable()) {
            t->host.join();
            ++n;
        }
    }
    return n;
}

std::size_t
Scheduler::joinableFinishedThreads() const
{
    std::size_t n = 0;
    for (const auto& t : threads_) {
        if (t->state == Thread::State::Zombie && t->host.joinable())
            ++n;
    }
    return n;
}

std::uint64_t
Scheduler::run()
{
    std::unique_lock<std::mutex> lk(lock_);
    if (liveCount_ == 0)
        return started_;
    osh_assert(current_ == nullptr, "run() while a thread is running");
    if (readyQueue_.empty()) {
        // Every live thread is frozen (or blocked behind one): the
        // machine stays quiesced; nothing to run.
        osh_assert(frozenCount_ > 0, "live threads but none ready");
        return started_;
    }

    Thread* next = readyQueue_.front();
    readyQueue_.pop_front();
    next->state = Thread::State::Running;
    current_ = next;
    assignCpu(next);
    next->cv.notify_all();

    driverCv_.wait(lk, [this] { return liveCount_ == 0 || paused_; });
    paused_ = false;
    current_ = nullptr;
    return started_;
}

} // namespace osh::os

namespace osh::os
{

void
Scheduler::wakeThread(Thread& t)
{
    if (t.state == Thread::State::Blocked) {
        t.state = Thread::State::Ready;
        t.waitChannel = nullptr;
        readyQueue_.push_back(&t);
        stats_.counter("wakeups").inc();
    }
}

} // namespace osh::os
