/**
 * @file
 * In-memory filesystem (ramfs): naming, inodes and the page cache maps.
 *
 * The design mirrors a commodity kernel's split between the VFS layer
 * and the page cache. An inode's *persistent* contents live in its
 * diskData vector (the simulated disk); reads and writes go through
 * page-cache frames in guest physical memory. For cloaked files the
 * page-cache frames hold plaintext only in the owning application's
 * view; the moment the kernel copies a page (read()/write()/writeback),
 * it sees ciphertext — so diskData naturally stores ciphertext for
 * cloaked files.
 *
 * Path rules: absolute ("/a/b"), no ".", "..", or symlinks.
 *
 * This header holds the data structures and naming logic only; the
 * Kernel drives page-cache population/writeback because those copies
 * must run through the current thread's kernel-view Vcpu.
 */

#ifndef OSH_OS_VFS_HH
#define OSH_OS_VFS_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "os/syscalls.hh"
#include "trace/trace.hh"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace osh::os
{

using InodeId = std::uint64_t;

enum class InodeType : std::uint8_t { File, Directory };

/** One cached page of a file. */
struct PageCacheEntry
{
    Gpa gpa = badAddr;
    bool dirty = false;
    /** Number of guest PTEs currently mapping this page (mmap). */
    std::uint32_t mapCount = 0;
};

/** An inode: regular file or directory. */
struct Inode
{
    InodeId id = 0;
    InodeType type = InodeType::File;

    // Regular files.
    std::uint64_t size = 0;
    std::vector<std::uint8_t> diskData;       ///< Persistent contents.
    std::map<std::uint64_t, PageCacheEntry> cache;  ///< pageIdx -> frame.

    // Directories.
    std::map<std::string, InodeId> entries;

    std::uint32_t nlink = 0;     ///< Directory references.
    std::uint32_t openCount = 0; ///< Live file descriptors.

    bool isDir() const { return type == InodeType::Directory; }
};

/** Naming layer plus inode table. */
class Vfs
{
  public:
    Vfs();

    /** Root directory inode id. */
    InodeId root() const { return rootId_; }

    Inode& inode(InodeId id);
    const Inode& inode(InodeId id) const;
    bool exists(InodeId id) const;

    /** Resolve an absolute path; negative Err on failure. */
    std::int64_t lookup(const std::string& path) const;

    /**
     * Create a file or directory at an absolute path. Fails if it
     * exists or the parent is missing. Returns the new inode id.
     */
    std::int64_t create(const std::string& path, InodeType type);

    /**
     * Unlink a file (directories must be empty). The inode survives
     * while file descriptors reference it. Returns 0 or negative Err.
     */
    std::int64_t unlink(const std::string& path);

    /** Rename (same-filesystem move). Returns 0 or negative Err. */
    std::int64_t rename(const std::string& from, const std::string& to);

    /**
     * Name of the index-th entry of a directory; errNoEnt when past the
     * end. Used by the ReadDir syscall.
     */
    std::int64_t dirEntry(InodeId dir, std::uint64_t index,
                          std::string& name_out) const;

    /**
     * Drop an inode if it is fully unreferenced (no links, no open
     * descriptors). Returns the page-cache entries that must be freed
     * by the caller (the kernel owns frame accounting).
     */
    std::vector<PageCacheEntry> reapIfUnreferenced(InodeId id);

    /**
     * Ids of every live inode, in id order. The attack campaign's leak
     * oracle walks these to scan all kernel-visible file bytes.
     */
    std::vector<InodeId> inodeIds() const;

    StatGroup& stats() { return stats_; }

    /** Attach the machine tracer (the owning kernel wires this). */
    void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

  private:
    struct PathParts
    {
        InodeId parent;
        std::string leaf;
    };

    /** Split a path into (existing parent dir, leaf name). */
    std::int64_t resolveParent(const std::string& path,
                               PathParts& out) const;

    static std::vector<std::string> splitPath(const std::string& path);

    std::map<InodeId, std::unique_ptr<Inode>> inodes_;
    trace::Tracer* tracer_ = nullptr;
    InodeId rootId_;
    InodeId nextId_ = 1;
    StatGroup stats_;
};

} // namespace osh::os

#endif // OSH_OS_VFS_HH
