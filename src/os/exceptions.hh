/**
 * @file
 * Control-flow exceptions used to unwind guest threads.
 *
 * Guest programs are host C++ functions, so process exit and exec are
 * modelled as exceptions that unwind to the thread body installed by
 * the system layer. (vmm::ProcessKilled plays the same role for
 * involuntary termination.)
 */

#ifndef OSH_OS_EXCEPTIONS_HH
#define OSH_OS_EXCEPTIONS_HH

#include "base/types.hh"

#include <string>
#include <vector>

namespace osh::os
{

/** Thrown by sys_exit to unwind the calling guest thread. */
struct ThreadExit
{
    int status;
};

/**
 * Thrown by the Env exec wrapper after the kernel prepared a new
 * program image; the thread body catches it and enters the new
 * program's main.
 */
struct ExecRequested
{
    std::string program;
    std::vector<std::string> argv;
};

} // namespace osh::os

#endif // OSH_OS_EXCEPTIONS_HH
