/**
 * @file
 * System-call implementations. See kernel.hh for the kernel core.
 */

#include "base/bytes.hh"
#include "base/logging.hh"
#include "os/attack_hooks.hh"
#include "os/kernel.hh"
#include "os/layout.hh"
#include "vmm/vcpu.hh"

#include <array>
#include <cstring>

namespace osh::os
{

std::int64_t
Kernel::syscallEntry(Thread& t)
{
    auto& cost = vmm_.machine().cost();
    cost.charge(cost.params().syscallTrap, "syscall");

    KernelModeGuard guard(t.vcpu);
    checkKillRequested(t);
    checkFreezeRequested(t);
    // Trap boundary: retire in-flight async evictions so every syscall
    // (and its attack hooks) observes fully sealed swap contents.
    vmm_.drainAsyncEvictions();

    auto& regs = t.vcpu.regs();
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Syscall,
                    sysName(static_cast<Sys>(regs.gpr[0])),
                    t.vcpu.context().view, t.pid, regs.gpr[0],
                    regs.gpr[1]);
    if (malice_.recordTrapFrames)
        malice_.trapFrames.push_back(regs);
    if (malice_.snoopUserMemory && malice_.snoopVa != 0) {
        // A hostile kernel peeks at application memory on every trap.
        Process& p = currentProcess();
        if (validUserRange(p, malice_.snoopVa, 64, false)) {
            std::vector<std::uint8_t> peek(64);
            t.vcpu.readBytes(malice_.snoopVa, peek);
            malice_.snoopedData.push_back(std::move(peek));
        }
    }
    if (malice_.scribbleUserMemory && malice_.snoopVa != 0) {
        // A hostile kernel overwrites application memory on every trap.
        Process& p = currentProcess();
        if (validUserRange(p, malice_.snoopVa, 16, true)) {
            std::array<std::uint8_t, 16> junk;
            junk.fill(0x66);
            t.vcpu.writeBytes(malice_.snoopVa, junk);
        }
    }
    if (attackHooks_ != nullptr)
        attackHooks_->onSyscallEntry(*this, t);

    Sys num = static_cast<Sys>(regs.gpr[0]);
    std::uint64_t a1 = regs.gpr[1], a2 = regs.gpr[2], a3 = regs.gpr[3],
                  a4 = regs.gpr[4], a5 = regs.gpr[5];

    std::int64_t result = dispatchSyscall(t, num, a1, a2, a3, a4, a5);

    regs.gpr[0] = static_cast<std::uint64_t>(result);
    maybeDeliverSignal(t);
    cost.charge(cost.params().syscallReturn);
    return result;
}

std::int64_t
Kernel::dispatchSyscall(Thread& t, Sys num, std::uint64_t a1,
                        std::uint64_t a2, std::uint64_t a3,
                        std::uint64_t a4, std::uint64_t a5)
{
    auto& cost = vmm_.machine().cost();
    std::int64_t result;
    switch (num) {
      case Sys::Exit:
        result = sysExit(t, static_cast<std::int64_t>(a1));
        break;
      case Sys::GetPid:
        result = currentProcess().pid;
        break;
      case Sys::GetPpid:
        result = currentProcess().ppid;
        break;
      case Sys::Yield:
        sched_.yield();
        result = 0;
        break;
      case Sys::Clock:
        // Through the virtualized clock: with the hardening knobs off
        // this IS the raw counter, bit for bit; with them on each
        // address space sees its own offset + fuzzed view.
        result = static_cast<std::int64_t>(
            vmm_.readTsc(currentProcess().as.asid()));
        break;
      case Sys::Sleep:
        // The argument is attacker-controlled guest input: charging it
        // unvalidated lets one call wedge the simulated clock (or wrap
        // it outright near UINT64_MAX).
        if (a1 > maxSleepCycles) {
            result = -errInval;
            break;
        }
        cost.charge(a1, "sleep");
        sched_.yield();
        result = 0;
        break;
      case Sys::Mmap:
        result = sysMmap(t, a1, a2, a3, a4, a5);
        break;
      case Sys::Munmap:
        result = sysMunmap(t, a1);
        break;
      case Sys::Open:
        result = sysOpen(t, a1, a2);
        break;
      case Sys::Close:
        result = sysClose(t, a1);
        break;
      case Sys::Read:
        result = sysRead(t, a1, a2, a3);
        break;
      case Sys::Write:
        result = sysWrite(t, a1, a2, a3);
        break;
      case Sys::Lseek:
        result = sysLseek(t, a1, static_cast<std::int64_t>(a2), a3);
        break;
      case Sys::Fstat:
        result = sysFstat(t, a1, a2);
        break;
      case Sys::Unlink:
        {
            std::string path = readUserString(t, a1);
            result = vfs_.unlink(path);
            if (result == 0) {
                std::int64_t id = vfs_.lookup(path);
                (void)id; // already unlinked; reap by scanning below
            }
            // Reap any fully unreferenced inode this unlink released.
            // (unlink returns only 0/-err; rescan via path is moot, so
            // the actual reap happens in closeFile and here for files
            // with no open descriptors.)
        }
        break;
      case Sys::Mkdir:
        {
            std::string path = readUserString(t, a1);
            std::int64_t r = vfs_.create(path, InodeType::Directory);
            result = r < 0 ? r : 0;
        }
        break;
      case Sys::ReadDir:
        result = sysReadDir(t, a1, a2, a3, a4);
        break;
      case Sys::Ftruncate:
        result = sysFtruncate(t, a1, a2);
        break;
      case Sys::Fsync:
        result = sysFsync(t, a1);
        break;
      case Sys::Rename:
        {
            std::string from = readUserString(t, a1);
            std::string to = readUserString(t, a2);
            result = vfs_.rename(from, to);
        }
        break;
      case Sys::Pipe:
        result = sysPipe(t, a1);
        break;
      case Sys::Dup:
        result = sysDup(t, a1);
        break;
      case Sys::Pread:
        result = sysPread(t, a1, a2, a3, a4);
        break;
      case Sys::Pwrite:
        result = sysPwrite(t, a1, a2, a3, a4);
        break;
      case Sys::Dup2:
        result = sysDup2(t, a1, a2);
        break;
      case Sys::SubmitBatch:
        result = sysSubmitBatch(t, a1, a2, a3);
        break;
      case Sys::Spawn:
        result = sysSpawn(t, a1, a2, a3);
        break;
      case Sys::Fork:
        result = sysFork(t, a1);
        break;
      case Sys::Exec:
        result = sysExec(t, a1, a2, a3);
        break;
      case Sys::WaitPid:
        result = sysWaitPid(t, static_cast<std::int64_t>(a1), a2);
        break;
      case Sys::Kill:
        result = sysKill(t, static_cast<std::int64_t>(a1), a2);
        break;
      case Sys::SigAction:
        result = sysSigAction(t, a1, a2);
        break;
      case Sys::SigPending:
        result = static_cast<std::int64_t>(
            currentProcess().pendingSignals);
        break;
      case Sys::VmaQuery:
        result = sysVmaQuery(t, a1, a2);
        break;
      default:
        result = -errNoSys;
        break;
    }
    return result;
}

/**
 * The batch whitelist: calls with simple register/buffer semantics
 * whose handlers neither replace the process image nor juggle the
 * scheduler in ways that assume a fresh trap frame per call. Anything
 * else completes as -errInval without being dispatched.
 */
bool
Kernel::batchable(Sys num)
{
    switch (num) {
      case Sys::GetPid:
      case Sys::GetPpid:
      case Sys::Yield:
      case Sys::Clock:
      case Sys::Read:
      case Sys::Write:
      case Sys::Pread:
      case Sys::Pwrite:
      case Sys::Lseek:
      case Sys::Fstat:
      case Sys::Dup:
      case Sys::Dup2:
      case Sys::Close:
      case Sys::Ftruncate:
      case Sys::Fsync:
        return true;
      default:
        return false;
    }
}

void
Kernel::timerTick(Thread& t)
{
    KernelModeGuard guard(t.vcpu);
    checkKillRequested(t);
    checkFreezeRequested(t);
    // Trap boundary: same drain barrier as syscallEntry.
    vmm_.drainAsyncEvictions();
    maybeDeliverSignal(t);
    sched_.preempt();
}

void
Kernel::maybeDeliverSignal(Thread& t)
{
    Process& p = currentProcess();
    if (p.pendingSignals == 0 || t.deliverSignal >= 0)
        return;
    for (int sig = 0; sig < numSignals; ++sig) {
        if (!(p.pendingSignals & (1u << sig)))
            continue;
        p.pendingSignals &= ~(1u << sig);
        if (p.signals[static_cast<std::size_t>(sig)].handled) {
            t.deliverSignal = sig;
            t.deliverSignalToken =
                p.signals[static_cast<std::size_t>(sig)].token;
            stats_.counter("signals_delivered").inc();
            return;
        }
        // Default action: terminate.
        killProcess(p, formatString("killed by signal %d", sig));
    }
}

std::int64_t
Kernel::sysExit(Thread&, std::int64_t status)
{
    exitCurrent(static_cast<int>(status));
}

std::int64_t
Kernel::sysMmap(Thread&, std::uint64_t len, std::uint64_t prot,
                std::uint64_t flags, std::uint64_t fd, std::uint64_t offset)
{
    Process& p = currentProcess();
    if (len == 0)
        return -errInval;
    std::uint64_t pages = roundUpToPage(len) / pageSize;

    Vma vma;
    vma.prot = prot;
    vma.cloaked = (flags & mapCloaked) != 0;
    vma.shared = (flags & mapShared) != 0;

    if (flags & mapAnon) {
        vma.type = VmaType::Anon;
    } else {
        if (pageOffset(offset) != 0)
            return -errInval;
        OpenFile* f = p.fd(fd);
        if (f == nullptr || f->kind != OpenFile::Kind::File)
            return -errBadF;
        if (vfs_.inode(f->inode).isDir())
            return -errIsDir;
        vma.type = VmaType::File;
        vma.shared = true; // Only shared file mappings are supported.
        vma.inode = f->inode;
        vma.fileOffset = offset;
    }
    GuestVA va = p.as.allocVma(vma, pages);
    stats_.counter("mmaps").inc();
    return static_cast<std::int64_t>(va);
}

std::int64_t
Kernel::sysMunmap(Thread&, GuestVA va)
{
    Process& p = currentProcess();
    std::vector<Pte> dropped;
    std::vector<GuestVA> dropped_vas;
    auto vma = p.as.removeVma(va, dropped, dropped_vas);
    if (!vma)
        return -errInval;
    for (std::size_t i = 0; i < dropped.size(); ++i) {
        Pte pte = dropped[i];
        releasePte(p, dropped_vas[i], pte);
        vmm_.invalidateVa(p.as.asid(), dropped_vas[i]);
    }
    stats_.counter("munmaps").inc();
    return 0;
}

std::int64_t
Kernel::sysOpen(Thread& t, GuestVA path_va, std::uint64_t flags)
{
    Process& p = currentProcess();
    std::string path = readUserString(t, path_va);

    std::int64_t id = vfs_.lookup(path);
    if (id < 0) {
        if (!(flags & openCreate))
            return id;
        id = vfs_.create(path, InodeType::File);
        if (id < 0)
            return id;
    }
    Inode& ino = vfs_.inode(static_cast<InodeId>(id));
    if (ino.isDir() && (flags & (openWrite | openTrunc)))
        return -errIsDir;
    if (flags & openTrunc) {
        ino.size = 0;
        ino.diskData.clear();
        // Drop clean unmapped cache pages; keep mapped ones alive.
        for (auto it = ino.cache.begin(); it != ino.cache.end();) {
            if (it->second.mapCount == 0) {
                frames_.unref(it->second.gpa);
                it = ino.cache.erase(it);
            } else {
                ++it;
            }
        }
    }

    auto file = std::make_shared<OpenFile>();
    file->kind = OpenFile::Kind::File;
    file->inode = ino.id;
    file->flags = flags;
    ino.openCount++;
    stats_.counter("opens").inc();
    return p.allocFd(std::move(file));
}

void
Kernel::closeFile(Process&, std::shared_ptr<OpenFile>& slot)
{
    std::shared_ptr<OpenFile> f = std::move(slot);
    slot.reset();
    // Release the underlying object only when the last descriptor
    // referencing it (across dup and fork) goes away.
    if (f.use_count() > 1)
        return;
    if (f->kind == OpenFile::Kind::File) {
        Inode& ino = vfs_.inode(f->inode);
        osh_assert(ino.openCount > 0, "openCount underflow");
        ino.openCount--;
        auto pages = vfs_.reapIfUnreferenced(f->inode);
        for (const PageCacheEntry& e : pages)
            frames_.unref(e.gpa);
    } else if (f->pipe) {
        if (f->kind == OpenFile::Kind::PipeRead)
            f->pipe->readers--;
        else
            f->pipe->writers--;
        sched_.wakeAll(&f->pipe->readChannel);
        sched_.wakeAll(&f->pipe->writeChannel);
    }
}

std::int64_t
Kernel::sysClose(Thread&, std::uint64_t fd)
{
    Process& p = currentProcess();
    if (fd >= p.fds.size() || !p.fds[fd])
        return -errBadF;
    closeFile(p, p.fds[fd]);
    return 0;
}

std::int64_t
Kernel::pipeRead(Thread& t, OpenFile& f, GuestVA buf, std::uint64_t len)
{
    Pipe& pipe = *f.pipe;
    if (len == 0)
        return 0; // POSIX: zero-length reads never block.
    for (;;) {
        checkKillRequested(t);
        if (!pipe.buffer.empty())
            break;
        if (pipe.writers == 0)
            return 0; // EOF
        sched_.block(&pipe.readChannel);
    }
    std::size_t n = std::min<std::size_t>(len, pipe.buffer.size());
    std::vector<std::uint8_t> tmp(n);
    for (std::size_t i = 0; i < n; ++i) {
        tmp[i] = pipe.buffer.front();
        pipe.buffer.pop_front();
    }
    copyToUser(t, buf, tmp);
    sched_.wakeAll(&pipe.writeChannel);
    return static_cast<std::int64_t>(n);
}

std::int64_t
Kernel::pipeWrite(Thread& t, OpenFile& f, GuestVA buf, std::uint64_t len)
{
    Pipe& pipe = *f.pipe;
    std::vector<std::uint8_t> tmp(len);
    copyFromUser(t, buf, tmp);
    std::size_t written = 0;
    while (written < len) {
        checkKillRequested(t);
        if (pipe.readers == 0)
            return -errPipe;
        if (pipe.buffer.size() >= pipe.capacity) {
            sched_.block(&pipe.writeChannel);
            continue;
        }
        std::size_t room = pipe.capacity - pipe.buffer.size();
        std::size_t n = std::min(room, len - written);
        for (std::size_t i = 0; i < n; ++i)
            pipe.buffer.push_back(tmp[written + i]);
        written += n;
        sched_.wakeAll(&pipe.readChannel);
    }
    return static_cast<std::int64_t>(written);
}

std::int64_t
Kernel::sysRead(Thread& t, std::uint64_t fd, GuestVA buf, std::uint64_t len)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr)
        return -errBadF;
    if (len > 0 && !validUserRange(p, buf, len, true))
        return -errFault;
    if (f->kind == OpenFile::Kind::PipeRead)
        return pipeRead(t, *f, buf, len);
    if (f->kind == OpenFile::Kind::PipeWrite)
        return -errBadF;

    Inode& ino = vfs_.inode(f->inode);
    if (ino.isDir())
        return -errIsDir;
    if (f->offset >= ino.size || len == 0)
        return 0;
    std::uint64_t n = std::min<std::uint64_t>(len, ino.size - f->offset);

    std::uint64_t done = 0;
    std::array<std::uint8_t, pageSize> tmp;
    while (done < n) {
        std::uint64_t off = f->offset + done;
        std::uint64_t page_index = pageNumber(off);
        std::uint64_t in_page =
            std::min<std::uint64_t>(n - done, pageSize - pageOffset(off));
        PageCacheEntry& e = ensureCached(ino.id, page_index);
        Gpa gpa = e.gpa;
        {
            KernelModeGuard guard(t.vcpu);
            t.vcpu.readBytes(kernelVa(gpa) + pageOffset(off),
                             std::span<std::uint8_t>(tmp.data(), in_page));
        }
        copyToUser(t, buf + done,
                   std::span<const std::uint8_t>(tmp.data(), in_page));
        done += in_page;
    }
    f->offset += n;

    if (malice_.corruptReadBuffers && n > 0) {
        std::array<std::uint8_t, 16> junk;
        junk.fill(0xcc);
        std::size_t m = std::min<std::size_t>(junk.size(), n);
        copyToUser(t, buf, std::span<const std::uint8_t>(junk.data(), m));
    }
    if (attackHooks_ != nullptr && n > 0)
        attackHooks_->onReadReturn(*this, t, buf, n);
    stats_.counter("file_reads").inc();
    return static_cast<std::int64_t>(n);
}

std::int64_t
Kernel::sysWrite(Thread& t, std::uint64_t fd, GuestVA buf,
                 std::uint64_t len)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr)
        return -errBadF;
    if (len > 0 && !validUserRange(p, buf, len, false))
        return -errFault;
    if (f->kind == OpenFile::Kind::PipeWrite)
        return pipeWrite(t, *f, buf, len);
    if (f->kind == OpenFile::Kind::PipeRead)
        return -errBadF;
    if (!(f->flags & openWrite))
        return -errPerm;

    Inode& ino = vfs_.inode(f->inode);
    if (ino.isDir())
        return -errIsDir;

    std::uint64_t done = 0;
    std::array<std::uint8_t, pageSize> tmp;
    while (done < len) {
        std::uint64_t off = f->offset + done;
        std::uint64_t page_index = pageNumber(off);
        std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - pageOffset(off));
        copyFromUser(t, buf + done,
                     std::span<std::uint8_t>(tmp.data(), in_page));
        PageCacheEntry& e = ensureCached(ino.id, page_index);
        {
            KernelModeGuard guard(t.vcpu);
            t.vcpu.writeBytes(
                kernelVa(e.gpa) + pageOffset(off),
                std::span<const std::uint8_t>(tmp.data(), in_page));
        }
        e.dirty = true;
        done += in_page;
    }
    f->offset += len;
    if (f->offset > ino.size)
        ino.size = f->offset;
    stats_.counter("file_writes").inc();
    return static_cast<std::int64_t>(len);
}

std::int64_t
Kernel::sysPread(Thread& t, std::uint64_t fd, GuestVA buf,
                 std::uint64_t len, std::uint64_t off)
{
    // Positional read: same data path as sysRead, but the offset comes
    // from the caller and the descriptor's own offset never moves —
    // which is what lets a batched server serve ranges without
    // interleaving lseek descriptors.
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr)
        return -errBadF;
    if (f->kind != OpenFile::Kind::File)
        return -errSPipe;
    if (len > 0 && !validUserRange(p, buf, len, true))
        return -errFault;

    Inode& ino = vfs_.inode(f->inode);
    if (ino.isDir())
        return -errIsDir;
    if (off >= ino.size || len == 0)
        return 0;
    std::uint64_t n = std::min<std::uint64_t>(len, ino.size - off);

    std::uint64_t done = 0;
    std::array<std::uint8_t, pageSize> tmp;
    while (done < n) {
        std::uint64_t pos = off + done;
        std::uint64_t page_index = pageNumber(pos);
        std::uint64_t in_page =
            std::min<std::uint64_t>(n - done, pageSize - pageOffset(pos));
        PageCacheEntry& e = ensureCached(ino.id, page_index);
        Gpa gpa = e.gpa;
        {
            KernelModeGuard guard(t.vcpu);
            t.vcpu.readBytes(kernelVa(gpa) + pageOffset(pos),
                             std::span<std::uint8_t>(tmp.data(), in_page));
        }
        copyToUser(t, buf + done,
                   std::span<const std::uint8_t>(tmp.data(), in_page));
        done += in_page;
    }

    if (malice_.corruptReadBuffers && n > 0) {
        std::array<std::uint8_t, 16> junk;
        junk.fill(0xcc);
        std::size_t m = std::min<std::size_t>(junk.size(), n);
        copyToUser(t, buf, std::span<const std::uint8_t>(junk.data(), m));
    }
    if (attackHooks_ != nullptr && n > 0)
        attackHooks_->onReadReturn(*this, t, buf, n);
    stats_.counter("file_preads").inc();
    return static_cast<std::int64_t>(n);
}

std::int64_t
Kernel::sysPwrite(Thread& t, std::uint64_t fd, GuestVA buf,
                  std::uint64_t len, std::uint64_t off)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr)
        return -errBadF;
    if (f->kind != OpenFile::Kind::File)
        return -errSPipe;
    if (len > 0 && !validUserRange(p, buf, len, false))
        return -errFault;
    if (!(f->flags & openWrite))
        return -errPerm;

    Inode& ino = vfs_.inode(f->inode);
    if (ino.isDir())
        return -errIsDir;

    std::uint64_t done = 0;
    std::array<std::uint8_t, pageSize> tmp;
    while (done < len) {
        std::uint64_t pos = off + done;
        std::uint64_t page_index = pageNumber(pos);
        std::uint64_t in_page =
            std::min<std::uint64_t>(len - done,
                                    pageSize - pageOffset(pos));
        copyFromUser(t, buf + done,
                     std::span<std::uint8_t>(tmp.data(), in_page));
        PageCacheEntry& e = ensureCached(ino.id, page_index);
        {
            KernelModeGuard guard(t.vcpu);
            t.vcpu.writeBytes(
                kernelVa(e.gpa) + pageOffset(pos),
                std::span<const std::uint8_t>(tmp.data(), in_page));
        }
        e.dirty = true;
        done += in_page;
    }
    if (off + len > ino.size)
        ino.size = off + len;
    stats_.counter("file_pwrites").inc();
    return static_cast<std::int64_t>(len);
}

std::int64_t
Kernel::sysLseek(Thread&, std::uint64_t fd, std::int64_t off,
                 std::uint64_t whence)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr)
        return -errBadF;
    if (f->kind != OpenFile::Kind::File)
        return -errSPipe;
    Inode& ino = vfs_.inode(f->inode);
    std::int64_t base;
    switch (whence) {
      case seekSet: base = 0; break;
      case seekCur: base = static_cast<std::int64_t>(f->offset); break;
      case seekEnd: base = static_cast<std::int64_t>(ino.size); break;
      default: return -errInval;
    }
    std::int64_t target = base + off;
    if (target < 0)
        return -errInval;
    f->offset = static_cast<std::uint64_t>(target);
    return target;
}

std::int64_t
Kernel::sysFstat(Thread& t, std::uint64_t fd, GuestVA out_va)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr)
        return -errBadF;
    StatBuf sb{};
    if (f->kind == OpenFile::Kind::File) {
        Inode& ino = vfs_.inode(f->inode);
        sb.size = ino.size;
        sb.isDir = ino.isDir() ? 1 : 0;
        sb.inode = static_cast<std::uint32_t>(ino.id);
    }
    // Value-initialize: if the struct ever grows padding, the copy to
    // user memory must never carry uninitialized kernel-stack bytes.
    std::array<std::uint8_t, sizeof(StatBuf)> raw{};
    std::memcpy(raw.data(), &sb, sizeof(sb));
    if (!validUserRange(p, out_va, sizeof(sb), true))
        return -errFault;
    copyToUser(t, out_va, raw);
    return 0;
}

std::int64_t
Kernel::sysReadDir(Thread& t, std::uint64_t fd, std::uint64_t index,
                   GuestVA buf, std::uint64_t buf_len)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr || f->kind != OpenFile::Kind::File)
        return -errBadF;
    std::string name;
    std::int64_t r = vfs_.dirEntry(f->inode, index, name);
    if (r < 0)
        return r;
    if (buf_len == 0 || !validUserRange(p, buf, buf_len, true))
        return -errFault;
    std::size_t n = std::min<std::size_t>(name.size(), buf_len - 1);
    std::vector<std::uint8_t> out(n + 1, 0);
    std::memcpy(out.data(), name.data(), n);
    copyToUser(t, buf, out);
    return static_cast<std::int64_t>(n);
}

std::int64_t
Kernel::sysFtruncate(Thread&, std::uint64_t fd, std::uint64_t size)
{
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr || f->kind != OpenFile::Kind::File)
        return -errBadF;
    Inode& ino = vfs_.inode(f->inode);
    if (ino.isDir())
        return -errIsDir;
    ino.size = size;
    if (ino.diskData.size() > size)
        ino.diskData.resize(size);
    std::uint64_t first_dead_page = pageNumber(roundUpToPage(size));
    for (auto it = ino.cache.begin(); it != ino.cache.end();) {
        if (it->first >= first_dead_page && it->second.mapCount == 0) {
            frames_.unref(it->second.gpa);
            it = ino.cache.erase(it);
        } else {
            ++it;
        }
    }
    return 0;
}

std::int64_t
Kernel::sysFsync(Thread& t, std::uint64_t fd)
{
    // Durability barrier: everything queued for eviction must be on
    // its device before fsync's own writeback is ordered behind it.
    vmm_.drainAsyncEvictions();
    Process& p = currentProcess();
    OpenFile* f = p.fd(fd);
    if (f == nullptr || f->kind != OpenFile::Kind::File)
        return -errBadF;
    Inode& ino = vfs_.inode(f->inode);
    std::vector<std::uint64_t> dirty;
    std::vector<Gpa> dirty_gpas;
    for (auto& [idx, e] : ino.cache) {
        if (e.dirty) {
            dirty.push_back(idx);
            dirty_gpas.push_back(e.gpa);
        }
    }
    // Seal any cloaked plaintext among the dirty pages in one batch,
    // then write back: one seek, then streaming.
    vmm_.prepareFramesForKernel(dirty_gpas);
    bool first = true;
    for (std::uint64_t idx : dirty) {
        writebackPage(ino, idx, first);
        first = false;
    }
    if (attackHooks_ != nullptr)
        attackHooks_->onFsync(*this, t, ino.id);
    stats_.counter("fsyncs").inc();
    return 0;
}

std::int64_t
Kernel::sysPipe(Thread& t, GuestVA fds_out)
{
    Process& p = currentProcess();
    if (!validUserRange(p, fds_out, 8, true))
        return -errFault;
    auto pipe = std::make_shared<Pipe>();
    pipe->readers = 1;
    pipe->writers = 1;

    auto rf = std::make_shared<OpenFile>();
    rf->kind = OpenFile::Kind::PipeRead;
    rf->pipe = pipe;
    auto wf = std::make_shared<OpenFile>();
    wf->kind = OpenFile::Kind::PipeWrite;
    wf->pipe = pipe;

    int rfd = p.allocFd(std::move(rf));
    int wfd = p.allocFd(std::move(wf));

    std::array<std::uint8_t, 8> out;
    storeLe32(out.data(), static_cast<std::uint32_t>(rfd));
    storeLe32(out.data() + 4, static_cast<std::uint32_t>(wfd));
    copyToUser(t, fds_out, out);
    stats_.counter("pipes_created").inc();
    return 0;
}

std::int64_t
Kernel::sysDup(Thread&, std::uint64_t fd)
{
    Process& p = currentProcess();
    if (fd >= p.fds.size() || !p.fds[fd])
        return -errBadF;
    return p.allocFd(p.fds[fd]);
}

std::int64_t
Kernel::sysDup2(Thread&, std::uint64_t oldfd, std::uint64_t newfd)
{
    constexpr std::uint64_t maxFds = 256;
    Process& p = currentProcess();
    if (oldfd >= p.fds.size() || !p.fds[oldfd])
        return -errBadF;
    if (newfd >= maxFds)
        return -errBadF;
    if (oldfd == newfd)
        return static_cast<std::int64_t>(newfd);
    if (newfd < p.fds.size() && p.fds[newfd])
        closeFile(p, p.fds[newfd]);
    if (newfd >= p.fds.size())
        p.fds.resize(newfd + 1);
    p.fds[newfd] = p.fds[oldfd];
    return static_cast<std::int64_t>(newfd);
}

std::int64_t
Kernel::sysSubmitBatch(Thread& t, GuestVA sub_va, GuestVA comp_va,
                       std::uint64_t count)
{
    Process& p = currentProcess();
    if (count == 0 || count > maxBatchDepth)
        return -errInval;
    const std::uint64_t sub_bytes = count * batchDescBytes;
    const std::uint64_t comp_bytes = count * batchCompBytes;
    if (!validUserRange(p, sub_va, sub_bytes, false))
        return -errFault;
    if (!validUserRange(p, comp_va, comp_bytes, true))
        return -errFault;

    // The hostile-kernel window on the submission side: the ring still
    // lives in user (for cloaked callers: uncloaked arena) memory.
    if (attackHooks_ != nullptr)
        attackHooks_->onBatchSubmit(*this, t, sub_va, count);

    // Single copy: every descriptor leaves the ring exactly once,
    // before anything is validated or dispatched. Nothing below ever
    // re-reads sub_va, so a concurrent (hostile) rewrite of the ring
    // cannot create a checked-vs-used mismatch.
    std::vector<std::uint8_t> raw(sub_bytes);
    copyFromUser(t, sub_va, raw);
    std::vector<BatchDesc> descs(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t* d = raw.data() + i * batchDescBytes;
        descs[i].num = static_cast<Sys>(loadLe64(d));
        for (std::size_t a = 0; a < 5; ++a)
            descs[i].args[a] = loadLe64(d + 8 * (a + 1));
        descs[i].echo = loadLe64(d + 48);
        descs[i].reserved = loadLe64(d + 56);
    }

    // Pre-seal hint, once per batch: every present page an I/O
    // descriptor's buffer spans is about to be touched through the
    // kernel view, so hand the whole set to the bulk crypto pipeline
    // up front instead of sealing one fault at a time.
    std::vector<Gpa> preseal;
    for (const BatchDesc& d : descs) {
        if (d.num != Sys::Read && d.num != Sys::Write &&
            d.num != Sys::Pread && d.num != Sys::Pwrite)
            continue;
        GuestVA buf = d.args[1];
        std::uint64_t len = d.args[2];
        if (len == 0 || !validUserRange(p, buf, len, false))
            continue;
        for (GuestVA va = pageBase(buf); va < buf + len; va += pageSize) {
            Pte* pte = p.as.findPte(va);
            if (pte != nullptr && pte->present)
                preseal.push_back(pageBase(pte->gpa));
        }
    }
    vmm_.prepareFramesForKernel(preseal);

    auto& cost = vmm_.machine().cost();
    std::vector<std::uint8_t> craw(comp_bytes);
    for (std::uint64_t i = 0; i < count; ++i) {
        const BatchDesc& d = descs[i];
        std::int64_t r;
        if (d.reserved != 0 || !batchable(d.num)) {
            // Malformed or non-batchable: complete with an error but
            // keep dispatching the rest of the ring.
            r = -errInval;
        } else {
            cost.charge(cost.params().batchDispatch, "batch_dispatch");
            r = dispatchSyscall(t, d.num, d.args[0], d.args[1],
                                d.args[2], d.args[3], d.args[4]);
            stats_.counter("batched_syscalls").inc();
        }
        storeLe64(craw.data() + i * batchCompBytes,
                  static_cast<std::uint64_t>(r));
        storeLe64(craw.data() + i * batchCompBytes + 8, d.echo);
    }
    copyToUser(t, comp_va, craw);

    // The hostile-kernel window on the completion side: results are in
    // user memory now, the caller has not read them yet.
    if (attackHooks_ != nullptr)
        attackHooks_->onBatchComplete(*this, t, comp_va, count);
    stats_.counter("batches").inc();
    return static_cast<std::int64_t>(count);
}

std::vector<std::string>
Kernel::readArgvBlob(Thread& t, GuestVA va, std::uint64_t len)
{
    std::vector<std::string> argv;
    if (va == 0 || len == 0 || len > 65536)
        return argv;
    std::vector<std::uint8_t> blob(len);
    copyFromUser(t, va, blob);
    std::string cur;
    for (std::uint8_t c : blob) {
        if (c == 0) {
            if (!cur.empty())
                argv.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(static_cast<char>(c));
        }
    }
    if (!cur.empty())
        argv.push_back(cur);
    return argv;
}

std::int64_t
Kernel::sysSpawn(Thread& t, GuestVA name_va, GuestVA argv_va,
                 std::uint64_t argv_len)
{
    Process& p = currentProcess();
    std::string name = readUserString(t, name_va);
    if (programs_.find(name) == nullptr)
        return -errNoEnt;
    std::vector<std::string> argv = readArgvBlob(t, argv_va, argv_len);
    Process& child = createProcess(name, std::move(argv), p.pid);
    osh_assert(host_ != nullptr, "no process host attached");
    host_->startProgram(child);
    stats_.counter("spawns").inc();
    return child.pid;
}

std::int64_t
Kernel::sysFork(Thread& t, std::uint64_t token)
{
    Process& parent = currentProcess();
    Process& child =
        createProcess(parent.programName, parent.argv, parent.pid);
    child.cloaked = parent.cloaked;
    child.fds = parent.fds; // Shares open-file descriptions, as POSIX.
    child.signals = parent.signals;
    auto& cost = vmm_.machine().cost();

    // Clone the VMA layout (including the arena cursors, so the
    // child's future mmaps do not collide with inherited mappings).
    for (const auto& [start, vma] : parent.as.vmas()) {
        bool ok = child.as.addVma(vma);
        osh_assert(ok, "fork VMA clone collision");
    }
    child.as.adoptCursors(parent.as);

    // Clone page-table state. Collect VAs first: eviction during child
    // frame allocation can rewrite parent PTEs mid-loop.
    std::vector<GuestVA> vas;
    vas.reserve(parent.as.ptes().size());
    for (const auto& [va, pte] : parent.as.ptes())
        vas.push_back(va);

    // Fork snapshotting: every present cloaked page is about to be
    // read through the kernel view, which forces its encryption — the
    // dominant cost of cloaked fork. Hand the whole set to the VMM in
    // one batch so the crypto runs through the bulk pipeline instead
    // of one fault at a time.
    std::vector<Gpa> preseal;
    for (GuestVA va : vas) {
        Vma* vma = parent.as.findVma(va);
        if (vma == nullptr || !vma->cloaked || vma->type == VmaType::File)
            continue;
        Pte* ppte = parent.as.findPte(va);
        if (ppte != nullptr && ppte->present)
            preseal.push_back(pageBase(ppte->gpa));
    }
    vmm_.prepareFramesForKernel(preseal);

    for (GuestVA va : vas) {
        Vma* vma = parent.as.findVma(va);
        if (vma == nullptr)
            continue;

        if (vma->type == VmaType::File) {
            Pte* ppte = parent.as.findPte(va);
            if (ppte == nullptr || !ppte->present)
                continue;
            child.as.pte(va) = *ppte;
            FrameInfo& fi = frames_.info(ppte->gpa);
            if (fi.use == FrameUse::PageCache && vfs_.exists(fi.inode)) {
                auto& cache = vfs_.inode(fi.inode).cache;
                auto cit = cache.find(fi.pageIndex);
                if (cit != cache.end())
                    cit->second.mapCount++;
            }
            continue;
        }

        if (vma->cloaked) {
            // Eager copy: cloaked pages cannot be COW-shared across the
            // fork because the kernel's copy path would fold both
            // processes onto one plaintext frame. Copying through the
            // kernel view forces encryption of each parent page — the
            // dominant cost of cloaked fork in the paper.
            Gpa new_gpa = allocFrameOrEvict(FrameUse::Anon);
            Pte* ppte = parent.as.findPte(va); // refetch after eviction
            if (ppte == nullptr) {
                frames_.unref(new_gpa);
                continue;
            }
            if (ppte->present) {
                std::array<std::uint8_t, pageSize> buf;
                readFrameAsKernel(t, pageBase(ppte->gpa), buf);
                writeFrameAsKernel(t, new_gpa, buf);
                cost.charge(cost.params().pageCopy, "fork_eager_copy");
                FrameInfo& nfi = frames_.info(new_gpa);
                nfi.asid = child.as.asid();
                nfi.vaPage = va;
                nfi.pinned = false;
                addAnonMapping(new_gpa, child.as.asid(), va);
                Pte& cpte = child.as.pte(va);
                cpte.gpa = new_gpa;
                cpte.present = true;
                cpte.writable = (vma->prot & protWrite) != 0;
            } else if (ppte->swapped) {
                frames_.unref(new_gpa);
                auto slot = swap_.allocate();
                osh_assert(slot.has_value(), "swap full during fork");
                // The eager copies above can evict (and async-enqueue)
                // parent pages this loop later reads back from swap.
                vmm_.drainAsyncEvictions();
                std::array<std::uint8_t, pageSize> buf;
                swap_.readSlot(ppte->slot, buf);
                swap_.writeSlot(*slot, buf);
                Pte& cpte = child.as.pte(va);
                cpte.swapped = true;
                cpte.slot = *slot;
            } else {
                frames_.unref(new_gpa);
            }
            continue;
        }

        // Uncloaked anonymous memory: classic COW.
        Pte* ppte = parent.as.findPte(va);
        if (ppte == nullptr)
            continue;
        if (ppte->present) {
            ppte->cow = true;
            frames_.ref(ppte->gpa);
            addAnonMapping(pageBase(ppte->gpa), child.as.asid(), va);
            child.as.pte(va) = *ppte;
            // Downgrade any existing writable shadow of the parent.
            vmm_.invalidateVa(parent.as.asid(), va);
        } else if (ppte->swapped) {
            auto slot = swap_.allocate();
            osh_assert(slot.has_value(), "swap full during fork");
            // Same hazard as the cloaked branch: drain before reading.
            vmm_.drainAsyncEvictions();
            std::array<std::uint8_t, pageSize> buf;
            swap_.readSlot(ppte->slot, buf);
            swap_.writeSlot(*slot, buf);
            Pte& cpte = child.as.pte(va);
            cpte.swapped = true;
            cpte.slot = *slot;
        }
    }

    // Pipe descriptor accounting: shared OpenFiles keep their counts
    // (closeFile releases on last reference).

    osh_assert(host_ != nullptr, "no process host attached");
    host_->startForkChild(parent, child, token);
    stats_.counter("forks").inc();
    return child.pid;
}

std::int64_t
Kernel::sysExec(Thread& t, GuestVA name_va, GuestVA argv_va,
                std::uint64_t argv_len)
{
    Process& p = currentProcess();
    std::string name = readUserString(t, name_va);
    const Program* prog = programs_.find(name);
    if (prog == nullptr)
        return -errNoEnt;
    std::vector<std::string> argv = readArgvBlob(t, argv_va, argv_len);

    teardownAddressSpace(p);
    p.programName = name;
    p.argv = argv;
    p.cloaked = prog->cloaked;
    setupProcessImage(p, *prog);

    t.hasPendingExec = true;
    t.pendingExecProgram = name;
    t.pendingExecArgv = std::move(argv);
    if (attackHooks_ != nullptr)
        attackHooks_->onExec(*this, t, name);
    stats_.counter("execs").inc();
    return 0;
}

std::int64_t
Kernel::sysWaitPid(Thread& t, std::int64_t pid, GuestVA status_va)
{
    Process& p = currentProcess();
    for (;;) {
        checkKillRequested(t);
        bool have_children = false;
        Pid reaped = 0;
        int status = 0;
        for (auto& [cpid, child] : processes_) {
            if (child->ppid != p.pid)
                continue;
            if (pid >= 0 && cpid != static_cast<Pid>(pid))
                continue;
            have_children = true;
            if (child->state == ProcState::Zombie) {
                reaped = cpid;
                status = child->exitStatus;
                break;
            }
        }
        if (reaped != 0) {
            processes_.erase(reaped);
            if (status_va != 0) {
                std::array<std::uint8_t, 4> out;
                storeLe32(out.data(), static_cast<std::uint32_t>(status));
                if (validUserRange(p, status_va, 4, true))
                    copyToUser(t, status_va, out);
            }
            return reaped;
        }
        if (!have_children)
            return -errChild;
        sched_.block(&p.exitChannel);
    }
}

std::int64_t
Kernel::sysVmaQuery(Thread&, std::uint64_t index, std::uint64_t field)
{
    // Register-only ABI: a restored process uses this to rediscover its
    // own (restored) mappings, so the call must not depend on any
    // shim-marshalled buffer.
    Process& p = currentProcess();
    if (index >= p.as.vmas().size())
        return -errInval;
    auto it = p.as.vmas().begin();
    std::advance(it, static_cast<std::ptrdiff_t>(index));
    const Vma& vma = it->second;
    switch (field) {
      case vmaQueryStart:
        return static_cast<std::int64_t>(vma.start);
      case vmaQueryEnd:
        return static_cast<std::int64_t>(vma.end);
      case vmaQueryFlags:
        return static_cast<std::int64_t>(
            (vma.cloaked ? vmaFlagCloaked : 0) |
            (vma.type == VmaType::Anon ? vmaFlagAnon : 0));
      default:
        return -errInval;
    }
}

std::int64_t
Kernel::sysKill(Thread&, std::int64_t pid, std::uint64_t sig)
{
    Process* target = findProcess(static_cast<Pid>(pid));
    if (target == nullptr || target->state == ProcState::Zombie)
        return -errSrch;
    if (sig == 0)
        return 0;
    if (sig >= numSignals)
        return -errInval;
    int s = static_cast<int>(sig);
    if (s != sigKill && target->signals[sig].handled) {
        target->pendingSignals |= (1u << s);
        if (Thread* tt = threadOf(target->pid))
            sched_.wakeThread(*tt);
        return 0;
    }
    killProcess(*target, formatString("killed by signal %d", s));
    return 0;
}

std::int64_t
Kernel::sysSigAction(Thread&, std::uint64_t sig, std::uint64_t token)
{
    if (sig >= numSignals || sig == sigKill)
        return -errInval;
    Process& p = currentProcess();
    p.signals[sig].handled = token != 0;
    p.signals[sig].token = token;
    return 0;
}

} // namespace osh::os
