#include "os/swap.hh"

#include "base/logging.hh"

#include <cstring>

namespace osh::os
{

SwapDevice::SwapDevice(sim::CostModel& cost, std::uint64_t max_slots)
    : cost_(cost), maxSlots_(max_slots), stats_("swap")
{
}

std::optional<SwapSlot>
SwapDevice::allocate()
{
    if (!freeList_.empty()) {
        SwapSlot s = freeList_.back();
        freeList_.pop_back();
        used_[s] = true;
        ++inUse_;
        return s;
    }
    if (slots_.size() >= maxSlots_)
        return std::nullopt;
    slots_.emplace_back();
    used_.push_back(true);
    ++inUse_;
    return slots_.size() - 1;
}

void
SwapDevice::release(SwapSlot slot)
{
    osh_assert(slot < slots_.size() && used_[slot],
               "release of unused swap slot %llu",
               static_cast<unsigned long long>(slot));
    slots_[slot].fill(0);
    used_[slot] = false;
    freeList_.push_back(slot);
    --inUse_;
    stats_.counter("slots_scrubbed").inc();
}

void
SwapDevice::writeSlot(SwapSlot slot, std::span<const std::uint8_t> page)
{
    osh_assert(slot < slots_.size() && used_[slot], "write to bad slot");
    osh_assert(page.size() == pageSize, "swap I/O is page granular");
    OSH_TRACE_SCOPE(tracer_, trace::Category::Swap, "slot_write",
                    systemDomain, 0, slot);
    std::memcpy(slots_[slot].data(), page.data(), pageSize);
    cost_.charge(cost_.params().diskAccess +
                 cost_.params().diskPerByte * pageSize,
                 "swap_out");
}

void
SwapDevice::writeSlotPrepaid(SwapSlot slot,
                             std::span<const std::uint8_t> page)
{
    osh_assert(slot < slots_.size() && used_[slot], "write to bad slot");
    osh_assert(page.size() == pageSize, "swap I/O is page granular");
    OSH_TRACE_SCOPE(tracer_, trace::Category::Swap, "slot_write",
                    systemDomain, 0, slot);
    std::memcpy(slots_[slot].data(), page.data(), pageSize);
    cost_.charge(0, "swap_out");
}

void
SwapDevice::readSlot(SwapSlot slot, std::span<std::uint8_t> page)
{
    osh_assert(slot < slots_.size() && used_[slot], "read from bad slot");
    osh_assert(page.size() == pageSize, "swap I/O is page granular");
    OSH_TRACE_SCOPE(tracer_, trace::Category::Swap, "slot_read",
                    systemDomain, 0, slot);
    std::memcpy(page.data(), slots_[slot].data(), pageSize);
    cost_.charge(cost_.params().diskAccess +
                 cost_.params().diskPerByte * pageSize,
                 "swap_in");
}

std::array<std::uint8_t, pageSize>&
SwapDevice::rawSlot(SwapSlot slot)
{
    osh_assert(slot < slots_.size() && used_[slot], "rawSlot of bad slot");
    return slots_[slot];
}

std::span<const std::uint8_t>
SwapDevice::slotBytes(SwapSlot slot) const
{
    osh_assert(slot < slots_.size(), "slotBytes of unbacked slot");
    return slots_[slot];
}

} // namespace osh::os
