/**
 * @file
 * Processes, file descriptors and pipes.
 */

#ifndef OSH_OS_PROCESS_HH
#define OSH_OS_PROCESS_HH

#include "base/types.hh"
#include "os/addrspace.hh"
#include "os/syscalls.hh"
#include "os/vfs.hh"

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace osh::os
{

/** A kernel pipe object. Data lives in kernel memory. */
struct Pipe
{
    std::deque<std::uint8_t> buffer;
    std::size_t capacity = 64 * 1024;
    int readers = 0;
    int writers = 0;

    // Distinct addresses used as scheduler wait channels.
    char readChannel = 0;
    char writeChannel = 0;
};

/** An open file description (shared across dup/fork). */
struct OpenFile
{
    enum class Kind : std::uint8_t { File, PipeRead, PipeWrite };

    Kind kind = Kind::File;
    InodeId inode = 0;
    std::uint64_t offset = 0;
    std::uint64_t flags = 0;
    std::shared_ptr<Pipe> pipe;
};

/** Signal disposition. */
struct SigDisposition
{
    bool handled = false;        ///< A user handler is registered.
    std::uint64_t token = 0;     ///< Opaque user handler token.
};

/** Process states. */
enum class ProcState : std::uint8_t { Running, Zombie };

/** A guest process (single threaded in this simulator). */
class Process
{
  public:
    Process(Pid pid, Pid ppid, std::string program_name)
        : pid(pid), ppid(ppid), as(static_cast<Asid>(pid)),
          programName(std::move(program_name))
    {
    }

    Pid pid;
    Pid ppid;
    AddressSpace as;
    std::vector<std::shared_ptr<OpenFile>> fds;

    std::array<SigDisposition, numSignals> signals{};
    std::uint32_t pendingSignals = 0;

    ProcState state = ProcState::Running;
    int exitStatus = 0;

    /** Set when another process fatally signalled us; the victim's own
     *  thread notices at its next kernel entry and unwinds. */
    bool killRequested = false;
    std::string killReason;

    /** Wait channel for parents blocked in waitpid on us. */
    char exitChannel = 0;

    /** Cloaking status (managed by the Overshadow runtime). */
    bool cloaked = false;
    DomainId domain = systemDomain;

    std::string programName;
    std::vector<std::string> argv;

    /** Allocate the lowest free descriptor slot. */
    int
    allocFd(std::shared_ptr<OpenFile> file)
    {
        for (std::size_t i = 0; i < fds.size(); ++i) {
            if (!fds[i]) {
                fds[i] = std::move(file);
                return static_cast<int>(i);
            }
        }
        fds.push_back(std::move(file));
        return static_cast<int>(fds.size() - 1);
    }

    /** Descriptor lookup; nullptr when closed/out of range. */
    OpenFile*
    fd(std::uint64_t n)
    {
        if (n >= fds.size())
            return nullptr;
        return fds[n].get();
    }
};

} // namespace osh::os

#endif // OSH_OS_PROCESS_HH
