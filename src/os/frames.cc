#include "os/frames.hh"

#include "base/logging.hh"

namespace osh::os
{

FrameAllocator::FrameAllocator(std::uint64_t num_frames)
    : frames_(num_frames), freeCount_(num_frames), stats_("frames")
{
    osh_assert(num_frames > 0, "need at least one guest frame");
    freeList_.reserve(num_frames);
    // Push in reverse so allocation proceeds from low addresses.
    for (std::uint64_t i = num_frames; i > 0; --i)
        freeList_.push_back(i - 1);
}

std::uint64_t
FrameAllocator::frameIndex(Gpa gpa) const
{
    std::uint64_t idx = pageNumber(gpa);
    osh_assert(idx < frames_.size(), "gpa 0x%llx out of range",
               static_cast<unsigned long long>(gpa));
    return idx;
}

std::optional<Gpa>
FrameAllocator::allocate(FrameUse use)
{
    if (freeList_.empty())
        return std::nullopt;
    std::uint64_t idx = freeList_.back();
    freeList_.pop_back();
    --freeCount_;
    FrameInfo& fi = frames_[idx];
    fi = FrameInfo{};
    fi.use = use;
    fi.refCount = 1;
    stats_.counter("allocations").inc();
    return idx * pageSize;
}

void
FrameAllocator::ref(Gpa gpa)
{
    FrameInfo& fi = frames_[frameIndex(gpa)];
    osh_assert(fi.use != FrameUse::Free, "ref of free frame");
    ++fi.refCount;
}

bool
FrameAllocator::unref(Gpa gpa)
{
    std::uint64_t idx = frameIndex(gpa);
    FrameInfo& fi = frames_[idx];
    osh_assert(fi.use != FrameUse::Free && fi.refCount > 0,
               "unref of free frame 0x%llx",
               static_cast<unsigned long long>(gpa));
    if (--fi.refCount > 0)
        return false;
    fi = FrameInfo{};
    freeList_.push_back(idx);
    ++freeCount_;
    stats_.counter("frees").inc();
    return true;
}

FrameInfo&
FrameAllocator::info(Gpa gpa)
{
    return frames_[frameIndex(gpa)];
}

const FrameInfo&
FrameAllocator::info(Gpa gpa) const
{
    return frames_[frameIndex(gpa)];
}

std::optional<Gpa>
FrameAllocator::nextEvictionCandidate()
{
    if (usedFrames() == 0)
        return std::nullopt;
    for (std::uint64_t scanned = 0; scanned < frames_.size(); ++scanned) {
        std::uint64_t idx = clockHand_;
        clockHand_ = (clockHand_ + 1) % frames_.size();
        if (frames_[idx].use != FrameUse::Free)
            return idx * pageSize;
    }
    return std::nullopt;
}

} // namespace osh::os
