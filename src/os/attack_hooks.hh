/**
 * @file
 * Injection points for a hostile guest kernel.
 *
 * MaliceConfig grew as a handful of one-shot toggles; AttackHooks is
 * its generalization: an interface the attack campaign's director
 * implements to interpose on every kernel touchpoint of cloaked state —
 * syscall entry (snoop/scribble/trap-frame probes), read() returns,
 * swap-out/-in (tamper, replay, resurrection), slot release (a hostile
 * disk keeps copies the device itself scrubs), and the fsync/exec
 * boundaries where sealed metadata bundles are exposed.
 *
 * Every hook runs *inside* the kernel, in kernel mode, with the full
 * kernel view — exactly the vantage point of a compromised commodity
 * OS. Hooks default to no-ops so a kernel without a director installed
 * behaves identically to one built before this interface existed.
 */

#ifndef OSH_OS_ATTACK_HOOKS_HH
#define OSH_OS_ATTACK_HOOKS_HH

#include "base/types.hh"

#include <cstdint>
#include <span>
#include <string>

namespace osh::os
{

class Kernel;
class Thread;

using SwapSlot = std::uint64_t;
using InodeId = std::uint64_t;

/** Hostile-kernel interposition interface (see file comment). */
class AttackHooks
{
  public:
    virtual ~AttackHooks() = default;

    /**
     * A syscall trapped into the kernel. Runs after the trap-frame is
     * available and before dispatch, inside the kernel-mode guard: the
     * hook may read/write user memory through the kernel view, probe
     * the register file, or rewire guest translations.
     */
    virtual void onSyscallEntry(Kernel& kernel, Thread& thread)
    {
        (void)kernel;
        (void)thread;
    }

    /**
     * read() is about to return @p len bytes copied to user @p buf; a
     * hostile kernel may rewrite them (buffer corruption).
     */
    virtual void onReadReturn(Kernel& kernel, Thread& thread, GuestVA buf,
                              std::uint64_t len)
    {
        (void)kernel;
        (void)thread;
        (void)buf;
        (void)len;
    }

    /**
     * A page was written to swap slot @p slot. @p replay_key identifies
     * the (asid, va page) owner so replay attacks can match versions.
     * The hook may tamper with the slot via Kernel::swap().rawSlot().
     */
    virtual void onSwapOut(Kernel& kernel, SwapSlot slot,
                           std::uint64_t replay_key)
    {
        (void)kernel;
        (void)slot;
        (void)replay_key;
    }

    /**
     * A page was read back from swap into @p page and is about to be
     * installed. The hook may substitute arbitrary bytes (replay /
     * resurrection from a hostile disk's own copies).
     */
    virtual void onSwapIn(Kernel& kernel, SwapSlot slot,
                          std::uint64_t replay_key,
                          std::span<std::uint8_t> page)
    {
        (void)kernel;
        (void)slot;
        (void)replay_key;
        (void)page;
    }

    /**
     * Slot @p slot is about to be released (and scrubbed by the
     * device). A hostile disk copies the bytes first, enabling
     * freed-slot resurrection regardless of the scrub.
     */
    virtual void onSwapRelease(Kernel& kernel, SwapSlot slot)
    {
        (void)kernel;
        (void)slot;
    }

    /**
     * A SubmitBatch ring passed range validation and is about to be
     * copied out of user memory (the kernel's single copy). The ring
     * lives in uncloaked memory, so a hostile kernel may rewrite
     * descriptors here — anything it plants is what the kernel will
     * faithfully dispatch, and the shim's completion validation must
     * catch the damage.
     */
    virtual void onBatchSubmit(Kernel& kernel, Thread& thread,
                               GuestVA sub_va, std::uint64_t count)
    {
        (void)kernel;
        (void)thread;
        (void)sub_va;
        (void)count;
    }

    /**
     * SubmitBatch wrote @p count completions to @p comp_va and is about
     * to return. A hostile kernel may forge results/echo tokens here —
     * after the kernel's writes, before the (cloaked) caller reads them.
     */
    virtual void onBatchComplete(Kernel& kernel, Thread& thread,
                                 GuestVA comp_va, std::uint64_t count)
    {
        (void)kernel;
        (void)thread;
        (void)comp_va;
        (void)count;
    }

    /**
     * fsync(@p inode) completed writeback. Sealed metadata bundles are
     * at rest now — the boundary where a hostile kernel corrupts,
     * truncates or rolls them back.
     */
    virtual void onFsync(Kernel& kernel, Thread& thread, InodeId inode)
    {
        (void)kernel;
        (void)thread;
        (void)inode;
    }

    /**
     * exec(@p program) rebuilt the process image (old domain already
     * torn down, its file metadata sealed); second sealed-bundle attack
     * boundary.
     */
    virtual void onExec(Kernel& kernel, Thread& thread,
                        const std::string& program)
    {
        (void)kernel;
        (void)thread;
        (void)program;
    }
};

} // namespace osh::os

#endif // OSH_OS_ATTACK_HOOKS_HH
