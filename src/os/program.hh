/**
 * @file
 * Guest program registry.
 *
 * Guest "binaries" are host C++ functions operating on guest state
 * exclusively through an Env (registers, guest memory via the MMU,
 * system calls). A program marked cloaked is launched under the
 * Overshadow runtime: shim installed, domain created, private regions
 * registered with the VMM.
 */

#ifndef OSH_OS_PROGRAM_HH
#define OSH_OS_PROGRAM_HH

#include "base/logging.hh"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace osh::os
{

class Env;

/** Entry point of a guest program; returns the exit status. */
using ProgramMain = std::function<int(Env&)>;

/** A registered guest program. */
struct Program
{
    ProgramMain main;
    bool cloaked = false;
    std::uint64_t stackPages = 64;
};

/** Name -> program table (the simulated filesystem's /bin). */
class ProgramRegistry
{
  public:
    void
    add(const std::string& name, Program program)
    {
        osh_assert(programs_.emplace(name, std::move(program)).second,
                   "duplicate program '%s'", name.c_str());
    }

    const Program*
    find(const std::string& name) const
    {
        auto it = programs_.find(name);
        return it == programs_.end() ? nullptr : &it->second;
    }

  private:
    std::map<std::string, Program> programs_;
};

} // namespace osh::os

#endif // OSH_OS_PROGRAM_HH
