/**
 * @file
 * Guest threads and the scheduler.
 *
 * Each guest thread is hosted on its own std::thread, but execution is
 * strictly serialized: a single "big simulation lock" is held by
 * whichever guest thread is Running, and context switches are explicit
 * condition-variable handoffs driven by the scheduler. This gives the
 * simulator real blocking semantics (pipes, waitpid, page I/O) and real
 * preemption points while keeping runs fully deterministic — the
 * round-robin ready queue, not the host scheduler, decides who runs.
 *
 * Kernel code runs on the guest thread that trapped, exactly as in a
 * real monolithic kernel.
 */

#ifndef OSH_OS_THREAD_HH
#define OSH_OS_THREAD_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/cost_model.hh"
#include "vmm/vcpu.hh"

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace osh::os
{

class Scheduler;

/** One guest thread (this simulator runs one thread per process). */
class Thread
{
  public:
    enum class State : std::uint8_t
    {
        Embryo,   ///< Created, host thread not yet scheduled.
        Ready,    ///< Runnable, waiting for the CPU.
        Running,  ///< Currently holds the simulation.
        Blocked,  ///< Waiting on a channel.
        Zombie,   ///< Finished.
    };

    Thread(Pid pid, vmm::Vmm& vmm, const vmm::Context& ctx)
        : pid(pid), vcpu(vmm, ctx)
    {
    }

    Pid pid;
    State state = State::Embryo;
    vmm::Vcpu vcpu;

    /** Channel this thread is blocked on (nullptr if none). */
    const void* waitChannel = nullptr;

    // Runtime mailbox written by the kernel, read by the Env/runtime.

    /** Pending user-signal delivery (negative = none). */
    int deliverSignal = -1;
    std::uint64_t deliverSignalToken = 0;

    /** Pending exec image (set by sys_exec, consumed by the Env). */
    bool hasPendingExec = false;
    std::string pendingExecProgram;
    std::vector<std::string> pendingExecArgv;

    /** Body to run once first scheduled. */
    std::function<void(Thread&)> body;

    std::condition_variable cv;
    std::thread host;
};

/**
 * Round-robin scheduler over host-thread-backed guest threads.
 *
 * Locking protocol: every scheduler method that is documented as
 * "guest context" must be called by the currently Running guest thread,
 * which implicitly holds the simulation lock (taken in threadMain).
 */
class Scheduler
{
  public:
    explicit Scheduler(sim::CostModel& cost);
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /**
     * Create a guest thread. May be called from the driver (before
     * run()) or from a running guest thread (fork/spawn). The thread
     * starts Ready.
     */
    Thread& createThread(Pid pid, vmm::Vmm& vmm, const vmm::Context& ctx,
                         std::function<void(Thread&)> body);

    /** The currently running guest thread (nullptr from the driver). */
    Thread* current() { return current_; }

    /** Guest context: voluntarily give up the CPU. */
    void yield();

    /** Guest context: involuntary preemption (timer); charged. */
    void preempt();

    /** Guest context: block on a channel until woken. */
    void block(const void* channel);

    /** Guest context: wake every thread blocked on the channel. */
    void wakeAll(const void* channel);

    /** Guest context: make one specific blocked thread runnable. */
    void wakeThread(Thread& t);

    /**
     * Guest context: park the calling thread on the scheduler's freeze
     * channel (checkpoint quiesce). Unlike block(), a frozen thread can
     * only be made runnable again by the driver via resumeFrozen(); and
     * when every remaining live thread is frozen or blocked the
     * scheduler *pauses* — run() returns to the driver instead of
     * panicking on deadlock — so the driver can inspect a quiesced
     * machine. Returns when the thread is thawed.
     */
    void freezeCurrent();

    /** Driver context: make a frozen thread runnable again. */
    void resumeFrozen(Thread& t);

    /** Is this thread parked on the freeze channel? */
    bool isFrozen(const Thread& t) const;

    /** Number of threads currently parked on the freeze channel. */
    std::uint64_t frozenThreads() const { return frozenCount_; }

    /**
     * Driver context: run the simulation until every guest thread has
     * exited — or, when threads are frozen, until no unfrozen thread is
     * runnable (the paused state; check liveThreads() to distinguish).
     * Returns the number of threads that ran.
     */
    std::uint64_t run();

    /**
     * Hook invoked (with the simulation lock held) whenever the CPU is
     * handed to a *different* thread — the simulator's CR3-write point.
     * The incoming thread is passed so the system layer can tell the
     * VMM which vCPU slot took the switch (shadow/TLB retention).
     */
    void setSwitchHook(std::function<void(Thread&)> hook)
    {
        switchHook_ = std::move(hook);
    }

    /**
     * Number of simulated physical cores threads are dispatched onto
     * (SMP). Dispatch order is unchanged — the single ready queue still
     * decides who runs next — so guest-visible execution is identical
     * at any count; only the vCPU slot (and hence which private TLB a
     * thread warms) varies. Must be set before run().
     */
    void configureCpus(std::size_t count);
    std::size_t cpuCount() const { return cpuCount_; }

    /** Number of live (non-zombie) threads. */
    std::uint64_t liveThreads() const { return liveCount_; }

    /**
     * Driver context (no thread running): join the host threads of
     * guest threads that have exited, releasing their host stacks. The
     * Thread objects stay (other layers may hold results keyed off
     * them). Lets a many-thousand-process sweep run in bounded host
     * memory; returns the number of host threads joined.
     */
    std::size_t reapFinished();

    /** Finished guest threads whose host thread is still unjoined —
     *  what the next reapFinished() would release. */
    std::size_t joinableFinishedThreads() const;

    StatGroup& stats() { return stats_; }

  private:
    void threadMain(Thread* t);

    /**
     * Pick the next ready thread and hand the CPU to it; the caller
     * then waits until it becomes Running again (or returns immediately
     * if exiting). Must hold lock_.
     */
    void switchFrom(Thread* cur, std::unique_lock<std::mutex>& lk,
                    bool exiting);

    /**
     * Bind a freshly dispatched thread to a core slot (seeded
     * round-robin). A no-op on single-core runs, so the legacy stat
     * set and slot-0 TLB behavior are untouched there.
     */
    void assignCpu(Thread* t);

    sim::CostModel& cost_;
    std::mutex lock_;
    std::condition_variable driverCv_;

    std::function<void(Thread&)> switchHook_;
    std::vector<std::unique_ptr<Thread>> threads_;
    /** Non-zombie threads, the wakeAll scan set. Finished threads are
     *  dropped lazily so scans stay proportional to live threads, not
     *  to every thread ever created. */
    std::vector<Thread*> active_;
    std::deque<Thread*> readyQueue_;
    Thread* current_ = nullptr;
    /** Simulated physical cores (1 = exact legacy single-core path). */
    std::size_t cpuCount_ = 1;
    /** Next round-robin core slot handed out at dispatch. */
    std::size_t nextCpuSlot_ = 0;
    std::uint64_t liveCount_ = 0;
    std::uint64_t started_ = 0;
    bool driverWaiting_ = false;
    /** Threads parked by freezeCurrent() wait on this channel. */
    char frozenChannel_ = 0;
    std::uint64_t frozenCount_ = 0;
    /** Set when the scheduler hands control back to a checkpointing
     *  driver because only frozen/blocked threads remain. */
    bool paused_ = false;
    StatGroup stats_;
};

} // namespace osh::os

#endif // OSH_OS_THREAD_HH
