#include "os/env.hh"

#include "base/bytes.hh"
#include "base/logging.hh"

#include <cstring>

namespace osh::os
{

Env::Env(Kernel& kernel, Thread& thread, EnvRuntime* runtime)
    : kernel_(kernel), thread_(thread), runtime_(runtime)
{
}

const std::vector<std::string>&
Env::args() const
{
    return kernel_.process(thread_.pid).argv;
}

void
Env::writeString(GuestVA va, const std::string& s)
{
    std::vector<std::uint8_t> bytes(s.size() + 1, 0);
    std::memcpy(bytes.data(), s.data(), s.size());
    writeBytes(va, bytes);
}

std::string
Env::readString(GuestVA va, std::size_t max)
{
    return thread_.vcpu.readCString(va, max);
}

std::int64_t
Env::rawKernelEntry(Sys num, const SyscallArgs& args)
{
    auto& regs = thread_.vcpu.regs();
    regs.gpr[0] = static_cast<std::uint64_t>(num);
    for (std::size_t i = 0; i < args.size(); ++i)
        regs.gpr[i + 1] = args[i];
    return kernel_.syscallEntry(thread_);
}

std::int64_t
Env::trapToKernel(Sys num, const SyscallArgs& args)
{
    std::int64_t result;
    if (trapHook_)
        result = trapHook_(*this, num, args);
    else
        result = rawKernelEntry(num, args);

    // exec prepared a new image for this thread?
    if (thread_.hasPendingExec) {
        ExecRequested req{thread_.pendingExecProgram,
                          thread_.pendingExecArgv};
        thread_.hasPendingExec = false;
        thread_.pendingExecProgram.clear();
        thread_.pendingExecArgv.clear();
        // User-side state died with the old image.
        scratch_ = 0;
        batchArea_ = 0;
        handlers_.clear();
        thread_.deliverSignal = -1;
        throw req;
    }
    pollSignals();
    return result;
}

std::int64_t
Env::syscall(Sys num, SyscallArgs args)
{
    if (interposer_ != nullptr)
        return interposer_->syscall(*this, num, args);
    return trapToKernel(num, args);
}

GuestVA
Env::scratch()
{
    if (scratch_ == 0) {
        // Uncloaked for native processes; cloaked for cloaked processes
        // (their shim then marshals its contents — this is the paper's
        // argument-marshalling path, not an information leak).
        bool cloaked = kernel_.process(thread_.pid).cloaked;
        std::uint64_t flags = mapAnon | (cloaked ? mapCloaked : 0);
        std::int64_t va = syscall(Sys::Mmap,
                                  {pageSize, protRead | protWrite, flags,
                                   ~0ull, 0});
        osh_assert(va > 0, "scratch allocation failed");
        scratch_ = static_cast<GuestVA>(va);
    }
    return scratch_;
}

GuestVA
Env::batchArea()
{
    if (batchArea_ == 0) {
        // One page fits a full-depth descriptor ring plus completions.
        // Cloaked processes get a cloaked ring: the entries are
        // application state, and the shim is what re-stages them into
        // kernel-visible (uncloaked) arena memory.
        static_assert(maxBatchDepth *
                              (batchDescBytes + batchCompBytes) <=
                          pageSize,
                      "batch ring no longer fits one page");
        batchArea_ = allocPages(1);
    }
    return batchArea_;
}

std::int64_t
Env::submitBatch(const std::vector<BatchEntry>& entries,
                 std::vector<std::int64_t>& results)
{
    results.clear();
    if (entries.empty() || entries.size() > maxBatchDepth)
        return -errInval;
    GuestVA sub = batchArea();
    GuestVA comp = sub + maxBatchDepth * batchDescBytes;

    std::vector<std::uint8_t> raw(entries.size() * batchDescBytes, 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        std::uint8_t* d = raw.data() + i * batchDescBytes;
        storeLe64(d, static_cast<std::uint64_t>(entries[i].num));
        for (std::size_t a = 0; a < entries[i].args.size(); ++a)
            storeLe64(d + 8 * (a + 1), entries[i].args[a]);
        // App-level echo is just the slot index; the shim substitutes
        // its own private tokens on the kernel-facing ring.
        storeLe64(d + 48, i);
        storeLe64(d + 56, 0);
    }
    writeBytes(sub, raw);

    std::int64_t r =
        syscall(Sys::SubmitBatch, {sub, comp, entries.size()});
    if (r < 0)
        return r;

    std::vector<std::uint8_t> craw(entries.size() * batchCompBytes);
    readBytes(comp, craw);
    results.resize(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
        results[i] = static_cast<std::int64_t>(
            loadLe64(craw.data() + i * batchCompBytes));
    return r;
}

[[noreturn]] void
Env::exit(int status)
{
    syscall(Sys::Exit, {static_cast<std::uint64_t>(status)});
    osh_panic("exit returned");
}

std::int64_t
Env::mmap(std::uint64_t len, std::uint64_t prot, std::uint64_t flags,
          std::uint64_t fd, std::uint64_t offset)
{
    return syscall(Sys::Mmap, {len, prot, flags, fd, offset});
}

GuestVA
Env::allocPages(std::uint64_t pages)
{
    bool cloaked = kernel_.process(thread_.pid).cloaked;
    std::uint64_t flags = mapAnon | (cloaked ? mapCloaked : 0);
    std::int64_t va =
        mmap(pages * pageSize, protRead | protWrite, flags);
    osh_assert(va > 0, "allocPages failed");
    return static_cast<GuestVA>(va);
}

GuestVA
Env::allocUncloakedPages(std::uint64_t pages)
{
    std::int64_t va = mmap(pages * pageSize, protRead | protWrite, mapAnon);
    osh_assert(va > 0, "allocUncloakedPages failed");
    return static_cast<GuestVA>(va);
}

std::int64_t
Env::open(const std::string& path, std::uint64_t flags)
{
    GuestVA s = scratch();
    writeString(s, path);
    return syscall(Sys::Open, {s, flags});
}

std::int64_t
Env::fstat(std::uint64_t fd, StatBuf& out)
{
    GuestVA s = scratch() + 512;
    std::int64_t r = syscall(Sys::Fstat, {fd, s});
    if (r == 0) {
        std::array<std::uint8_t, sizeof(StatBuf)> raw;
        readBytes(s, raw);
        std::memcpy(&out, raw.data(), sizeof(out));
    }
    return r;
}

std::int64_t
Env::unlink(const std::string& path)
{
    GuestVA s = scratch();
    writeString(s, path);
    return syscall(Sys::Unlink, {s});
}

std::int64_t
Env::mkdir(const std::string& path)
{
    GuestVA s = scratch();
    writeString(s, path);
    return syscall(Sys::Mkdir, {s});
}

std::int64_t
Env::readdir(std::uint64_t fd, std::uint64_t index, std::string& name_out)
{
    GuestVA s = scratch() + 1024;
    std::int64_t r = syscall(Sys::ReadDir, {fd, index, s, 256});
    if (r >= 0)
        name_out = readString(s, 256);
    return r;
}

std::int64_t
Env::rename(const std::string& from, const std::string& to)
{
    GuestVA s = scratch();
    writeString(s, from);
    writeString(s + 1024, to);
    return syscall(Sys::Rename, {s, s + 1024});
}

std::int64_t
Env::pipe(int& read_fd, int& write_fd)
{
    GuestVA s = scratch() + 2048;
    std::int64_t r = syscall(Sys::Pipe, {s});
    if (r == 0) {
        read_fd = static_cast<int>(load32(s));
        write_fd = static_cast<int>(load32(s + 4));
    }
    return r;
}

std::int64_t
Env::writeAll(std::uint64_t fd, const std::string& data)
{
    // Stage through a private buffer in guest memory.
    std::uint64_t pages = roundUpToPage(std::max<std::uint64_t>(
                              data.size(), 1)) / pageSize;
    GuestVA buf = allocPages(pages);
    writeBytes(buf, std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
    std::int64_t r = write(fd, buf, data.size());
    munmap(buf);
    return r;
}

std::string
Env::readSome(std::uint64_t fd, std::size_t n)
{
    std::uint64_t pages =
        roundUpToPage(std::max<std::uint64_t>(n, 1)) / pageSize;
    GuestVA buf = allocPages(pages);
    std::int64_t r = read(fd, buf, n);
    std::string out;
    if (r > 0) {
        std::vector<std::uint8_t> bytes(static_cast<std::size_t>(r));
        readBytes(buf, bytes);
        out.assign(reinterpret_cast<const char*>(bytes.data()),
                   bytes.size());
    }
    munmap(buf);
    return out;
}

Pid
Env::fork(std::function<int(Env&)> child_body)
{
    osh_assert(runtime_ != nullptr, "fork without a runtime");
    std::uint64_t token = runtime_->registerForkBody(std::move(child_body));
    return static_cast<Pid>(syscall(Sys::Fork, {token}));
}

Pid
Env::spawn(const std::string& program, const std::vector<std::string>& argv)
{
    GuestVA s = scratch();
    writeString(s, program);
    std::string blob;
    for (const std::string& a : argv) {
        blob += a;
        blob.push_back('\0');
    }
    GuestVA blob_va = 0;
    if (!blob.empty()) {
        blob_va = s + 1024;
        writeBytes(blob_va, std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(blob.data()),
            blob.size()));
    }
    return static_cast<Pid>(
        syscall(Sys::Spawn, {s, blob_va, blob.size()}));
}

[[noreturn]] void
Env::exec(const std::string& program, const std::vector<std::string>& argv)
{
    GuestVA s = scratch();
    writeString(s, program);
    std::string blob;
    for (const std::string& a : argv) {
        blob += a;
        blob.push_back('\0');
    }
    GuestVA blob_va = 0;
    if (!blob.empty()) {
        blob_va = s + 1024;
        writeBytes(blob_va, std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(blob.data()),
            blob.size()));
    }
    std::int64_t r = syscall(Sys::Exec, {s, blob_va, blob.size()});
    // On success the syscall path throws ExecRequested before we get
    // here; reaching this point means the exec failed.
    osh_panic("exec('%s') failed: %lld", program.c_str(),
              static_cast<long long>(r));
}

std::int64_t
Env::waitpid(Pid pid, int* status)
{
    GuestVA s = scratch() + 3072;
    std::int64_t r = syscall(
        Sys::WaitPid, {static_cast<std::uint64_t>(pid), status ? s : 0});
    if (r > 0 && status != nullptr)
        *status = static_cast<int>(load32(s));
    return r;
}

void
Env::onSignal(int sig, std::function<void(Env&, int)> handler)
{
    std::uint64_t token = nextHandlerToken_++;
    handlers_[token] = std::move(handler);
    syscall(Sys::SigAction,
            {static_cast<std::uint64_t>(sig), token});
}

void
Env::pollSignals()
{
    if (inSignalHandler_ || thread_.deliverSignal < 0)
        return;
    int sig = thread_.deliverSignal;
    std::uint64_t token = thread_.deliverSignalToken;
    thread_.deliverSignal = -1;
    thread_.deliverSignalToken = 0;
    auto it = handlers_.find(token);
    if (it == handlers_.end()) {
        osh_warn("signal %d delivered with unknown handler token", sig);
        return;
    }
    inSignalHandler_ = true;
    it->second(*this, sig);
    inSignalHandler_ = false;
}

} // namespace osh::os
