/**
 * @file
 * Guest physical frame allocator.
 *
 * The guest kernel's view of physical memory: a fixed number of frames
 * (the VMM backs each with a machine frame on first touch). Each frame
 * carries bookkeeping describing what it currently holds, which the
 * page-out daemon uses to pick eviction victims. Frames are reference
 * counted to support copy-on-write sharing after fork.
 */

#ifndef OSH_OS_FRAMES_HH
#define OSH_OS_FRAMES_HH

#include "base/stats.hh"
#include "base/types.hh"

#include <cstdint>
#include <optional>
#include <vector>

namespace osh::os
{

/** What a guest frame currently holds. */
enum class FrameUse : std::uint8_t
{
    Free,
    Anon,      ///< Private anonymous page of some process.
    PageCache, ///< Cached page of a file.
};

/** Per-frame kernel bookkeeping. */
struct FrameInfo
{
    FrameUse use = FrameUse::Free;
    std::uint32_t refCount = 0;

    // For Anon frames: the owning mapping (asid + va) — with COW a frame
    // can be shared; we record the first owner and treat shared frames
    // as unevictable for simplicity.
    Asid asid = 0;
    GuestVA vaPage = 0;

    // For PageCache frames: owning inode and page index.
    std::uint64_t inode = 0;
    std::uint64_t pageIndex = 0;
    bool dirty = false;

    /** Pinned frames are never evicted. */
    bool pinned = false;
};

/** Allocator and bookkeeping for guest physical frames. */
class FrameAllocator
{
  public:
    explicit FrameAllocator(std::uint64_t num_frames);

    std::uint64_t numFrames() const { return frames_.size(); }
    std::uint64_t freeFrames() const { return freeCount_; }
    std::uint64_t usedFrames() const { return frames_.size() - freeCount_; }

    /**
     * Allocate one frame; returns its GPA, or nullopt when memory is
     * exhausted (the caller then runs page-out and retries).
     */
    std::optional<Gpa> allocate(FrameUse use);

    /** Increment the reference count (COW sharing). */
    void ref(Gpa gpa);

    /**
     * Drop one reference; frees the frame when the count reaches zero.
     * @return true if the frame was actually freed.
     */
    bool unref(Gpa gpa);

    FrameInfo& info(Gpa gpa);
    const FrameInfo& info(Gpa gpa) const;

    /**
     * Round-robin eviction cursor: returns the GPA of the next candidate
     * frame (any non-free frame), advancing the clock hand. Returns
     * nullopt if no frames are allocated at all.
     */
    std::optional<Gpa> nextEvictionCandidate();

    StatGroup& stats() { return stats_; }

  private:
    std::uint64_t frameIndex(Gpa gpa) const;

    std::vector<FrameInfo> frames_;
    std::vector<std::uint64_t> freeList_;
    std::uint64_t freeCount_;
    std::uint64_t clockHand_ = 0;
    StatGroup stats_;
};

} // namespace osh::os

#endif // OSH_OS_FRAMES_HH
