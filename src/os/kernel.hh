/**
 * @file
 * The guest kernel.
 *
 * A small but real commodity-OS kernel: processes with demand-paged
 * address spaces, COW fork, a page cache over a ramfs, anonymous-page
 * swapping under memory pressure, pipes, signals and a round-robin
 * scheduler. It implements vmm::GuestOsHooks, so the VMM walks its page
 * tables and delivers guest page faults to it.
 *
 * The kernel is *untrusted* in Overshadow's threat model: it manages
 * cloaked applications' resources but must never see their plaintext.
 * A MaliceConfig lets tests turn it actively hostile (snooping buffers,
 * tampering with swapped pages, replaying stale page contents) to
 * verify the cloak engine detects every attack.
 */

#ifndef OSH_OS_KERNEL_HH
#define OSH_OS_KERNEL_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "os/frames.hh"
#include "os/process.hh"
#include "os/program.hh"
#include "os/swap.hh"
#include "os/thread.hh"
#include "os/vfs.hh"
#include "vmm/hooks.hh"
#include "vmm/vmm.hh"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace osh::os
{

class AttackHooks;

/**
 * Interface the system layer implements to create guest threads for
 * new processes (the kernel cannot do it: thread bodies need the
 * Overshadow runtime wiring that lives above the OS).
 */
class ProcessHost
{
  public:
    virtual ~ProcessHost() = default;

    /** Start the thread of a freshly created/spawned process. */
    virtual void startProgram(Process& proc) = 0;

    /**
     * Start the thread of a fork child. @p token identifies the
     * parent-registered child body.
     */
    virtual void startForkChild(Process& parent, Process& child,
                                std::uint64_t token) = 0;

    /** Called after a process fully exited (cloak teardown etc.). */
    virtual void onProcessExit(Process& proc) = 0;
};

/** Knobs that make the kernel actively malicious (attack tests). */
struct MaliceConfig
{
    /** Record every page the kernel reads while snooping user memory at
     *  each syscall entry (privacy probes). */
    bool snoopUserMemory = false;
    GuestVA snoopVa = 0;
    std::vector<std::vector<std::uint8_t>> snoopedData;

    /** Scribble over user memory at snoopVa on each syscall entry
     *  (direct kernel tampering with application state). */
    bool scribbleUserMemory = false;

    /** Flip a byte of every page written to swap. */
    bool tamperSwap = false;

    /** Replay: on swap-in, return the *first* version ever swapped out
     *  for that slot owner instead of the latest. */
    bool replaySwap = false;
    std::map<std::uint64_t, std::array<std::uint8_t, pageSize>> firstVersions;

    /** Scribble over the user buffer after read() completes. */
    bool corruptReadBuffers = false;

    /** Record register files observed at syscall entry (to prove
     *  scrubbing hides cloaked registers). */
    bool recordTrapFrames = false;
    std::vector<vmm::RegisterFile> trapFrames;
};

/** The guest kernel. */
class Kernel : public vmm::GuestOsHooks
{
  public:
    /**
     * @param vmm The VMM this guest runs on.
     * @param sched Scheduler shared with the system layer.
     * @param programs Program registry ("/bin").
     */
    Kernel(vmm::Vmm& vmm, Scheduler& sched, ProgramRegistry& programs);
    ~Kernel() override;

    void setProcessHost(ProcessHost* host) { host_ = host; }

    /**
     * Whether Overshadow is present on this system. When false (native
     * baseline), programs marked cloaked run as ordinary processes:
     * no cloaked VMAs, ordinary COW fork.
     */
    void setCloakingAvailable(bool available)
    {
        cloakingAvailable_ = available;
    }

    // GuestOsHooks ------------------------------------------------------
    vmm::GuestPte translateGuest(Asid asid, GuestVA va) override;
    void handleGuestPageFault(vmm::Vcpu& vcpu, GuestVA va,
                              vmm::AccessType access) override;
    void notifyWrite(Asid asid, GuestVA va_page) override;

    // Process lifecycle -------------------------------------------------

    /**
     * Create a process structure (no thread yet) for a program. The
     * host starts its thread; the image is built by setupProcessImage.
     */
    Process& createProcess(const std::string& program,
                           std::vector<std::string> argv, Pid ppid = 0);

    /** Build the initial VMAs (stack, code) for a program image. */
    void setupProcessImage(Process& proc, const Program& program);

    /** Bind a guest thread to its process (host calls this). */
    void bindThread(Pid pid, Thread& thread);

    Thread* threadOf(Pid pid);

    /** Terminate a process; throws if it is the current one. */
    void killProcess(Process& proc, const std::string& reason);

    /** Release every resource of a process (exit/exec). */
    void teardownAddressSpace(Process& proc);

    /** Full exit path for the current process. Does not return. */
    [[noreturn]] void exitCurrent(int status);

    /**
     * Final teardown after a thread body unwinds (exit, kill or cloak
     * violation): release the address space, close descriptors, mark
     * the process zombie and wake waiters. Never throws.
     */
    void finalizeExit(Process& proc, int status);

    // Syscalls -----------------------------------------------------------

    /**
     * Kernel entry for a trapped system call: arguments in the thread's
     * registers (r0 = number, r1..r5 = args), result returned and also
     * written to r0. Runs in kernel mode; may block.
     */
    std::int64_t syscallEntry(Thread& thread);

    /**
     * Is @p num allowed inside a SubmitBatch ring? The shim applies
     * the same whitelist so depth-independent semantics hold on both
     * sides of the trust boundary.
     */
    static bool batchable(Sys num);

    /** Timer interrupt: scheduling tick (+ pending kill/signal checks). */
    void timerTick(Thread& thread);

    // Checkpoint quiesce --------------------------------------------------

    /**
     * Driver context: ask that @p pid be frozen at its @p after_entries
     * -th kernel entry (syscall or timer tick) from now. The thread
     * parks at a trap boundary — registers saved to its CTC for cloaked
     * processes — and the scheduler pauses once nothing else is
     * runnable, handing control back to the checkpointing driver.
     */
    void requestFreeze(Pid pid, std::uint64_t after_entries = 1);

    /** Is this process's thread parked on the freeze channel? */
    bool isFrozen(Pid pid);

    /** Driver context: make a frozen process runnable again. */
    void thaw(Pid pid);

    // Components ---------------------------------------------------------
    vmm::Vmm& vmm() { return vmm_; }
    Scheduler& sched() { return sched_; }
    Vfs& vfs() { return vfs_; }
    FrameAllocator& frames() { return frames_; }
    SwapDevice& swap() { return swap_; }
    ProgramRegistry& programs() { return programs_; }
    MaliceConfig& malice() { return malice_; }

    /**
     * Install (or clear, with nullptr) the hostile-kernel hooks. The
     * attack campaign's director uses this; the legacy MaliceConfig
     * knobs keep working independently.
     */
    void setAttackHooks(AttackHooks* hooks) { attackHooks_ = hooks; }
    AttackHooks* attackHooks() { return attackHooks_; }

    StatGroup& stats() { return stats_; }

    Process* findProcess(Pid pid);
    Process& process(Pid pid);
    Process& currentProcess();
    Thread& currentThread();

    /** All pids (tests/inspection). */
    std::vector<Pid> pids() const;

    // User-memory helpers (kernel view!) ----------------------------------
    bool validUserRange(Process& proc, GuestVA va, std::uint64_t len,
                        bool write);
    void copyToUser(Thread& t, GuestVA va,
                    std::span<const std::uint8_t> data);
    void copyFromUser(Thread& t, GuestVA va, std::span<std::uint8_t> out);
    std::string readUserString(Thread& t, GuestVA va,
                               std::size_t max = 4096);

    /**
     * Hostile-kernel seam: forcibly swap out one anonymous page of
     * @p pid, exactly as memory pressure would. The timing campaign's
     * async-drain prober uses this to place a chosen victim page on
     * the asynchronous eviction queue and then time the drain barrier.
     * Returns false (and does nothing) unless the page is a present,
     * unpinned, singly-mapped anonymous frame — the same candidate
     * rules evictOneFrame() applies.
     */
    bool forceSwapOut(Pid pid, GuestVA va_page);

  private:
    friend class KernelModeGuard;

    // Memory management ----------------------------------------------------
    Gpa allocFrameOrEvict(FrameUse use);
    bool evictOneFrame();
    void swapOutAnon(Gpa gpa);
    void swapIn(Process& proc, GuestVA va_page, Pte& pte, const Vma& vma);
    void dropPageCachePage(Inode& ino, std::uint64_t page_index);

    /**
     * Write one dirty cached page to the disk image. @p charge_seek
     * distinguishes a random single-page writeback (eviction) from a
     * page inside a batched fsync, which pays the seek only once.
     */
    void writebackPage(Inode& ino, std::uint64_t page_index,
                       bool charge_seek = true);
    PageCacheEntry& ensureCached(InodeId ino_id, std::uint64_t page_index);
    void breakCow(Process& proc, GuestVA va_page, Pte& pte);
    void addAnonMapping(Gpa gpa, Asid asid, GuestVA va_page);
    void dropAnonMapping(Gpa gpa, Asid asid, GuestVA va_page);
    void releasePte(Process& proc, GuestVA va_page, Pte& pte);

    /** Copy one whole frame through the kernel view (cloak-visible). */
    void readFrameAsKernel(Thread& t, Gpa gpa,
                           std::span<std::uint8_t> out);
    void writeFrameAsKernel(Thread& t, Gpa gpa,
                            std::span<const std::uint8_t> data);

    // Syscall implementations ----------------------------------------------

    /**
     * The dispatch switch shared by the per-trap path (syscallEntry)
     * and the batched path (sysSubmitBatch): routes one decoded call
     * to its sys* handler. Charges nothing itself — trap-boundary
     * costs stay in syscallEntry, so batch dispatch pays them once.
     */
    std::int64_t dispatchSyscall(Thread& t, Sys num, std::uint64_t a1,
                                 std::uint64_t a2, std::uint64_t a3,
                                 std::uint64_t a4, std::uint64_t a5);

    std::int64_t sysExit(Thread& t, std::int64_t status);
    std::int64_t sysMmap(Thread& t, std::uint64_t len, std::uint64_t prot,
                         std::uint64_t flags, std::uint64_t fd,
                         std::uint64_t offset);
    std::int64_t sysMunmap(Thread& t, GuestVA va);
    std::int64_t sysOpen(Thread& t, GuestVA path_va, std::uint64_t flags);
    std::int64_t sysClose(Thread& t, std::uint64_t fd);
    std::int64_t sysRead(Thread& t, std::uint64_t fd, GuestVA buf,
                         std::uint64_t len);
    std::int64_t sysWrite(Thread& t, std::uint64_t fd, GuestVA buf,
                          std::uint64_t len);
    std::int64_t sysPread(Thread& t, std::uint64_t fd, GuestVA buf,
                          std::uint64_t len, std::uint64_t off);
    std::int64_t sysPwrite(Thread& t, std::uint64_t fd, GuestVA buf,
                           std::uint64_t len, std::uint64_t off);
    std::int64_t sysLseek(Thread& t, std::uint64_t fd, std::int64_t off,
                          std::uint64_t whence);
    std::int64_t sysFstat(Thread& t, std::uint64_t fd, GuestVA out_va);
    std::int64_t sysReadDir(Thread& t, std::uint64_t fd,
                            std::uint64_t index, GuestVA buf,
                            std::uint64_t buf_len);
    std::int64_t sysFtruncate(Thread& t, std::uint64_t fd,
                              std::uint64_t size);
    std::int64_t sysFsync(Thread& t, std::uint64_t fd);
    std::int64_t sysPipe(Thread& t, GuestVA fds_out);
    std::int64_t sysDup(Thread& t, std::uint64_t fd);
    std::int64_t sysDup2(Thread& t, std::uint64_t oldfd,
                         std::uint64_t newfd);
    std::int64_t sysSubmitBatch(Thread& t, GuestVA sub_va,
                                GuestVA comp_va, std::uint64_t count);
    std::int64_t sysSpawn(Thread& t, GuestVA name_va, GuestVA argv_va,
                          std::uint64_t argv_len);
    std::int64_t sysFork(Thread& t, std::uint64_t token);
    std::int64_t sysExec(Thread& t, GuestVA name_va, GuestVA argv_va,
                         std::uint64_t argv_len);
    std::int64_t sysWaitPid(Thread& t, std::int64_t pid, GuestVA status_va);
    std::int64_t sysVmaQuery(Thread& t, std::uint64_t index,
                             std::uint64_t field);
    std::int64_t sysKill(Thread& t, std::int64_t pid, std::uint64_t sig);
    std::int64_t sysSigAction(Thread& t, std::uint64_t sig,
                              std::uint64_t token);

    std::int64_t pipeRead(Thread& t, OpenFile& f, GuestVA buf,
                          std::uint64_t len);
    std::int64_t pipeWrite(Thread& t, OpenFile& f, GuestVA buf,
                           std::uint64_t len);
    void closeFile(Process& proc, std::shared_ptr<OpenFile>& slot);

    /** Parse a spawn/exec argv blob from user memory. */
    std::vector<std::string> readArgvBlob(Thread& t, GuestVA va,
                                          std::uint64_t len);

    /** Throw ProcessKilled if someone requested our death. */
    void checkKillRequested(Thread& t);

    /** Park the thread if a freeze request for it has counted down. */
    void checkFreezeRequested(Thread& t);

    /** Queue signal-delivery marker for the runtime, if any pending. */
    void maybeDeliverSignal(Thread& t);

    vmm::Vmm& vmm_;
    Scheduler& sched_;
    ProgramRegistry& programs_;
    Vfs vfs_;
    FrameAllocator frames_;
    SwapDevice swap_;
    ProcessHost* host_ = nullptr;

    std::map<Pid, std::unique_ptr<Process>> processes_;
    std::map<Pid, Thread*> threads_;
    Pid nextPid_ = 1;

    /** Reverse map: anon frame -> (asid, va) mappers (COW sharing). */
    std::map<Gpa, std::vector<std::pair<Asid, GuestVA>>> anonMappers_;

    /** Pending freeze requests: pid -> kernel entries remaining. */
    std::map<Pid, std::uint64_t> freezeRequests_;

    bool cloakingAvailable_ = true;
    MaliceConfig malice_;
    AttackHooks* attackHooks_ = nullptr;
    StatGroup stats_;
};

/** RAII: switch a thread's vcpu into kernel mode (system view). */
class KernelModeGuard
{
  public:
    explicit KernelModeGuard(vmm::Vcpu& vcpu) : vcpu_(vcpu),
        saved_(vcpu.context())
    {
        vmm::Context kctx = saved_;
        kctx.view = systemDomain;
        kctx.kernelMode = true;
        vcpu_.context() = kctx;
    }

    ~KernelModeGuard() { vcpu_.context() = saved_; }

    KernelModeGuard(const KernelModeGuard&) = delete;
    KernelModeGuard& operator=(const KernelModeGuard&) = delete;

  private:
    vmm::Vcpu& vcpu_;
    vmm::Context saved_;
};

} // namespace osh::os

#endif // OSH_OS_KERNEL_HH
