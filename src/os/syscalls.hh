/**
 * @file
 * System-call numbers, flags and error codes of the guest ABI.
 *
 * Arguments travel in registers r0 (number) and r1..r5; the result comes
 * back in r0 as a non-negative value or a negative Err. Buffers and
 * strings are guest virtual addresses; the kernel moves data with
 * copyin/copyout through its system view — which is precisely where
 * Overshadow's cloaking interposes.
 */

#ifndef OSH_OS_SYSCALLS_HH
#define OSH_OS_SYSCALLS_HH

#include <cstdint>

namespace osh::os
{

/** System call numbers. */
enum class Sys : std::uint64_t
{
    Exit = 1,
    GetPid = 2,
    GetPpid = 3,
    Yield = 4,
    Clock = 5,       ///< Read the simulated cycle counter.
    Sleep = 6,       ///< Sleep for N cycles (cooperative).

    Mmap = 10,
    Munmap = 11,

    Open = 20,
    Close = 21,
    Read = 22,
    Write = 23,
    Lseek = 24,
    Fstat = 25,
    Unlink = 26,
    Mkdir = 27,
    ReadDir = 28,    ///< Read the name of the i-th directory entry.
    Ftruncate = 29,
    Fsync = 30,
    Rename = 31,
    Pipe = 32,
    Dup = 33,
    Pread = 34,      ///< Positional read: offset argument, fd offset untouched.
    Pwrite = 35,     ///< Positional write: offset argument, fd offset untouched.
    Dup2 = 36,       ///< Duplicate oldfd onto a caller-chosen newfd.
    SubmitBatch = 37,///< Dispatch a ring of syscall descriptors in one trap.

    Spawn = 40,      ///< fork+exec combo: start a program as a child.
    Fork = 41,
    Exec = 42,
    WaitPid = 43,
    Kill = 44,
    SigAction = 45,
    SigPending = 46,
    VmaQuery = 47,   ///< Inspect the i-th VMA of the caller (register ABI).
};

/** Stable name of a syscall number (tracing, diagnostics). */
constexpr const char*
sysName(Sys num)
{
    switch (num) {
      case Sys::Exit: return "exit";
      case Sys::GetPid: return "getpid";
      case Sys::GetPpid: return "getppid";
      case Sys::Yield: return "yield";
      case Sys::Clock: return "clock";
      case Sys::Sleep: return "sleep";
      case Sys::Mmap: return "mmap";
      case Sys::Munmap: return "munmap";
      case Sys::Open: return "open";
      case Sys::Close: return "close";
      case Sys::Read: return "read";
      case Sys::Write: return "write";
      case Sys::Lseek: return "lseek";
      case Sys::Fstat: return "fstat";
      case Sys::Unlink: return "unlink";
      case Sys::Mkdir: return "mkdir";
      case Sys::ReadDir: return "readdir";
      case Sys::Ftruncate: return "ftruncate";
      case Sys::Fsync: return "fsync";
      case Sys::Rename: return "rename";
      case Sys::Pipe: return "pipe";
      case Sys::Dup: return "dup";
      case Sys::Pread: return "pread";
      case Sys::Pwrite: return "pwrite";
      case Sys::Dup2: return "dup2";
      case Sys::SubmitBatch: return "submit_batch";
      case Sys::Spawn: return "spawn";
      case Sys::Fork: return "fork";
      case Sys::Exec: return "exec";
      case Sys::WaitPid: return "waitpid";
      case Sys::Kill: return "kill";
      case Sys::SigAction: return "sigaction";
      case Sys::SigPending: return "sigpending";
      case Sys::VmaQuery: return "vmaquery";
    }
    return "sys_unknown";
}

/** Error codes (returned negated). */
enum Err : std::int64_t
{
    errOk = 0,
    errPerm = 1,
    errNoEnt = 2,
    errSrch = 3,
    errBadF = 9,
    errChild = 10,
    errNoMem = 12,
    errFault = 14,
    errBusy = 16,
    errExist = 17,
    errNotDir = 20,
    errIsDir = 21,
    errInval = 22,
    errNFile = 23,
    errNoSpc = 28,
    errSPipe = 29,
    errPipe = 32,
    errNoSys = 38,
};

/**
 * Upper bound on a Sys::Sleep argument (in cycles). ~4.3 billion
 * cycles is hours of simulated time — far beyond any legitimate
 * cooperative sleep — while still a small fraction of the counter's
 * range, so the charge can never overflow or wedge the clock.
 * Larger arguments return -errInval without charging anything.
 */
constexpr std::uint64_t maxSleepCycles = 1ull << 32;

/** mmap protection bits. */
constexpr std::uint64_t protRead = 1;
constexpr std::uint64_t protWrite = 2;

/** mmap flags. */
constexpr std::uint64_t mapAnon = 1;
constexpr std::uint64_t mapShared = 2;
/**
 * Hint that the region holds cloaked data. This is a resource-management
 * hint for the OS (like a special mmap flag the shim passes); protection
 * itself is enforced purely by the VMM, never by this flag.
 */
constexpr std::uint64_t mapCloaked = 4;

/** open() flags. */
constexpr std::uint64_t openRead = 1;
constexpr std::uint64_t openWrite = 2;
constexpr std::uint64_t openCreate = 4;
constexpr std::uint64_t openTrunc = 8;

/** lseek whence. */
constexpr std::uint64_t seekSet = 0;
constexpr std::uint64_t seekCur = 1;
constexpr std::uint64_t seekEnd = 2;

/** VmaQuery fields (all results fit in the return register, so the
 *  call needs no user-memory operands and passes through the shim). */
constexpr std::uint64_t vmaQueryStart = 0;
constexpr std::uint64_t vmaQueryEnd = 1;
constexpr std::uint64_t vmaQueryFlags = 2;
/** VmaQuery flag bits. */
constexpr std::uint64_t vmaFlagCloaked = 1;
constexpr std::uint64_t vmaFlagAnon = 2;

/** Signals. */
constexpr int sigKill = 9;
constexpr int sigUser1 = 10;
constexpr int sigUser2 = 12;
constexpr int sigTerm = 15;
constexpr int numSignals = 32;

/** fstat result, written to user memory. */
struct StatBuf
{
    std::uint64_t size;
    std::uint32_t isDir;
    std::uint32_t inode;
};

/**
 * Batched-syscall ring ABI (Sys::SubmitBatch).
 *
 * SubmitBatch(sub_va, comp_va, count) names a submission array of
 * `count` descriptors at sub_va and a completion array of `count`
 * entries at comp_va, both in user memory. The kernel copies every
 * descriptor out ONCE before dispatching anything (the caller — for
 * cloaked processes, the shim — likewise copies each completion out
 * once before trusting it), dispatches the batch through the ordinary
 * per-syscall handlers inside the single trap, and writes one
 * completion per descriptor. The return value is the number of
 * completions written, or a negative Err if the ring itself is
 * malformed (bad count, unmapped arrays).
 *
 * Descriptor (8 little-endian u64 words, 64 bytes):
 *   word 0  syscall number (must be batch-whitelisted, see kernel)
 *   word 1..5  arguments r1..r5
 *   word 6  echo token, copied verbatim into the completion
 *   word 7  reserved, must be 0
 *
 * Completion (2 little-endian u64 words, 16 bytes):
 *   word 0  result (r0 of the dispatched call)
 *   word 1  the descriptor's echo token
 *
 * The echo token exists for the cloaked path: the shim draws tokens
 * from a private stream, and a completion whose token does not match
 * what the shim wrote proves the (hostile) kernel forged or reordered
 * completions — grounds for a cloak-violation kill, never for trusting
 * the data.
 */
constexpr std::uint64_t batchDescWords = 8;
constexpr std::uint64_t batchDescBytes = batchDescWords * 8;
constexpr std::uint64_t batchCompWords = 2;
constexpr std::uint64_t batchCompBytes = batchCompWords * 8;
/** Hard ring capacity: a batch deeper than this is rejected whole. */
constexpr std::uint64_t maxBatchDepth = 32;

/** One batch descriptor, host-side view (serialized little-endian). */
struct BatchDesc
{
    Sys num = Sys::GetPid;
    std::uint64_t args[5] = {0, 0, 0, 0, 0};
    std::uint64_t echo = 0;
    std::uint64_t reserved = 0;
};

/** One batch completion, host-side view. */
struct BatchComp
{
    std::uint64_t result = 0;
    std::uint64_t echo = 0;
};

} // namespace osh::os

#endif // OSH_OS_SYSCALLS_HH
