/**
 * @file
 * Env: the user-space view a guest program runs against.
 *
 * Every guest program receives an Env. It provides:
 *   - guest memory access through the thread's Vcpu (all loads/stores
 *     take the full MMU path: shadow faults, guest faults, cloaking);
 *   - the system-call interface, with two interposition points used by
 *     the Overshadow runtime: a SyscallInterposer (the cloaked shim,
 *     which marshals/emulates calls) and a trap hook (the secure
 *     control transfer that saves/scrubs/restores registers around
 *     every kernel entry);
 *   - user-side conveniences (typed syscall wrappers, signal handler
 *     dispatch, fork bodies).
 */

#ifndef OSH_OS_ENV_HH
#define OSH_OS_ENV_HH

#include "base/types.hh"
#include "os/exceptions.hh"
#include "os/kernel.hh"
#include "os/syscalls.hh"
#include "os/thread.hh"

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace osh::os
{

class Env;

/** Syscall arguments (r1..r5). */
using SyscallArgs = std::array<std::uint64_t, 5>;

/** One call of a batched submission (Env::submitBatch). */
struct BatchEntry
{
    Sys num = Sys::GetPid;
    SyscallArgs args{};
};

/** Interposes on every syscall a program issues (the cloaked shim). */
class SyscallInterposer
{
  public:
    virtual ~SyscallInterposer() = default;
    virtual std::int64_t syscall(Env& env, Sys num,
                                 const SyscallArgs& args) = 0;
};

/** Services the system layer provides to Envs (fork-body registry). */
class EnvRuntime
{
  public:
    virtual ~EnvRuntime() = default;

    /** Register a fork child body; returns the token passed to Fork. */
    virtual std::uint64_t
    registerForkBody(std::function<int(Env&)> body) = 0;
};

/** The user-space execution environment of one guest thread. */
class Env
{
  public:
    Env(Kernel& kernel, Thread& thread, EnvRuntime* runtime);

    Thread& thread() { return thread_; }
    Kernel& kernel() { return kernel_; }
    Process& process() { return kernel_.process(thread_.pid); }
    vmm::Vcpu& vcpu() { return thread_.vcpu; }
    vmm::RegisterFile& regs() { return thread_.vcpu.regs(); }

    /** Program arguments. */
    const std::vector<std::string>& args() const;

    // Guest memory (full MMU path) --------------------------------------
    std::uint8_t load8(GuestVA va) { return thread_.vcpu.load8(va); }
    std::uint64_t load64(GuestVA va) { return thread_.vcpu.load64(va); }
    std::uint32_t load32(GuestVA va) { return thread_.vcpu.load32(va); }
    void store8(GuestVA va, std::uint8_t v) { thread_.vcpu.store8(va, v); }
    void store32(GuestVA va, std::uint32_t v)
    {
        thread_.vcpu.store32(va, v);
    }
    void store64(GuestVA va, std::uint64_t v)
    {
        thread_.vcpu.store64(va, v);
    }
    void
    readBytes(GuestVA va, std::span<std::uint8_t> out)
    {
        thread_.vcpu.readBytes(va, out);
    }
    void
    writeBytes(GuestVA va, std::span<const std::uint8_t> data)
    {
        thread_.vcpu.writeBytes(va, data);
    }
    void writeString(GuestVA va, const std::string& s);
    std::string readString(GuestVA va, std::size_t max = 4096);

    // Syscall plumbing ----------------------------------------------------

    /**
     * Issue a system call. Routed through the interposer when one is
     * installed (cloaked processes); otherwise traps directly.
     */
    std::int64_t syscall(Sys num, SyscallArgs args = {});

    /**
     * Trap into the kernel, bypassing the interposer (the shim uses
     * this after marshalling). Applies the trap hook (secure control
     * transfer) if installed.
     */
    std::int64_t trapToKernel(Sys num, const SyscallArgs& args);

    void setInterposer(SyscallInterposer* in) { interposer_ = in; }
    SyscallInterposer* interposer() { return interposer_; }

    /** Hook wrapping the raw kernel entry (set by the cloak runtime). */
    using TrapHook =
        std::function<std::int64_t(Env&, Sys, const SyscallArgs&)>;
    void setTrapHook(TrapHook hook) { trapHook_ = std::move(hook); }

    /** The bare kernel entry (used by the trap hook's inner call). */
    std::int64_t rawKernelEntry(Sys num, const SyscallArgs& args);

    // Typed wrappers -------------------------------------------------------
    [[noreturn]] void exit(int status);
    Pid getpid() { return static_cast<Pid>(syscall(Sys::GetPid)); }
    Pid getppid() { return static_cast<Pid>(syscall(Sys::GetPpid)); }
    void yield() { syscall(Sys::Yield); }
    Cycles clock()
    {
        return static_cast<Cycles>(syscall(Sys::Clock));
    }
    void sleep(Cycles c) { syscall(Sys::Sleep, {c}); }

    /** mmap; returns VA or negative error. */
    std::int64_t mmap(std::uint64_t len, std::uint64_t prot,
                      std::uint64_t flags, std::uint64_t fd = ~0ull,
                      std::uint64_t offset = 0);
    std::int64_t munmap(GuestVA va) { return syscall(Sys::Munmap, {va}); }

    /**
     * Allocate anonymous pages. Cloaked processes get cloaked pages by
     * default (their heap is private data).
     */
    GuestVA allocPages(std::uint64_t pages);
    GuestVA allocUncloakedPages(std::uint64_t pages);

    std::int64_t open(const std::string& path, std::uint64_t flags);
    std::int64_t close(std::uint64_t fd)
    {
        return syscall(Sys::Close, {fd});
    }
    std::int64_t read(std::uint64_t fd, GuestVA buf, std::uint64_t len)
    {
        return syscall(Sys::Read, {fd, buf, len});
    }
    std::int64_t write(std::uint64_t fd, GuestVA buf, std::uint64_t len)
    {
        return syscall(Sys::Write, {fd, buf, len});
    }
    std::int64_t lseek(std::uint64_t fd, std::int64_t off,
                       std::uint64_t whence)
    {
        return syscall(Sys::Lseek,
                       {fd, static_cast<std::uint64_t>(off), whence});
    }
    std::int64_t pread(std::uint64_t fd, GuestVA buf, std::uint64_t len,
                       std::uint64_t off)
    {
        return syscall(Sys::Pread, {fd, buf, len, off});
    }
    std::int64_t pwrite(std::uint64_t fd, GuestVA buf, std::uint64_t len,
                        std::uint64_t off)
    {
        return syscall(Sys::Pwrite, {fd, buf, len, off});
    }
    std::int64_t fstat(std::uint64_t fd, StatBuf& out);
    std::int64_t unlink(const std::string& path);
    std::int64_t mkdir(const std::string& path);
    std::int64_t readdir(std::uint64_t fd, std::uint64_t index,
                         std::string& name_out);
    std::int64_t ftruncate(std::uint64_t fd, std::uint64_t size)
    {
        return syscall(Sys::Ftruncate, {fd, size});
    }
    std::int64_t fsync(std::uint64_t fd)
    {
        return syscall(Sys::Fsync, {fd});
    }
    std::int64_t rename(const std::string& from, const std::string& to);
    std::int64_t pipe(int& read_fd, int& write_fd);
    std::int64_t dup(std::uint64_t fd) { return syscall(Sys::Dup, {fd}); }
    std::int64_t dup2(std::uint64_t oldfd, std::uint64_t newfd)
    {
        return syscall(Sys::Dup2, {oldfd, newfd});
    }

    /**
     * Submit @p entries as one batched kernel entry (Sys::SubmitBatch):
     * the calls are staged into this Env's ring pages, dispatched in
     * one trap, and the per-call results land in @p results (same
     * order). Returns the number of completions, or a negative error
     * if the batch itself was rejected. Cloaked processes route this
     * through the shim, which re-stages the ring in its uncloaked
     * marshal arena and validates every completion.
     */
    std::int64_t submitBatch(const std::vector<BatchEntry>& entries,
                             std::vector<std::int64_t>& results);

    /** Convenience: write a whole string to a descriptor. */
    std::int64_t writeAll(std::uint64_t fd, const std::string& data);
    /** Convenience: read up to n bytes into a host string. */
    std::string readSome(std::uint64_t fd, std::size_t n);

    /** fork: the child runs @p child_body and exits with its result. */
    Pid fork(std::function<int(Env&)> child_body);

    /** spawn: start @p program as a child process (fork+exec combo). */
    Pid spawn(const std::string& program,
              const std::vector<std::string>& argv = {});

    /** exec: replace this process image. Throws ExecRequested. */
    [[noreturn]] void exec(const std::string& program,
                           const std::vector<std::string>& argv = {});

    std::int64_t waitpid(Pid pid, int* status = nullptr);
    std::int64_t kill(Pid pid, int sig)
    {
        return syscall(Sys::Kill,
                       {static_cast<std::uint64_t>(pid),
                        static_cast<std::uint64_t>(sig)});
    }

    /** Query the i-th VMA of this process (register-only ABI). */
    std::int64_t vmaQuery(std::uint64_t index, std::uint64_t field)
    {
        return syscall(Sys::VmaQuery, {index, field});
    }

    /** Register a user signal handler (runs at syscall boundaries). */
    void onSignal(int sig, std::function<void(Env&, int)> handler);

    /** Deliver any pending signal marker (called after each syscall). */
    void pollSignals();

  private:
    /** Scratch page used to pass strings/argv blobs to the kernel. */
    GuestVA scratch();

    /** Ring page for submitBatch (descriptors + completions). */
    GuestVA batchArea();

    Kernel& kernel_;
    Thread& thread_;
    EnvRuntime* runtime_;
    SyscallInterposer* interposer_ = nullptr;
    TrapHook trapHook_;

    GuestVA scratch_ = 0;
    GuestVA batchArea_ = 0;
    std::uint64_t nextHandlerToken_ = 1;
    std::map<std::uint64_t, std::function<void(Env&, int)>> handlers_;
    bool inSignalHandler_ = false;
};

} // namespace osh::os

#endif // OSH_OS_ENV_HH
