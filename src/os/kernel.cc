/**
 * @file
 * Kernel core: process lifecycle, guest page-table walking, demand
 * paging, COW, the page cache and swapping. Syscall implementations
 * live in kernel_syscalls.cc.
 */

#include "os/kernel.hh"

#include "os/attack_hooks.hh"
#include "os/exceptions.hh"

#include "base/logging.hh"
#include "os/layout.hh"
#include "vmm/vcpu.hh"

#include <algorithm>
#include <array>
#include <cstring>

namespace osh::os
{

Kernel::Kernel(vmm::Vmm& vmm, Scheduler& sched, ProgramRegistry& programs)
    : vmm_(vmm), sched_(sched), programs_(programs),
      frames_(vmm.pmap().guestFrames()),
      swap_(vmm.machine().cost()), stats_("kernel")
{
    vmm_.setGuestOs(this);
    swap_.setTracer(&vmm_.machine().tracer());
    vfs_.setTracer(&vmm_.machine().tracer());
}

Kernel::~Kernel()
{
    // Flush in-flight async evictions while the swap device and attack
    // hooks are still alive; the engine outlives the kernel (System
    // member order) and must not commit into destroyed state later.
    vmm_.drainAsyncEvictions();
    vmm_.setGuestOs(nullptr);
}

// ---------------------------------------------------------------------------
// GuestOsHooks
// ---------------------------------------------------------------------------

vmm::GuestPte
Kernel::translateGuest(Asid asid, GuestVA va)
{
    vmm::GuestPte out;

    // Kernel direct map: global, supervisor-only, in every address space.
    if (va >= kernelBase) {
        Gpa gpa = va - kernelBase;
        if (pageNumber(gpa) >= frames_.numFrames())
            return out;
        out.gpa = pageBase(gpa);
        out.present = true;
        out.writable = true;
        out.user = false;
        return out;
    }

    auto pit = processes_.find(static_cast<Pid>(asid));
    if (pit == processes_.end())
        return out;
    const Pte* pte = pit->second->as.findPte(pageBase(va));
    if (pte == nullptr || !pte->present)
        return out;
    out.gpa = pte->gpa;
    out.present = true;
    out.writable = pte->writable && !pte->cow;
    out.user = pte->user;
    out.cow = pte->cow;
    return out;
}

void
Kernel::handleGuestPageFault(vmm::Vcpu& vcpu, GuestVA va,
                             vmm::AccessType access)
{
    stats_.counter("page_faults").inc();
    Asid asid = vcpu.context().asid;
    GuestVA va_page = pageBase(va);

    auto pit = processes_.find(static_cast<Pid>(asid));
    if (pit == processes_.end()) {
        osh_panic("page fault in unknown address space %u va 0x%llx",
                  asid, static_cast<unsigned long long>(va));
    }
    Process& proc = *pit->second;

    // All fault handling runs in kernel mode on the faulting thread.
    KernelModeGuard guard(vcpu);
    Thread* t = threadOf(proc.pid);
    osh_assert(t != nullptr, "fault in process without a thread");

    Vma* vma = proc.as.findVma(va_page);
    if (vma == nullptr) {
        killProcess(proc, formatString("segfault: no mapping at 0x%llx",
                                       static_cast<unsigned long long>(va)));
        return; // not reached for the current process
    }
    if (access == vmm::AccessType::Write && !(vma->prot & protWrite)) {
        killProcess(proc, formatString("segfault: write to read-only "
                                       "mapping at 0x%llx",
                                       static_cast<unsigned long long>(va)));
        return;
    }
    if (access == vmm::AccessType::Read && !(vma->prot & protRead)) {
        killProcess(proc, "segfault: read from PROT_NONE mapping");
        return;
    }

    Pte& pte = proc.as.pte(va_page);

    if (pte.present) {
        if (access == vmm::AccessType::Write && pte.cow) {
            breakCow(proc, va_page, pte);
            return;
        }
        if (access == vmm::AccessType::Write && !pte.writable) {
            // Lazily promote within a writable VMA.
            pte.writable = true;
            vmm_.invalidateVa(proc.as.asid(), va_page);
            return;
        }
        // Present and permitted: the fault was a stale shadow; the VMM
        // retry will succeed.
        return;
    }

    if (pte.swapped) {
        swapIn(proc, va_page, pte, *vma);
        return;
    }

    if (vma->type == VmaType::Anon) {
        Gpa gpa = allocFrameOrEvict(FrameUse::Anon);
        // Zero-fill. A fresh frame may hold stale data from its last
        // owner; zero through raw machine memory (fresh frames are
        // never cloaked plaintext — see cloak teardown invariant).
        vmm_.machine().memory().zeroFrame(vmm_.pmap().translate(gpa));
        vmm_.machine().cost().charge(
            vmm_.machine().cost().params().pageZero, "page_zero");
        FrameInfo& fi = frames_.info(gpa);
        fi.asid = proc.as.asid();
        fi.vaPage = va_page;
        fi.pinned = false;
        addAnonMapping(gpa, proc.as.asid(), va_page);
        pte.gpa = gpa;
        pte.present = true;
        pte.writable = (vma->prot & protWrite) != 0;
        pte.user = true;
        stats_.counter("anon_faults").inc();
        return;
    }

    // File-backed mapping.
    std::uint64_t page_index =
        (va_page - vma->start + vma->fileOffset) / pageSize;
    PageCacheEntry& entry = ensureCached(vma->inode, page_index);
    entry.mapCount++;
    // Write faults dirty the page immediately; later silent writes
    // through an existing mapping are caught by notifyWrite (the
    // hardware dirty bit).
    if (access == vmm::AccessType::Write)
        entry.dirty = true;
    pte.gpa = entry.gpa;
    pte.present = true;
    pte.writable = (vma->prot & protWrite) != 0 && vma->shared;
    pte.user = true;
    stats_.counter("file_faults").inc();
}

// ---------------------------------------------------------------------------
// Process lifecycle
// ---------------------------------------------------------------------------

Process&
Kernel::createProcess(const std::string& program,
                      std::vector<std::string> argv, Pid ppid)
{
    Pid pid = nextPid_++;
    auto proc = std::make_unique<Process>(pid, ppid, program);
    proc->argv = std::move(argv);
    const Program* prog = programs_.find(program);
    osh_assert(prog != nullptr, "unknown program '%s'", program.c_str());
    proc->cloaked = prog->cloaked && cloakingAvailable_;
    Process& ref = *proc;
    processes_[pid] = std::move(proc);
    stats_.counter("processes_created").inc();
    return ref;
}

void
Kernel::setupProcessImage(Process& proc, const Program& program)
{
    // Code region (synthetic: nothing is fetched from it).
    Vma code;
    code.start = codeBase;
    code.end = codeBase + 4 * pageSize;
    code.prot = protRead;
    code.cloaked = proc.cloaked;
    bool ok = proc.as.addVma(code);
    osh_assert(ok, "code VMA collision");

    // Stack.
    Vma stack;
    stack.end = stackTop;
    stack.start = stackTop - program.stackPages * pageSize;
    stack.prot = protRead | protWrite;
    stack.cloaked = proc.cloaked;
    ok = proc.as.addVma(stack);
    osh_assert(ok, "stack VMA collision");
}

void
Kernel::bindThread(Pid pid, Thread& thread)
{
    threads_[pid] = &thread;
}

Thread*
Kernel::threadOf(Pid pid)
{
    auto it = threads_.find(pid);
    return it == threads_.end() ? nullptr : it->second;
}

void
Kernel::killProcess(Process& proc, const std::string& reason)
{
    stats_.counter("kills").inc();
    Thread* cur = sched_.current();
    if (cur != nullptr && cur->pid == proc.pid) {
        throw vmm::ProcessKilled{proc.pid, reason};
    }
    proc.killRequested = true;
    proc.killReason = reason;
    if (Thread* t = threadOf(proc.pid))
        sched_.wakeThread(*t);
}

void
Kernel::checkKillRequested(Thread& t)
{
    Process* p = findProcess(t.pid);
    if (p != nullptr && p->killRequested)
        throw vmm::ProcessKilled{p->pid, p->killReason};
}

void
Kernel::requestFreeze(Pid pid, std::uint64_t after_entries)
{
    // The thread may not have run (and bound) yet — a request right
    // after launch() is fine; the countdown is keyed by pid.
    osh_assert(findProcess(pid) != nullptr,
               "freeze request for an unknown process");
    freezeRequests_[pid] = after_entries == 0 ? 1 : after_entries;
}

bool
Kernel::isFrozen(Pid pid)
{
    Thread* t = threadOf(pid);
    return t != nullptr && sched_.isFrozen(*t);
}

void
Kernel::thaw(Pid pid)
{
    Thread* t = threadOf(pid);
    osh_assert(t != nullptr && sched_.isFrozen(*t),
               "thaw of a process that is not frozen");
    sched_.resumeFrozen(*t);
}

void
Kernel::checkFreezeRequested(Thread& t)
{
    auto it = freezeRequests_.find(t.pid);
    if (it == freezeRequests_.end())
        return;
    if (--it->second > 0)
        return;
    freezeRequests_.erase(it);
    stats_.counter("freezes").inc();
    // A checkpoint may walk swap slots while we are parked: every
    // queued eviction must be fully sealed and committed first.
    vmm_.drainAsyncEvictions();
    sched_.freezeCurrent();
    // Thawed: either the checkpoint completed and the source resumes
    // (live-migration rounds), or a kill is pending (source abandon).
    checkKillRequested(t);
}

void
Kernel::releasePte(Process& proc, GuestVA va_page, Pte& pte)
{
    if (pte.present) {
        FrameInfo& fi = frames_.info(pte.gpa);
        if (fi.use == FrameUse::Anon) {
            dropAnonMapping(pte.gpa, proc.as.asid(), va_page);
            frames_.unref(pte.gpa);
        } else if (fi.use == FrameUse::PageCache) {
            if (vfs_.exists(fi.inode)) {
                Inode& ino = vfs_.inode(fi.inode);
                auto cit = ino.cache.find(fi.pageIndex);
                if (cit != ino.cache.end() && cit->second.mapCount > 0)
                    cit->second.mapCount--;
            }
        }
    } else if (pte.swapped) {
        // A pending async eviction may still owe this slot its
        // ciphertext; commit before the slot is scrubbed and reused.
        vmm_.drainAsyncEvictions();
        if (attackHooks_ != nullptr)
            attackHooks_->onSwapRelease(*this, pte.slot);
        swap_.release(pte.slot);
    }
    pte = Pte{};
}

void
Kernel::teardownAddressSpace(Process& proc)
{
    // Collect VAs first: releasePte mutates shared structures.
    std::vector<GuestVA> vas;
    vas.reserve(proc.as.ptes().size());
    for (auto& [va, pte] : proc.as.ptes())
        vas.push_back(va);
    for (GuestVA va : vas) {
        Pte* pte = proc.as.findPte(va);
        if (pte != nullptr)
            releasePte(proc, va, *pte);
    }
    proc.as = AddressSpace(proc.as.asid());
    vmm_.invalidateAsid(proc.as.asid());
}

void
Kernel::exitCurrent(int status)
{
    throw ThreadExit{status};
}

void
Kernel::finalizeExit(Process& proc, int status)
{
    teardownAddressSpace(proc);
    for (auto& slot : proc.fds) {
        if (slot)
            closeFile(proc, slot);
    }
    proc.fds.clear();
    proc.state = ProcState::Zombie;
    proc.exitStatus = status;
    threads_.erase(proc.pid);
    stats_.counter("processes_exited").inc();

    if (host_ != nullptr)
        host_->onProcessExit(proc);

    // Wake a parent blocked in waitpid.
    if (Process* parent = findProcess(proc.ppid))
        sched_.wakeAll(&parent->exitChannel);
}

Process*
Kernel::findProcess(Pid pid)
{
    auto it = processes_.find(pid);
    return it == processes_.end() ? nullptr : it->second.get();
}

Process&
Kernel::process(Pid pid)
{
    Process* p = findProcess(pid);
    osh_assert(p != nullptr, "no such process %d", pid);
    return *p;
}

Process&
Kernel::currentProcess()
{
    Thread* t = sched_.current();
    osh_assert(t != nullptr, "no current thread");
    return process(t->pid);
}

Thread&
Kernel::currentThread()
{
    Thread* t = sched_.current();
    osh_assert(t != nullptr, "no current thread");
    return *t;
}

std::vector<Pid>
Kernel::pids() const
{
    std::vector<Pid> out;
    out.reserve(processes_.size());
    for (const auto& [pid, p] : processes_)
        out.push_back(pid);
    return out;
}

// ---------------------------------------------------------------------------
// User-memory helpers
// ---------------------------------------------------------------------------

bool
Kernel::validUserRange(Process& proc, GuestVA va, std::uint64_t len,
                       bool write)
{
    if (len == 0)
        return true;
    if (va >= kernelBase || va + len > kernelBase || va + len < va)
        return false;
    GuestVA cur = pageBase(va);
    GuestVA end = va + len;
    while (cur < end) {
        const Vma* vma = proc.as.findVma(cur);
        if (vma == nullptr)
            return false;
        if (write && !(vma->prot & protWrite))
            return false;
        if (!write && !(vma->prot & protRead))
            return false;
        cur = vma->end;
    }
    return true;
}

void
Kernel::copyToUser(Thread& t, GuestVA va, std::span<const std::uint8_t> data)
{
    // Kernel-mode copy through the system view: writing into a cloaked
    // destination transitions the page to ciphertext — which is exactly
    // why the shim marshals through uncloaked buffers.
    KernelModeGuard guard(t.vcpu);
    t.vcpu.writeBytes(va, data);
}

void
Kernel::copyFromUser(Thread& t, GuestVA va, std::span<std::uint8_t> out)
{
    KernelModeGuard guard(t.vcpu);
    t.vcpu.readBytes(va, out);
}

std::string
Kernel::readUserString(Thread& t, GuestVA va, std::size_t max)
{
    KernelModeGuard guard(t.vcpu);
    return t.vcpu.readCString(va, max);
}

void
Kernel::readFrameAsKernel(Thread& t, Gpa gpa, std::span<std::uint8_t> out)
{
    osh_assert(out.size() == pageSize, "frame copies are page sized");
    KernelModeGuard guard(t.vcpu);
    t.vcpu.readBytes(kernelVa(pageBase(gpa)), out);
}

void
Kernel::writeFrameAsKernel(Thread& t, Gpa gpa,
                           std::span<const std::uint8_t> data)
{
    osh_assert(data.size() == pageSize, "frame copies are page sized");
    KernelModeGuard guard(t.vcpu);
    t.vcpu.writeBytes(kernelVa(pageBase(gpa)), data);
}

// ---------------------------------------------------------------------------
// Memory management: eviction, swap, page cache, COW
// ---------------------------------------------------------------------------

void
Kernel::addAnonMapping(Gpa gpa, Asid asid, GuestVA va_page)
{
    anonMappers_[pageBase(gpa)].emplace_back(asid, va_page);
}

void
Kernel::dropAnonMapping(Gpa gpa, Asid asid, GuestVA va_page)
{
    auto it = anonMappers_.find(pageBase(gpa));
    if (it == anonMappers_.end())
        return;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(),
                          std::make_pair(asid, va_page)),
              vec.end());
    if (vec.empty())
        anonMappers_.erase(it);
}

Gpa
Kernel::allocFrameOrEvict(FrameUse use)
{
    for (std::uint64_t attempt = 0;
         attempt < 2 * frames_.numFrames() + 8; ++attempt) {
        if (auto gpa = frames_.allocate(use)) {
            FrameInfo& fi = frames_.info(*gpa);
            fi.pinned = true; // Caller unpins once installed.
            return *gpa;
        }
        if (!evictOneFrame())
            break;
    }
    osh_panic("guest out of memory: %llu frames, none evictable",
              static_cast<unsigned long long>(frames_.numFrames()));
}

bool
Kernel::evictOneFrame()
{
    for (std::uint64_t scanned = 0; scanned < frames_.numFrames();
         ++scanned) {
        auto cand = frames_.nextEvictionCandidate();
        if (!cand)
            return false;
        Gpa gpa = *cand;
        FrameInfo& fi = frames_.info(gpa);
        if (fi.pinned || fi.refCount > 1)
            continue;
        if (fi.use == FrameUse::Anon) {
            auto mit = anonMappers_.find(gpa);
            if (mit == anonMappers_.end() || mit->second.size() != 1)
                continue;
            swapOutAnon(gpa);
            stats_.counter("evicted_anon").inc();
            return true;
        }
        if (fi.use == FrameUse::PageCache) {
            if (!vfs_.exists(fi.inode))
                continue;
            Inode& ino = vfs_.inode(fi.inode);
            auto cit = ino.cache.find(fi.pageIndex);
            if (cit == ino.cache.end() || cit->second.mapCount > 0)
                continue;
            if (cit->second.dirty)
                writebackPage(ino, fi.pageIndex);
            dropPageCachePage(ino, fi.pageIndex);
            stats_.counter("evicted_pagecache").inc();
            return true;
        }
    }
    return false;
}

bool
Kernel::forceSwapOut(Pid pid, GuestVA va_page)
{
    Process* proc = findProcess(pid);
    if (proc == nullptr)
        return false;
    Pte* pte = proc->as.findPte(pageBase(va_page));
    if (pte == nullptr || !pte->present)
        return false;
    Gpa gpa = pageBase(pte->gpa);
    FrameInfo& fi = frames_.info(gpa);
    if (fi.use != FrameUse::Anon || fi.pinned || fi.refCount > 1)
        return false;
    auto mit = anonMappers_.find(gpa);
    if (mit == anonMappers_.end() || mit->second.size() != 1)
        return false;
    swapOutAnon(gpa);
    stats_.counter("forced_swap_outs").inc();
    return true;
}

void
Kernel::swapOutAnon(Gpa gpa)
{
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Swap,
                    "swap_out", systemDomain, 0, gpa);
    auto mit = anonMappers_.find(gpa);
    osh_assert(mit != anonMappers_.end() && mit->second.size() == 1,
               "swapOutAnon of shared/unmapped frame");
    auto [asid, va_page] = mit->second.front();
    Process& proc = process(static_cast<Pid>(asid));
    Pte* pte = proc.as.findPte(va_page);
    osh_assert(pte != nullptr && pte->present && pageBase(pte->gpa) == gpa,
               "anon mapper out of sync");

    auto slot = swap_.allocate();
    osh_assert(slot.has_value(), "swap device full");

    std::uint64_t replay_key =
        (std::uint64_t{asid} << 40) | pageNumber(va_page);

    // Async pipeline: for a cloaked plaintext victim, the engine seals
    // into a staging buffer and hands the scrubbed frame back now; the
    // swap-slot write (and the hostile-kernel swap hooks, which must
    // only ever see sealed ciphertext) run when the entry retires.
    bool async_queued = vmm_.cloakBackend().evictPageAsync(
        gpa,
        [this, slot = *slot, replay_key](
            std::span<const std::uint8_t> sealed) {
            swap_.writeSlotPrepaid(slot, sealed);
            if (malice_.tamperSwap) {
                swap_.rawSlot(slot)[0] ^= 0xff;
            }
            if (malice_.replaySwap) {
                auto fit = malice_.firstVersions.find(replay_key);
                if (fit == malice_.firstVersions.end())
                    malice_.firstVersions[replay_key] =
                        swap_.rawSlot(slot);
            }
            if (attackHooks_ != nullptr)
                attackHooks_->onSwapOut(*this, slot, replay_key);
        });
    if (async_queued) {
        stats_.counter("async_swap_outs").inc();
    } else {
        // Synchronous path (async disabled, or an uncloaked frame).
        // Read the victim frame through the kernel view. If it holds a
        // cloaked plaintext page the cloak engine encrypts it first —
        // so what reaches the swap device is ciphertext. The hint
        // routes the seal through the VMM's batched crypto path.
        vmm_.prepareFramesForKernel(std::span<const Gpa>(&gpa, 1));
        std::array<std::uint8_t, pageSize> buf;
        readFrameAsKernel(currentThread(), gpa, buf);
        swap_.writeSlot(*slot, buf);

        if (malice_.tamperSwap) {
            swap_.rawSlot(*slot)[0] ^= 0xff;
        }
        if (malice_.replaySwap) {
            auto fit = malice_.firstVersions.find(replay_key);
            if (fit == malice_.firstVersions.end())
                malice_.firstVersions[replay_key] = swap_.rawSlot(*slot);
        }
        if (attackHooks_ != nullptr)
            attackHooks_->onSwapOut(*this, *slot, replay_key);
    }

    pte->present = false;
    pte->swapped = true;
    pte->slot = *slot;
    pte->gpa = badAddr;
    dropAnonMapping(gpa, asid, va_page);
    frames_.unref(gpa);
    vmm_.invalidateVa(asid, va_page);
}

void
Kernel::swapIn(Process& proc, GuestVA va_page, Pte& pte, const Vma& vma)
{
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Swap,
                    "swap_in", systemDomain, proc.pid, va_page);
    osh_assert(pte.swapped, "swapIn of non-swapped page");
    SwapSlot slot = pte.slot;

    // The slot's ciphertext may still be in flight in the async
    // eviction queue; swap-in must observe fully sealed contents.
    vmm_.drainAsyncEvictions();

    std::array<std::uint8_t, pageSize> buf;
    swap_.readSlot(slot, buf);

    std::uint64_t replay_key =
        (std::uint64_t{proc.as.asid()} << 40) | pageNumber(va_page);
    if (malice_.replaySwap) {
        auto fit = malice_.firstVersions.find(replay_key);
        if (fit != malice_.firstVersions.end())
            buf = fit->second;
    }
    if (attackHooks_ != nullptr)
        attackHooks_->onSwapIn(*this, slot, replay_key, buf);

    Gpa gpa = allocFrameOrEvict(FrameUse::Anon);
    writeFrameAsKernel(currentThread(), gpa, buf);

    FrameInfo& fi = frames_.info(gpa);
    fi.asid = proc.as.asid();
    fi.vaPage = va_page;
    fi.pinned = false;
    addAnonMapping(gpa, proc.as.asid(), va_page);

    pte.gpa = gpa;
    pte.present = true;
    pte.swapped = false;
    pte.writable = (vma.prot & protWrite) != 0 && !pte.cow;
    if (attackHooks_ != nullptr)
        attackHooks_->onSwapRelease(*this, slot);
    swap_.release(slot);
    stats_.counter("swap_ins").inc();
}

void
Kernel::notifyWrite(Asid asid, GuestVA va_page)
{
    auto pit = processes_.find(static_cast<Pid>(asid));
    if (pit == processes_.end())
        return;
    Pte* pte = pit->second->as.findPte(pageBase(va_page));
    if (pte == nullptr || !pte->present)
        return;
    FrameInfo& fi = frames_.info(pte->gpa);
    if (fi.use != FrameUse::PageCache || !vfs_.exists(fi.inode))
        return;
    auto cit = vfs_.inode(fi.inode).cache.find(fi.pageIndex);
    if (cit != vfs_.inode(fi.inode).cache.end())
        cit->second.dirty = true;
}

void
Kernel::writebackPage(Inode& ino, std::uint64_t page_index,
                      bool charge_seek)
{
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Vfs,
                    "writeback", systemDomain, 0, ino.id, page_index);
    auto cit = ino.cache.find(page_index);
    osh_assert(cit != ino.cache.end(), "writeback of uncached page");
    std::array<std::uint8_t, pageSize> buf;
    // Through the kernel view: cloaked file pages hit the disk as
    // ciphertext (sealed via the batched crypto path when plaintext).
    Gpa wb_gpa = cit->second.gpa;
    vmm_.prepareFramesForKernel(std::span<const Gpa>(&wb_gpa, 1));
    readFrameAsKernel(currentThread(), wb_gpa, buf);

    std::uint64_t off = page_index * pageSize;
    std::uint64_t needed = off + pageSize;
    if (ino.diskData.size() < needed)
        ino.diskData.resize(needed, 0);
    std::memcpy(ino.diskData.data() + off, buf.data(), pageSize);
    auto& cost = vmm_.machine().cost();
    cost.charge((charge_seek ? cost.params().diskAccess : 0) +
                cost.params().diskPerByte * pageSize,
                "file_writeback");
    cit->second.dirty = false;
    stats_.counter("writebacks").inc();
}

void
Kernel::dropPageCachePage(Inode& ino, std::uint64_t page_index)
{
    auto cit = ino.cache.find(page_index);
    osh_assert(cit != ino.cache.end(), "drop of uncached page");
    osh_assert(cit->second.mapCount == 0, "drop of mapped page");
    frames_.unref(cit->second.gpa);
    ino.cache.erase(cit);
}

PageCacheEntry&
Kernel::ensureCached(InodeId ino_id, std::uint64_t page_index)
{
    Inode& ino = vfs_.inode(ino_id);
    auto cit = ino.cache.find(page_index);
    if (cit != ino.cache.end())
        return cit->second;

    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Vfs,
                    "page_cache_fill", systemDomain, 0, ino_id,
                    page_index);
    Gpa gpa = allocFrameOrEvict(FrameUse::PageCache);
    auto& cost = vmm_.machine().cost();

    // Populate from the disk image (zero-fill past EOF / sparse areas).
    std::array<std::uint8_t, pageSize> buf{};
    std::uint64_t off = page_index * pageSize;
    // Re-fetch the inode: eviction during allocation may have reshaped
    // the cache map (but never the inode object itself).
    Inode& ino2 = vfs_.inode(ino_id);
    if (off < ino2.diskData.size()) {
        std::size_t n = std::min<std::size_t>(pageSize,
                                              ino2.diskData.size() - off);
        std::memcpy(buf.data(), ino2.diskData.data() + off, n);
        cost.charge(cost.params().diskAccess +
                    cost.params().diskPerByte * pageSize,
                    "file_readin");
    } else {
        cost.charge(cost.params().pageZero, "page_zero");
    }
    writeFrameAsKernel(currentThread(), gpa, buf);

    FrameInfo& fi = frames_.info(gpa);
    fi.inode = ino_id;
    fi.pageIndex = page_index;
    fi.pinned = false;

    auto [it, inserted] = ino2.cache.emplace(page_index, PageCacheEntry{});
    osh_assert(inserted, "cache entry appeared concurrently");
    it->second.gpa = gpa;
    it->second.dirty = false;
    it->second.mapCount = 0;
    stats_.counter("pagecache_fills").inc();
    return it->second;
}

void
Kernel::breakCow(Process& proc, GuestVA va_page, Pte& pte)
{
    osh_assert(pte.present && pte.cow, "breakCow on non-COW page");
    Gpa old_gpa = pageBase(pte.gpa);
    FrameInfo& fi = frames_.info(old_gpa);
    stats_.counter("cow_breaks").inc();

    if (fi.refCount == 1) {
        // Last sharer: take exclusive ownership.
        pte.cow = false;
        pte.writable = true;
        vmm_.invalidateVa(proc.as.asid(), va_page);
        return;
    }

    Gpa new_gpa = allocFrameOrEvict(FrameUse::Anon);
    std::array<std::uint8_t, pageSize> buf;
    Thread& t = currentThread();
    readFrameAsKernel(t, old_gpa, buf);
    writeFrameAsKernel(t, new_gpa, buf);
    auto& cost = vmm_.machine().cost();
    cost.charge(cost.params().pageCopy, "cow_copy");

    FrameInfo& nfi = frames_.info(new_gpa);
    nfi.asid = proc.as.asid();
    nfi.vaPage = va_page;
    nfi.pinned = false;
    addAnonMapping(new_gpa, proc.as.asid(), va_page);

    dropAnonMapping(old_gpa, proc.as.asid(), va_page);
    frames_.unref(old_gpa);

    pte.gpa = new_gpa;
    pte.cow = false;
    pte.writable = true;
    vmm_.invalidateVa(proc.as.asid(), va_page);
}

} // namespace osh::os
