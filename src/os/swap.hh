/**
 * @file
 * Swap device.
 *
 * A slot-granular backing store for paged-out anonymous memory. The
 * kernel copies page *contents* here — for cloaked pages that content is
 * ciphertext, because the copy reads the frame through the kernel's
 * system view. The device also exposes the raw slot bytes so tests can
 * play a malicious disk (tampering / replaying swapped pages).
 */

#ifndef OSH_OS_SWAP_HH
#define OSH_OS_SWAP_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/cost_model.hh"
#include "trace/trace.hh"

#include <array>
#include <span>
#include <cstdint>
#include <optional>
#include <vector>

namespace osh::os
{

/** Swap slot identifier. */
using SwapSlot = std::uint64_t;

/** Slot-granular page store with disk-like costs. */
class SwapDevice
{
  public:
    /**
     * @param cost Cost model charged for every slot I/O.
     * @param max_slots Device capacity.
     */
    SwapDevice(sim::CostModel& cost, std::uint64_t max_slots = 65536);

    /** Reserve a slot; nullopt when the device is full. */
    std::optional<SwapSlot> allocate();

    /** Release a slot. */
    void release(SwapSlot slot);

    /** Write one page into a slot (charges disk costs). */
    void writeSlot(SwapSlot slot, std::span<const std::uint8_t> page);

    /** Read one page back (charges disk costs). */
    void readSlot(SwapSlot slot, std::span<std::uint8_t> page);

    /** Raw slot bytes — used by tests to model a malicious disk. */
    std::array<std::uint8_t, pageSize>& rawSlot(SwapSlot slot);

    std::uint64_t slotsInUse() const { return inUse_; }

    /** Attach the machine tracer (the owning kernel wires this). */
    void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

    StatGroup& stats() { return stats_; }

  private:
    sim::CostModel& cost_;
    trace::Tracer* tracer_ = nullptr;
    std::uint64_t maxSlots_;
    std::vector<std::array<std::uint8_t, pageSize>> slots_;
    std::vector<bool> used_;
    std::vector<SwapSlot> freeList_;
    std::uint64_t inUse_ = 0;
    StatGroup stats_;
};

} // namespace osh::os

#endif // OSH_OS_SWAP_HH
