/**
 * @file
 * Swap device.
 *
 * A slot-granular backing store for paged-out anonymous memory. The
 * kernel copies page *contents* here — for cloaked pages that content is
 * ciphertext, because the copy reads the frame through the kernel's
 * system view. The device also exposes the raw slot bytes so tests can
 * play a malicious disk (tampering / replaying swapped pages).
 */

#ifndef OSH_OS_SWAP_HH
#define OSH_OS_SWAP_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/cost_model.hh"
#include "trace/trace.hh"

#include <array>
#include <span>
#include <cstdint>
#include <optional>
#include <vector>

namespace osh::os
{

/** Swap slot identifier. */
using SwapSlot = std::uint64_t;

/** Slot-granular page store with disk-like costs. */
class SwapDevice
{
  public:
    /**
     * @param cost Cost model charged for every slot I/O.
     * @param max_slots Device capacity.
     */
    SwapDevice(sim::CostModel& cost, std::uint64_t max_slots = 65536);

    /** Reserve a slot; nullopt when the device is full. */
    std::optional<SwapSlot> allocate();

    /**
     * Release a slot. The slot is scrubbed (zeroed) so a later owner of
     * the same slot can never observe the previous occupant's bytes —
     * freed-slot resurrection then requires an actively hostile disk
     * that kept its own copy, which the attack campaign models. The
     * scrub is bookkeeping, not modelled I/O: no cycles are charged.
     */
    void release(SwapSlot slot);

    /** Write one page into a slot (charges disk costs). */
    void writeSlot(SwapSlot slot, std::span<const std::uint8_t> page);

    /**
     * Write one page into a slot whose disk cost was already accounted
     * elsewhere (the asynchronous eviction lane models the I/O as
     * background work): counts the swap_out event, charges no cycles.
     */
    void writeSlotPrepaid(SwapSlot slot,
                          std::span<const std::uint8_t> page);

    /** Read one page back (charges disk costs). */
    void readSlot(SwapSlot slot, std::span<std::uint8_t> page);

    /** Raw slot bytes — used by tests to model a malicious disk. */
    std::array<std::uint8_t, pageSize>& rawSlot(SwapSlot slot);

    std::uint64_t slotsInUse() const { return inUse_; }

    // Device inspection (leak oracle) --------------------------------------

    /** Slots ever backed, in use or free. */
    std::uint64_t slotsBacked() const { return slots_.size(); }
    bool slotInUse(SwapSlot slot) const
    {
        return slot < used_.size() && used_[slot];
    }
    /** Bytes of any backed slot, free ones included (oracle scans). */
    std::span<const std::uint8_t> slotBytes(SwapSlot slot) const;

    /** Attach the machine tracer (the owning kernel wires this). */
    void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

    StatGroup& stats() { return stats_; }

  private:
    sim::CostModel& cost_;
    trace::Tracer* tracer_ = nullptr;
    std::uint64_t maxSlots_;
    std::vector<std::array<std::uint8_t, pageSize>> slots_;
    std::vector<bool> used_;
    std::vector<SwapSlot> freeList_;
    std::uint64_t inUse_ = 0;
    StatGroup stats_;
};

} // namespace osh::os

#endif // OSH_OS_SWAP_HH
