#include "os/addrspace.hh"

#include "base/logging.hh"

namespace osh::os
{

AddressSpace::AddressSpace(Asid asid) : asid_(asid)
{
}

bool
AddressSpace::addVma(const Vma& vma)
{
    osh_assert(pageOffset(vma.start) == 0 && pageOffset(vma.end) == 0,
               "VMAs are page aligned");
    osh_assert(vma.start < vma.end, "empty VMA");
    // Overlap check against neighbours.
    auto next = vmas_.lower_bound(vma.start);
    if (next != vmas_.end() && next->second.start < vma.end)
        return false;
    if (next != vmas_.begin()) {
        auto prev = std::prev(next);
        if (prev->second.end > vma.start)
            return false;
    }
    vmas_[vma.start] = vma;
    return true;
}

GuestVA
AddressSpace::allocVma(Vma vma, std::uint64_t pages)
{
    osh_assert(pages > 0, "empty allocation");
    GuestVA& cursor =
        (vma.type == VmaType::File) ? fileMapCursor_ : mmapCursor_;
    // Bump allocation with a one-page guard gap; address space is vast
    // relative to simulated workloads, so no reuse is needed.
    GuestVA start = cursor;
    cursor += (pages + 1) * pageSize;
    vma.start = start;
    vma.end = start + pages * pageSize;
    bool ok = addVma(vma);
    osh_assert(ok, "arena allocation overlapped an existing VMA");
    return start;
}

Vma*
AddressSpace::findVma(GuestVA va)
{
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    return it->second.contains(va) ? &it->second : nullptr;
}

const Vma*
AddressSpace::findVma(GuestVA va) const
{
    return const_cast<AddressSpace*>(this)->findVma(va);
}

std::optional<Vma>
AddressSpace::removeVma(GuestVA start, std::vector<Pte>& dropped,
                        std::vector<GuestVA>& dropped_vas)
{
    auto it = vmas_.find(start);
    if (it == vmas_.end())
        return std::nullopt;
    Vma vma = it->second;
    for (GuestVA va = vma.start; va < vma.end; va += pageSize) {
        auto pit = ptes_.find(va);
        if (pit != ptes_.end()) {
            dropped.push_back(pit->second);
            dropped_vas.push_back(va);
            ptes_.erase(pit);
        }
    }
    vmas_.erase(it);
    return vma;
}

Pte&
AddressSpace::pte(GuestVA va_page)
{
    osh_assert(pageOffset(va_page) == 0, "PTEs are page keyed");
    return ptes_[va_page];
}

const Pte*
AddressSpace::findPte(GuestVA va_page) const
{
    auto it = ptes_.find(pageBase(va_page));
    return it == ptes_.end() ? nullptr : &it->second;
}

Pte*
AddressSpace::findPte(GuestVA va_page)
{
    auto it = ptes_.find(pageBase(va_page));
    return it == ptes_.end() ? nullptr : &it->second;
}

void
AddressSpace::erasePte(GuestVA va_page)
{
    ptes_.erase(pageBase(va_page));
}

std::uint64_t
AddressSpace::residentPages() const
{
    std::uint64_t n = 0;
    for (const auto& [va, pte] : ptes_)
        n += pte.present ? 1 : 0;
    return n;
}

} // namespace osh::os
