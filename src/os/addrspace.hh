/**
 * @file
 * Per-process address spaces: VMAs plus the guest page table.
 *
 * The guest kernel manages mappings exactly as a commodity OS does: a
 * list of virtual memory areas describing what *should* be mapped, and a
 * page table populated lazily on demand faults. The VMM walks this page
 * table (through GuestOsHooks::translateGuest) when filling shadows.
 *
 * This class is pure bookkeeping; the Kernel performs all frame
 * allocation, copying and I/O.
 */

#ifndef OSH_OS_ADDRSPACE_HH
#define OSH_OS_ADDRSPACE_HH

#include "base/types.hh"
#include "os/layout.hh"
#include "os/swap.hh"
#include "os/vfs.hh"

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

namespace osh::os
{

/** A guest page-table entry. */
struct Pte
{
    Gpa gpa = badAddr;
    bool present = false;
    bool writable = false;
    bool user = true;
    bool cow = false;
    bool swapped = false;
    SwapSlot slot = 0;
};

/** Kind of memory a VMA describes. */
enum class VmaType : std::uint8_t { Anon, File };

/** One virtual memory area: [start, end). */
struct Vma
{
    GuestVA start = 0;
    GuestVA end = 0;
    VmaType type = VmaType::Anon;
    std::uint64_t prot = protRead | protWrite;
    bool shared = false;

    /**
     * Resource-management hint that this range holds cloaked data (set
     * via the mapCloaked mmap flag). Never trusted for protection; it
     * only tells the kernel to copy eagerly instead of COW on fork.
     */
    bool cloaked = false;

    // File mappings.
    InodeId inode = 0;
    std::uint64_t fileOffset = 0;   ///< Page aligned.

    std::uint64_t pages() const { return (end - start) / pageSize; }
    bool contains(GuestVA va) const { return va >= start && va < end; }
};

/** VMAs + page table of one process. */
class AddressSpace
{
  public:
    explicit AddressSpace(Asid asid);

    Asid asid() const { return asid_; }

    /** Insert a VMA at a fixed range; fails (false) on overlap. */
    bool addVma(const Vma& vma);

    /**
     * Allocate @p pages pages in an arena (mmapBase or fileMapBase
     * depending on @p type) and insert the VMA. Returns the start VA.
     */
    GuestVA allocVma(Vma vma, std::uint64_t pages);

    /** The VMA covering @p va, or nullptr. */
    Vma* findVma(GuestVA va);
    const Vma* findVma(GuestVA va) const;

    /**
     * Remove the VMA starting exactly at @p start; returns the removed
     * VMA. Page-table entries in the range are returned through
     * @p dropped so the kernel can release frames/slots.
     */
    std::optional<Vma> removeVma(GuestVA start, std::vector<Pte>& dropped,
                                 std::vector<GuestVA>& dropped_vas);

    /** Page-table entry for a page (creates an empty one). */
    Pte& pte(GuestVA va_page);

    /** Look up without creating. */
    const Pte* findPte(GuestVA va_page) const;
    Pte* findPte(GuestVA va_page);

    /** Drop a PTE entirely (after eviction bookkeeping). */
    void erasePte(GuestVA va_page);

    const std::map<GuestVA, Vma>& vmas() const { return vmas_; }
    std::map<GuestVA, Vma>& vmas() { return vmas_; }

    const std::unordered_map<GuestVA, Pte>& ptes() const { return ptes_; }
    std::unordered_map<GuestVA, Pte>& ptes() { return ptes_; }

    /** Number of resident (present) pages. */
    std::uint64_t residentPages() const;

    /** Copy the arena allocation cursors (fork clones the layout). */
    void
    adoptCursors(const AddressSpace& other)
    {
        mmapCursor_ = other.mmapCursor_;
        fileMapCursor_ = other.fileMapCursor_;
    }

    // Arena cursors, individually (checkpoint/restore serializes them:
    // future mmaps of a restored process must not collide with
    // rehydrated mappings).
    GuestVA mmapCursor() const { return mmapCursor_; }
    GuestVA fileMapCursor() const { return fileMapCursor_; }
    void setMmapCursor(GuestVA va) { mmapCursor_ = va; }
    void setFileMapCursor(GuestVA va) { fileMapCursor_ = va; }

  private:
    Asid asid_;
    std::map<GuestVA, Vma> vmas_;           ///< Keyed by start VA.
    std::unordered_map<GuestVA, Pte> ptes_; ///< Keyed by page VA.
    GuestVA mmapCursor_ = mmapBase;
    GuestVA fileMapCursor_ = fileMapBase;
};

} // namespace osh::os

#endif // OSH_OS_ADDRSPACE_HH
