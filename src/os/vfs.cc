#include "os/vfs.hh"

#include "base/logging.hh"

namespace osh::os
{

Vfs::Vfs() : stats_("vfs")
{
    auto root = std::make_unique<Inode>();
    root->id = nextId_++;
    root->type = InodeType::Directory;
    root->nlink = 1;
    rootId_ = root->id;
    inodes_[rootId_] = std::move(root);
}

Inode&
Vfs::inode(InodeId id)
{
    auto it = inodes_.find(id);
    osh_assert(it != inodes_.end(), "bad inode id %llu",
               static_cast<unsigned long long>(id));
    return *it->second;
}

const Inode&
Vfs::inode(InodeId id) const
{
    auto it = inodes_.find(id);
    osh_assert(it != inodes_.end(), "bad inode id %llu",
               static_cast<unsigned long long>(id));
    return *it->second;
}

bool
Vfs::exists(InodeId id) const
{
    return inodes_.count(id) != 0;
}

std::vector<std::string>
Vfs::splitPath(const std::string& path)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/') {
            if (!cur.empty()) {
                parts.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

std::int64_t
Vfs::lookup(const std::string& path) const
{
    if (path.empty() || path[0] != '/')
        return -errInval;
    InodeId cur = rootId_;
    for (const std::string& part : splitPath(path)) {
        const Inode& node = inode(cur);
        if (!node.isDir())
            return -errNotDir;
        auto it = node.entries.find(part);
        if (it == node.entries.end())
            return -errNoEnt;
        cur = it->second;
    }
    return static_cast<std::int64_t>(cur);
}

std::int64_t
Vfs::resolveParent(const std::string& path, PathParts& out) const
{
    if (path.empty() || path[0] != '/')
        return -errInval;
    auto parts = splitPath(path);
    if (parts.empty())
        return -errInval; // Cannot operate on the root itself.
    InodeId cur = rootId_;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        const Inode& node = inode(cur);
        if (!node.isDir())
            return -errNotDir;
        auto it = node.entries.find(parts[i]);
        if (it == node.entries.end())
            return -errNoEnt;
        cur = it->second;
    }
    if (!inode(cur).isDir())
        return -errNotDir;
    out.parent = cur;
    out.leaf = parts.back();
    return 0;
}

std::int64_t
Vfs::create(const std::string& path, InodeType type)
{
    PathParts pp;
    if (std::int64_t err = resolveParent(path, pp); err < 0)
        return err;
    Inode& parent = inode(pp.parent);
    if (parent.entries.count(pp.leaf))
        return -errExist;

    auto node = std::make_unique<Inode>();
    node->id = nextId_++;
    node->type = type;
    node->nlink = 1;
    InodeId id = node->id;
    inodes_[id] = std::move(node);
    parent.entries[pp.leaf] = id;
    stats_.counter(type == InodeType::File ? "files_created"
                                           : "dirs_created").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Vfs,
                    type == InodeType::File ? "files_created"
                                            : "dirs_created");
    return static_cast<std::int64_t>(id);
}

std::int64_t
Vfs::unlink(const std::string& path)
{
    PathParts pp;
    if (std::int64_t err = resolveParent(path, pp); err < 0)
        return err;
    Inode& parent = inode(pp.parent);
    auto it = parent.entries.find(pp.leaf);
    if (it == parent.entries.end())
        return -errNoEnt;
    Inode& victim = inode(it->second);
    if (victim.isDir() && !victim.entries.empty())
        return -errBusy;
    osh_assert(victim.nlink > 0, "unlink with zero nlink");
    --victim.nlink;
    parent.entries.erase(it);
    stats_.counter("unlinks").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Vfs, "unlinks");
    return 0;
}

std::int64_t
Vfs::rename(const std::string& from, const std::string& to)
{
    PathParts src, dst;
    if (std::int64_t err = resolveParent(from, src); err < 0)
        return err;
    if (std::int64_t err = resolveParent(to, dst); err < 0)
        return err;
    Inode& src_dir = inode(src.parent);
    auto it = src_dir.entries.find(src.leaf);
    if (it == src_dir.entries.end())
        return -errNoEnt;
    InodeId moving = it->second;
    Inode& dst_dir = inode(dst.parent);
    if (dst_dir.entries.count(dst.leaf))
        return -errExist;
    src_dir.entries.erase(it);
    dst_dir.entries[dst.leaf] = moving;
    return 0;
}

std::int64_t
Vfs::dirEntry(InodeId dir, std::uint64_t index, std::string& name_out) const
{
    const Inode& node = inode(dir);
    if (!node.isDir())
        return -errNotDir;
    if (index >= node.entries.size())
        return -errNoEnt;
    auto it = node.entries.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(index));
    name_out = it->first;
    return 0;
}

std::vector<PageCacheEntry>
Vfs::reapIfUnreferenced(InodeId id)
{
    auto it = inodes_.find(id);
    if (it == inodes_.end())
        return {};
    Inode& node = *it->second;
    if (node.nlink > 0 || node.openCount > 0 || node.id == rootId_)
        return {};
    std::vector<PageCacheEntry> pages;
    pages.reserve(node.cache.size());
    for (auto& [idx, entry] : node.cache)
        pages.push_back(entry);
    inodes_.erase(it);
    stats_.counter("inodes_reaped").inc();
    return pages;
}

std::vector<InodeId>
Vfs::inodeIds() const
{
    std::vector<InodeId> ids;
    ids.reserve(inodes_.size());
    for (const auto& [id, node] : inodes_)
        ids.push_back(id);
    return ids;
}

} // namespace osh::os
