/**
 * @file
 * Guest virtual address-space layout.
 *
 * Fixed conventions shared by the kernel, the loader and the cloaked
 * shim. The kernel owns a direct map of all guest physical memory at
 * kernelBase (like Linux's physmap); applications live below userTop.
 * Cloaked applications additionally get two shim regions: a cloaked one
 * (thread contexts, shim-private data) and an uncloaked one (bounce
 * buffers the kernel is allowed to read during marshalled syscalls).
 */

#ifndef OSH_OS_LAYOUT_HH
#define OSH_OS_LAYOUT_HH

#include "base/types.hh"

namespace osh::os
{

/** Kernel direct map: VA = kernelBase + GPA. */
constexpr GuestVA kernelBase = 0x0000'8000'0000'0000ull;

/** Convert a GPA to its kernel direct-map VA. */
constexpr GuestVA
kernelVa(Gpa gpa)
{
    return kernelBase + gpa;
}

/** Top of user space. */
constexpr GuestVA userTop = 0x0000'7fff'ffff'f000ull;

/** Program image base (synthetic; nothing fetches from it). */
constexpr GuestVA codeBase = 0x0000'0000'0001'0000ull;

/** Heap / generic mmap arena (grows up). */
constexpr GuestVA mmapBase = 0x0000'0000'1000'0000ull;

/** File-mapping arena (grows up). */
constexpr GuestVA fileMapBase = 0x0000'0000'4000'0000ull;

/** Cloaked shim region (CTC pages, shim-private state). */
constexpr GuestVA shimCloakedBase = 0x0000'0000'6000'0000ull;
constexpr std::uint64_t shimCloakedPages = 16;

/** Uncloaked shim bounce-buffer region. */
constexpr GuestVA shimBounceBase = 0x0000'0000'6100'0000ull;
constexpr std::uint64_t shimBouncePages = 32;

/** Stack: grows down from stackTop. */
constexpr GuestVA stackTop = 0x0000'0000'7ff0'0000ull;
constexpr std::uint64_t stackPages = 64;

/** PC/SP values the kernel sees after a scrubbed cloaked trap. */
constexpr GuestVA trampolinePc = shimBounceBase;
constexpr GuestVA trampolineSp = shimBounceBase + pageSize;

} // namespace osh::os

#endif // OSH_OS_LAYOUT_HH
