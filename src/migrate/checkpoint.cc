#include "migrate/checkpoint.hh"

#include "base/bytes.hh"
#include "base/logging.hh"

#include <algorithm>
#include <cstring>

namespace osh::migrate
{

namespace
{

/** Parsed (but not yet applied) restore state; mutation of the target
 *  machine starts only after the entire image has verified. */
struct ParsedImage
{
    std::uint64_t imageVersion = 0;
    crypto::Digest identity{};
    std::string program;
    std::vector<std::string> argv;

    GuestVA mmapCursor = 0;
    GuestVA fileMapCursor = 0;
    GuestVA ctcVa = 0;
    GuestVA bounceVa = 0;
    bool ctcHashValid = false;
    crypto::Digest ctcHash{};
    bool haveProcess = false;

    std::vector<os::Vma> vmas;

    struct RegionRec
    {
        GuestVA start = 0;
        std::uint64_t pages = 0;
        std::uint64_t resourceIndex = 0;
        std::uint64_t resourcePageOffset = 0;
    };
    std::vector<RegionRec> regions;

    struct ResourceRec
    {
        ResourceId keyId = 0;
        bool isFile = false;
        std::uint64_t fileKey = 0;
        std::map<std::uint64_t, cloak::PageMeta> pages;
    };
    std::vector<ResourceRec> resources;

    StagedPages pages;

    std::map<std::uint64_t, std::vector<std::uint8_t>> bundles;
    std::map<std::uint64_t, std::uint64_t> floors;
};

Expected<ParsedImage, MigrateError>
parseManifest(const Record& rec, const Ticket& ticket)
{
    if (rec.type != RecordType::Manifest)
        return Error(MigrateError::BadRecord);
    PayloadReader pr(rec.payload);
    std::array<std::uint8_t, 8> magic;
    pr.bytes(magic);
    if (!pr.ok() || magic != imageMagic)
        return Error(MigrateError::BadMagic);
    std::uint64_t format = pr.u64();
    if (!pr.ok() || format != imageFormatVersion)
        return Error(MigrateError::UnsupportedVersion);

    ParsedImage img;
    img.imageVersion = pr.u64();
    pr.bytes(img.identity);
    img.program = pr.str();
    std::uint64_t argc = pr.u64();
    if (!pr.ok() || argc > 1024)
        return Error(MigrateError::BadRecord);
    for (std::uint64_t i = 0; i < argc; ++i)
        img.argv.push_back(pr.str());
    if (!pr.done())
        return Error(MigrateError::BadRecord);

    // The ticket travels out-of-band through the trusted VMM channel;
    // the image came over the untrusted transport. They must agree.
    if (!constantTimeEqual(img.identity, ticket.identity))
        return Error(MigrateError::IdentityMismatch);
    if (img.imageVersion != ticket.imageVersion)
        return Error(MigrateError::ImageRollback);
    return img;
}

Expected<void, MigrateError>
parseRecord(ParsedImage& img, const Record& rec)
{
    PayloadReader pr(rec.payload);
    switch (rec.type) {
      case RecordType::Process: {
        if (img.haveProcess)
            return Error(MigrateError::BadRecord);
        img.mmapCursor = pr.u64();
        img.fileMapCursor = pr.u64();
        img.ctcVa = pr.u64();
        img.bounceVa = pr.u64();
        img.ctcHashValid = pr.u8() != 0;
        pr.bytes(img.ctcHash);
        if (!pr.done())
            return Error(MigrateError::BadRecord);
        img.haveProcess = true;
        return {};
      }
      case RecordType::Vma: {
        os::Vma vma;
        vma.start = pr.u64();
        vma.end = pr.u64();
        vma.type = static_cast<os::VmaType>(pr.u8());
        vma.prot = pr.u64();
        vma.shared = pr.u8() != 0;
        vma.cloaked = pr.u8() != 0;
        vma.inode = pr.u64();
        vma.fileOffset = pr.u64();
        if (!pr.done() || vma.start >= vma.end ||
            vma.start != pageBase(vma.start) ||
            vma.end != pageBase(vma.end))
            return Error(MigrateError::BadRecord);
        img.vmas.push_back(vma);
        return {};
      }
      case RecordType::Region: {
        ParsedImage::RegionRec r;
        r.start = pr.u64();
        r.pages = pr.u64();
        r.resourceIndex = pr.u64();
        r.resourcePageOffset = pr.u64();
        if (!pr.done())
            return Error(MigrateError::BadRecord);
        img.regions.push_back(r);
        return {};
      }
      case RecordType::Resource: {
        std::uint64_t index = pr.u64();
        if (index != img.resources.size())
            return Error(MigrateError::BadRecord);
        ParsedImage::ResourceRec res;
        res.keyId = pr.u64();
        res.isFile = pr.u8() != 0;
        res.fileKey = pr.u64();
        std::uint64_t count = pr.u64();
        if (!pr.ok() || count > (std::uint64_t{1} << 32))
            return Error(MigrateError::BadRecord);
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t idx = pr.u64();
            cloak::PageMeta meta;
            meta.version = pr.u64();
            meta.initialized = pr.u8() != 0;
            pr.bytes(meta.iv);
            pr.bytes(meta.hash);
            meta.state = cloak::PageState::Encrypted;
            meta.residentGpa = badAddr;
            res.pages[idx] = meta;
        }
        if (!pr.done())
            return Error(MigrateError::BadRecord);
        img.resources.push_back(std::move(res));
        return {};
      }
      case RecordType::PageData: {
        if (rec.payload.size() != 8 + pageSize)
            return Error(MigrateError::BadRecord);
        GuestVA va = pr.u64();
        if (va != pageBase(va))
            return Error(MigrateError::BadRecord);
        auto& bytes = img.pages[va];
        pr.bytes(bytes);
        return {};
      }
      case RecordType::SealedBundle: {
        std::uint64_t file_key = pr.u64();
        std::uint64_t len = pr.u64();
        if (!pr.ok() || len != rec.payload.size() - 16)
            return Error(MigrateError::BadRecord);
        std::vector<std::uint8_t> bytes(len);
        pr.bytes(bytes);
        img.bundles[file_key] = std::move(bytes);
        return {};
      }
      case RecordType::SealVersion: {
        std::uint64_t file_key = pr.u64();
        std::uint64_t version = pr.u64();
        if (!pr.done())
            return Error(MigrateError::BadRecord);
        img.floors[file_key] = version;
        return {};
      }
      default:
        return Error(MigrateError::BadRecord);
    }
}

/** The current bytes of a page: its frame if present, its swap slot if
 *  swapped-out, nothing if never materialized. */
bool
pageBytes(system::System& sys, const os::Pte& pte,
          std::array<std::uint8_t, pageSize>& out)
{
    if (pte.present) {
        auto frame = sys.vmm().machine().memory().framePlain(
            sys.vmm().pmap().translate(pageBase(pte.gpa)));
        std::memcpy(out.data(), frame.data(), out.size());
        return true;
    }
    if (pte.swapped) {
        auto bytes = sys.kernel().swap().slotBytes(pte.slot);
        std::memcpy(out.data(), bytes.data(), out.size());
        return true;
    }
    return false;
}

} // namespace

bool
capturePage(system::System& sys, Pid pid, GuestVA va_page,
            std::array<std::uint8_t, pageSize>& out)
{
    os::Process* proc = sys.kernel().findProcess(pid);
    if (proc == nullptr)
        return false;
    const os::Pte* pte = proc->as.findPte(va_page);
    if (pte == nullptr || (!pte->present && !pte->swapped))
        return false;
    return pageBytes(sys, *pte, out);
}

Expected<CheckpointResult, MigrateError>
checkpoint(system::System& sys, Pid pid, const CheckpointOptions& options)
{
    cloak::CloakEngine* engine = sys.cloak();
    if (engine == nullptr)
        return Error(MigrateError::NoCloaking);
    os::Process* proc = sys.kernel().findProcess(pid);
    if (proc == nullptr || !proc->cloaked ||
        proc->domain == systemDomain)
        return Error(MigrateError::UnsupportedState);
    cloak::Domain* domain = engine->findDomain(proc->domain);
    if (domain == nullptr)
        return Error(MigrateError::UnsupportedState);

    // Quiesce precondition: the victim must be parked at a trap
    // boundary (or not have run since its own restore) — otherwise its
    // guest memory can be mid-update and host-stack state would be
    // silently dropped.
    os::Thread* t = sys.kernel().threadOf(pid);
    // A just-restored process has no bound thread until its first run:
    // quiesced by definition (re-checkpoint before resume is legal).
    osh_assert(t == nullptr || sys.kernel().isFrozen(pid) ||
                   t->state == os::Thread::State::Ready,
               "checkpoint of a running (unquiesced) process");

    // Chunked-integrity pages carry per-chunk (IV, version, hash)
    // state this image format does not serialize: a typed refusal, not
    // a checkpoint that would restore with a broken hash tree.
    if (engine->chunkedIntegrity())
        return Error(MigrateError::UnsupportedState);

    // Retire any in-flight async evictions before touching swap or
    // sealing: the image must carry fully committed ciphertext.
    sys.vmm().drainAsyncEvictions();

    // State this format cannot carry travels as a typed refusal, not a
    // truncated image: open descriptors (kernel-side file/pipe state),
    // file mappings (page-cache residency) and live children.
    for (const auto& f : proc->fds) {
        if (f)
            return Error(MigrateError::UnsupportedState);
    }
    for (const auto& [start, vma] : proc->as.vmas()) {
        if (vma.type != os::VmaType::Anon)
            return Error(MigrateError::UnsupportedState);
    }
    for (Pid other : sys.kernel().pids()) {
        os::Process* p = sys.kernel().findProcess(other);
        if (p != nullptr && p->ppid == pid)
            return Error(MigrateError::UnsupportedState);
    }

    CheckpointResult result;
    result.ticket.identity = domain->identity;
    result.ticket.imageVersion = options.imageVersion;
    result.ticket.nonce = options.nonce;

    // Canonical form: every resident plaintext page is encrypted in
    // place first, so the image carries only ciphertext + metadata.
    result.pagesSealed = engine->sealDomainPlaintext(domain->id);

    ImageWriter writer(engine->migrationKey(options.nonce));

    {
        PayloadWriter p;
        p.bytes(imageMagic);
        p.u64(imageFormatVersion);
        p.u64(options.imageVersion);
        p.bytes(domain->identity);
        p.str(proc->programName);
        p.u64(proc->argv.size());
        for (const std::string& a : proc->argv)
            p.str(a);
        writer.append(RecordType::Manifest, p.view());
    }
    {
        cloak::Shim* shim = sys.shimOf(pid);
        PayloadWriter p;
        p.u64(proc->as.mmapCursor());
        p.u64(proc->as.fileMapCursor());
        p.u64(domain->ctcVa);
        p.u64(shim != nullptr ? shim->bounceVa()
                              : sys.pendingRestoredBounce(pid));
        p.u8(domain->ctcHashValid ? 1 : 0);
        p.bytes(domain->ctcHash);
        writer.append(RecordType::Process, p.view());
    }
    for (const auto& [start, vma] : proc->as.vmas()) {
        PayloadWriter p;
        p.u64(vma.start);
        p.u64(vma.end);
        p.u8(static_cast<std::uint8_t>(vma.type));
        p.u64(vma.prot);
        p.u8(vma.shared ? 1 : 0);
        p.u8(vma.cloaked ? 1 : 0);
        p.u64(vma.inode);
        p.u64(vma.fileOffset);
        writer.append(RecordType::Vma, p.view());
    }

    // Resources are numbered by first appearance over the domain's
    // regions — a canonical order that survives the trip: the restored
    // domain registers regions in image order, so re-checkpointing
    // reproduces the numbering (and the bytes) exactly.
    std::map<ResourceId, std::uint64_t> canonical;
    std::vector<ResourceId> ordered;
    for (const cloak::Region& r : domain->regions) {
        if (canonical.emplace(r.resource, ordered.size()).second)
            ordered.push_back(r.resource);
        PayloadWriter p;
        p.u64(r.start);
        p.u64((r.end - r.start) / pageSize);
        p.u64(canonical[r.resource]);
        p.u64(r.resourcePageOffset);
        writer.append(RecordType::Region, p.view());
    }
    for (std::uint64_t i = 0; i < ordered.size(); ++i) {
        cloak::Resource* res =
            engine->metadata().lookup(ordered[i]).valueOr(nullptr);
        osh_assert(res != nullptr, "domain region names a dead resource");
        PayloadWriter p;
        p.u64(i);
        p.u64(res->keyId);
        p.u8(res->isFile ? 1 : 0);
        p.u64(res->fileKey);
        p.u64(res->pages.size());
        for (const auto& [idx, meta] : res->pages) {
            p.u64(idx);
            p.u64(meta.version);
            p.u8(meta.initialized ? 1 : 0);
            p.bytes(meta.iv);
            p.bytes(meta.hash);
        }
        writer.append(RecordType::Resource, p.view());
    }

    std::vector<GuestVA> vas;
    for (const auto& [va, pte] : proc->as.ptes()) {
        if (pte.present || pte.swapped)
            vas.push_back(va);
    }
    std::sort(vas.begin(), vas.end());
    std::array<std::uint8_t, pageSize> buf;
    for (GuestVA va : vas) {
        if (options.pageFilter != nullptr &&
            options.pageFilter->count(va) == 0)
            continue;
        const os::Pte* pte = proc->as.findPte(va);
        if (!pageBytes(sys, *pte, buf))
            continue;
        PayloadWriter p;
        p.u64(va);
        p.bytes(buf);
        writer.append(RecordType::PageData, p.view());
        ++result.pagesCaptured;
    }

    for (const auto& [file_key, bundle] : engine->sealedStore()) {
        PayloadWriter p;
        p.u64(file_key);
        p.u64(bundle.size());
        p.bytes(bundle);
        writer.append(RecordType::SealedBundle, p.view());
    }
    for (const auto& [file_key, version] :
         engine->metadata().sealVersions()) {
        PayloadWriter p;
        p.u64(file_key);
        p.u64(version);
        writer.append(RecordType::SealVersion, p.view());
    }

    result.image = writer.finish();
    return result;
}

Expected<RestoreResult, MigrateError>
restore(system::System& sys, std::span<const std::uint8_t> image,
        const Ticket& ticket, const StagedPages* staged)
{
    cloak::CloakEngine* engine = sys.cloak();
    if (engine == nullptr)
        return Error(MigrateError::NoCloaking);

    ImageReader reader(engine->migrationKey(ticket.nonce), image);
    auto first = reader.next();
    if (!first.ok())
        return Error(first.error());
    auto parsed = parseManifest(*first, ticket);
    if (!parsed.ok())
        return Error(parsed.error());
    ParsedImage& img = *parsed;

    const os::Program* prog = sys.programs().find(img.program);
    if (prog == nullptr)
        return Error(MigrateError::UnknownProgram);
    // The manifest identity must be the program's attested identity —
    // a renamed manifest cannot hijack another program's protection.
    if (!prog->cloaked ||
        !constantTimeEqual(cloak::programIdentity(img.program),
                           img.identity))
        return Error(MigrateError::IdentityMismatch);

    while (!reader.atEnd()) {
        auto rec = reader.next();
        if (!rec.ok())
            return Error(rec.error());
        const Record& r = *rec;
        if (r.type == RecordType::End)
            break;
        if (r.type == RecordType::Manifest)
            return Error(MigrateError::BadRecord);
        auto applied = parseRecord(img, r);
        if (!applied.ok())
            return Error(applied.error());
    }
    if (!img.haveProcess || img.vmas.empty())
        return Error(MigrateError::BadRecord);
    for (const ParsedImage::RegionRec& r : img.regions) {
        if (r.resourceIndex >= img.resources.size())
            return Error(MigrateError::BadRecord);
    }

    // Everything verified — mutate the target machine. Nothing below
    // can fail with a user-visible error (asserts only), so a refused
    // image never leaves a half-restored process behind.
    os::Process& proc =
        sys.kernel().createProcess(img.program, img.argv);
    osh_assert(proc.cloaked, "restored program lost its cloaked flag");

    for (const os::Vma& vma : img.vmas) {
        bool ok = proc.as.addVma(vma);
        osh_assert(ok, "restored VMA collision");
    }
    proc.as.setMmapCursor(img.mmapCursor);
    proc.as.setFileMapCursor(img.fileMapCursor);

    // Merge pre-copied pages under the image's final page set, then
    // materialize everything as swap-resident: first touch takes the
    // ordinary demand-paging path (swap-in, then cloak decrypt+verify
    // against the imported metadata), so rehydration reuses the exact
    // machinery that defends against a hostile kernel.
    StagedPages merged;
    if (staged != nullptr) {
        for (const auto& [va, bytes] : *staged) {
            if (proc.as.findVma(va) != nullptr)
                merged[va] = bytes;
        }
    }
    for (const auto& [va, bytes] : img.pages)
        merged[va] = bytes;

    RestoreResult result;
    for (const auto& [va, bytes] : merged) {
        auto slot = sys.kernel().swap().allocate();
        osh_assert(slot.has_value(), "swap device full during restore");
        sys.kernel().swap().writeSlot(*slot, bytes);
        os::Pte& pte = proc.as.pte(va);
        pte.present = false;
        pte.swapped = true;
        pte.slot = *slot;
        pte.gpa = badAddr;
        pte.user = true;
        pte.cow = false;
        ++result.pagesMaterialized;
    }

    DomainId domain =
        engine->createDomain(proc.as.asid(), proc.pid, img.identity);
    proc.domain = domain;
    std::vector<ResourceId> local;
    local.reserve(img.resources.size());
    for (const ParsedImage::ResourceRec& r : img.resources) {
        cloak::Resource& res =
            engine->importResource(domain, r.keyId, r.isFile, r.fileKey);
        res.pages = r.pages;
        local.push_back(res.id);
    }
    for (const ParsedImage::RegionRec& r : img.regions) {
        engine->registerRegion(domain, r.start, r.pages,
                               local[r.resourceIndex],
                               r.resourcePageOffset);
    }
    engine->bindCtc(domain, img.ctcVa);
    if (img.ctcHashValid)
        engine->recordCtcHash(domain, img.ctcHash);
    engine->metadata().importSealVersions(img.floors);
    for (auto& [file_key, bundle] : img.bundles)
        engine->sealedStore()[file_key] = std::move(bundle);

    sys.startRestoredProcess(proc, img.ctcVa, img.bounceVa);
    result.pid = proc.pid;
    return result;
}

} // namespace osh::migrate
