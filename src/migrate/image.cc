#include "migrate/image.hh"

#include "base/bytes.hh"
#include "base/logging.hh"

#include <cstring>

namespace osh::migrate
{

const char*
migrateErrorName(MigrateError e)
{
    switch (e) {
      case MigrateError::BadMagic: return "bad_magic";
      case MigrateError::UnsupportedVersion: return "unsupported_version";
      case MigrateError::BadMac: return "bad_mac";
      case MigrateError::Truncated: return "truncated";
      case MigrateError::BadRecord: return "bad_record";
      case MigrateError::IdentityMismatch: return "identity_mismatch";
      case MigrateError::ImageRollback: return "image_rollback";
      case MigrateError::UnknownProgram: return "unknown_program";
      case MigrateError::UnsupportedState: return "unsupported_state";
      case MigrateError::NoCloaking: return "no_cloaking";
    }
    return "unknown";
}

namespace
{

constexpr std::size_t macSize = crypto::sha256DigestSize;
constexpr std::size_t headerSize = 4 + 8; // le32 type + le64 length.

/** MAC chaining: HMAC(key, prev_mac || header || payload). */
crypto::Digest
chainMac(const crypto::HmacKey& key, const crypto::Digest& prev,
         std::span<const std::uint8_t> header,
         std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> buf;
    buf.reserve(prev.size() + header.size() + payload.size());
    buf.insert(buf.end(), prev.begin(), prev.end());
    buf.insert(buf.end(), header.begin(), header.end());
    buf.insert(buf.end(), payload.begin(), payload.end());
    return crypto::hmacSha256(key, buf);
}

} // namespace

// ---------------------------------------------------------------------------
// ImageWriter
// ---------------------------------------------------------------------------

ImageWriter::ImageWriter(const crypto::Digest& key) : key_(key) {}

void
ImageWriter::append(RecordType type, std::span<const std::uint8_t> payload)
{
    osh_assert(!finished_, "append to a finished image");
    std::array<std::uint8_t, headerSize> header;
    storeLe32(header.data(), static_cast<std::uint32_t>(type));
    storeLe64(header.data() + 4, payload.size());

    crypto::Digest mac = chainMac(key_, prevMac_, header, payload);
    out_.insert(out_.end(), header.begin(), header.end());
    out_.insert(out_.end(), payload.begin(), payload.end());
    out_.insert(out_.end(), mac.begin(), mac.end());
    prevMac_ = mac;
    ++records_;
}

std::vector<std::uint8_t>
ImageWriter::finish()
{
    osh_assert(!finished_, "finish on a finished image");
    append(RecordType::End, {});
    finished_ = true;
    return std::move(out_);
}

// ---------------------------------------------------------------------------
// ImageReader
// ---------------------------------------------------------------------------

ImageReader::ImageReader(const crypto::Digest& key,
                         std::span<const std::uint8_t> image)
    : key_(key), image_(image)
{
}

Expected<Record, MigrateError>
ImageReader::next()
{
    if (poisoned_)
        return Error(poison_);
    auto poison = [this](MigrateError e) {
        poisoned_ = true;
        poison_ = e;
        return Error(e);
    };
    if (atEnd_)
        return poison(MigrateError::BadRecord);
    if (image_.size() - pos_ < headerSize + macSize)
        return poison(MigrateError::Truncated);

    std::span<const std::uint8_t> header =
        image_.subspan(pos_, headerSize);
    std::uint32_t type = loadLe32(header.data());
    std::uint64_t len = loadLe64(header.data() + 4);
    if (len > image_.size() - pos_ - headerSize - macSize)
        return poison(MigrateError::Truncated);
    std::span<const std::uint8_t> payload =
        image_.subspan(pos_ + headerSize, len);
    std::span<const std::uint8_t> mac =
        image_.subspan(pos_ + headerSize + len, macSize);

    crypto::Digest expect = chainMac(key_, prevMac_, header, payload);
    if (!constantTimeEqual(expect, mac))
        return poison(MigrateError::BadMac);

    if (type < static_cast<std::uint32_t>(RecordType::Manifest) ||
        type > static_cast<std::uint32_t>(RecordType::End))
        return poison(MigrateError::BadRecord);

    std::memcpy(prevMac_.data(), mac.data(), macSize);
    pos_ += headerSize + len + macSize;

    Record rec;
    rec.type = static_cast<RecordType>(type);
    rec.payload.assign(payload.begin(), payload.end());
    if (rec.type == RecordType::End) {
        if (pos_ != image_.size())
            return poison(MigrateError::BadRecord); // Trailing bytes.
        atEnd_ = true;
    }
    return rec;
}

// ---------------------------------------------------------------------------
// Payload helpers
// ---------------------------------------------------------------------------

void
PayloadWriter::u32(std::uint32_t v)
{
    std::uint8_t b[4];
    storeLe32(b, v);
    bytes_.insert(bytes_.end(), b, b + 4);
}

void
PayloadWriter::u64(std::uint64_t v)
{
    std::uint8_t b[8];
    storeLe64(b, v);
    bytes_.insert(bytes_.end(), b, b + 8);
}

void
PayloadWriter::str(const std::string& s)
{
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint8_t
PayloadReader::u8()
{
    if (!ok_ || bytes_.size() - pos_ < 1) {
        ok_ = false;
        return 0;
    }
    return bytes_[pos_++];
}

std::uint32_t
PayloadReader::u32()
{
    if (!ok_ || bytes_.size() - pos_ < 4) {
        ok_ = false;
        return 0;
    }
    std::uint32_t v = loadLe32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
PayloadReader::u64()
{
    if (!ok_ || bytes_.size() - pos_ < 8) {
        ok_ = false;
        return 0;
    }
    std::uint64_t v = loadLe64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
}

void
PayloadReader::bytes(std::span<std::uint8_t> out)
{
    if (!ok_ || bytes_.size() - pos_ < out.size()) {
        ok_ = false;
        std::memset(out.data(), 0, out.size());
        return;
    }
    std::memcpy(out.data(), bytes_.data() + pos_, out.size());
    pos_ += out.size();
}

std::string
PayloadReader::str()
{
    std::uint64_t len = u64();
    if (!ok_ || len > bytes_.size() - pos_) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  len);
    pos_ += len;
    return s;
}

} // namespace osh::migrate
