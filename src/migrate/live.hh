/**
 * @file
 * Live (pre-copy) migration of a cloaked process between machines.
 *
 * The source keeps running while dirty cloaked pages stream to the
 * target in rounds: each round briefly quiesces the victim at a trap
 * boundary, seals any resident plaintext, diffs per-page metadata
 * versions against what was already sent, and streams the dirty set as
 * a chain-MAC'd segment keyed per round (an old round's segment
 * replayed later fails its MAC — the stream cannot be replayed or
 * reordered by the untrusted transport). When the dirty set is small
 * enough (or rounds run out) the victim stops for good: a final
 * checkpoint image carries only the last dirty pages plus everything
 * pre-copy does not track (uncloaked pages, metadata, CTC, sealed
 * bundles), the source copy is abandoned, and the target restores.
 * Downtime is the stop-and-copy capture plus the restore — not the
 * whole transfer.
 */

#ifndef OSH_MIGRATE_LIVE_HH
#define OSH_MIGRATE_LIVE_HH

#include "migrate/checkpoint.hh"

#include <cstdint>
#include <functional>
#include <vector>

namespace osh::migrate
{

/** Knobs for one live migration. */
struct LiveOptions
{
    /** Migration nonce (stream + image key derivation). */
    std::uint64_t nonce = 1;

    /** Image version the final ticket pins. */
    std::uint64_t imageVersion = 1;

    /** Pre-copy rounds before forcing stop-and-copy. */
    std::uint64_t maxRounds = 8;

    /** Stop-and-copy once a round's dirty set is this small. Rounds
     *  also stop early when the dirty set stops shrinking — a victim
     *  that redirties pages as fast as rounds drain them gets no
     *  benefit from further pre-copy. */
    std::uint64_t dirtyPageThreshold = 4;

    /** Syscall entries the victim runs between rounds. */
    std::uint64_t entriesPerRound = 8;

    /**
     * Transport hook: called with every streamed segment (and the
     * round that keyed it) before the target applies it. Attack
     * campaigns use it to tamper with or replay stream traffic.
     */
    std::function<void(std::uint64_t round,
                       std::vector<std::uint8_t>& segment)>
        interceptSegment;
};

/** Outcome of a completed live migration. */
struct LiveResult
{
    std::uint64_t rounds = 0;        ///< Pre-copy rounds run.
    std::uint64_t precopyPages = 0;  ///< Pages streamed before the stop.
    std::uint64_t stopCopyPages = 0; ///< Pages in the final image.
    std::uint64_t bytesStreamed = 0; ///< Segments + final image.
    Cycles downtimeCycles = 0;       ///< Stop-and-copy + restore cycles.
    Pid targetPid = 0;               ///< Pid minted on the target.
};

/**
 * Derive the chain-MAC key of pre-copy round @p round from the
 * migration @p base key. Both sides derive it independently; a segment
 * MAC'd under any other round's key is refused.
 */
crypto::Digest streamRoundKey(const crypto::Digest& base,
                              std::uint64_t round);

/**
 * Target side: verify one pre-copy segment under @p key and stage its
 * pages. Returns the page count, or the typed refusal (BadMac for
 * tampered/replayed traffic, Truncated/BadRecord for malformed).
 * Nothing is staged from a segment that fails verification.
 */
Expected<std::uint64_t, MigrateError>
applyStreamSegment(std::span<const std::uint8_t> segment,
                   const crypto::Digest& key, StagedPages& staged);

/**
 * Live-migrate @p pid from @p src to @p dst. On success the source
 * copy is dead (killed after the stop-and-copy) and the target holds
 * the restored process ready to run (dst.run()). On a typed failure
 * the victim still runs on the source — run src.run() to let it
 * finish there.
 */
Expected<LiveResult, MigrateError>
migrateLive(system::System& src, Pid pid, system::System& dst,
            const LiveOptions& options = {});

} // namespace osh::migrate

#endif // OSH_MIGRATE_LIVE_HH
