/**
 * @file
 * Checkpoint and restore of cloaked processes.
 *
 * checkpoint() serializes the full protected state of one quiesced
 * cloaked process — address-space layout, per-page protection metadata
 * (IVs, hashes, versions), every resident or swapped page image
 * (ciphertext: the domain is sealed first), the CTC binding, sealed
 * file bundles and the rollback floors — into a chain-MAC'd image
 * (see image.hh). The image never contains plaintext of cloaked pages
 * or any key material: it is safe to hand to the untrusted transport.
 *
 * restore() rehydrates the image on a *fresh* machine. Pages are
 * materialized as swap-resident, so the target's ordinary demand-paging
 * path — swap-in, then cloak decrypt+verify against the imported
 * metadata — performs the actual rehydration on first touch. Any
 * tampering with the image that survives the chain MAC (it cannot) or
 * with page bytes in transit is therefore caught by the same integrity
 * machinery that defeats a hostile kernel.
 *
 * Host-side lambda stacks are not serializable, so resumption is
 * cooperative: the victim program re-enters main() on the target,
 * discovers its still-cloaked arena (VmaQuery), and fast-forwards from
 * the progress state it keeps inside cloaked memory. Freezes only ever
 * land on trap boundaries, so that state is always consistent.
 */

#ifndef OSH_MIGRATE_CHECKPOINT_HH
#define OSH_MIGRATE_CHECKPOINT_HH

#include "migrate/image.hh"
#include "system/system.hh"

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace osh::migrate
{

/** Knobs for one checkpoint. */
struct CheckpointOptions
{
    /** Migration nonce (chain-key derivation; one per migration). */
    std::uint64_t nonce = 1;

    /** Image version the ticket pins (bump per checkpoint of a victim;
     *  the target refuses any other version = rollback detection). */
    std::uint64_t imageVersion = 1;

    /**
     * When set, only these page VAs get PageData records (live
     * migration's stop-and-copy: everything else was pre-copied and is
     * supplied to restore() as staged pages). nullptr = all pages.
     */
    const std::set<GuestVA>* pageFilter = nullptr;
};

/** A produced checkpoint: image bytes plus the out-of-band ticket. */
struct CheckpointResult
{
    std::vector<std::uint8_t> image;
    Ticket ticket;
    std::uint64_t pagesCaptured = 0;  ///< PageData records written.
    std::uint64_t pagesSealed = 0;    ///< Plaintext pages encrypted first.
};

/** Pages streamed ahead of the image by live pre-copy rounds. */
using StagedPages = std::map<GuestVA, std::array<std::uint8_t, pageSize>>;

/** Result of a successful restore. */
struct RestoreResult
{
    Pid pid = 0;                       ///< Pid minted on the target.
    std::uint64_t pagesMaterialized = 0;
};

/**
 * Serialize the protected state of @p pid. The process must be
 * quiesced: frozen at a trap boundary (Kernel::requestFreeze) or not
 * yet run since its own restore. Fails with UnsupportedState for
 * processes that cannot be checkpointed (open descriptors, file
 * mappings, live children) and NoCloaking on a native-baseline system.
 */
Expected<CheckpointResult, MigrateError>
checkpoint(system::System& sys, Pid pid,
           const CheckpointOptions& options = {});

/**
 * Read the current bytes of one page of @p pid (frame if present, swap
 * slot if swapped-out). False when the page was never materialized.
 * Used by live pre-copy rounds to stream dirty pages without building
 * a full image.
 */
bool capturePage(system::System& sys, Pid pid, GuestVA va_page,
                 std::array<std::uint8_t, pageSize>& out);

/**
 * Rehydrate a checkpoint on @p sys (a fresh machine). Verifies the
 * chain MAC, the manifest against the @p ticket (identity + image
 * version), and the program registration; creates the process, imports
 * the protection domain and starts its thread (run sys.run() to
 * resume). @p staged supplies pages already streamed by live pre-copy
 * rounds; PageData records in the image override staged entries.
 */
Expected<RestoreResult, MigrateError>
restore(system::System& sys, std::span<const std::uint8_t> image,
        const Ticket& ticket, const StagedPages* staged = nullptr);

} // namespace osh::migrate

#endif // OSH_MIGRATE_CHECKPOINT_HH
