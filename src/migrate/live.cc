#include "migrate/live.hh"

#include "base/bytes.hh"
#include "base/logging.hh"
#include "crypto/hmac.hh"

#include <map>
#include <utility>

namespace osh::migrate
{

namespace
{

/** Dirty cloaked pages of a quiesced, sealed domain: every metadata
 *  version newer than what @p last_sent recorded, mapped back to the
 *  VA the domain's regions give it. Updates @p last_sent in place. */
std::set<GuestVA>
collectDirty(system::System& sys, const cloak::Domain& domain,
             std::map<std::pair<ResourceId, std::uint64_t>,
                      std::uint64_t>& last_sent)
{
    std::set<GuestVA> dirty;
    cloak::CloakEngine* engine = sys.cloak();
    for (const cloak::Region& r : domain.regions) {
        const cloak::Resource* res =
            engine->metadata().lookup(r.resource).valueOr(nullptr);
        if (res == nullptr)
            continue;
        std::uint64_t region_pages = (r.end - r.start) / pageSize;
        for (const auto& [idx, meta] : res->pages) {
            if (idx < r.resourcePageOffset ||
                idx >= r.resourcePageOffset + region_pages)
                continue;
            auto key = std::make_pair(res->id, idx);
            auto it = last_sent.find(key);
            if (it != last_sent.end() && it->second == meta.version)
                continue;
            GuestVA va =
                r.start + (idx - r.resourcePageOffset) * pageSize;
            dirty.insert(va);
            last_sent[key] = meta.version;
        }
    }
    return dirty;
}

/** Materialized page VAs outside every domain region — pages pre-copy
 *  cannot track (no metadata versions), so the final image must carry
 *  them all. */
std::set<GuestVA>
uncloakedPages(const os::Process& proc, const cloak::Domain& domain)
{
    std::set<GuestVA> vas;
    for (const auto& [va, pte] : proc.as.ptes()) {
        if (!pte.present && !pte.swapped)
            continue;
        bool cloaked = false;
        for (const cloak::Region& r : domain.regions) {
            if (r.contains(va)) {
                cloaked = true;
                break;
            }
        }
        if (!cloaked)
            vas.insert(va);
    }
    return vas;
}

} // namespace

crypto::Digest
streamRoundKey(const crypto::Digest& base, std::uint64_t round)
{
    std::array<std::uint8_t, 8> info;
    storeLe64(info.data(), round);
    return crypto::hmacSha256(crypto::HmacKey(base), info);
}

Expected<std::uint64_t, MigrateError>
applyStreamSegment(std::span<const std::uint8_t> segment,
                   const crypto::Digest& key, StagedPages& staged)
{
    ImageReader reader(key, segment);
    StagedPages fresh;
    while (true) {
        auto rec = reader.next();
        if (!rec.ok())
            return Error(rec.error());
        const Record& r = *rec;
        if (r.type == RecordType::End)
            break;
        if (r.type != RecordType::PageData ||
            r.payload.size() != 8 + pageSize)
            return Error(MigrateError::BadRecord);
        PayloadReader pr(r.payload);
        GuestVA va = pr.u64();
        if (va != pageBase(va))
            return Error(MigrateError::BadRecord);
        pr.bytes(fresh[va]);
    }
    // Stage only after the whole segment verified: a segment that
    // fails mid-way must not leave half its pages behind.
    std::uint64_t count = fresh.size();
    for (auto& [va, bytes] : fresh)
        staged[va] = bytes;
    return count;
}

Expected<LiveResult, MigrateError>
migrateLive(system::System& src, Pid pid, system::System& dst,
            const LiveOptions& options)
{
    cloak::CloakEngine* src_engine = src.cloak();
    if (src_engine == nullptr || dst.cloak() == nullptr)
        return Error(MigrateError::NoCloaking);
    os::Process* proc = src.kernel().findProcess(pid);
    if (proc == nullptr || !proc->cloaked)
        return Error(MigrateError::UnsupportedState);
    // The protection domain is created when the victim's thread first
    // runs, so it is resolved after the first freeze lands — a freshly
    // launch()ed victim is a valid migration source.
    cloak::Domain* domain = nullptr;

    // Each side derives its own key ladder; only matching master
    // secrets (the trusted VMM-to-VMM channel) let segments verify.
    crypto::Digest src_base = src_engine->migrationKey(options.nonce);
    crypto::Digest dst_base = dst.cloak()->migrationKey(options.nonce);

    LiveResult result;
    StagedPages staged;
    std::map<std::pair<ResourceId, std::uint64_t>, std::uint64_t>
        last_sent;
    std::set<GuestVA> final_dirty;

    std::uint64_t max_rounds = options.maxRounds == 0
                                   ? 1
                                   : options.maxRounds;
    std::uint64_t prev_dirty = ~std::uint64_t{0};
    bool stopping = false;
    for (std::uint64_t round = 0; !stopping; ++round) {
        // Let the victim run a burst, then park it at a trap boundary.
        src.kernel().requestFreeze(pid, options.entriesPerRound);
        src.run();
        if (!src.kernel().isFrozen(pid)) {
            // The victim exited on its own before the freeze landed —
            // nothing left to migrate.
            return Error(MigrateError::UnsupportedState);
        }
        if (domain == nullptr) {
            domain = proc->domain != systemDomain
                         ? src_engine->findDomain(proc->domain)
                         : nullptr;
            if (domain == nullptr) {
                src.kernel().thaw(pid);
                return Error(MigrateError::UnsupportedState);
            }
        }

        // Seal so dirty plaintext becomes versioned ciphertext, then
        // diff versions against what the target already holds.
        src_engine->sealDomainPlaintext(domain->id);
        std::set<GuestVA> dirty =
            collectDirty(src, *domain, last_sent);

        result.rounds = round + 1;
        // Stop when the dirty set is small, when it stops shrinking
        // meaningfully (under 25% per round: the victim redirties
        // pages nearly as fast as rounds drain them — more pre-copy
        // is pure waste), or when rounds run out. Round 0 is exempt:
        // it is the bulk transfer, not a dirty-rate sample; round 1's
        // set is the first honest rate.
        bool converged =
            round > 0 &&
            (dirty.size() <= options.dirtyPageThreshold ||
             (round > 1 && dirty.size() * 4 >= prev_dirty * 3));
        if (round + 1 >= max_rounds || converged) {
            // Keep the victim frozen and fold this round's dirty set
            // into the stop-and-copy image.
            final_dirty = std::move(dirty);
            stopping = true;
            break;
        }
        prev_dirty = dirty.size();

        ImageWriter writer(streamRoundKey(src_base, round));
        std::uint64_t streamed = 0;
        std::array<std::uint8_t, pageSize> buf;
        for (GuestVA va : dirty) {
            if (!capturePage(src, pid, va, buf))
                continue;
            PayloadWriter p;
            p.u64(va);
            p.bytes(buf);
            writer.append(RecordType::PageData, p.view());
            ++streamed;
        }
        std::vector<std::uint8_t> segment = writer.finish();
        if (options.interceptSegment)
            options.interceptSegment(round, segment);
        result.bytesStreamed += segment.size();

        auto applied = applyStreamSegment(
            segment, streamRoundKey(dst_base, round), staged);
        if (!applied.ok()) {
            // The transport corrupted (or replayed) the stream — the
            // migration aborts, but the victim is unharmed: thaw it
            // and let it finish on the source.
            src.kernel().thaw(pid);
            return Error(applied.error());
        }
        result.precopyPages += *applied;
        src.kernel().thaw(pid);
    }

    // Stop-and-copy: the victim is frozen for good. Downtime is what
    // happens from here until the target has a runnable copy.
    Cycles downtime_start = src.cycles();
    std::set<GuestVA> filter = uncloakedPages(*proc, *domain);
    filter.insert(final_dirty.begin(), final_dirty.end());

    CheckpointOptions copts;
    copts.nonce = options.nonce;
    copts.imageVersion = options.imageVersion;
    copts.pageFilter = &filter;
    auto ckpt = checkpoint(src, pid, copts);
    if (!ckpt.ok()) {
        src.kernel().thaw(pid);
        return Error(ckpt.error());
    }
    CheckpointResult& image = *ckpt;
    result.stopCopyPages = image.pagesCaptured;
    result.bytesStreamed += image.image.size();
    result.downtimeCycles = src.cycles() - downtime_start;

    Cycles dst_start = dst.cycles();
    auto restored = restore(dst, image.image, image.ticket, &staged);
    if (!restored.ok()) {
        src.kernel().thaw(pid);
        return Error(restored.error());
    }
    result.downtimeCycles += dst.cycles() - dst_start;
    result.targetPid = (*restored).pid;

    // Abandon the source copy. killProcess() would wake the frozen
    // thread without the scheduler's freeze accounting, so flag the
    // kill and thaw properly: the post-thaw kill check in the trap
    // path tears it down.
    proc->killRequested = true;
    proc->killReason = "migrated away";
    src.kernel().thaw(pid);
    src.run();
    return result;
}

} // namespace osh::migrate
