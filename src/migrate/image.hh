/**
 * @file
 * Migration image format.
 *
 * A checkpoint (and each live pre-copy round) serializes protected
 * state into a stream of typed records. Every record carries a chain
 * MAC: HMAC over the previous record's MAC plus this record's header
 * and payload, keyed by the migration key both VMMs derive from the
 * shared platform secret and the migration nonce. The chain makes
 * tampering, reordering, record replay and truncation all detectable —
 * the target refuses the image instead of resuming a corrupted victim.
 *
 * Rollback of a whole image (replaying an older checkpoint of the same
 * victim) is caught one level up: the out-of-band Ticket names the
 * image version the target must see, and the manifest's version is
 * covered by the first chain MAC.
 *
 * The format is canonical: serializing identical protected state under
 * the same (nonce, image version) produces identical bytes, which the
 * round-trip tests assert (checkpoint -> restore -> re-checkpoint).
 */

#ifndef OSH_MIGRATE_IMAGE_HH
#define OSH_MIGRATE_IMAGE_HH

#include "base/expected.hh"
#include "base/types.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace osh::migrate
{

/** Typed failure reasons for checkpoint/restore/migration. */
enum class MigrateError : std::uint8_t
{
    BadMagic,            ///< Manifest magic or leading record malformed.
    UnsupportedVersion,  ///< Image format version unknown.
    BadMac,              ///< A record's chain MAC failed to verify.
    Truncated,           ///< Stream ended before the End record.
    BadRecord,           ///< Record type/length/payload malformed.
    IdentityMismatch,    ///< Manifest identity differs from the ticket's.
    ImageRollback,       ///< Image version differs from the ticket's.
    UnknownProgram,      ///< Target has no program of the manifest name.
    UnsupportedState,    ///< Victim not checkpointable (open fds, files).
    NoCloaking,          ///< Machine runs without a cloak engine.
};

/** Stable short name for an error (logs, campaign tables). */
const char* migrateErrorName(MigrateError e);

/** Record types of the image stream. */
enum class RecordType : std::uint32_t
{
    Manifest = 1,      ///< Format/image versions, identity, program, argv.
    Process = 2,       ///< Address-space cursors, CTC/bounce layout.
    Vma = 3,           ///< One virtual memory area.
    Region = 4,        ///< One cloaked region (resource by canonical index).
    Resource = 5,      ///< One resource's per-page protection metadata.
    PageData = 6,      ///< One page image (ciphertext for cloaked pages).
    SealedBundle = 7,  ///< One sealed file-metadata bundle, verbatim.
    SealVersion = 8,   ///< One rollback-floor entry (file key -> version).
    End = 9,           ///< Terminator; absence means truncation.
};

/** Image format version this build reads and writes. */
constexpr std::uint64_t imageFormatVersion = 1;

/** Manifest magic ("OSHMIG1\0"). */
constexpr std::array<std::uint8_t, 8> imageMagic = {'O', 'S', 'H', 'M',
                                                    'I', 'G', '1', '\0'};

/**
 * Out-of-band migration ticket. In the paper's model the source VMM
 * hands this to the target over the trusted VMM-to-VMM channel; the
 * untrusted transport only ever carries the image bytes. The ticket
 * pins the victim identity, the expected image version (rollback
 * detection) and the nonce the chain key is derived from.
 */
struct Ticket
{
    crypto::Digest identity{};
    std::uint64_t imageVersion = 0;
    std::uint64_t nonce = 0;
};

/** One parsed record. */
struct Record
{
    RecordType type = RecordType::End;
    std::vector<std::uint8_t> payload;
};

/**
 * Serializes records into a chain-MAC'd image. The writer owns the
 * output buffer; every append() extends the chain.
 */
class ImageWriter
{
  public:
    explicit ImageWriter(const crypto::Digest& key);

    /** Append one record (header + payload + chain MAC). */
    void append(RecordType type, std::span<const std::uint8_t> payload);

    /** Finish the stream with the End record and take the bytes. */
    std::vector<std::uint8_t> finish();

    /** Records appended so far (End not included until finish()). */
    std::uint64_t records() const { return records_; }

  private:
    crypto::HmacKey key_;
    crypto::Digest prevMac_{};
    std::vector<std::uint8_t> out_;
    std::uint64_t records_ = 0;
    bool finished_ = false;
};

/**
 * Verifying reader over an image. next() authenticates each record
 * against the chain before handing it out; any verification failure
 * poisons the reader (every later call fails the same way).
 */
class ImageReader
{
  public:
    ImageReader(const crypto::Digest& key,
                std::span<const std::uint8_t> image);

    /**
     * The next authenticated record. Returns End exactly once for a
     * well-formed stream; BadMac/Truncated/BadRecord otherwise.
     */
    Expected<Record, MigrateError> next();

    /** Whether the End record has been reached cleanly. */
    bool atEnd() const { return atEnd_; }

  private:
    crypto::HmacKey key_;
    crypto::Digest prevMac_{};
    std::span<const std::uint8_t> image_;
    std::size_t pos_ = 0;
    bool atEnd_ = false;
    bool poisoned_ = false;
    MigrateError poison_ = MigrateError::BadRecord;
};

/**
 * Little-endian payload builder/parser helpers shared by the
 * checkpoint serializer and the restore parser.
 */
class PayloadWriter
{
  public:
    void u8(std::uint8_t v) { bytes_.push_back(v); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void bytes(std::span<const std::uint8_t> b)
    {
        bytes_.insert(bytes_.end(), b.begin(), b.end());
    }
    void str(const std::string& s);

    std::span<const std::uint8_t> view() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Bounds-checked payload parser; ok() goes false on any overrun. */
class PayloadReader
{
  public:
    explicit PayloadReader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    void bytes(std::span<std::uint8_t> out);
    std::string str();

    /** No overrun so far and (for done()) fully consumed. */
    bool ok() const { return ok_; }
    bool done() const { return ok_ && pos_ == bytes_.size(); }

  private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace osh::migrate

#endif // OSH_MIGRATE_IMAGE_HH
