#include "crypto/aes.hh"

#include "base/bytes.hh"

#include <bit>
#include <cstring>

namespace osh::crypto
{

namespace
{

// FIPS-197 S-box.
constexpr std::uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

// Inverse S-box.
constexpr std::uint8_t invSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38,
    0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d,
    0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2,
    0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda,
    0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a,
    0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea,
    0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85,
    0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20,
    0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31,
    0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0,
    0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26,
    0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
};

constexpr std::uint8_t rcon[10] = {
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
};

// Multiply by x in GF(2^8).
constexpr std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a >> 7) * 0x1b));
}

// General GF(2^8) multiply (used by InvMixColumns).
inline std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

// Encryption T-tables: Te0[x] packs the MixColumns column produced by
// S-box output S = sbox[x] as big-endian (2S, S, S, 3S); Te1..Te3 are
// byte rotations of Te0 so each table feeds one state row. One round
// becomes four loads + XORs per column, SubBytes/ShiftRows/MixColumns
// included.
struct TeTables
{
    std::uint32_t t0[256];
    std::uint32_t t1[256];
    std::uint32_t t2[256];
    std::uint32_t t3[256];
};

constexpr TeTables
makeTeTables()
{
    TeTables t{};
    for (int i = 0; i < 256; ++i) {
        std::uint8_t s = sbox[i];
        std::uint8_t s2 = xtime(s);
        std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
        std::uint32_t w = (static_cast<std::uint32_t>(s2) << 24) |
                          (static_cast<std::uint32_t>(s) << 16) |
                          (static_cast<std::uint32_t>(s) << 8) |
                          static_cast<std::uint32_t>(s3);
        t.t0[i] = w;
        t.t1[i] = std::rotr(w, 8);
        t.t2[i] = std::rotr(w, 16);
        t.t3[i] = std::rotr(w, 24);
    }
    return t;
}

constexpr TeTables Te = makeTeTables();

} // namespace

Aes128::Aes128(const AesKey& key)
{
    // Key expansion (FIPS-197 section 5.2), Nk = 4, Nr = 10.
    std::memcpy(roundKeys_.data(), key.data(), aesKeySize);
    for (int i = 4; i < 4 * (numRounds + 1); ++i) {
        std::uint8_t t[4];
        std::memcpy(t, &roundKeys_[(i - 1) * 4], 4);
        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            std::uint8_t tmp = t[0];
            t[0] = static_cast<std::uint8_t>(sbox[t[1]] ^ rcon[i / 4 - 1]);
            t[1] = sbox[t[2]];
            t[2] = sbox[t[3]];
            t[3] = sbox[tmp];
        }
        for (int b = 0; b < 4; ++b) {
            roundKeys_[i * 4 + b] =
                roundKeys_[(i - 4) * 4 + b] ^ t[b];
        }
    }
    for (std::size_t w = 0; w < roundKeyWords_.size(); ++w)
        roundKeyWords_[w] = loadBe32(&roundKeys_[w * 4]);
}

void
Aes128::encryptBlock(const std::uint8_t* in, std::uint8_t* out) const
{
    if (referenceMode_)
        encryptBlockReference(in, out);
    else
        encryptBlockFast(in, out);
}

void
Aes128::encryptBlocks(const std::uint8_t* in, std::uint8_t* out,
                      std::size_t nblocks) const
{
    if (referenceMode_) {
        for (std::size_t b = 0; b < nblocks; ++b)
            encryptBlockReference(in + b * aesBlockSize,
                                  out + b * aesBlockSize);
        return;
    }
    std::size_t b = 0;
    if (bulkMode_) {
        for (; b + 4 <= nblocks; b += 4)
            encryptBlocks4Fast(in + b * aesBlockSize,
                               out + b * aesBlockSize);
    }
    for (; b < nblocks; ++b)
        encryptBlockFast(in + b * aesBlockSize, out + b * aesBlockSize);
}

void
Aes128::encryptBlocks4Fast(const std::uint8_t* in,
                           std::uint8_t* out) const
{
    const std::uint32_t* rk = roundKeyWords_.data();

    // Four blocks as four lanes of column words. Every round touches
    // each lane with the same table/key pattern, so the loads of all
    // four lanes are independent and the host overlaps them instead of
    // waiting out one block's round chain.
    std::uint32_t s0[4], s1[4], s2[4], s3[4];
    for (int l = 0; l < 4; ++l) {
        const std::uint8_t* p = in + static_cast<std::size_t>(l) *
                                         aesBlockSize;
        s0[l] = loadBe32(p) ^ rk[0];
        s1[l] = loadBe32(p + 4) ^ rk[1];
        s2[l] = loadBe32(p + 8) ^ rk[2];
        s3[l] = loadBe32(p + 12) ^ rk[3];
    }

    for (int round = 1; round < numRounds; ++round) {
        rk += 4;
        for (int l = 0; l < 4; ++l) {
            std::uint32_t t0 = Te.t0[s0[l] >> 24] ^
                               Te.t1[(s1[l] >> 16) & 0xff] ^
                               Te.t2[(s2[l] >> 8) & 0xff] ^
                               Te.t3[s3[l] & 0xff] ^ rk[0];
            std::uint32_t t1 = Te.t0[s1[l] >> 24] ^
                               Te.t1[(s2[l] >> 16) & 0xff] ^
                               Te.t2[(s3[l] >> 8) & 0xff] ^
                               Te.t3[s0[l] & 0xff] ^ rk[1];
            std::uint32_t t2 = Te.t0[s2[l] >> 24] ^
                               Te.t1[(s3[l] >> 16) & 0xff] ^
                               Te.t2[(s0[l] >> 8) & 0xff] ^
                               Te.t3[s1[l] & 0xff] ^ rk[2];
            std::uint32_t t3 = Te.t0[s3[l] >> 24] ^
                               Te.t1[(s0[l] >> 16) & 0xff] ^
                               Te.t2[(s1[l] >> 8) & 0xff] ^
                               Te.t3[s2[l] & 0xff] ^ rk[3];
            s0[l] = t0;
            s1[l] = t1;
            s2[l] = t2;
            s3[l] = t3;
        }
    }

    rk += 4;
    for (int l = 0; l < 4; ++l) {
        std::uint8_t* p = out + static_cast<std::size_t>(l) *
                                    aesBlockSize;
        std::uint32_t t0 =
            (static_cast<std::uint32_t>(sbox[s0[l] >> 24]) << 24) |
            (static_cast<std::uint32_t>(sbox[(s1[l] >> 16) & 0xff])
             << 16) |
            (static_cast<std::uint32_t>(sbox[(s2[l] >> 8) & 0xff])
             << 8) |
            static_cast<std::uint32_t>(sbox[s3[l] & 0xff]);
        std::uint32_t t1 =
            (static_cast<std::uint32_t>(sbox[s1[l] >> 24]) << 24) |
            (static_cast<std::uint32_t>(sbox[(s2[l] >> 16) & 0xff])
             << 16) |
            (static_cast<std::uint32_t>(sbox[(s3[l] >> 8) & 0xff])
             << 8) |
            static_cast<std::uint32_t>(sbox[s0[l] & 0xff]);
        std::uint32_t t2 =
            (static_cast<std::uint32_t>(sbox[s2[l] >> 24]) << 24) |
            (static_cast<std::uint32_t>(sbox[(s3[l] >> 16) & 0xff])
             << 16) |
            (static_cast<std::uint32_t>(sbox[(s0[l] >> 8) & 0xff])
             << 8) |
            static_cast<std::uint32_t>(sbox[s1[l] & 0xff]);
        std::uint32_t t3 =
            (static_cast<std::uint32_t>(sbox[s3[l] >> 24]) << 24) |
            (static_cast<std::uint32_t>(sbox[(s0[l] >> 16) & 0xff])
             << 16) |
            (static_cast<std::uint32_t>(sbox[(s1[l] >> 8) & 0xff])
             << 8) |
            static_cast<std::uint32_t>(sbox[s2[l] & 0xff]);
        storeBe32(p, t0 ^ rk[0]);
        storeBe32(p + 4, t1 ^ rk[1]);
        storeBe32(p + 8, t2 ^ rk[2]);
        storeBe32(p + 12, t3 ^ rk[3]);
    }
}

void
Aes128::encryptBlockFast(const std::uint8_t* in, std::uint8_t* out) const
{
    const std::uint32_t* rk = roundKeyWords_.data();

    // State as four big-endian column words; row 0 is the MSB.
    std::uint32_t s0 = loadBe32(in) ^ rk[0];
    std::uint32_t s1 = loadBe32(in + 4) ^ rk[1];
    std::uint32_t s2 = loadBe32(in + 8) ^ rk[2];
    std::uint32_t s3 = loadBe32(in + 12) ^ rk[3];

    for (int round = 1; round < numRounds; ++round) {
        rk += 4;
        std::uint32_t t0 = Te.t0[s0 >> 24] ^ Te.t1[(s1 >> 16) & 0xff] ^
                           Te.t2[(s2 >> 8) & 0xff] ^ Te.t3[s3 & 0xff] ^
                           rk[0];
        std::uint32_t t1 = Te.t0[s1 >> 24] ^ Te.t1[(s2 >> 16) & 0xff] ^
                           Te.t2[(s3 >> 8) & 0xff] ^ Te.t3[s0 & 0xff] ^
                           rk[1];
        std::uint32_t t2 = Te.t0[s2 >> 24] ^ Te.t1[(s3 >> 16) & 0xff] ^
                           Te.t2[(s0 >> 8) & 0xff] ^ Te.t3[s1 & 0xff] ^
                           rk[2];
        std::uint32_t t3 = Te.t0[s3 >> 24] ^ Te.t1[(s0 >> 16) & 0xff] ^
                           Te.t2[(s1 >> 8) & 0xff] ^ Te.t3[s2 & 0xff] ^
                           rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    rk += 4;
    std::uint32_t t0 =
        (static_cast<std::uint32_t>(sbox[s0 >> 24]) << 24) |
        (static_cast<std::uint32_t>(sbox[(s1 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(sbox[(s2 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(sbox[s3 & 0xff]);
    std::uint32_t t1 =
        (static_cast<std::uint32_t>(sbox[s1 >> 24]) << 24) |
        (static_cast<std::uint32_t>(sbox[(s2 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(sbox[(s3 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(sbox[s0 & 0xff]);
    std::uint32_t t2 =
        (static_cast<std::uint32_t>(sbox[s2 >> 24]) << 24) |
        (static_cast<std::uint32_t>(sbox[(s3 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(sbox[(s0 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(sbox[s1 & 0xff]);
    std::uint32_t t3 =
        (static_cast<std::uint32_t>(sbox[s3 >> 24]) << 24) |
        (static_cast<std::uint32_t>(sbox[(s0 >> 16) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(sbox[(s1 >> 8) & 0xff]) << 8) |
        static_cast<std::uint32_t>(sbox[s2 & 0xff]);

    storeBe32(out, t0 ^ rk[0]);
    storeBe32(out + 4, t1 ^ rk[1]);
    storeBe32(out + 8, t2 ^ rk[2]);
    storeBe32(out + 12, t3 ^ rk[3]);
}

void
Aes128::encryptBlockReference(const std::uint8_t* in,
                              std::uint8_t* out) const
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);

    auto addRoundKey = [&](int round) {
        for (int i = 0; i < 16; ++i)
            s[i] ^= roundKeys_[round * 16 + i];
    };
    auto subBytes = [&] {
        for (auto& b : s)
            b = sbox[b];
    };
    auto shiftRows = [&] {
        std::uint8_t t[16];
        // State is column-major: s[col*4 + row].
        for (int col = 0; col < 4; ++col)
            for (int row = 0; row < 4; ++row)
                t[col * 4 + row] = s[((col + row) % 4) * 4 + row];
        std::memcpy(s, t, 16);
    };
    auto mixColumns = [&] {
        for (int col = 0; col < 4; ++col) {
            std::uint8_t* c = &s[col * 4];
            std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
            std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
            c[0] = static_cast<std::uint8_t>(a0 ^ all ^ xtime(a0 ^ a1));
            c[1] = static_cast<std::uint8_t>(a1 ^ all ^ xtime(a1 ^ a2));
            c[2] = static_cast<std::uint8_t>(a2 ^ all ^ xtime(a2 ^ a3));
            c[3] = static_cast<std::uint8_t>(a3 ^ all ^ xtime(a3 ^ a0));
        }
    };

    addRoundKey(0);
    for (int round = 1; round < numRounds; ++round) {
        subBytes();
        shiftRows();
        mixColumns();
        addRoundKey(round);
    }
    subBytes();
    shiftRows();
    addRoundKey(numRounds);

    std::memcpy(out, s, 16);
}

void
Aes128::decryptBlock(const std::uint8_t* in, std::uint8_t* out) const
{
    std::uint8_t s[16];
    std::memcpy(s, in, 16);

    auto addRoundKey = [&](int round) {
        for (int i = 0; i < 16; ++i)
            s[i] ^= roundKeys_[round * 16 + i];
    };
    auto invSubBytes = [&] {
        for (auto& b : s)
            b = invSbox[b];
    };
    auto invShiftRows = [&] {
        std::uint8_t t[16];
        for (int col = 0; col < 4; ++col)
            for (int row = 0; row < 4; ++row)
                t[((col + row) % 4) * 4 + row] = s[col * 4 + row];
        std::memcpy(s, t, 16);
    };
    auto invMixColumns = [&] {
        for (int col = 0; col < 4; ++col) {
            std::uint8_t* c = &s[col * 4];
            std::uint8_t a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
            c[0] = static_cast<std::uint8_t>(
                gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^
                gmul(a3, 0x09));
            c[1] = static_cast<std::uint8_t>(
                gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^
                gmul(a3, 0x0d));
            c[2] = static_cast<std::uint8_t>(
                gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^
                gmul(a3, 0x0b));
            c[3] = static_cast<std::uint8_t>(
                gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^
                gmul(a3, 0x0e));
        }
    };

    addRoundKey(numRounds);
    for (int round = numRounds - 1; round > 0; --round) {
        invShiftRows();
        invSubBytes();
        addRoundKey(round);
        invMixColumns();
    }
    invShiftRows();
    invSubBytes();
    addRoundKey(0);

    std::memcpy(out, s, 16);
}

} // namespace osh::crypto
