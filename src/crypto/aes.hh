/**
 * @file
 * AES-128 block cipher, implemented from scratch per FIPS-197.
 *
 * Overshadow's VMM encrypts cloaked pages with AES-128; this is the
 * simulator's real implementation (pages really are ciphertext in the
 * kernel's view). Two encrypt paths exist:
 *
 *  - the default T-table path: four precomputed 256x32-bit lookup
 *    tables fold SubBytes + ShiftRows + MixColumns into four loads and
 *    XORs per column per round, which is what makes real host time on
 *    page crypto tolerable at scale;
 *  - a byte-wise reference path (S-box + xtime per FIPS-197 pseudocode)
 *    kept selectable per instance so known-answer and differential
 *    tests can pin the optimized kernel against the straightforward
 *    transcription of the spec.
 *
 * On top of the T-tables, encryptBlocks() has a bulk path that runs
 * four blocks interleaved through each round: the per-block dependency
 * chain no longer serializes the table loads, so the host pipelines
 * them. CTR keystream generation (a page is 256 independent blocks) is
 * exactly this shape. The path is portable C++ — no intrinsics — and
 * selectable per instance (setBulkMode) the same way the reference
 * kernel is, so differential tests pin all three paths to each other.
 *
 * Simulated crypto *cost* is still charged by the cycle model; host
 * speed only affects how long the simulation itself takes to run.
 */

#ifndef OSH_CRYPTO_AES_HH
#define OSH_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <span>

namespace osh::crypto
{

/** AES-128 key and block sizes in bytes. */
constexpr std::size_t aesKeySize = 16;
constexpr std::size_t aesBlockSize = 16;

using AesKey = std::array<std::uint8_t, aesKeySize>;
using AesBlock = std::array<std::uint8_t, aesBlockSize>;

/**
 * An expanded AES-128 key. Construct once per key; encryptBlock() may
 * then be called any number of times.
 */
class Aes128
{
  public:
    /** Expand the given 128-bit key. */
    explicit Aes128(const AesKey& key);

    /** Encrypt one 16-byte block: out = E_k(in). in may alias out. */
    void encryptBlock(const std::uint8_t* in, std::uint8_t* out) const;

    /**
     * Encrypt `nblocks` consecutive 16-byte blocks. The bulk entry
     * point for CTR keystream generation; in may alias out.
     */
    void encryptBlocks(const std::uint8_t* in, std::uint8_t* out,
                       std::size_t nblocks) const;

    /** Decrypt one 16-byte block: out = D_k(in). in may alias out. */
    void decryptBlock(const std::uint8_t* in, std::uint8_t* out) const;

    /**
     * The byte-wise FIPS-197 reference encryption, always available
     * regardless of referenceMode(). Differential tests compare the
     * T-table path against this.
     */
    void encryptBlockReference(const std::uint8_t* in,
                               std::uint8_t* out) const;

    /**
     * When set, encryptBlock()/encryptBlocks() use the byte-wise
     * reference path instead of T-tables. Lets higher layers (CTR,
     * benches) run end-to-end on the un-optimized kernel.
     */
    void setReferenceMode(bool on) { referenceMode_ = on; }
    bool referenceMode() const { return referenceMode_; }

    /**
     * When set (the default), encryptBlocks() runs groups of four
     * blocks interleaved through the T-table rounds. Off falls back to
     * one block at a time; referenceMode() overrides both.
     */
    void setBulkMode(bool on) { bulkMode_ = on; }
    bool bulkMode() const { return bulkMode_; }

  private:
    static constexpr int numRounds = 10;

    void encryptBlockFast(const std::uint8_t* in, std::uint8_t* out) const;

    /** Four blocks, lockstep-interleaved through every round. */
    void encryptBlocks4Fast(const std::uint8_t* in,
                            std::uint8_t* out) const;

    /** Round keys: (numRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, (numRounds + 1) * aesBlockSize> roundKeys_;

    /** Same round keys as big-endian column words for the T-table path. */
    std::array<std::uint32_t, (numRounds + 1) * 4> roundKeyWords_;

    bool referenceMode_ = false;
    bool bulkMode_ = true;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_AES_HH
