/**
 * @file
 * AES-128 block cipher, implemented from scratch per FIPS-197.
 *
 * Overshadow's VMM encrypts cloaked pages with AES-128; this is the
 * simulator's real implementation (pages really are ciphertext in the
 * kernel's view). The implementation is a straightforward table-free
 * version: S-box lookups plus xtime() for MixColumns. Speed is adequate
 * because simulated crypto *cost* is charged by the cycle model, not
 * measured from host time.
 */

#ifndef OSH_CRYPTO_AES_HH
#define OSH_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <span>

namespace osh::crypto
{

/** AES-128 key and block sizes in bytes. */
constexpr std::size_t aesKeySize = 16;
constexpr std::size_t aesBlockSize = 16;

using AesKey = std::array<std::uint8_t, aesKeySize>;
using AesBlock = std::array<std::uint8_t, aesBlockSize>;

/**
 * An expanded AES-128 key. Construct once per key; encryptBlock() may
 * then be called any number of times.
 */
class Aes128
{
  public:
    /** Expand the given 128-bit key. */
    explicit Aes128(const AesKey& key);

    /** Encrypt one 16-byte block: out = E_k(in). in may alias out. */
    void encryptBlock(const std::uint8_t* in, std::uint8_t* out) const;

    /** Decrypt one 16-byte block: out = D_k(in). in may alias out. */
    void decryptBlock(const std::uint8_t* in, std::uint8_t* out) const;

  private:
    static constexpr int numRounds = 10;

    /** Round keys: (numRounds + 1) x 16 bytes. */
    std::array<std::uint8_t, (numRounds + 1) * aesBlockSize> roundKeys_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_AES_HH
