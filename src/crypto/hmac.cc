#include "crypto/hmac.hh"

#include <cstring>

namespace osh::crypto
{

HmacKey::HmacKey(std::span<const std::uint8_t> key)
{
    std::array<std::uint8_t, sha256BlockSize> k{};
    if (key.size() > sha256BlockSize) {
        Digest d = Sha256::hash(key);
        std::memcpy(k.data(), d.data(), d.size());
    } else {
        std::memcpy(k.data(), key.data(), key.size());
    }

    std::array<std::uint8_t, sha256BlockSize> ipad;
    std::array<std::uint8_t, sha256BlockSize> opad;
    for (std::size_t i = 0; i < sha256BlockSize; ++i) {
        ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }
    innerStart_.update(ipad);
    outerStart_.update(opad);
}

HmacSha256::HmacSha256(std::span<const std::uint8_t> key)
    : HmacSha256(HmacKey(key))
{
}

HmacSha256::HmacSha256(const HmacKey& key)
    : inner_(key.innerStart_), outer_(key.outerStart_)
{
}

void
HmacSha256::update(std::span<const std::uint8_t> data)
{
    inner_.update(data);
}

Digest
HmacSha256::final()
{
    Digest inner_digest = inner_.final();
    outer_.update(inner_digest);
    return outer_.final();
}

Digest
hmacSha256(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> data)
{
    HmacSha256 ctx(key);
    ctx.update(data);
    return ctx.final();
}

Digest
hmacSha256(const HmacKey& key, std::span<const std::uint8_t> data)
{
    HmacSha256 ctx(key);
    ctx.update(data);
    return ctx.final();
}

} // namespace osh::crypto
