/**
 * @file
 * AES-128-CTR stream encryption.
 *
 * The cloak engine encrypts each page with AES-CTR under a per-resource
 * key and a per-encryption 128-bit IV. CTR makes encrypt and decrypt the
 * same operation and keeps page size unchanged, which is what lets the
 * guest OS swap/copy ciphertext pages without knowing anything changed.
 */

#ifndef OSH_CRYPTO_CTR_HH
#define OSH_CRYPTO_CTR_HH

#include "crypto/aes.hh"

#include <cstdint>
#include <span>

namespace osh::crypto
{

using Iv = std::array<std::uint8_t, aesBlockSize>;

/**
 * Encrypt or decrypt a buffer in CTR mode: out[i] = in[i] ^ E_k(iv + i/16).
 * in and out may alias (in-place operation). Lengths need not be a
 * multiple of the block size.
 */
void aesCtrXcrypt(const Aes128& cipher, const Iv& iv,
                  std::span<const std::uint8_t> in,
                  std::span<std::uint8_t> out);

/** In-place convenience. */
void aesCtrXcryptInPlace(const Aes128& cipher, const Iv& iv,
                         std::span<std::uint8_t> buf);

} // namespace osh::crypto

#endif // OSH_CRYPTO_CTR_HH
