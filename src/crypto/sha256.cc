#include "crypto/sha256.hh"

#include "base/bytes.hh"

#include <cstring>

namespace osh::crypto
{

namespace
{

constexpr std::uint32_t k[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t
rotr(std::uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

/** One compression round with explicit register roles: writes only h
 *  (the new working value) and d (the e-chain carry), so unrolled
 *  callers rotate arguments instead of shuffling eight temporaries. */
inline void
round(std::uint32_t a, std::uint32_t b, std::uint32_t c,
      std::uint32_t& d, std::uint32_t e, std::uint32_t f,
      std::uint32_t g, std::uint32_t& h, std::uint32_t kw)
{
    std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t t1 = h + s1 + ch + kw;
    std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    d += t1;
    h = t1 + s0 + maj;
}

/** Schedule extension: w[i] from w[i-16], w[i-15], w[i-7], w[i-2]. */
inline std::uint32_t
extendWord(std::uint32_t w16, std::uint32_t w15, std::uint32_t w7,
           std::uint32_t w2)
{
    std::uint32_t s0 = rotr(w15, 7) ^ rotr(w15, 18) ^ (w15 >> 3);
    std::uint32_t s1 = rotr(w2, 17) ^ rotr(w2, 19) ^ (w2 >> 10);
    return w16 + s0 + w7 + s1;
}

} // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      bufferLen_(0), totalLen_(0)
{
}

void
Sha256::processBlock(const std::uint8_t* block)
{
    if (referenceCompression_.load(std::memory_order_relaxed))
        processBlockReference(block);
    else
        processBlockFast(block);
}

void
Sha256::processBlockFast(const std::uint8_t* block)
{
    // Rolling 16-word schedule; rounds unrolled in groups of eight
    // with rotated register roles, so the working state never moves.
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i)
        w[i] = loadBe32(block + i * 4);

    std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                  d = state_[3], e = state_[4], f = state_[5],
                  g = state_[6], h = state_[7];

    auto rounds8 = [&](const std::uint32_t* kw,
                       const std::uint32_t* ws) {
        round(a, b, c, d, e, f, g, h, kw[0] + ws[0]);
        round(h, a, b, c, d, e, f, g, kw[1] + ws[1]);
        round(g, h, a, b, c, d, e, f, kw[2] + ws[2]);
        round(f, g, h, a, b, c, d, e, kw[3] + ws[3]);
        round(e, f, g, h, a, b, c, d, kw[4] + ws[4]);
        round(d, e, f, g, h, a, b, c, kw[5] + ws[5]);
        round(c, d, e, f, g, h, a, b, kw[6] + ws[6]);
        round(b, c, d, e, f, g, h, a, kw[7] + ws[7]);
    };

    rounds8(k, w);
    rounds8(k + 8, w + 8);
    for (int i = 16; i < 64; i += 16) {
        for (int j = 0; j < 16; ++j) {
            w[j] = extendWord(w[j], w[(j + 1) & 15], w[(j + 9) & 15],
                              w[(j + 14) & 15]);
        }
        rounds8(k + i, w);
        rounds8(k + i + 8, w + 8);
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::processBlockReference(const std::uint8_t* block)
{
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i)
        w[i] = loadBe32(block + i * 4);
    for (int i = 16; i < 64; ++i) {
        std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^
                           (w[i - 15] >> 3);
        std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^
                           (w[i - 2] >> 10);
        w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state_[0], b = state_[1], c = state_[2],
                  d = state_[3], e = state_[4], f = state_[5],
                  g = state_[6], h = state_[7];

    for (int i = 0; i < 64; ++i) {
        std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
        std::uint32_t ch = (e & f) ^ (~e & g);
        std::uint32_t temp1 = h + s1 + ch + k[i] + w[i];
        std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
        std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        std::uint32_t temp2 = s0 + maj;
        h = g;
        g = f;
        f = e;
        e = d + temp1;
        d = c;
        c = b;
        b = a;
        a = temp1 + temp2;
    }

    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
}

void
Sha256::update(std::span<const std::uint8_t> data)
{
    totalLen_ += data.size();
    std::size_t pos = 0;
    if (bufferLen_ > 0) {
        std::size_t take =
            std::min(data.size(), sha256BlockSize - bufferLen_);
        std::memcpy(buffer_.data() + bufferLen_, data.data(), take);
        bufferLen_ += take;
        pos = take;
        if (bufferLen_ == sha256BlockSize) {
            processBlock(buffer_.data());
            bufferLen_ = 0;
        }
    }
    while (pos + sha256BlockSize <= data.size()) {
        processBlock(data.data() + pos);
        pos += sha256BlockSize;
    }
    if (pos < data.size()) {
        std::memcpy(buffer_.data(), data.data() + pos, data.size() - pos);
        bufferLen_ = data.size() - pos;
    }
}

void
Sha256::update(const std::string& s)
{
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Digest
Sha256::final()
{
    std::uint64_t bit_len = totalLen_ * 8;
    // Pad in place in a single pass: 0x80, zeros up to byte 56 of the
    // final block (spilling into one extra block when fewer than nine
    // bytes remain), then the big-endian bit length.
    buffer_[bufferLen_++] = 0x80;
    if (bufferLen_ > 56) {
        std::memset(buffer_.data() + bufferLen_, 0,
                    sha256BlockSize - bufferLen_);
        processBlock(buffer_.data());
        bufferLen_ = 0;
    }
    std::memset(buffer_.data() + bufferLen_, 0, 56 - bufferLen_);
    storeBe64(buffer_.data() + 56, bit_len);
    processBlock(buffer_.data());
    bufferLen_ = 0;

    Digest out;
    for (int i = 0; i < 8; ++i)
        storeBe32(out.data() + i * 4, state_[i]);
    return out;
}

Digest
Sha256::hash(std::span<const std::uint8_t> data)
{
    Sha256 ctx;
    ctx.update(data);
    return ctx.final();
}

} // namespace osh::crypto
