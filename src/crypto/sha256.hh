/**
 * @file
 * SHA-256, implemented from scratch per FIPS 180-4.
 *
 * Overshadow uses SHA-256 for page-integrity hashes, metadata sealing and
 * application identity. The streaming interface (update/final) supports
 * hashing pages directly out of simulated machine memory.
 *
 * Two compression kernels exist: the straightforward FIPS 180-4
 * transcription (the reference), and an accelerated one that keeps the
 * message schedule in a rolling 16-word ring and unrolls the rounds in
 * register-rotated groups of eight, so no state shuffle or 64-word
 * spill survives into the hot loop. setReferenceCompression() selects
 * process-wide; known-answer and differential tests pin the two
 * kernels against each other. Host-speed only — simulated SHA cycles
 * are charged by the cost model either way.
 */

#ifndef OSH_CRYPTO_SHA256_HH
#define OSH_CRYPTO_SHA256_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <string>

namespace osh::crypto
{

constexpr std::size_t sha256DigestSize = 32;
constexpr std::size_t sha256BlockSize = 64;

using Digest = std::array<std::uint8_t, sha256DigestSize>;

/** Streaming SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb more message bytes. */
    void update(std::span<const std::uint8_t> data);

    /** Convenience overload for string data. */
    void update(const std::string& s);

    /** Finish and produce the digest. The context must not be reused. */
    Digest final();

    /** One-shot convenience. */
    static Digest hash(std::span<const std::uint8_t> data);

    /**
     * Select the plain FIPS 180-4 compression loop process-wide
     * (differential tests, host-speed ablation). Off (the default)
     * uses the unrolled rolling-schedule kernel. Atomic: crypto pool
     * workers hash concurrently.
     */
    static void setReferenceCompression(bool on)
    {
        referenceCompression_.store(on, std::memory_order_relaxed);
    }
    static bool referenceCompression()
    {
        return referenceCompression_.load(std::memory_order_relaxed);
    }

  private:
    void processBlock(const std::uint8_t* block);
    void processBlockReference(const std::uint8_t* block);
    void processBlockFast(const std::uint8_t* block);

    inline static std::atomic<bool> referenceCompression_{false};

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, sha256BlockSize> buffer_;
    std::size_t bufferLen_;
    std::uint64_t totalLen_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_SHA256_HH
