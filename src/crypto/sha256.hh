/**
 * @file
 * SHA-256, implemented from scratch per FIPS 180-4.
 *
 * Overshadow uses SHA-256 for page-integrity hashes, metadata sealing and
 * application identity. The streaming interface (update/final) supports
 * hashing pages directly out of simulated machine memory.
 */

#ifndef OSH_CRYPTO_SHA256_HH
#define OSH_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace osh::crypto
{

constexpr std::size_t sha256DigestSize = 32;
constexpr std::size_t sha256BlockSize = 64;

using Digest = std::array<std::uint8_t, sha256DigestSize>;

/** Streaming SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb more message bytes. */
    void update(std::span<const std::uint8_t> data);

    /** Convenience overload for string data. */
    void update(const std::string& s);

    /** Finish and produce the digest. The context must not be reused. */
    Digest final();

    /** One-shot convenience. */
    static Digest hash(std::span<const std::uint8_t> data);

  private:
    void processBlock(const std::uint8_t* block);

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, sha256BlockSize> buffer_;
    std::size_t bufferLen_;
    std::uint64_t totalLen_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_SHA256_HH
