#include "crypto/keys.hh"

#include "base/bytes.hh"

#include <cstring>

namespace osh::crypto
{

KeyManager::KeyManager(std::uint64_t master_seed)
{
    std::uint8_t seed_bytes[16] = {};
    storeLe64(seed_bytes, master_seed);
    std::memcpy(seed_bytes + 8, "OSHMSTR!", 8);
    master_ = Sha256::hash(seed_bytes);
    masterHmac_ = HmacKey(master_);
}

AesKey
KeyManager::deriveAesKey(ResourceId resource) const
{
    std::uint8_t info[16] = {};
    storeLe64(info, resource);
    std::memcpy(info + 8, "pagekey\0", 8);
    Digest d = hmacSha256(masterHmac_, info);
    AesKey key;
    std::memcpy(key.data(), d.data(), key.size());
    return key;
}

const Aes128&
KeyManager::pageCipher(ResourceId resource)
{
    auto it = ciphers_.find(resource);
    if (it == ciphers_.end()) {
        it = ciphers_.emplace(resource,
                              std::make_unique<Aes128>(
                                  deriveAesKey(resource))).first;
    }
    return *it->second;
}

Digest
KeyManager::sealingKey(ResourceId resource) const
{
    auto it = sealingKeys_.find(resource);
    if (it == sealingKeys_.end()) {
        std::uint8_t info[16] = {};
        storeLe64(info, resource);
        std::memcpy(info + 8, "sealkey\0", 8);
        it = sealingKeys_.emplace(resource,
                                  hmacSha256(masterHmac_, info)).first;
    }
    return it->second;
}

Digest
KeyManager::migrationKey(std::uint64_t nonce) const
{
    std::uint8_t info[16] = {};
    storeLe64(info, nonce);
    std::memcpy(info + 8, "migrkey\0", 8);
    return hmacSha256(masterHmac_, info);
}

const HmacKey&
KeyManager::sealingHmacKey(ResourceId resource) const
{
    auto it = sealingHmacs_.find(resource);
    if (it == sealingHmacs_.end()) {
        it = sealingHmacs_.emplace(resource,
                                   HmacKey(sealingKey(resource))).first;
    }
    return it->second;
}

} // namespace osh::crypto
