#include "crypto/keys.hh"

#include "base/bytes.hh"
#include "base/logging.hh"

#include <cstring>

namespace osh::crypto
{

KeyManager::KeyManager(std::uint64_t master_seed, std::size_t shards)
{
    osh_assert(shards > 0, "KeyManager needs at least one shard");
    std::uint8_t seed_bytes[16] = {};
    storeLe64(seed_bytes, master_seed);
    std::memcpy(seed_bytes + 8, "OSHMSTR!", 8);
    master_ = Sha256::hash(seed_bytes);
    masterHmac_ = HmacKey(master_);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

AesKey
KeyManager::deriveAesKey(ResourceId resource) const
{
    std::uint8_t info[16] = {};
    storeLe64(info, resource);
    std::memcpy(info + 8, "pagekey\0", 8);
    Digest d = hmacSha256(masterHmac_, info);
    AesKey key;
    std::memcpy(key.data(), d.data(), key.size());
    return key;
}

Digest
KeyManager::deriveSealingKey(ResourceId resource) const
{
    std::uint8_t info[16] = {};
    storeLe64(info, resource);
    std::memcpy(info + 8, "sealkey\0", 8);
    return hmacSha256(masterHmac_, info);
}

const Aes128&
KeyManager::cipherLocked(Shard& sh, ResourceId resource)
{
    auto it = sh.ciphers.find(resource);
    if (it == sh.ciphers.end()) {
        it = sh.ciphers
                 .emplace(resource, std::make_unique<Aes128>(
                                        deriveAesKey(resource)))
                 .first;
    }
    return *it->second;
}

const HmacKey&
KeyManager::sealingHmacLocked(const Shard& sh, ResourceId resource) const
{
    auto it = sh.sealingHmacs.find(resource);
    if (it == sh.sealingHmacs.end()) {
        auto kit = sh.sealingKeys.find(resource);
        if (kit == sh.sealingKeys.end()) {
            kit = sh.sealingKeys
                      .emplace(resource, deriveSealingKey(resource))
                      .first;
        }
        it = sh.sealingHmacs.emplace(resource, HmacKey(kit->second))
                 .first;
    }
    return it->second;
}

KeyHandle
KeyManager::acquire(ResourceId resource)
{
    std::uint32_t idx = shardOf(resource);
    Shard& sh = *shards_[idx];
    std::lock_guard<std::mutex> lk(sh.lock);
    KeyHandle h;
    h.cipher_ = &cipherLocked(sh, resource);
    h.sealingHmac_ = &sealingHmacLocked(sh, resource);
    h.keyId_ = resource;
    h.shard_ = idx;
    return h;
}

const Aes128&
KeyManager::pageCipher(ResourceId resource)
{
    Shard& sh = *shards_[shardOf(resource)];
    std::lock_guard<std::mutex> lk(sh.lock);
    return cipherLocked(sh, resource);
}

Digest
KeyManager::sealingKey(ResourceId resource) const
{
    const Shard& sh = *shards_[shardOf(resource)];
    std::lock_guard<std::mutex> lk(sh.lock);
    auto it = sh.sealingKeys.find(resource);
    if (it == sh.sealingKeys.end()) {
        it = sh.sealingKeys.emplace(resource, deriveSealingKey(resource))
                 .first;
    }
    return it->second;
}

Digest
KeyManager::migrationKey(std::uint64_t nonce) const
{
    std::uint8_t info[16] = {};
    storeLe64(info, nonce);
    std::memcpy(info + 8, "migrkey\0", 8);
    return hmacSha256(masterHmac_, info);
}

const HmacKey&
KeyManager::sealingHmacKey(ResourceId resource) const
{
    const Shard& sh = *shards_[shardOf(resource)];
    std::lock_guard<std::mutex> lk(sh.lock);
    return sealingHmacLocked(sh, resource);
}

std::size_t
KeyManager::derivedKeyCount() const
{
    std::size_t n = 0;
    for (const auto& sh : shards_) {
        std::lock_guard<std::mutex> lk(sh->lock);
        n += sh->ciphers.size();
    }
    return n;
}

} // namespace osh::crypto
