#include "crypto/ctr.hh"

#include "base/logging.hh"

#include <cstring>

namespace osh::crypto
{

namespace
{

// Increment the low 64 bits of the counter block (big-endian), as in
// NIST SP 800-38A appendix B.1.
void
incrementCounter(AesBlock& ctr)
{
    for (int i = 15; i >= 8; --i) {
        if (++ctr[static_cast<std::size_t>(i)] != 0)
            break;
    }
}

// Keystream batch size: 8 AES blocks (128 bytes) are encrypted per
// cipher call so the block loop stays hot, then XORed into the payload
// a uint64 at a time. memcpy-based loads/stores keep the word XOR
// alignment-safe under UBSan.
constexpr std::size_t ctrBatchBlocks = 8;
constexpr std::size_t ctrBatchBytes = ctrBatchBlocks * aesBlockSize;

inline void
xorWords(const std::uint8_t* in, const std::uint8_t* ks,
         std::uint8_t* out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a, b;
        std::memcpy(&a, in + i, 8);
        std::memcpy(&b, ks + i, 8);
        a ^= b;
        std::memcpy(out + i, &a, 8);
    }
    for (; i < n; ++i)
        out[i] = in[i] ^ ks[i];
}

} // namespace

void
aesCtrXcrypt(const Aes128& cipher, const Iv& iv,
             std::span<const std::uint8_t> in, std::span<std::uint8_t> out)
{
    osh_assert(in.size() == out.size(),
               "CTR input/output length mismatch");
    AesBlock ctr = iv;
    std::uint8_t counters[ctrBatchBytes];
    std::uint8_t keystream[ctrBatchBytes];
    std::size_t pos = 0;
    while (pos < in.size()) {
        std::size_t remaining = in.size() - pos;
        std::size_t nblocks =
            std::min(ctrBatchBlocks,
                     (remaining + aesBlockSize - 1) / aesBlockSize);
        for (std::size_t b = 0; b < nblocks; ++b) {
            std::memcpy(counters + b * aesBlockSize, ctr.data(),
                        aesBlockSize);
            incrementCounter(ctr);
        }
        cipher.encryptBlocks(counters, keystream, nblocks);
        std::size_t n = std::min(nblocks * aesBlockSize, remaining);
        xorWords(in.data() + pos, keystream, out.data() + pos, n);
        pos += n;
    }
}

void
aesCtrXcryptInPlace(const Aes128& cipher, const Iv& iv,
                    std::span<std::uint8_t> buf)
{
    aesCtrXcrypt(cipher, iv, buf, buf);
}

} // namespace osh::crypto
