#include "crypto/ctr.hh"

#include "base/logging.hh"

namespace osh::crypto
{

namespace
{

// Increment the low 64 bits of the counter block (big-endian), as in
// NIST SP 800-38A appendix B.1.
void
incrementCounter(AesBlock& ctr)
{
    for (int i = 15; i >= 8; --i) {
        if (++ctr[static_cast<std::size_t>(i)] != 0)
            break;
    }
}

} // namespace

void
aesCtrXcrypt(const Aes128& cipher, const Iv& iv,
             std::span<const std::uint8_t> in, std::span<std::uint8_t> out)
{
    osh_assert(in.size() == out.size(),
               "CTR input/output length mismatch");
    AesBlock ctr = iv;
    AesBlock keystream;
    std::size_t pos = 0;
    while (pos < in.size()) {
        cipher.encryptBlock(ctr.data(), keystream.data());
        std::size_t n = std::min(aesBlockSize, in.size() - pos);
        for (std::size_t i = 0; i < n; ++i)
            out[pos + i] = in[pos + i] ^ keystream[i];
        incrementCounter(ctr);
        pos += n;
    }
}

void
aesCtrXcryptInPlace(const Aes128& cipher, const Iv& iv,
                    std::span<std::uint8_t> buf)
{
    aesCtrXcrypt(cipher, iv, buf, buf);
}

} // namespace osh::crypto
