/**
 * @file
 * VMM key management.
 *
 * The VMM holds a single master secret (in a real deployment, sealed by
 * the platform; here derived from the simulation seed). Every cloaked
 * resource gets its own AES key and metadata-sealing key, derived from
 * the master via HMAC so that compromise of one resource key reveals
 * nothing about the others, and persisted metadata can be bound to its
 * resource identity.
 *
 * Everything expensive is derived once and cached: the expanded AES key
 * schedule, the sealing key bytes, and the HMAC ipad/opad midstates for
 * both the master (key derivation) and each sealing key (metadata
 * MACs). Hot paths never re-run a key schedule or pad hash.
 *
 * The cache is lock-striped into shards keyed by resource id, so
 * concurrent vCPUs taking cloak faults on different address spaces
 * never contend on one global key map. Derivation itself is pure
 * (HMAC of the master secret), so the derived bytes are identical for
 * every shard count. The fault hot path does not even take the shard
 * lock: resources resolve a KeyHandle once at cloak-attach and use its
 * cached pointers from then on.
 */

#ifndef OSH_CRYPTO_KEYS_HH
#define OSH_CRYPTO_KEYS_HH

#include "base/types.hh"
#include "crypto/aes.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace osh::crypto
{

class KeyManager;

/**
 * An opaque, pre-resolved reference to one resource's key material.
 *
 * Acquired once (at cloak-attach / resource creation) and carried in
 * the resource, it pins the expanded AES schedule and the prepared
 * sealing-HMAC midstate, so page faults and seal operations never
 * repeat a map lookup. The shard index makes key ownership explicit in
 * the type: two handles with different shard() values can never alias
 * a lock. Handles stay valid for the KeyManager's lifetime (both
 * caches are node-stable).
 */
class KeyHandle
{
  public:
    KeyHandle() = default;

    bool valid() const { return cipher_ != nullptr; }
    ResourceId keyId() const { return keyId_; }
    /** Index of the key shard that owns this resource's material. */
    std::uint32_t shard() const { return shard_; }

    const Aes128&
    cipher() const
    {
        return *cipher_;
    }

    const HmacKey&
    sealingHmac() const
    {
        return *sealingHmac_;
    }

  private:
    friend class KeyManager;

    const Aes128* cipher_ = nullptr;
    const HmacKey* sealingHmac_ = nullptr;
    ResourceId keyId_ = 0;
    std::uint32_t shard_ = 0;
};

/** Derives and caches per-resource keys from the VMM master secret. */
class KeyManager
{
  public:
    /**
     * @param master_seed Deterministic seed for the master secret.
     * @param shards Lock stripes for the key cache (>= 1). Purely a
     *   contention knob: derived key bytes are shard-count invariant.
     */
    explicit KeyManager(std::uint64_t master_seed,
                        std::size_t shards = 1);

    /**
     * Resolve (deriving and caching as needed) the full key material
     * of a resource into a handle. Called once per resource at
     * cloak-attach; everything downstream uses the handle.
     */
    KeyHandle acquire(ResourceId resource);

    /**
     * The AES-128 cipher for a resource's page encryption. The returned
     * reference stays valid for the KeyManager's lifetime.
     */
    const Aes128& pageCipher(ResourceId resource);

    /** The 256-bit key used to seal a resource's persisted metadata. */
    Digest sealingKey(ResourceId resource) const;

    /**
     * The prepared HMAC midstate for a resource's sealing key. The
     * returned reference stays valid for the KeyManager's lifetime;
     * use it to MAC metadata without re-hashing the key pads.
     */
    const HmacKey& sealingHmacKey(ResourceId resource) const;

    /**
     * The 256-bit key that MACs a migration image or pre-copy stream
     * identified by @p nonce. Two KeyManagers seeded with the same
     * master secret (the paper's trusted VMM-to-VMM channel; here, the
     * shared simulation seed) derive the same key, so the target can
     * verify every record the source chained under it.
     */
    Digest migrationKey(std::uint64_t nonce) const;

    /** Number of distinct resource page keys derived so far. */
    std::size_t derivedKeyCount() const;

    std::size_t shardCount() const { return shards_.size(); }

    /** Shard owning a resource's key material (stable, seed-free). */
    std::uint32_t
    shardOf(ResourceId resource) const
    {
        return static_cast<std::uint32_t>(
            (resource * 0x9e3779b97f4a7c15ull >> 32) % shards_.size());
    }

  private:
    /**
     * One lock stripe of the key cache. Both maps are node-stable:
     * rehashing never moves elements, so handle pointers survive.
     */
    struct Shard
    {
        mutable std::mutex lock;
        std::unordered_map<ResourceId, std::unique_ptr<Aes128>> ciphers;
        mutable std::unordered_map<ResourceId, Digest> sealingKeys;
        mutable std::unordered_map<ResourceId, HmacKey> sealingHmacs;
    };

    AesKey deriveAesKey(ResourceId resource) const;
    Digest deriveSealingKey(ResourceId resource) const;

    /** Cipher entry of @p resource in @p sh; caller holds sh.lock. */
    const Aes128& cipherLocked(Shard& sh, ResourceId resource);
    const HmacKey& sealingHmacLocked(const Shard& sh,
                                     ResourceId resource) const;

    Digest master_;
    HmacKey masterHmac_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_KEYS_HH
