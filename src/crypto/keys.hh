/**
 * @file
 * VMM key management.
 *
 * The VMM holds a single master secret (in a real deployment, sealed by
 * the platform; here derived from the simulation seed). Every cloaked
 * resource gets its own AES key and metadata-sealing key, derived from
 * the master via HMAC so that compromise of one resource key reveals
 * nothing about the others, and persisted metadata can be bound to its
 * resource identity.
 *
 * Everything expensive is derived once and cached: the expanded AES key
 * schedule, the sealing key bytes, and the HMAC ipad/opad midstates for
 * both the master (key derivation) and each sealing key (metadata
 * MACs). Hot paths never re-run a key schedule or pad hash.
 */

#ifndef OSH_CRYPTO_KEYS_HH
#define OSH_CRYPTO_KEYS_HH

#include "base/types.hh"
#include "crypto/aes.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

namespace osh::crypto
{

/** Derives and caches per-resource keys from the VMM master secret. */
class KeyManager
{
  public:
    /** @param master_seed Deterministic seed for the master secret. */
    explicit KeyManager(std::uint64_t master_seed);

    /**
     * The AES-128 cipher for a resource's page encryption. The returned
     * reference stays valid for the KeyManager's lifetime.
     */
    const Aes128& pageCipher(ResourceId resource);

    /** The 256-bit key used to seal a resource's persisted metadata. */
    Digest sealingKey(ResourceId resource) const;

    /**
     * The prepared HMAC midstate for a resource's sealing key. The
     * returned reference stays valid for the KeyManager's lifetime;
     * use it to MAC metadata without re-hashing the key pads.
     */
    const HmacKey& sealingHmacKey(ResourceId resource) const;

    /**
     * The 256-bit key that MACs a migration image or pre-copy stream
     * identified by @p nonce. Two KeyManagers seeded with the same
     * master secret (the paper's trusted VMM-to-VMM channel; here, the
     * shared simulation seed) derive the same key, so the target can
     * verify every record the source chained under it.
     */
    Digest migrationKey(std::uint64_t nonce) const;

    /** Number of distinct resource keys derived so far. */
    std::size_t derivedKeyCount() const { return ciphers_.size(); }

  private:
    AesKey deriveAesKey(ResourceId resource) const;

    Digest master_;
    HmacKey masterHmac_;
    std::unordered_map<ResourceId, std::unique_ptr<Aes128>> ciphers_;
    mutable std::unordered_map<ResourceId, Digest> sealingKeys_;
    mutable std::unordered_map<ResourceId, HmacKey> sealingHmacs_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_KEYS_HH
