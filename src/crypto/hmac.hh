/**
 * @file
 * HMAC-SHA256 (RFC 2104 / FIPS 198-1).
 *
 * Used to seal persisted protection metadata so that a malicious guest
 * cannot forge or splice metadata for cloaked files.
 */

#ifndef OSH_CRYPTO_HMAC_HH
#define OSH_CRYPTO_HMAC_HH

#include "crypto/sha256.hh"

#include <cstdint>
#include <span>

namespace osh::crypto
{

/** One-shot HMAC-SHA256 of data under key. */
Digest hmacSha256(std::span<const std::uint8_t> key,
                  std::span<const std::uint8_t> data);

/** Streaming HMAC context. */
class HmacSha256
{
  public:
    explicit HmacSha256(std::span<const std::uint8_t> key);

    void update(std::span<const std::uint8_t> data);
    Digest final();

  private:
    Sha256 inner_;
    std::array<std::uint8_t, sha256BlockSize> opad_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_HMAC_HH
