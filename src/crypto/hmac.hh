/**
 * @file
 * HMAC-SHA256 (RFC 2104 / FIPS 198-1).
 *
 * Used to seal persisted protection metadata so that a malicious guest
 * cannot forge or splice metadata for cloaked files.
 *
 * Keying is split out into HmacKey: the key block and the ipad/opad
 * midstates (one SHA-256 compression each) are computed once per key
 * and then reused for every MAC under that key. The cloak engine and
 * metadata sealing MAC thousands of messages under a handful of
 * per-resource keys, so recomputing the pads per call — as the old
 * one-shot-only interface forced — was pure waste.
 */

#ifndef OSH_CRYPTO_HMAC_HH
#define OSH_CRYPTO_HMAC_HH

#include "crypto/sha256.hh"

#include <cstdint>
#include <span>

namespace osh::crypto
{

/**
 * A prepared HMAC-SHA256 key: the SHA-256 midstates after absorbing
 * the ipad and opad blocks. Construct once per key, reuse for any
 * number of MACs; copying is cheap (two hash states).
 */
class HmacKey
{
  public:
    HmacKey() = default;
    explicit HmacKey(std::span<const std::uint8_t> key);

  private:
    friend class HmacSha256;

    Sha256 innerStart_; // state after the ipad block
    Sha256 outerStart_; // state after the opad block
};

/** One-shot HMAC-SHA256 of data under key. */
Digest hmacSha256(std::span<const std::uint8_t> key,
                  std::span<const std::uint8_t> data);

/** One-shot HMAC-SHA256 under a prepared key (no per-call pad hashing). */
Digest hmacSha256(const HmacKey& key, std::span<const std::uint8_t> data);

/** Streaming HMAC context. */
class HmacSha256
{
  public:
    explicit HmacSha256(std::span<const std::uint8_t> key);
    explicit HmacSha256(const HmacKey& key);

    void update(std::span<const std::uint8_t> data);
    Digest final();

  private:
    Sha256 inner_;
    Sha256 outer_;
};

} // namespace osh::crypto

#endif // OSH_CRYPTO_HMAC_HH
