/**
 * @file
 * Byte-manipulation helpers: endian-explicit loads/stores, hex encoding,
 * and span conveniences used throughout the crypto and memory code.
 */

#ifndef OSH_BASE_BYTES_HH
#define OSH_BASE_BYTES_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace osh
{

/** Load a little-endian 16/32/64-bit value from raw bytes. */
inline std::uint16_t
loadLe16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t
loadLe32(const std::uint8_t* p)
{
    return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline std::uint64_t
loadLe64(const std::uint8_t* p)
{
    return std::uint64_t{loadLe32(p)} |
           (std::uint64_t{loadLe32(p + 4)} << 32);
}

/** Store a little-endian 16/32/64-bit value to raw bytes. */
inline void
storeLe16(std::uint8_t* p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void
storeLe32(std::uint8_t* p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void
storeLe64(std::uint8_t* p, std::uint64_t v)
{
    storeLe32(p, static_cast<std::uint32_t>(v));
    storeLe32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/** Load a big-endian 32/64-bit value (SHA-256 uses big-endian words). */
inline std::uint32_t
loadBe32(const std::uint8_t* p)
{
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void
storeBe32(std::uint8_t* p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

inline void
storeBe64(std::uint8_t* p, std::uint64_t v)
{
    storeBe32(p, static_cast<std::uint32_t>(v >> 32));
    storeBe32(p + 4, static_cast<std::uint32_t>(v));
}

/** Render bytes as lowercase hex. */
inline std::string
toHex(std::span<const std::uint8_t> bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

/** Parse a hex string into bytes; returns empty on malformed input. */
inline std::vector<std::uint8_t>
fromHex(const std::string& hex)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        return -1;
    };
    if (hex.size() % 2 != 0)
        return {};
    std::vector<std::uint8_t> out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        int hi = nibble(hex[i]);
        int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return {};
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

/**
 * Constant-time byte comparison. Used for every integrity-hash check so
 * a malicious guest cannot learn hash prefixes through timing.
 */
inline bool
constantTimeEqual(std::span<const std::uint8_t> a,
                  std::span<const std::uint8_t> b)
{
    if (a.size() != b.size())
        return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

} // namespace osh

#endif // OSH_BASE_BYTES_HH
