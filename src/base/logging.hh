/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — something questionable happened but simulation continues.
 * inform() — purely informational status output.
 */

#ifndef OSH_BASE_LOGGING_HH
#define OSH_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace osh
{

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Sink invoked for every log message. Tests may replace it to capture
 * output; the default writes to stderr.
 */
using LogSink = void (*)(LogLevel, const std::string&);

/** Replace the global log sink; returns the previous sink. */
LogSink setLogSink(LogSink sink);

/** printf-style formatting helper used by the logging macros. */
std::string vformatString(const char* fmt, std::va_list ap);

/** printf-style formatting helper. */
std::string formatString(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace osh

/** Abort: this should never happen regardless of what the user does. */
#define osh_panic(...) ::osh::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Exit: the simulation cannot continue due to a user/config error. */
#define osh_fatal(...) ::osh::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** Warn the user but continue. */
#define osh_warn(...) ::osh::warnImpl(__VA_ARGS__)

/** Informational status message. */
#define osh_inform(...) ::osh::informImpl(__VA_ARGS__)

/** panic() unless the condition holds. */
#define osh_assert(cond, fmt, ...)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::osh::panicImpl(__FILE__, __LINE__,                            \
                             "assertion '%s' failed: " fmt, #cond,          \
                             ##__VA_ARGS__);                                \
        }                                                                   \
    } while (0)

#endif // OSH_BASE_LOGGING_HH
