/**
 * @file
 * A small result type: a value or a typed error.
 *
 * The cloak engine's public surface returns Expected<T, CloakError>
 * instead of ad-hoc bool / sentinel / negative-integer conventions, so
 * callers must consciously unwrap and cannot silently drop a failure.
 * Modelled on std::expected (C++23), reduced to what this codebase
 * needs: construction from a value or an Error<E> tag, ok()/error(),
 * value access asserted in debug builds, and valueOr().
 */

#ifndef OSH_BASE_EXPECTED_HH
#define OSH_BASE_EXPECTED_HH

#include "base/logging.hh"

#include <utility>
#include <variant>

namespace osh
{

/** Tag wrapper that marks a constructor argument as an error. */
template <typename E>
struct Error
{
    E code;

    constexpr explicit Error(E c) : code(c) {}
};

/** A value of type T, or an error of type E. */
template <typename T, typename E>
class Expected
{
  public:
    Expected(T value) : store_(std::in_place_index<0>, std::move(value)) {}
    Expected(Error<E> err) : store_(std::in_place_index<1>, err.code) {}

    bool ok() const { return store_.index() == 0; }
    explicit operator bool() const { return ok(); }

    T&
    value()
    {
        osh_assert(ok(), "value() on an error Expected");
        return std::get<0>(store_);
    }

    const T&
    value() const
    {
        osh_assert(ok(), "value() on an error Expected");
        return std::get<0>(store_);
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<0>(store_) : std::move(fallback);
    }

    E
    error() const
    {
        osh_assert(!ok(), "error() on a value Expected");
        return std::get<1>(store_);
    }

    T& operator*() { return value(); }
    const T& operator*() const { return value(); }

  private:
    std::variant<T, E> store_;
};

/** Void specialization: success carries no payload. */
template <typename E>
class Expected<void, E>
{
  public:
    Expected() = default;
    Expected(Error<E> err) : hasError_(true), error_(err.code) {}

    bool ok() const { return !hasError_; }
    explicit operator bool() const { return ok(); }

    E
    error() const
    {
        osh_assert(hasError_, "error() on a value Expected");
        return error_;
    }

  private:
    bool hasError_ = false;
    E error_{};
};

} // namespace osh

#endif // OSH_BASE_EXPECTED_HH
