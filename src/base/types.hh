/**
 * @file
 * Fundamental types shared by every Overshadow module.
 *
 * The simulated machine uses three address spaces, mirroring the paper's
 * terminology:
 *   - guest virtual addresses (GuestVA): what applications and the guest
 *     kernel use;
 *   - guest physical addresses (GPA): what the guest kernel believes is
 *     physical memory;
 *   - machine physical addresses (MPA): real (simulated) memory, assigned
 *     by the VMM's pmap.
 */

#ifndef OSH_BASE_TYPES_HH
#define OSH_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace osh
{

/** Guest virtual address. */
using GuestVA = std::uint64_t;

/** Guest physical address (what the guest OS manages). */
using Gpa = std::uint64_t;

/** Machine physical address (what the VMM manages). */
using Mpa = std::uint64_t;

/** Simulated-cycle count from the deterministic cost model. */
using Cycles = std::uint64_t;

/** Guest process identifier. */
using Pid = std::int32_t;

/** Guest address-space identifier (one per process, 0 = kernel). */
using Asid = std::uint32_t;

/** Cloaked protection-domain identifier (0 = uncloaked / system view). */
using DomainId = std::uint32_t;

/** Identifier of a cloaked resource (private memory region or file). */
using ResourceId = std::uint64_t;

constexpr std::uint64_t pageShift = 12;
constexpr std::uint64_t pageSize = std::uint64_t{1} << pageShift;
constexpr std::uint64_t pageOffsetMask = pageSize - 1;

/** Round an address down to its page base. */
constexpr std::uint64_t
pageBase(std::uint64_t addr)
{
    return addr & ~pageOffsetMask;
}

/** Offset of an address within its page. */
constexpr std::uint64_t
pageOffset(std::uint64_t addr)
{
    return addr & pageOffsetMask;
}

/** Page number of an address. */
constexpr std::uint64_t
pageNumber(std::uint64_t addr)
{
    return addr >> pageShift;
}

/** Round a size up to a whole number of pages. */
constexpr std::uint64_t
roundUpToPage(std::uint64_t size)
{
    return (size + pageSize - 1) & ~pageOffsetMask;
}

/** Sentinel for "no address". */
constexpr std::uint64_t badAddr = ~std::uint64_t{0};

/** The system (uncloaked) view; see vmm/view.hh. */
constexpr DomainId systemDomain = 0;

} // namespace osh

#endif // OSH_BASE_TYPES_HH
