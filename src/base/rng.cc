#include "base/rng.hh"

#include "base/logging.hh"

namespace osh
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    osh_assert(bound != 0, "nextBounded requires a nonzero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

void
Rng::fill(std::span<std::uint8_t> out)
{
    std::size_t i = 0;
    while (i + 8 <= out.size()) {
        std::uint64_t v = next64();
        for (int b = 0; b < 8; ++b)
            out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    if (i < out.size()) {
        std::uint64_t v = next64();
        for (int b = 0; i < out.size(); ++b)
            out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
    }
}

} // namespace osh
