#include "base/stats.hh"

#include "base/logging.hh"

#include <utility>

namespace osh
{

StatGroup::StatGroup(std::string name) : name_(std::move(name))
{
}

Counter&
StatGroup::counter(const std::string& name)
{
    return counters_[name];
}

std::uint64_t
StatGroup::value(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto& [name, c] : counters_)
        c.reset();
}

std::string
StatGroup::dump() const
{
    std::string out;
    for (const auto& [name, c] : counters_) {
        out += formatString("%s.%s %llu\n", name_.c_str(), name.c_str(),
                            static_cast<unsigned long long>(c.value()));
    }
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
StatGroup::snapshot() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        out.emplace_back(name, c.value());
    return out;
}

} // namespace osh
