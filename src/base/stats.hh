/**
 * @file
 * Lightweight named statistics counters.
 *
 * Each simulator component owns a StatGroup and registers named counters
 * in it. Benchmarks and tests read counters by name; examples dump whole
 * groups. This is a deliberately tiny sibling of gem5's stats package.
 */

#ifndef OSH_BASE_STATS_HH
#define OSH_BASE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace osh
{

class StatGroup;

/** A single monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t delta = 1) { value_ += delta; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A named collection of counters belonging to one component. */
class StatGroup
{
  public:
    /** @param name Component name used as a prefix when dumping. */
    explicit StatGroup(std::string name);

    /**
     * Get or create the counter with the given name. References remain
     * valid for the lifetime of the group.
     */
    Counter& counter(const std::string& name);

    /** Value of a named counter (0 if it was never created). */
    std::uint64_t value(const std::string& name) const;

    /** Reset every counter in the group. */
    void resetAll();

    /** Render "group.counter value" lines, sorted by counter name. */
    std::string dump() const;

    const std::string& name() const { return name_; }

    /** Snapshot of all counters, sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

} // namespace osh

#endif // OSH_BASE_STATS_HH
