#include "base/pool.hh"

#include "base/logging.hh"

namespace osh
{

unsigned
WorkerPool::hardwareWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

WorkerPool::WorkerPool(unsigned workers)
{
    startThreads(workers == 0 ? hardwareWorkers() : workers);
}

WorkerPool::~WorkerPool()
{
    stopThreads();
}

void
WorkerPool::startThreads(unsigned lanes)
{
    osh_assert(lanes >= 1, "worker pool needs at least one lane");
    threads_.reserve(lanes - 1);
    for (unsigned i = 1; i < lanes; ++i)
        threads_.emplace_back([this] { workerMain(); });
}

void
WorkerPool::stopThreads()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_)
        t.join();
    threads_.clear();
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = false;
    current_.reset();
}

void
WorkerPool::resize(unsigned workers)
{
    unsigned lanes = workers == 0 ? hardwareWorkers() : workers;
    if (lanes == this->workers())
        return;
    stopThreads();
    startThreads(lanes);
}

void
WorkerPool::runJob(Job& job)
{
    for (;;) {
        std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.size)
            return;
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(job.mu);
            if (i < job.errorIndex) {
                job.errorIndex = i;
                job.error = std::current_exception();
            }
        }
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.size) {
            std::lock_guard<std::mutex> lk(job.mu);
            job.complete = true;
            job.finished.notify_all();
        }
    }
}

void
WorkerPool::workerMain()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            wake_.wait(lk, [&] { return stop_ || jobSeq_ != seen; });
            if (stop_)
                return;
            seen = jobSeq_;
            job = current_;
        }
        if (job != nullptr)
            runJob(*job);
    }
}

void
WorkerPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)>& fn)
{
    if (n == 0)
        return;
    if (threads_.empty() || n == 1) {
        // Serial lane: inline, in order, first throw propagates — the
        // exact pre-pool behavior.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->size = n;
    {
        std::lock_guard<std::mutex> lk(mu_);
        current_ = job;
        ++jobSeq_;
    }
    wake_.notify_all();
    runJob(*job); // The calling thread is a lane too.
    {
        // job->mu orders every lane's item effects (and any stored
        // exception) before the caller continues.
        std::unique_lock<std::mutex> lk(job->mu);
        job->finished.wait(lk, [&] { return job->complete; });
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (current_ == job)
            current_.reset();
    }
    if (job->error != nullptr)
        std::rethrow_exception(job->error);
}

} // namespace osh
