/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in the simulator that needs randomness (workload data, IV
 * generation in the cloak engine, scheduler tie-breaking in tests) draws
 * from an explicitly seeded Rng so that runs are exactly reproducible.
 * The generator is xoshiro256** seeded via SplitMix64.
 */

#ifndef OSH_BASE_RNG_HH
#define OSH_BASE_RNG_HH

#include <cstdint>
#include <span>

namespace osh
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Default seed ("OVERSHAD" in ASCII). */
    static constexpr std::uint64_t defaultSeed = 0x4f56455253484144ull;

    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(std::uint64_t seed = defaultSeed);

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t next64();

    /** Next 32-bit value. */
    std::uint32_t next32() { return static_cast<std::uint32_t>(next64()); }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fill a byte span with random data. */
    void fill(std::span<std::uint8_t> out);

  private:
    std::uint64_t s_[4];
};

} // namespace osh

#endif // OSH_BASE_RNG_HH
