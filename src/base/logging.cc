#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace osh
{

namespace
{

void
defaultSink(LogLevel level, const std::string& msg)
{
    const char* tag = "";
    switch (level) {
      case LogLevel::Inform: tag = "info: "; break;
      case LogLevel::Warn:   tag = "warn: "; break;
      case LogLevel::Fatal:  tag = "fatal: "; break;
      case LogLevel::Panic:  tag = "panic: "; break;
    }
    std::fprintf(stderr, "%s%s\n", tag, msg.c_str());
}

LogSink gSink = defaultSink;

} // namespace

LogSink
setLogSink(LogSink sink)
{
    LogSink prev = gSink;
    gSink = sink ? sink : defaultSink;
    return prev;
}

std::string
vformatString(const char* fmt, std::va_list ap)
{
    std::va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

std::string
formatString(const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char* file, int line, const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    gSink(LogLevel::Panic, formatString("%s:%d: %s", file, line,
                                        msg.c_str()));
    std::abort();
}

void
fatalImpl(const char* file, int line, const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    gSink(LogLevel::Fatal, formatString("%s:%d: %s", file, line,
                                        msg.c_str()));
    std::exit(1);
}

void
warnImpl(const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    gSink(LogLevel::Warn, msg);
}

void
informImpl(const char* fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string msg = vformatString(fmt, ap);
    va_end(ap);
    gSink(LogLevel::Inform, msg);
}

} // namespace osh
