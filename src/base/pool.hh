/**
 * @file
 * Host-side worker pool with deterministic fan-out semantics.
 *
 * The pool exists for one pattern: *deterministic fan-out / ordered
 * reduce*. A caller splits a batch into independent per-item compute
 * (pure functions into per-item staging buffers), fans it across the
 * pool with parallelFor(), and then merges the staged results on its
 * own thread in submission order. Scheduling order is never observable:
 * workers only ever write their own item's staging slot, so the merged
 * output is byte-identical whatever the worker count.
 *
 * This is host-side parallelism only. Nothing here touches simulated
 * time: cycle charges, RNG draws, trace events and stats all stay on
 * the calling thread (see cloak::CloakEngine's batch paths for the
 * canonical use). A pool with one lane runs everything inline on the
 * caller — exactly the pre-pool behavior, with no threads created.
 */

#ifndef OSH_BASE_POOL_HH
#define OSH_BASE_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace osh
{

/**
 * A fixed set of host worker threads executing index-based jobs.
 *
 * `workers` counts *lanes*, including the calling thread: a pool with
 * N lanes spawns N-1 threads and the caller works too, so workers==1
 * is fully serial and thread-free. parallelFor() is not reentrant —
 * the job function must not call back into the same pool.
 */
class WorkerPool
{
  public:
    /** Lanes matching the host: hardware_concurrency, at least 1. */
    static unsigned hardwareWorkers();

    /** @param workers Lane count; 0 = hardwareWorkers(). */
    explicit WorkerPool(unsigned workers = 1);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Lane count, including the calling thread. */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size()) + 1;
    }

    /** Join and respawn to a new lane count (0 = hardwareWorkers()).
     *  Must not be called while a parallelFor is in flight. */
    void resize(unsigned workers);

    /**
     * Run fn(0) .. fn(n-1), possibly concurrently, and block until all
     * calls have finished. Indices are claimed dynamically, so which
     * lane runs which index is unspecified — fn must confine its writes
     * to per-index state.
     *
     * Exceptions: with more than one lane every index still runs, and
     * the exception thrown by the *lowest* failing index is rethrown on
     * the caller (deterministic whichever lane hit it first). With one
     * lane the calls run inline in order and the first throw propagates
     * immediately. The pool remains usable after a throw.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)>& fn);

  private:
    /** One fan-out in flight. Heap-allocated and shared with every
     *  lane so a late-waking worker can never claim indices of a
     *  successor job (the classic generation-counter ABA). */
    struct Job
    {
        const std::function<void(std::size_t)>* fn = nullptr;
        std::size_t size = 0;
        std::atomic<std::size_t> next{0};   ///< Next unclaimed index.
        std::atomic<std::size_t> done{0};   ///< Finished calls.
        std::mutex mu;
        std::condition_variable finished;
        bool complete = false;
        std::size_t errorIndex = SIZE_MAX;  ///< Lowest failing index.
        std::exception_ptr error;
    };

    void workerMain();
    static void runJob(Job& job);
    void startThreads(unsigned lanes);
    void stopThreads();

    std::mutex mu_;
    std::condition_variable wake_;
    std::shared_ptr<Job> current_;
    std::uint64_t jobSeq_ = 0;
    bool stop_ = false;
    std::vector<std::thread> threads_;
};

/**
 * Ordered-reduce convenience: compute fn(i) for every index in
 * parallel and return the results in index order — the submission
 * order, independent of which lane ran what.
 */
template <typename T, typename Fn>
std::vector<T>
mapOrdered(WorkerPool& pool, std::size_t n, Fn&& fn)
{
    std::vector<T> out(n);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

} // namespace osh

#endif // OSH_BASE_POOL_HH
