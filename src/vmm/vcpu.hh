/**
 * @file
 * Virtual CPU: the MMU front end guest code uses for every access.
 *
 * Each guest thread owns a Vcpu carrying its architectural registers and
 * its current execution context (ASID, view, privilege). All loads and
 * stores funnel through translatePage(), so shadow faults, guest page
 * faults and cloaking transitions happen exactly where real hardware
 * would take them. A configurable preemption hook models timer
 * interrupts: after every N user-mode operations the hook runs, which
 * the system layer uses to drive the guest scheduler — exercising the
 * paper's "asynchronous interrupt while cloaked" path.
 */

#ifndef OSH_VMM_VCPU_HH
#define OSH_VMM_VCPU_HH

#include "base/types.hh"
#include "vmm/context.hh"
#include "vmm/registers.hh"
#include "vmm/shadow.hh"
#include "vmm/vmm.hh"

#include <functional>
#include <span>
#include <string>

namespace osh::vmm
{

/** One virtual CPU (one per guest thread in this simulator). */
class Vcpu
{
  public:
    Vcpu(Vmm& vmm, const Context& ctx);

    Vmm& vmm() { return vmm_; }
    Context& context() { return ctx_; }
    const Context& context() const { return ctx_; }
    RegisterFile& regs() { return regs_; }

    /**
     * The physical-core slot this vCPU currently runs on. The guest
     * scheduler assigns it at dispatch; translations hit the slot's
     * private TLB. Always 0 in single-core runs.
     */
    std::uint32_t cpu() const { return cpu_; }
    void setCpu(std::uint32_t cpu) { cpu_ = cpu; }

    /** Fixed-width guest memory accesses (any alignment). */
    std::uint8_t load8(GuestVA va);
    std::uint16_t load16(GuestVA va);
    std::uint32_t load32(GuestVA va);
    std::uint64_t load64(GuestVA va);
    void store8(GuestVA va, std::uint8_t v);
    void store16(GuestVA va, std::uint16_t v);
    void store32(GuestVA va, std::uint32_t v);
    void store64(GuestVA va, std::uint64_t v);

    /** Bulk guest memory accesses (page-crossing handled). */
    void readBytes(GuestVA va, std::span<std::uint8_t> out);
    void writeBytes(GuestVA va, std::span<const std::uint8_t> data);

    /** Read a NUL-terminated string (bounded). */
    std::string readCString(GuestVA va, std::size_t max_len = 4096);

    /** Issue a hypercall to the VMM. */
    std::int64_t hypercall(Hypercall num,
                           std::span<const std::uint64_t> args);

    /**
     * Install the timer-preemption hook: after every @p ops_per_tick
     * user-mode operations the hook is invoked (kernel mode never
     * preempts). Pass an empty function to disable.
     */
    void setPreemptHook(std::function<void()> hook,
                        std::uint64_t ops_per_tick);

    /** Total user+kernel memory operations executed (for stats). */
    std::uint64_t opCount() const { return totalOps_; }

  private:
    /** Translate one page for the given access, faulting as needed. */
    ShadowEntry translatePage(GuestVA va_page, AccessType access);

    /** Charge one operation and maybe fire the preemption hook. */
    void chargeOp(std::uint64_t cost_units = 1);

    template <typename T, T (sim::MachineMemory::*ReadFn)(Mpa) const>
    T loadScalar(GuestVA va);

    template <typename T, void (sim::MachineMemory::*WriteFn)(Mpa, T)>
    void storeScalar(GuestVA va, T v);

    Vmm& vmm_;
    Context ctx_;
    RegisterFile regs_;
    std::uint32_t cpu_ = 0;

    std::function<void()> preemptHook_;
    std::uint64_t opsPerTick_ = 0;
    std::uint64_t opsSinceTick_ = 0;
    std::uint64_t totalOps_ = 0;
    bool inPreempt_ = false;
};

} // namespace osh::vmm

#endif // OSH_VMM_VCPU_HH
