/**
 * @file
 * A small software TLB model.
 *
 * Caches (context, va page) -> shadow entry so the common case of a
 * repeated access charges only CostParams::memAccess. Capacity-bounded
 * with FIFO replacement. Invalidation is conservative: targeted drops
 * for VA/ASID events, full flush when a machine frame changes cloaking
 * state (modelling a TLB shootdown).
 */

#ifndef OSH_VMM_TLB_HH
#define OSH_VMM_TLB_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "vmm/context.hh"
#include "vmm/shadow.hh"

#include <deque>
#include <optional>
#include <unordered_map>

namespace osh::vmm
{

/** Capacity-bounded translation cache. */
class Tlb
{
  public:
    /**
     * @param capacity Entries the cache holds.
     * @param name Stat-group name; per-vCPU instances get distinct
     *   names ("tlb", "tlb1", ...) so their counters stay separable.
     */
    explicit Tlb(std::size_t capacity = 256, const char* name = "tlb");

    std::optional<ShadowEntry> lookup(const Context& ctx, GuestVA va_page);

    void insert(const Context& ctx, GuestVA va_page,
                const ShadowEntry& entry);

    void invalidateVa(Asid asid, GuestVA va_page);
    void invalidateAsid(Asid asid);

    /** Targeted shootdown of every entry mapping a machine frame. */
    void invalidateMpa(Mpa frame_base);

    void flushAll();

    std::size_t size() const { return entries_.size(); }

    /**
     * Length of the replacement queue, including stale occurrences left
     * behind by targeted invalidations (bounded by compaction; exposed
     * for the regression tests).
     */
    std::size_t queueLength() const { return fifo_.size(); }

    StatGroup& stats() { return stats_; }

  private:
    struct Key
    {
        Context ctx;
        GuestVA vaPage;

        bool operator==(const Key&) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key& k) const noexcept
        {
            return std::hash<Context>{}(k.ctx) ^
                   std::hash<GuestVA>{}(k.vaPage << 1);
        }
    };

    void evictOne();
    void compactFifo();

    std::size_t capacity_;
    std::unordered_map<Key, ShadowEntry, KeyHash> entries_;
    std::deque<Key> fifo_;
    /**
     * Occurrences of each key in fifo_. Invalidations only erase
     * entries_; a later re-insert queues the key again, so the queue can
     * briefly hold duplicates. Eviction skips any occurrence that is not
     * the key's newest (count > 0 after the pop), which keeps stale
     * duplicates from evicting a live entry.
     */
    std::unordered_map<Key, std::uint32_t, KeyHash> queued_;
    StatGroup stats_;
};

} // namespace osh::vmm

#endif // OSH_VMM_TLB_HH
