#include "vmm/shadow.hh"

#include <algorithm>

namespace osh::vmm
{

ShadowManager::ShadowManager() : stats_("shadow")
{
}

std::optional<ShadowEntry>
ShadowManager::lookup(const Context& ctx, GuestVA va_page) const
{
    auto sit = shadows_.find(ctx);
    if (sit == shadows_.end())
        return std::nullopt;
    auto eit = sit->second.find(va_page);
    if (eit == sit->second.end() || eit->second.suspended)
        return std::nullopt;
    return eit->second.entry;
}

void
ShadowManager::install(const Context& ctx, GuestVA va_page,
                       const ShadowEntry& entry)
{
    osh_assert(pageOffset(va_page) == 0, "shadow entries are page keyed");
    PageMap& pm = shadows_[ctx];
    auto old = pm.find(va_page);
    if (old != pm.end()) {
        dropFromReverse(old->second.entry.mpa, ctx, va_page);
    } else {
        ++liveSlots_;
        peakSlots_ = std::max(peakSlots_, liveSlots_);
    }
    pm[va_page] = Slot{entry, false};
    reverse_[entry.mpa].push_back({ctx, va_page});
    stats_.counter("installs").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Shadow, "fills");
}

bool
ShadowManager::reactivate(const Context& ctx, GuestVA va_page,
                          const ShadowEntry& entry)
{
    auto sit = shadows_.find(ctx);
    if (sit == shadows_.end())
        return false;
    auto eit = sit->second.find(va_page);
    if (eit == sit->second.end() || !eit->second.suspended ||
        eit->second.entry.mpa != entry.mpa) {
        return false;
    }
    eit->second.entry = entry;
    eit->second.suspended = false;
    stats_.counter("reactivations").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Shadow, "reactivations");
    return true;
}

void
ShadowManager::dropFromReverse(Mpa frame_base, const Context& ctx,
                               GuestVA va_page)
{
    auto rit = reverse_.find(frame_base);
    if (rit == reverse_.end())
        return;
    auto& vec = rit->second;
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [&](const Mapping& m) {
                                 return m.ctx == ctx &&
                                        m.vaPage == va_page;
                             }),
              vec.end());
    if (vec.empty())
        reverse_.erase(rit);
}

void
ShadowManager::invalidateVa(Asid asid, GuestVA va_page)
{
    va_page = pageBase(va_page);
    for (auto& [ctx, pm] : shadows_) {
        if (ctx.asid != asid)
            continue;
        auto eit = pm.find(va_page);
        if (eit != pm.end()) {
            dropFromReverse(eit->second.entry.mpa, ctx, va_page);
            pm.erase(eit);
            --liveSlots_;
            stats_.counter("va_invalidations").inc();
            OSH_TRACE_COUNT(tracer_, trace::Category::Shadow,
                            "va_invalidations");
        }
    }
}

void
ShadowManager::invalidateAsid(Asid asid)
{
    // Erase the per-context tables outright (not just their entries):
    // a torn-down address space must not leave an empty table behind,
    // or a long-lived VMM hosting tens of thousands of processes scans
    // ever more dead contexts on every targeted invalidation.
    for (auto it = shadows_.begin(); it != shadows_.end();) {
        if (it->first.asid != asid) {
            ++it;
            continue;
        }
        for (auto& [va, slot] : it->second)
            dropFromReverse(slot.entry.mpa, it->first, va);
        liveSlots_ -= it->second.size();
        it = shadows_.erase(it);
    }
    stats_.counter("asid_invalidations").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Shadow,
                    "asid_invalidations");
}

void
ShadowManager::invalidateMpa(Mpa frame_base)
{
    auto rit = reverse_.find(frame_base);
    if (rit == reverse_.end())
        return;
    // Move out the mapping list; we edit reverse_ via erase below.
    std::vector<Mapping> mappings = std::move(rit->second);
    reverse_.erase(rit);
    for (const Mapping& m : mappings) {
        auto sit = shadows_.find(m.ctx);
        if (sit == shadows_.end())
            continue;
        liveSlots_ -= sit->second.erase(m.vaPage);
    }
    stats_.counter("mpa_invalidations").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Shadow,
                    "mpa_invalidations");
}

void
ShadowManager::suspendMpa(Mpa frame_base)
{
    auto rit = reverse_.find(frame_base);
    if (rit == reverse_.end())
        return;
    for (const Mapping& m : rit->second) {
        auto sit = shadows_.find(m.ctx);
        if (sit == shadows_.end())
            continue;
        auto eit = sit->second.find(m.vaPage);
        if (eit != sit->second.end())
            eit->second.suspended = true;
    }
    stats_.counter("mpa_suspends").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Shadow, "mpa_suspends");
}

void
ShadowManager::invalidateAll()
{
    shadows_.clear();
    reverse_.clear();
    liveSlots_ = 0;
    stats_.counter("full_invalidations").inc();
    OSH_TRACE_COUNT(tracer_, trace::Category::Shadow,
                    "full_invalidations");
}

std::size_t
ShadowManager::entryCount() const
{
    std::size_t n = 0;
    for (const auto& [ctx, pm] : shadows_) {
        for (const auto& [va, slot] : pm) {
            if (!slot.suspended)
                ++n;
        }
    }
    return n;
}

std::size_t
ShadowManager::suspendedCount() const
{
    std::size_t n = 0;
    for (const auto& [ctx, pm] : shadows_) {
        for (const auto& [va, slot] : pm) {
            if (slot.suspended)
                ++n;
        }
    }
    return n;
}

std::size_t
ShadowManager::entryCount(Asid asid) const
{
    std::size_t n = 0;
    for (const auto& [ctx, pm] : shadows_) {
        if (ctx.asid != asid)
            continue;
        for (const auto& [va, slot] : pm) {
            if (!slot.suspended)
                ++n;
        }
    }
    return n;
}

} // namespace osh::vmm
