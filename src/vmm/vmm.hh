/**
 * @file
 * The virtual machine monitor.
 *
 * Owns the pmap, the multi-shadow page tables and the TLB model, and
 * runs the resolution path every memory access takes on a shadow miss:
 *
 *   guest PTE walk -> (guest page fault to the OS if unmapped) ->
 *   cloak backend resolution (may encrypt/decrypt the page) ->
 *   shadow + TLB install.
 *
 * All world-switch and fault costs are charged here so the benchmarks
 * see the same cost structure the paper describes.
 */

#ifndef OSH_VMM_VMM_HH
#define OSH_VMM_VMM_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/machine.hh"
#include "vmm/context.hh"
#include "vmm/hooks.hh"
#include "vmm/pmap.hh"
#include "vmm/shadow.hh"
#include "vmm/tlb.hh"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace osh::vmm
{

/** The VMM proper. */
class Vmm
{
  public:
    /**
     * @param machine Underlying simulated machine.
     * @param guest_frames Guest physical memory size in frames.
     */
    Vmm(sim::Machine& machine, std::uint64_t guest_frames);

    /** Plug in the cloak engine (defaults to passthrough / native). */
    void setCloakBackend(CloakBackend* backend);

    /** Plug in the guest OS hooks. Must be set before any access. */
    void setGuestOs(GuestOsHooks* os);

    sim::Machine& machine() { return machine_; }
    Pmap& pmap() { return pmap_; }
    ShadowManager& shadows() { return shadows_; }
    /** vCPU 0's TLB (the legacy single-core accessor). */
    Tlb& tlb() { return *tlbs_[0]; }
    /** The TLB of one vCPU slot (out-of-range clamps to slot 0). */
    Tlb&
    tlb(std::uint32_t cpu)
    {
        return *tlbs_[cpu < tlbs_.size() ? cpu : 0];
    }
    CloakBackend& cloakBackend() { return *cloak_; }

    /**
     * Drain the cloak backend's asynchronous eviction queue. The guest
     * kernel calls this at its trap boundaries and before every swap /
     * fsync / checkpoint consumption point, so deferred seals can never
     * be observed half-done. A no-op for backends without a queue.
     */
    void drainAsyncEvictions() { cloak_->drainAsyncEvictions(); }

    /**
     * Size the per-vCPU TLB array (SMP). Must be called before any
     * translation; existing cached state is flushed. Each slot models
     * one core's private TLB — shadow page tables stay shared (they
     * model VMM-side structures, not per-core hardware).
     */
    void setVcpuCount(std::size_t count);
    std::size_t vcpuCount() const { return tlbs_.size(); }

    /**
     * Full shadow resolution for one page. Charges a VM exit, consults
     * the guest page tables (taking guest faults as needed), asks the
     * cloak backend, installs the shadow entry and returns it.
     */
    ShadowEntry resolve(Vcpu& vcpu, const Context& ctx, GuestVA va_page,
                        AccessType access);

    /**
     * Guest-initiated invalidation (the OS changed a PTE). Models an
     * INVLPG that the VMM traps; drops shadow + TLB state for the page
     * in every view of the address space.
     */
    void invalidateVa(Asid asid, GuestVA va_page);

    /** Guest-initiated full address-space invalidation (CR3 rewrite). */
    void invalidateAsid(Asid asid);

    /**
     * Cloak-engine-initiated invalidation: a machine frame changed
     * cloaking state, so every context's mapping of it must go. The TLB
     * is fully flushed (shootdown model).
     */
    void invalidateMpa(Mpa frame_base);

    /**
     * Cloaking-state flip on a frame whose translations remain valid:
     * suspend (retain) the shadow entries and shoot down the TLB. With
     * shadow retention disabled (ablation) this degrades to a full
     * invalidateMpa, modelling a VMM that rebuilds shadows from scratch.
     */
    void suspendMpa(Mpa frame_base);

    /**
     * Cloak-layer shootdown of one VA across *every* vCPU's TLB, with
     * no additional cost charge (the caller has already paid for the
     * triggering world switch). Used when a cloaked region's pages are
     * registered or retyped: any core could hold a stale translation.
     */
    void shootdownVa(Asid asid, GuestVA va_page);

    /**
     * A guest context switch happened (CR3 write / world switch). With
     * ASID-tagged retention (the default) shadows and TLB entries stay
     * live — resuming a process costs nothing here. With retention
     * disabled, every cached translation is flushed, modelling a VMM
     * whose shadow cache is not tagged by address space. The @p cpu
     * overload records per-slot switch counts when more than one vCPU
     * is configured (single-core runs keep the legacy stat set).
     */
    void onContextSwitch();
    void onContextSwitch(std::uint32_t cpu);

    /** Enable/disable ASID-tagged shadow retention (ablation knob). */
    void setShadowRetention(bool on) { shadowRetention_ = on; }
    bool shadowRetention() const { return shadowRetention_; }

    /** Dispatch a hypercall from an application to the cloak backend. */
    std::int64_t hypercall(Vcpu& vcpu, Hypercall num,
                           std::span<const std::uint64_t> args);

    /**
     * Guest-kernel batching hint before a bulk frame read (fork eager
     * copy, fsync writeback, swap-out): ask the cloak backend to seal
     * any listed frames still holding cloaked plaintext in one batch
     * instead of one fault at a time. Safe to call with frames in any
     * state; returns the number actually sealed. When the backend's
     * crypto worker pool has more than one lane, the per-frame AES+SHA
     * of the batch fans out across host threads with deterministic,
     * cycle-identical results (see CloakEngine::setCryptoWorkers).
     */
    std::size_t prepareFramesForKernel(std::span<const Gpa> gpas);

    /** Charge one guest->VMM->guest round trip. */
    void chargeWorldSwitch(const char* reason);

    /**
     * Configure the virtualized guest clock (timing-channel hardening).
     * Every guest-visible cycle read goes through readTsc(): with both
     * knobs zero (the default) it returns the raw global cycle counter
     * bit-identically — the legacy behavior every committed baseline
     * replays. Non-zero knobs give each address space its own view:
     * a per-ASID constant offset drawn once from [0, offset], plus a
     * fresh fuzz term from [0, fuzz] on every read, monotonized so time
     * never goes backwards within an ASID. All draws are splitmix64
     * streams seeded from @p seed and the ASID, so the spoofed sequence
     * is exactly reproducible run to run.
     */
    void configureVirtualClock(Cycles fuzz, Cycles offset,
                               std::uint64_t seed);

    /** Guest-visible cycle counter of @p asid (see configureVirtualClock). */
    Cycles readTsc(Asid asid);

    Cycles clockFuzzCycles() const { return clockFuzz_; }
    Cycles clockOffsetCycles() const { return clockOffset_; }

    StatGroup& stats() { return stats_; }

  private:
    sim::Machine& machine_;
    Pmap pmap_;
    ShadowManager shadows_;
    /** One private TLB per vCPU slot; slot 0 keeps the legacy "tlb"
     *  stat name so single-core baselines are unchanged. */
    std::vector<std::unique_ptr<Tlb>> tlbs_;
    std::unique_ptr<CloakBackend> passthrough_;
    CloakBackend* cloak_;
    GuestOsHooks* os_ = nullptr;
    bool shadowRetention_ = true;

    /** Per-ASID virtualized-clock state (see configureVirtualClock). */
    struct VClock
    {
        Cycles offset = 0; ///< Constant per-ASID displacement.
        Cycles last = 0;   ///< Monotonicity floor.
        std::uint64_t rng = 0;
    };
    Cycles clockFuzz_ = 0;
    Cycles clockOffset_ = 0;
    std::uint64_t clockSeed_ = 0;
    std::map<Asid, VClock> vclocks_;
    std::mutex vclockLock_;

    StatGroup stats_;
};

} // namespace osh::vmm

#endif // OSH_VMM_VMM_HH
