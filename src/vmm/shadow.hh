/**
 * @file
 * Multi-shadow page tables.
 *
 * A classical VMM keeps one shadow page table per guest address space,
 * caching the composition guest-virtual -> guest-physical -> machine.
 * Overshadow's multi-shadowing keeps one shadow per (address space,
 * view) pair so the same guest virtual address can resolve differently
 * — plaintext for the owning cloaked application, ciphertext for
 * everything else. This module manages the shadows plus the reverse
 * index needed to invalidate every mapping of a machine frame when the
 * cloak engine flips its state.
 */

#ifndef OSH_VMM_SHADOW_HH
#define OSH_VMM_SHADOW_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "trace/trace.hh"
#include "vmm/context.hh"

#include <optional>
#include <unordered_map>
#include <vector>

namespace osh::vmm
{

/** One cached translation in a shadow page table. */
struct ShadowEntry
{
    Mpa mpa = badAddr;       ///< Machine frame base.
    bool canRead = false;
    bool canWrite = false;
};

/** All shadow page tables, keyed by execution context. */
class ShadowManager
{
  public:
    ShadowManager();

    /** Look up a cached translation; nullopt on shadow miss. */
    std::optional<ShadowEntry> lookup(const Context& ctx,
                                      GuestVA va_page) const;

    /** Install (or replace) a shadow entry. */
    void install(const Context& ctx, GuestVA va_page,
                 const ShadowEntry& entry);

    /** Drop one VA translation in every view of one address space. */
    void invalidateVa(Asid asid, GuestVA va_page);

    /** Drop all translations of one address space (all views). */
    void invalidateAsid(Asid asid);

    /**
     * Drop every shadow entry, in any context, that maps the given
     * machine frame. Called by the cloak engine whenever a page changes
     * cloaking state, so no context retains a stale view.
     */
    void invalidateMpa(Mpa frame_base);

    /** Drop everything. */
    void invalidateAll();

    /** Number of live shadow entries (for tests / stats). */
    std::size_t entryCount() const;

    /** Attach the machine tracer (the owning Vmm wires this). */
    void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

    StatGroup& stats() { return stats_; }

  private:
    using PageMap = std::unordered_map<GuestVA, ShadowEntry>;

    struct Mapping
    {
        Context ctx;
        GuestVA vaPage;
    };

    void dropEntry(const Context& ctx, GuestVA va_page);
    void dropFromReverse(Mpa frame_base, const Context& ctx,
                         GuestVA va_page);

    std::unordered_map<Context, PageMap> shadows_;
    /** Reverse index: machine frame -> all shadow entries mapping it. */
    std::unordered_map<Mpa, std::vector<Mapping>> reverse_;
    StatGroup stats_;
    trace::Tracer* tracer_ = nullptr;
};

} // namespace osh::vmm

#endif // OSH_VMM_SHADOW_HH
