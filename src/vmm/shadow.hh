/**
 * @file
 * Multi-shadow page tables with ASID-tagged retention.
 *
 * A classical VMM keeps one shadow page table per guest address space,
 * caching the composition guest-virtual -> guest-physical -> machine.
 * Overshadow's multi-shadowing keeps one shadow per (address space,
 * view) pair so the same guest virtual address can resolve differently
 * — plaintext for the owning cloaked application, ciphertext for
 * everything else. This module manages the shadows plus the reverse
 * index needed to invalidate every mapping of a machine frame when the
 * cloak engine flips its state.
 *
 * Retention: a cloaking-state flip does not change the translation of
 * a page, only who may currently use it. suspendMpa() therefore keeps
 * the affected entries resident in a *suspended* state (invisible to
 * lookup) instead of erasing them; when the same context next resolves
 * the same page to the same frame, reactivate() restores the entry for
 * a fraction of a full shadow fill. Entries are erased outright only
 * when the translation itself dies — guest PTE change (invalidateVa),
 * address-space teardown (invalidateAsid), or frame reuse
 * (invalidateMpa) — so a process resuming its own view after a switch
 * never inherits stale mappings.
 */

#ifndef OSH_VMM_SHADOW_HH
#define OSH_VMM_SHADOW_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "trace/trace.hh"
#include "vmm/context.hh"

#include <optional>
#include <unordered_map>
#include <vector>

namespace osh::vmm
{

/** One cached translation in a shadow page table. */
struct ShadowEntry
{
    Mpa mpa = badAddr;       ///< Machine frame base.
    bool canRead = false;
    bool canWrite = false;
};

/** All shadow page tables, keyed by execution context. */
class ShadowManager
{
  public:
    ShadowManager();

    /** Look up a cached translation; nullopt on shadow miss or when the
     *  entry is suspended (a cloak transition parked it). */
    std::optional<ShadowEntry> lookup(const Context& ctx,
                                      GuestVA va_page) const;

    /** Install (or replace) a shadow entry. */
    void install(const Context& ctx, GuestVA va_page,
                 const ShadowEntry& entry);

    /**
     * Retention fast path: if a *suspended* entry exists for
     * (ctx, va_page) and still maps @p entry.mpa, reactivate it with
     * the new permissions and return true. The caller then charges the
     * (cheap) revalidation cost instead of a full shadow fill. Returns
     * false when there is nothing to reactivate.
     */
    bool reactivate(const Context& ctx, GuestVA va_page,
                    const ShadowEntry& entry);

    /** Drop one VA translation in every view of one address space. */
    void invalidateVa(Asid asid, GuestVA va_page);

    /** Drop all translations of one address space (all views). */
    void invalidateAsid(Asid asid);

    /**
     * Drop every shadow entry, in any context, that maps the given
     * machine frame. For frame reuse / scrubbing: the translations are
     * genuinely dead, so nothing is retained.
     */
    void invalidateMpa(Mpa frame_base);

    /**
     * Suspend every shadow entry mapping the given machine frame: the
     * frame changed cloaking state, so no context may keep *using* its
     * mapping, but the translations stay resident for reactivate().
     */
    void suspendMpa(Mpa frame_base);

    /** Drop everything (active and suspended). */
    void invalidateAll();

    /** Number of live (active) shadow entries (for tests / stats). */
    std::size_t entryCount() const;

    /** Number of suspended (retained) entries. */
    std::size_t suspendedCount() const;

    /** Active entries belonging to one address space (tests). */
    std::size_t entryCount(Asid asid) const;

    /** Resident slots right now, active + suspended (O(1)). */
    std::size_t slotCount() const { return liveSlots_; }

    /**
     * High-water mark of resident slots over the manager's lifetime —
     * the shadow-page-table memory a real VMM would have had to hold.
     * The scale bench charts this against tenant count.
     */
    std::size_t peakSlotCount() const { return peakSlots_; }

    /** Attach the machine tracer (the owning Vmm wires this). */
    void setTracer(trace::Tracer* tracer) { tracer_ = tracer; }

    StatGroup& stats() { return stats_; }

  private:
    /** A shadow slot: the translation plus its retention state. */
    struct Slot
    {
        ShadowEntry entry;
        bool suspended = false;
    };

    using PageMap = std::unordered_map<GuestVA, Slot>;

    struct Mapping
    {
        Context ctx;
        GuestVA vaPage;
    };

    void dropFromReverse(Mpa frame_base, const Context& ctx,
                         GuestVA va_page);

    std::unordered_map<Context, PageMap> shadows_;
    /** Reverse index: machine frame -> all slots (active or suspended)
     *  mapping it. */
    std::unordered_map<Mpa, std::vector<Mapping>> reverse_;
    /** Resident slot count and its lifetime high-water mark. */
    std::size_t liveSlots_ = 0;
    std::size_t peakSlots_ = 0;
    StatGroup stats_;
    trace::Tracer* tracer_ = nullptr;
};

} // namespace osh::vmm

#endif // OSH_VMM_SHADOW_HH
