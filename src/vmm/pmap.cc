#include "vmm/pmap.hh"

#include "base/logging.hh"

namespace osh::vmm
{

Pmap::Pmap(sim::Machine& machine, std::uint64_t guest_frames)
    : machine_(machine), backing_(guest_frames, badAddr), stats_("pmap")
{
    if (guest_frames > machine.memory().numFrames()) {
        osh_fatal("guest physical memory (%llu frames) exceeds machine "
                  "memory (%llu frames)",
                  static_cast<unsigned long long>(guest_frames),
                  static_cast<unsigned long long>(
                      machine.memory().numFrames()));
    }
}

Mpa
Pmap::translate(Gpa gpa)
{
    std::uint64_t frame = pageNumber(gpa);
    osh_assert(frame < backing_.size(),
               "gpa 0x%llx outside guest physical memory",
               static_cast<unsigned long long>(gpa));
    if (backing_[frame] == badAddr) {
        osh_assert(nextFrame_ < machine_.memory().numFrames(),
                   "machine out of frames backing guest memory");
        backing_[frame] = nextFrame_ * pageSize;
        ++nextFrame_;
        stats_.counter("frames_backed").inc();
    }
    return backing_[frame] + pageOffset(gpa);
}

bool
Pmap::isBacked(Gpa gpa) const
{
    std::uint64_t frame = pageNumber(gpa);
    return frame < backing_.size() && backing_[frame] != badAddr;
}

} // namespace osh::vmm
