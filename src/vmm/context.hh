/**
 * @file
 * Execution-context types shared across the VMM.
 *
 * The central idea of multi-shadowing is that a translation is selected
 * not just by the address space (ASID, as on ordinary hardware) but by
 * the *view*: the protection domain on whose behalf the access is made.
 * The kernel and all uncloaked code use the system view (domain 0); each
 * cloaked application runs in its own domain and is the only context
 * that sees its pages in plaintext.
 */

#ifndef OSH_VMM_CONTEXT_HH
#define OSH_VMM_CONTEXT_HH

#include "base/logging.hh"
#include "base/types.hh"

#include <cstdint>
#include <functional>
#include <string>

namespace osh::vmm
{

/** What kind of access is being performed. */
enum class AccessType { Read, Write, Fetch };

/** Human-readable access name for diagnostics. */
const char* accessName(AccessType t);

/** The (address space, view, privilege) tuple that selects a shadow. */
struct Context
{
    Asid asid = 0;
    DomainId view = systemDomain;
    bool kernelMode = false;

    bool operator==(const Context&) const = default;
};

/** A guest page-table entry, as maintained by the guest OS. */
struct GuestPte
{
    Gpa gpa = badAddr;
    bool present = false;
    bool writable = false;
    bool user = true;
    /** Copy-on-write: mapped read-only, kernel copies on write fault. */
    bool cow = false;
};

/** Result of resolving a page through pmap + cloaking. */
struct ResolvedPage
{
    Mpa mpa = badAddr;
    bool canRead = false;
    bool canWrite = false;
};

/**
 * Thrown to unwind a guest thread when its process has been terminated
 * (segmentation fault, cloak violation, explicit kill). Guest kernel
 * code is exception safe, so the throw propagates cleanly to the thread
 * host.
 */
struct ProcessKilled
{
    Pid pid;
    std::string reason;
};

} // namespace osh::vmm

/** Hash support so contexts can key shadow tables. */
template <>
struct std::hash<osh::vmm::Context>
{
    std::size_t
    operator()(const osh::vmm::Context& c) const noexcept
    {
        std::uint64_t v = (std::uint64_t{c.asid} << 33) ^
                          (std::uint64_t{c.view} << 1) ^
                          (c.kernelMode ? 1 : 0);
        return std::hash<std::uint64_t>{}(v);
    }
};

#endif // OSH_VMM_CONTEXT_HH
