#include "vmm/tlb.hh"

namespace osh::vmm
{

Tlb::Tlb(std::size_t capacity) : capacity_(capacity), stats_("tlb")
{
    osh_assert(capacity > 0, "TLB needs capacity");
}

std::optional<ShadowEntry>
Tlb::lookup(const Context& ctx, GuestVA va_page)
{
    auto it = entries_.find(Key{ctx, va_page});
    if (it == entries_.end()) {
        stats_.counter("misses").inc();
        return std::nullopt;
    }
    stats_.counter("hits").inc();
    return it->second;
}

void
Tlb::insert(const Context& ctx, GuestVA va_page, const ShadowEntry& entry)
{
    Key key{ctx, va_page};
    if (entries_.find(key) == entries_.end()) {
        while (entries_.size() >= capacity_) {
            entries_.erase(fifo_.front());
            fifo_.pop_front();
        }
        fifo_.push_back(key);
    }
    entries_[key] = entry;
}

void
Tlb::invalidateVa(Asid asid, GuestVA va_page)
{
    va_page = pageBase(va_page);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->first.ctx.asid == asid && it->first.vaPage == va_page)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Tlb::invalidateAsid(Asid asid)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->first.ctx.asid == asid)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Tlb::invalidateMpa(Mpa frame_base)
{
    frame_base = pageBase(frame_base);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (pageBase(it->second.mpa) == frame_base)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Tlb::flushAll()
{
    entries_.clear();
    fifo_.clear();
    stats_.counter("full_flushes").inc();
}

} // namespace osh::vmm
