#include "vmm/tlb.hh"

namespace osh::vmm
{

Tlb::Tlb(std::size_t capacity, const char* name)
    : capacity_(capacity), stats_(name)
{
    osh_assert(capacity > 0, "TLB needs capacity");
}

std::optional<ShadowEntry>
Tlb::lookup(const Context& ctx, GuestVA va_page)
{
    auto it = entries_.find(Key{ctx, va_page});
    if (it == entries_.end()) {
        stats_.counter("misses").inc();
        return std::nullopt;
    }
    stats_.counter("hits").inc();
    return it->second;
}

void
Tlb::insert(const Context& ctx, GuestVA va_page, const ShadowEntry& entry)
{
    Key key{ctx, va_page};
    if (entries_.find(key) == entries_.end()) {
        while (entries_.size() >= capacity_)
            evictOne();
        fifo_.push_back(key);
        ++queued_[key];
        // Invalidations leave stale occurrences behind; keep the queue
        // proportional to capacity regardless of the invalidation rate.
        if (fifo_.size() > 2 * capacity_)
            compactFifo();
    }
    entries_[key] = entry;
}

void
Tlb::evictOne()
{
    while (!fifo_.empty()) {
        Key victim = fifo_.front();
        fifo_.pop_front();
        auto qit = queued_.find(victim);
        osh_assert(qit != queued_.end() && qit->second > 0,
                   "TLB fifo key missing from occurrence index");
        if (--qit->second > 0)
            continue; // Stale occurrence; a newer one is queued behind.
        queued_.erase(qit);
        if (entries_.erase(victim) > 0) {
            stats_.counter("evictions").inc();
            return;
        }
        // Last occurrence of an invalidated key: nothing to evict.
    }
    osh_assert(entries_.empty(), "TLB entries live without fifo backing");
}

void
Tlb::compactFifo()
{
    // Rebuild keeping only the newest occurrence of each live key,
    // preserving relative FIFO order.
    std::deque<Key> fresh;
    std::unordered_map<Key, std::uint32_t, KeyHash> seen;
    for (auto it = fifo_.rbegin(); it != fifo_.rend(); ++it) {
        if (entries_.find(*it) == entries_.end())
            continue;
        if (seen.find(*it) != seen.end())
            continue;
        seen.emplace(*it, 1);
        fresh.push_front(*it);
    }
    fifo_ = std::move(fresh);
    queued_ = std::move(seen);
    stats_.counter("fifo_compactions").inc();
}

void
Tlb::invalidateVa(Asid asid, GuestVA va_page)
{
    va_page = pageBase(va_page);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->first.ctx.asid == asid && it->first.vaPage == va_page)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Tlb::invalidateAsid(Asid asid)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->first.ctx.asid == asid)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Tlb::invalidateMpa(Mpa frame_base)
{
    frame_base = pageBase(frame_base);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (pageBase(it->second.mpa) == frame_base)
            it = entries_.erase(it);
        else
            ++it;
    }
}

void
Tlb::flushAll()
{
    entries_.clear();
    fifo_.clear();
    queued_.clear();
    stats_.counter("full_flushes").inc();
}

} // namespace osh::vmm
