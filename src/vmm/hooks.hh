/**
 * @file
 * Interfaces the VMM exposes to the layers above it.
 *
 * The VMM itself knows nothing about the guest OS's page tables or the
 * cloak engine's page states; it calls through these interfaces during
 * shadow resolution. src/os implements GuestOsHooks; src/cloak
 * implements CloakBackend. A built-in passthrough backend (no cloaking)
 * serves as the native baseline.
 */

#ifndef OSH_VMM_HOOKS_HH
#define OSH_VMM_HOOKS_HH

#include "base/types.hh"
#include "vmm/context.hh"

#include <cstdint>
#include <functional>
#include <span>

namespace osh::vmm
{

class Vcpu;

/**
 * Hypercall numbers. Cloaked applications (their shim, really) talk to
 * the VMM directly through these; the guest kernel never sees them.
 */
enum class Hypercall : std::uint64_t
{
    CloakCreateDomain = 1,   ///< Create a protection domain.
    CloakRegisterRegion = 2, ///< Attach a VA range to a cloaked resource.
    CloakUnregisterRegion = 3,
    CloakRegisterThread = 4, ///< Register a thread's CTC page.
    CloakSealMetadata = 5,   ///< Persist a resource's metadata (files).
    CloakInfo = 6,           ///< Query cloak statistics.
    CloakPrepareFork = 7,    ///< Parent authorizes a fork attach.
    CloakForkAttach = 8,     ///< Child clones the parent's protection.
    CloakAttachFile = 9,     ///< Attach/create a protected file resource.
    CloakDiscardFile = 10,   ///< Drop sealed metadata (create/truncate).
    CloakTeardownDomain = 11,///< Destroy a domain and its resources.
    CloakSnapshotFork = 12,  ///< Capture post-fork metadata for a child.
    CloakIntrospect = 13,    ///< Query timing-hardening state (selector ABI).
};

/** CloakIntrospect selectors (hypercall arg 0). */
constexpr std::uint64_t introspectClockFuzz = 0;
constexpr std::uint64_t introspectClockOffset = 1;
constexpr std::uint64_t introspectConstantCost = 2;
constexpr std::uint64_t introspectVictimCacheCapacity = 3;
constexpr std::uint64_t introspectAsyncEvictDepth = 4;

/**
 * Interface to whatever decides how a guest page is presented to a
 * context. The Overshadow cloak engine implements this; the baseline is
 * a passthrough that simply consults the pmap.
 */
class CloakBackend
{
  public:
    virtual ~CloakBackend() = default;

    /**
     * Resolve a guest PTE into a machine mapping for the given context,
     * performing any cloaking transition (encrypt / decrypt+verify) the
     * access implies. Must return a mapping that permits @p access, or
     * throw ProcessKilled on an integrity violation.
     */
    virtual ResolvedPage resolvePage(const Context& ctx, GuestVA va_page,
                                     const GuestPte& pte,
                                     AccessType access) = 0;

    /** Handle a hypercall from a (cloaked) application. */
    virtual std::int64_t hypercall(Vcpu& vcpu, Hypercall num,
                                   std::span<const std::uint64_t> args) = 0;

    /**
     * Batching hint from the guest kernel's bulk paths (fork eager
     * copy, fsync writeback, swap-out): seal — encrypt in place — any
     * of the given frames that currently hold cloaked plaintext,
     * before the kernel reads them one by one. Purely an optimization
     * hook: the backend encrypts on the first foreign access anyway,
     * so ignoring the hint is always safe and the default does
     * nothing. Returns the number of frames sealed.
     */
    virtual std::size_t sealPlaintextFrames(std::span<const Gpa> gpas)
    {
        (void)gpas;
        return 0;
    }

    /**
     * Asynchronous eviction: seal the cloaked plaintext in @p gpa into
     * a backend staging buffer and hand the frame back immediately,
     * deferring @p commit — which receives the sealed ciphertext —
     * until the queue drains. Returns false when the backend cannot
     * defer this frame (async disabled, queue unsupported, or the
     * frame holds no cloaked plaintext); the caller must then run its
     * synchronous path. The default backend never defers.
     */
    virtual bool
    evictPageAsync(Gpa gpa,
                   std::function<void(std::span<const std::uint8_t>)> commit)
    {
        (void)gpa;
        (void)commit;
        return false;
    }

    /**
     * Drain barrier: retire every queued asynchronous eviction (oldest
     * first), invoking each deferred commit. Callers place this before
     * any observation point that must see only fully-sealed state —
     * swap-in, fsync, checkpoint, trap entry. No-op by default.
     */
    virtual void drainAsyncEvictions() {}

    /** Asynchronous evictions still in flight (0 when unsupported). */
    virtual std::size_t asyncPendingEvictions() const { return 0; }
};

/**
 * Interface to the guest OS: translate guest virtual addresses through
 * the guest's own page tables, and take guest page faults.
 */
class GuestOsHooks
{
  public:
    virtual ~GuestOsHooks() = default;

    /**
     * Walk the guest page tables of @p asid. Returns a non-present PTE
     * if unmapped. Never blocks.
     */
    virtual GuestPte translateGuest(Asid asid, GuestVA va) = 0;

    /**
     * Deliver a guest page fault. Runs guest kernel code: may allocate
     * frames, perform COW, swap in pages, or kill the faulting process
     * (by throwing ProcessKilled). On return the VMM retries the walk.
     *
     * @param vcpu The faulting virtual CPU.
     * @param va Faulting address.
     * @param access The access that faulted.
     */
    virtual void handleGuestPageFault(Vcpu& vcpu, GuestVA va,
                                      AccessType access) = 0;

    /**
     * The MMU resolved a *write* mapping for (asid, va): the hardware
     * dirty bit. The OS uses this to track which file pages need
     * writeback.
     */
    virtual void notifyWrite(Asid asid, GuestVA va_page) { (void)asid;
                                                           (void)va_page; }
};

} // namespace osh::vmm

#endif // OSH_VMM_HOOKS_HH
