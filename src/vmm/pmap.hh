/**
 * @file
 * The VMM's physical map: guest physical -> machine physical.
 *
 * The guest OS believes it owns a contiguous range of "physical" memory
 * (GPAs). The VMM backs each guest frame with a machine frame on first
 * touch. This indirection is what lets the VMM interpose on every guest
 * frame without the guest's knowledge — the cloak engine encrypts and
 * hashes *machine* frames, and the guest only ever names GPAs.
 */

#ifndef OSH_VMM_PMAP_HH
#define OSH_VMM_PMAP_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "sim/machine.hh"

#include <cstdint>
#include <vector>

namespace osh::vmm
{

/** Guest-physical to machine-physical mapping. */
class Pmap
{
  public:
    /**
     * @param machine The machine whose frames back guest memory.
     * @param guest_frames Size of the guest physical space in frames;
     *        must not exceed the machine's frame count.
     */
    Pmap(sim::Machine& machine, std::uint64_t guest_frames);

    /** Number of guest physical frames. */
    std::uint64_t guestFrames() const { return backing_.size(); }

    /** Does this GPA lie inside guest physical memory? */
    bool
    contains(Gpa gpa) const
    {
        return pageNumber(gpa) < backing_.size();
    }

    /**
     * Machine address backing a guest physical address, allocating a
     * machine frame on first touch. Panics if gpa is out of range (the
     * guest OS validates frame numbers before handing them out).
     */
    Mpa translate(Gpa gpa);

    /** Has this guest frame been backed yet? */
    bool isBacked(Gpa gpa) const;

    StatGroup& stats() { return stats_; }

  private:
    sim::Machine& machine_;
    std::vector<Mpa> backing_;   ///< Per guest frame: MPA or badAddr.
    std::uint64_t nextFrame_ = 0;
    StatGroup stats_;
};

} // namespace osh::vmm

#endif // OSH_VMM_PMAP_HH
