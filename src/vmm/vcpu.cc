#include "vmm/vcpu.hh"

#include "base/logging.hh"

#include <algorithm>

namespace osh::vmm
{

Vcpu::Vcpu(Vmm& vmm, const Context& ctx) : vmm_(vmm), ctx_(ctx)
{
}

void
Vcpu::setPreemptHook(std::function<void()> hook, std::uint64_t ops_per_tick)
{
    preemptHook_ = std::move(hook);
    opsPerTick_ = ops_per_tick;
    opsSinceTick_ = 0;
}

void
Vcpu::chargeOp(std::uint64_t cost_units)
{
    totalOps_ += cost_units;
    if (!preemptHook_ || opsPerTick_ == 0 || ctx_.kernelMode || inPreempt_)
        return;
    opsSinceTick_ += cost_units;
    if (opsSinceTick_ >= opsPerTick_) {
        opsSinceTick_ = 0;
        inPreempt_ = true;
        preemptHook_();
        inPreempt_ = false;
    }
}

ShadowEntry
Vcpu::translatePage(GuestVA va_page, AccessType access)
{
    va_page = pageBase(va_page);
    auto& cost = vmm_.machine().cost();

    if (auto hit = vmm_.tlb(cpu_).lookup(ctx_, va_page)) {
        bool ok = (access == AccessType::Write) ? hit->canWrite
                                                : hit->canRead;
        if (ok)
            return *hit;
        // Permission miss (e.g. write to a clean cloaked page): fall
        // through to full resolution.
    }

    // TLB miss: the hardware walker consults the shadow page table.
    if (auto sh = vmm_.shadows().lookup(ctx_, va_page)) {
        bool ok = (access == AccessType::Write) ? sh->canWrite
                                                : sh->canRead;
        if (ok) {
            cost.charge(cost.params().tlbMissWalk, "tlb_fill");
            vmm_.tlb(cpu_).insert(ctx_, va_page, *sh);
            return *sh;
        }
    }

    // Shadow miss or permission fault: VMM takes over.
    return vmm_.resolve(*this, ctx_, va_page, access);
}

template <typename T, T (sim::MachineMemory::*ReadFn)(Mpa) const>
T
Vcpu::loadScalar(GuestVA va)
{
    auto& cost = vmm_.machine().cost();
    cost.charge(cost.params().memAccess);
    chargeOp();
    if (pageOffset(va) + sizeof(T) <= pageSize) {
        ShadowEntry e = translatePage(va, AccessType::Read);
        return (vmm_.machine().memory().*ReadFn)(e.mpa + pageOffset(va));
    }
    // Page-crossing access: assemble byte by byte.
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        ShadowEntry e = translatePage(va + i, AccessType::Read);
        v |= static_cast<T>(vmm_.machine().memory().read8(
                 e.mpa + pageOffset(va + i)))
             << (8 * i);
    }
    return v;
}

template <typename T, void (sim::MachineMemory::*WriteFn)(Mpa, T)>
void
Vcpu::storeScalar(GuestVA va, T v)
{
    auto& cost = vmm_.machine().cost();
    cost.charge(cost.params().memAccess);
    chargeOp();
    if (pageOffset(va) + sizeof(T) <= pageSize) {
        ShadowEntry e = translatePage(va, AccessType::Write);
        (vmm_.machine().memory().*WriteFn)(e.mpa + pageOffset(va), v);
        return;
    }
    for (std::size_t i = 0; i < sizeof(T); ++i) {
        ShadowEntry e = translatePage(va + i, AccessType::Write);
        vmm_.machine().memory().write8(
            e.mpa + pageOffset(va + i),
            static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint8_t
Vcpu::load8(GuestVA va)
{
    return loadScalar<std::uint8_t, &sim::MachineMemory::read8>(va);
}

std::uint16_t
Vcpu::load16(GuestVA va)
{
    return loadScalar<std::uint16_t, &sim::MachineMemory::read16>(va);
}

std::uint32_t
Vcpu::load32(GuestVA va)
{
    return loadScalar<std::uint32_t, &sim::MachineMemory::read32>(va);
}

std::uint64_t
Vcpu::load64(GuestVA va)
{
    return loadScalar<std::uint64_t, &sim::MachineMemory::read64>(va);
}

void
Vcpu::store8(GuestVA va, std::uint8_t v)
{
    storeScalar<std::uint8_t, &sim::MachineMemory::write8>(va, v);
}

void
Vcpu::store16(GuestVA va, std::uint16_t v)
{
    storeScalar<std::uint16_t, &sim::MachineMemory::write16>(va, v);
}

void
Vcpu::store32(GuestVA va, std::uint32_t v)
{
    storeScalar<std::uint32_t, &sim::MachineMemory::write32>(va, v);
}

void
Vcpu::store64(GuestVA va, std::uint64_t v)
{
    storeScalar<std::uint64_t, &sim::MachineMemory::write64>(va, v);
}

void
Vcpu::readBytes(GuestVA va, std::span<std::uint8_t> out)
{
    auto& cost = vmm_.machine().cost();
    std::size_t done = 0;
    while (done < out.size()) {
        GuestVA cur = va + done;
        std::size_t in_page =
            std::min<std::size_t>(out.size() - done,
                                  pageSize - pageOffset(cur));
        ShadowEntry e = translatePage(cur, AccessType::Read);
        vmm_.machine().memory().read(e.mpa + pageOffset(cur),
                                     out.subspan(done, in_page));
        // Bulk transfers cost one access per cache line.
        std::uint64_t units = (in_page + 63) / 64;
        cost.charge(cost.params().memAccess * units);
        chargeOp(units);
        done += in_page;
    }
}

void
Vcpu::writeBytes(GuestVA va, std::span<const std::uint8_t> data)
{
    auto& cost = vmm_.machine().cost();
    std::size_t done = 0;
    while (done < data.size()) {
        GuestVA cur = va + done;
        std::size_t in_page =
            std::min<std::size_t>(data.size() - done,
                                  pageSize - pageOffset(cur));
        ShadowEntry e = translatePage(cur, AccessType::Write);
        vmm_.machine().memory().write(e.mpa + pageOffset(cur),
                                      data.subspan(done, in_page));
        std::uint64_t units = (in_page + 63) / 64;
        cost.charge(cost.params().memAccess * units);
        chargeOp(units);
        done += in_page;
    }
}

std::string
Vcpu::readCString(GuestVA va, std::size_t max_len)
{
    std::string out;
    for (std::size_t i = 0; i < max_len; ++i) {
        std::uint8_t c = load8(va + i);
        if (c == 0)
            return out;
        out.push_back(static_cast<char>(c));
    }
    return out;
}

std::int64_t
Vcpu::hypercall(Hypercall num, std::span<const std::uint64_t> args)
{
    return vmm_.hypercall(*this, num, args);
}

} // namespace osh::vmm
