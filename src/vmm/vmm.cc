#include "vmm/vmm.hh"

#include "base/logging.hh"
#include "vmm/vcpu.hh"

#include <string>

namespace osh::vmm
{

const char*
accessName(AccessType t)
{
    switch (t) {
      case AccessType::Read: return "read";
      case AccessType::Write: return "write";
      case AccessType::Fetch: return "fetch";
    }
    return "?";
}

namespace
{

/** splitmix64 step: the virtual clock's private randomness stream. */
std::uint64_t
splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Baseline backend: no cloaking, straight pmap translation. */
class PassthroughBackend : public CloakBackend
{
  public:
    explicit PassthroughBackend(Pmap& pmap) : pmap_(pmap) {}

    ResolvedPage
    resolvePage(const Context& ctx, GuestVA va_page, const GuestPte& pte,
                AccessType access) override
    {
        (void)ctx;
        (void)va_page;
        (void)access;
        ResolvedPage r;
        r.mpa = pmap_.translate(pageBase(pte.gpa));
        r.canRead = true;
        r.canWrite = pte.writable;
        return r;
    }

    std::int64_t
    hypercall(Vcpu&, Hypercall num,
              std::span<const std::uint64_t>) override
    {
        osh_warn("hypercall %llu with no cloak backend installed",
                 static_cast<unsigned long long>(num));
        return -1;
    }

  private:
    Pmap& pmap_;
};

} // namespace

Vmm::Vmm(sim::Machine& machine, std::uint64_t guest_frames)
    : machine_(machine), pmap_(machine, guest_frames),
      passthrough_(std::make_unique<PassthroughBackend>(pmap_)),
      cloak_(passthrough_.get()), stats_("vmm")
{
    shadows_.setTracer(&machine_.tracer());
    tlbs_.push_back(std::make_unique<Tlb>());
}

void
Vmm::setVcpuCount(std::size_t count)
{
    osh_assert(count > 0, "Vmm needs at least one vCPU");
    if (count == tlbs_.size())
        return;
    tlbs_.clear();
    tlbs_.push_back(std::make_unique<Tlb>()); // slot 0: legacy "tlb".
    for (std::size_t i = 1; i < count; ++i) {
        std::string name = "tlb" + std::to_string(i);
        tlbs_.push_back(std::make_unique<Tlb>(256, name.c_str()));
    }
}

void
Vmm::setCloakBackend(CloakBackend* backend)
{
    cloak_ = backend ? backend : passthrough_.get();
    // Views may now resolve differently; drop all cached translations.
    shadows_.invalidateAll();
    for (auto& t : tlbs_)
        t->flushAll();
}

void
Vmm::setGuestOs(GuestOsHooks* os)
{
    os_ = os;
}

ShadowEntry
Vmm::resolve(Vcpu& vcpu, const Context& ctx, GuestVA va_page,
             AccessType access)
{
    osh_assert(os_ != nullptr, "no guest OS attached to the VMM");
    va_page = pageBase(va_page);

    OSH_TRACE_SCOPE(&machine_.tracer(), trace::Category::Vmm,
                    "hidden_fault", ctx.view,
                    static_cast<Pid>(ctx.asid), va_page,
                    static_cast<std::uint64_t>(access));

    const auto& costs = machine_.cost().params();
    machine_.cost().charge(costs.vmExit, "vm_exit");

    constexpr int max_retries = 16;
    for (int attempt = 0; attempt < max_retries; ++attempt) {
        GuestPte pte = os_->translateGuest(ctx.asid, va_page);
        machine_.cost().charge(costs.tlbMissWalk);

        bool needs_guest_fault = !pte.present;
        if (pte.present && access == AccessType::Write && !pte.writable) {
            // Could be COW or a real protection error; the guest kernel
            // decides.
            needs_guest_fault = true;
        }
        if (pte.present && !ctx.kernelMode && !pte.user)
            needs_guest_fault = true;

        if (needs_guest_fault) {
            stats_.counter("guest_faults").inc();
            OSH_TRACE_INSTANT(&machine_.tracer(), trace::Category::Vmm,
                              "guest_fault", ctx.view,
                              static_cast<Pid>(ctx.asid), va_page);
            machine_.cost().charge(costs.interruptDeliver);
            os_->handleGuestPageFault(vcpu, va_page, access);
            continue;
        }

        // Compose with the cloak backend. This may encrypt/decrypt the
        // underlying frame and throws ProcessKilled on a violation.
        ResolvedPage page = cloak_->resolvePage(ctx, va_page, pte, access);
        bool ok = (access == AccessType::Write) ? page.canWrite
                                                : page.canRead;
        if (!ok) {
            osh_panic("cloak backend returned mapping without %s "
                      "permission for va 0x%llx",
                      accessName(access),
                      static_cast<unsigned long long>(va_page));
        }

        if (access == AccessType::Write)
            os_->notifyWrite(ctx.asid, va_page);

        ShadowEntry entry;
        entry.mpa = pageBase(page.mpa);
        entry.canRead = page.canRead;
        entry.canWrite = page.canWrite;
        // Retention fast path: a suspended entry that still maps the
        // same frame is revalidated in place for a fraction of a full
        // shadow-page-table fill.
        if (shadows_.reactivate(ctx, va_page, entry)) {
            stats_.counter("retention_hits").inc();
            machine_.cost().charge(costs.shadowRevalidate,
                                   "shadow_revalidate");
        } else {
            shadows_.install(ctx, va_page, entry);
            machine_.cost().charge(costs.shadowFill, "shadow_fill");
        }
        tlb(vcpu.cpu()).insert(ctx, va_page, entry);
        machine_.cost().charge(costs.vmResume);
        return entry;
    }
    osh_panic("shadow resolution for va 0x%llx did not converge",
              static_cast<unsigned long long>(va_page));
}

void
Vmm::invalidateVa(Asid asid, GuestVA va_page)
{
    shadows_.invalidateVa(asid, pageBase(va_page));
    for (auto& t : tlbs_)
        t->invalidateVa(asid, pageBase(va_page));
    // Trapped INVLPG costs a world switch.
    chargeWorldSwitch("invlpg");
}

void
Vmm::shootdownVa(Asid asid, GuestVA va_page)
{
    // Cross-core shootdown driven by the cloak layer: drop the VA from
    // every core's TLB. The caller already charged the world switch
    // covering the whole batch, so no cost is added per page.
    for (auto& t : tlbs_)
        t->invalidateVa(asid, pageBase(va_page));
}

void
Vmm::invalidateAsid(Asid asid)
{
    shadows_.invalidateAsid(asid);
    for (auto& t : tlbs_)
        t->invalidateAsid(asid);
    chargeWorldSwitch("asid_flush");
}

void
Vmm::invalidateMpa(Mpa frame_base)
{
    shadows_.invalidateMpa(pageBase(frame_base));
    for (auto& t : tlbs_)
        t->invalidateMpa(pageBase(frame_base));
    machine_.cost().charge(machine_.cost().params().tlbFlush,
                           "mpa_invalidate");
}

void
Vmm::suspendMpa(Mpa frame_base)
{
    if (!shadowRetention_) {
        invalidateMpa(frame_base);
        return;
    }
    shadows_.suspendMpa(pageBase(frame_base));
    // Hardware TLBs have no suspended state: entries granting access to
    // the old view must be shot down either way — on every core.
    for (auto& t : tlbs_)
        t->invalidateMpa(pageBase(frame_base));
    machine_.cost().charge(machine_.cost().params().tlbFlush,
                           "mpa_suspend");
}

void
Vmm::onContextSwitch()
{
    if (shadowRetention_) {
        stats_.counter("switches_retained").inc();
        return;
    }
    // Untagged shadow cache: a CR3 write wipes everything, and every
    // resumed process rebuilds its shadows one hidden fault at a time.
    shadows_.invalidateAll();
    for (auto& t : tlbs_)
        t->flushAll();
    machine_.cost().charge(machine_.cost().params().tlbFlush,
                           "switch_flush");
    stats_.counter("switch_flushes").inc();
}

void
Vmm::onContextSwitch(std::uint32_t cpu)
{
    onContextSwitch();
    // Per-slot switch counts exist only in genuine SMP runs: adding
    // them at one vCPU would grow the stat set the baselines pin down.
    if (tlbs_.size() > 1)
        stats_.counter("switches_cpu" + std::to_string(cpu)).inc();
}

std::int64_t
Vmm::hypercall(Vcpu& vcpu, Hypercall num,
               std::span<const std::uint64_t> args)
{
    OSH_TRACE_SCOPE(&machine_.tracer(), trace::Category::Vmm,
                    "hypercall", vcpu.context().view,
                    static_cast<Pid>(vcpu.context().asid),
                    static_cast<std::uint64_t>(num));
    chargeWorldSwitch("hypercall");
    stats_.counter("hypercalls").inc();
    return cloak_->hypercall(vcpu, num, args);
}

std::size_t
Vmm::prepareFramesForKernel(std::span<const Gpa> gpas)
{
    std::size_t sealed = cloak_->sealPlaintextFrames(gpas);
    if (sealed > 0)
        stats_.counter("kernel_preseals").inc(sealed);
    return sealed;
}

void
Vmm::configureVirtualClock(Cycles fuzz, Cycles offset,
                           std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(vclockLock_);
    clockFuzz_ = fuzz;
    clockOffset_ = offset;
    clockSeed_ = seed;
    vclocks_.clear();
}

Cycles
Vmm::readTsc(Asid asid)
{
    Cycles raw = machine_.cost().cycles();
    if (clockFuzz_ == 0 && clockOffset_ == 0)
        return raw; // Legacy exact path: baselines replay bit-identical.

    std::lock_guard<std::mutex> lock(vclockLock_);
    auto [it, fresh] = vclocks_.try_emplace(asid);
    VClock& vc = it->second;
    if (fresh) {
        vc.rng = clockSeed_ ^
                 (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(asid) + 1));
        if (clockOffset_ > 0)
            vc.offset = splitmix64(vc.rng) % (clockOffset_ + 1);
    }
    Cycles fuzz =
        clockFuzz_ > 0 ? splitmix64(vc.rng) % (clockFuzz_ + 1) : 0;
    Cycles vt = raw + vc.offset + fuzz;
    if (vt <= vc.last)
        vt = vc.last + 1;
    vc.last = vt;
    stats_.counter("tsc_virtual_reads").inc();
    return vt;
}

void
Vmm::chargeWorldSwitch(const char* reason)
{
    const auto& costs = machine_.cost().params();
    machine_.cost().charge(costs.vmExit + costs.vmResume, reason);
    stats_.counter("world_switches").inc();
    OSH_TRACE_COUNT(&machine_.tracer(), trace::Category::Vmm,
                    "world_switches");
}

} // namespace osh::vmm
