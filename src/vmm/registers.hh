/**
 * @file
 * The simulated register file.
 *
 * Guest "code" in this simulator is host C++, but architectural register
 * state still matters: it is what the VMM must protect on every
 * transition out of a cloaked context (the paper's secure control
 * transfer). Programs place secrets in registers, system calls pass
 * arguments in r0..r5, and the VMM scrubs everything else before the
 * kernel gets control.
 */

#ifndef OSH_VMM_REGISTERS_HH
#define OSH_VMM_REGISTERS_HH

#include "base/types.hh"

#include <array>
#include <cstdint>

namespace osh::vmm
{

/** Number of general-purpose registers. */
constexpr std::size_t numGprs = 16;

/** Number of registers carrying syscall number + arguments (r0..r5). */
constexpr std::size_t numSyscallRegs = 6;

/** Architectural register state of one virtual CPU / guest thread. */
struct RegisterFile
{
    std::array<std::uint64_t, numGprs> gpr{};
    std::uint64_t pc = 0;
    std::uint64_t sp = 0;
    std::uint64_t flags = 0;

    bool operator==(const RegisterFile&) const = default;

    /**
     * Scrub everything the kernel does not need. For a syscall the
     * first @p keep_args GPRs (number + arguments) are preserved; for an
     * asynchronous interrupt keep_args is 0. pc/sp are replaced with
     * the given trampoline values so the kernel sees a plausible but
     * information-free frame.
     */
    void
    scrub(std::size_t keep_args, std::uint64_t trampoline_pc,
          std::uint64_t trampoline_sp)
    {
        for (std::size_t i = keep_args; i < numGprs; ++i)
            gpr[i] = 0;
        pc = trampoline_pc;
        sp = trampoline_sp;
        flags = 0;
    }
};

} // namespace osh::vmm

#endif // OSH_VMM_REGISTERS_HH
