#include "system/system.hh"

#include "base/logging.hh"
#include "cloak/runtime.hh"
#include "cloak/transfer.hh"
#include "os/exceptions.hh"

#include <stdexcept>

namespace osh::system
{

namespace
{

sim::MachineConfig
machineConfig(const SystemConfig& cfg)
{
    sim::MachineConfig mc;
    mc.numFrames = cfg.guestFrames;
    mc.seed = cfg.seed;
    mc.costs = cfg.costs;
    mc.trace = cfg.trace;
    return mc;
}

} // namespace

SystemConfig
SystemConfig::Builder::build() const
{
    if (cfg_.guestFrames == 0)
        throw std::invalid_argument(
            "SystemConfig: guestFrames must be > 0");
    if (cfg_.metadataCacheEntries == 0)
        throw std::invalid_argument(
            "SystemConfig: metadataCacheEntries must be > 0 "
            "(the metadata cache cannot hold nothing)");
    if (cfg_.auditLogEntries == 0)
        throw std::invalid_argument(
            "SystemConfig: auditLogEntries must be > 0 "
            "(violations must leave a trail)");
    if (!cfg_.cloakingEnabled && cfg_.victimCacheEntries != 0 &&
        cfg_.victimCacheEntries !=
            SystemConfig{}.victimCacheEntries) {
        throw std::invalid_argument(
            "SystemConfig: victimCacheEntries configured with "
            "cloaking disabled — nothing would ever use it");
    }
    if (cfg_.cryptoWorkers > 256) {
        throw std::invalid_argument(
            "SystemConfig: cryptoWorkers > 256 — no host has that "
            "many lanes (0 means one per hardware thread)");
    }
    if (!cfg_.cloakingEnabled && cfg_.cryptoWorkers > 1) {
        throw std::invalid_argument(
            "SystemConfig: cryptoWorkers configured with cloaking "
            "disabled — there is no page crypto to parallelize");
    }
    if (cfg_.vcpus > 64) {
        throw std::invalid_argument(
            "SystemConfig: vcpus > 64 — the SMP model does not scale "
            "past commodity core counts (0 means single-core)");
    }
    if (cfg_.metadataShards > 256) {
        throw std::invalid_argument(
            "SystemConfig: metadataShards > 256 — stripes beyond any "
            "plausible core count only waste memory (0 follows vcpus)");
    }
    if (!cfg_.cloakingEnabled && cfg_.metadataShards > 1) {
        throw std::invalid_argument(
            "SystemConfig: metadataShards configured with cloaking "
            "disabled — there is no protection metadata to shard");
    }
    if (cfg_.asyncEvictDepth > 256) {
        throw std::invalid_argument(
            "SystemConfig: asyncEvictDepth > 256 — staging that many "
            "pages exceeds any plausible background-lane window "
            "(0 means synchronous eviction)");
    }
    if (!cfg_.cloakingEnabled && cfg_.asyncEvictDepth > 0) {
        throw std::invalid_argument(
            "SystemConfig: asyncEvictDepth configured with cloaking "
            "disabled — only cloaked evictions have a seal to defer");
    }
    if (!cfg_.cloakingEnabled && cfg_.chunkedIntegrity) {
        throw std::invalid_argument(
            "SystemConfig: chunkedIntegrity configured with cloaking "
            "disabled — there are no page MACs to make incremental");
    }
    if (!cfg_.cloakingEnabled && cfg_.constantCostCloak) {
        throw std::invalid_argument(
            "SystemConfig: constantCostCloak configured with cloaking "
            "disabled — there are no cloak responses to equalize");
    }
    if (cfg_.attackSeed != 0 && cfg_.attackSeed == cfg_.seed) {
        throw std::invalid_argument(
            "SystemConfig: attackSeed must differ from seed — an "
            "attack schedule aliasing the workload stream correlates "
            "the adversary with its victim (0 derives a distinct "
            "stream)");
    }
    return cfg_;
}

System::System(const SystemConfig& config)
    : config_(config), machine_(machineConfig(config)),
      vmm_(machine_, config.guestFrames),
      sched_(machine_.cost()),
      kernel_(vmm_, sched_, programs_)
{
    vmm_.setShadowRetention(config.shadowRetention);
    vmm_.setVcpuCount(config.effectiveVcpus());
    // A distinct sub-seed keeps the spoofed-clock stream from aliasing
    // workload or attack randomness.
    vmm_.configureVirtualClock(config.clockFuzzCycles,
                               config.clockOffsetCycles,
                               config.seed ^ 0x7c10c5eedull);
    sched_.configureCpus(config.effectiveVcpus());
    sched_.setSwitchHook([this](os::Thread& t) {
        vmm_.onContextSwitch(t.vcpu.cpu());
    });
    if (config.cloakingEnabled) {
        engine_ = std::make_unique<cloak::CloakEngine>(
            vmm_, config.seed ^ 0x05ead0u, config.metadataCacheEntries,
            config.effectiveMetadataShards());
        engine_->setCleanOptimization(config.cleanOptimization);
        engine_->setVictimCacheCapacity(config.victimCacheEntries);
        engine_->setAuditLogCapacity(config.auditLogEntries);
        engine_->setCryptoWorkers(
            static_cast<unsigned>(config.cryptoWorkers));
        engine_->setAsyncEvictDepth(config.asyncEvictDepth);
        engine_->setChunkedIntegrity(config.chunkedIntegrity);
        engine_->setConstantCostMode(config.constantCostCloak);
    }
    kernel_.setCloakingAvailable(engine_ != nullptr);
    kernel_.setProcessHost(this);
}

System::~System()
{
    kernel_.setProcessHost(nullptr);
}

void
System::addProgram(const std::string& name, os::Program program)
{
    programs_.add(name, std::move(program));
}

Pid
System::launch(const std::string& program, std::vector<std::string> argv)
{
    osh_assert(programs_.find(program) != nullptr,
               "launch of unknown program '%s'", program.c_str());
    os::Process& proc =
        kernel_.createProcess(program, std::move(argv), 0);
    startProgram(proc);
    return proc.pid;
}

void
System::run()
{
    sched_.run();
    // Release the host stacks of threads that finished this run; the
    // Thread objects (and their results) stay.
    sched_.reapFinished();
}

ExitResult
System::runProgram(const std::string& program,
                   std::vector<std::string> argv)
{
    Pid pid = launch(program, std::move(argv));
    run();
    const ExitResult* r = resultOf(pid);
    osh_assert(r != nullptr, "program produced no result");
    return *r;
}

const ExitResult*
System::resultOf(Pid pid) const
{
    auto it = results_.find(pid);
    return it == results_.end() ? nullptr : &it->second;
}

std::uint64_t
System::registerForkBody(std::function<int(os::Env&)> body)
{
    std::uint64_t token = nextForkToken_++;
    forkBodies_[token] = std::move(body);
    return token;
}

void
System::startProgram(os::Process& proc)
{
    StartInfo info;
    info.needsImageSetup = true;
    startThread(proc, std::move(info));
}

void
System::startForkChild(os::Process& parent, os::Process& child,
                       std::uint64_t token)
{
    StartInfo info;
    info.isForkChild = true;
    info.needsImageSetup = false; // The address space was cloned.
    auto it = forkBodies_.find(token);
    osh_assert(it != forkBodies_.end(), "fork with unknown body token");
    info.forkBody = it->second;
    forkBodies_.erase(it);

    if (engine_ && child.cloaked) {
        auto sit = shims_.find(parent.pid);
        osh_assert(sit != shims_.end(), "cloaked fork without a shim");
        info.cloakForkToken = sit->second->takePendingForkToken();
        info.parentCtc = sit->second->ctcVa();
        info.parentBounce = sit->second->bounceVa();
    }
    startThread(child, std::move(info));
}

void
System::startRestoredProcess(os::Process& proc, GuestVA ctc_va,
                             GuestVA bounce_va)
{
    osh_assert(engine_ != nullptr && proc.cloaked &&
                   proc.domain != systemDomain,
               "restored start without an imported domain");
    StartInfo info;
    info.needsImageSetup = false; // The migrate layer rebuilt the AS.
    info.isRestored = true;
    info.restoredCtc = ctc_va;
    info.restoredBounce = bounce_va;
    pendingRestoredBounce_[proc.pid] = bounce_va;
    startThread(proc, std::move(info));
}

GuestVA
System::pendingRestoredBounce(Pid pid) const
{
    auto it = pendingRestoredBounce_.find(pid);
    return it == pendingRestoredBounce_.end() ? 0 : it->second;
}

cloak::Shim*
System::shimOf(Pid pid)
{
    auto it = shims_.find(pid);
    return it == shims_.end() ? nullptr : it->second;
}

void
System::onProcessExit(os::Process&)
{
    // Cloak teardown happens in the thread body before finalizeExit;
    // nothing further to do here (kept as an extension point).
}

void
System::startThread(os::Process& proc, StartInfo info)
{
    vmm::Context ctx;
    ctx.asid = proc.as.asid();
    ctx.view = systemDomain;
    ctx.kernelMode = false;
    Pid pid = proc.pid;
    sched_.createThread(pid, vmm_, ctx,
                        [this, pid, info = std::move(info)](
                            os::Thread& t) mutable {
                            threadBody(t, pid, std::move(info));
                        });
}

void
System::threadBody(os::Thread& thread, Pid pid, StartInfo info)
{
    kernel_.bindThread(pid, thread);
    os::Env env(kernel_, thread, this);

    if (config_.preemptOpsPerTick > 0) {
        thread.vcpu.setPreemptHook(
            [this, &thread, &env] {
                os::Process* p = kernel_.findProcess(thread.pid);
                if (engine_ && p != nullptr && p->cloaked &&
                    p->domain != systemDomain) {
                    cloak::SecureTransfer::aroundInterrupt(
                        *engine_, p->domain, env,
                        [this, &thread] { kernel_.timerTick(thread); });
                } else {
                    kernel_.timerTick(thread);
                }
            },
            config_.preemptOpsPerTick);
    }

    int status = 0;
    bool killed = false;
    std::string kill_reason;
    std::unique_ptr<cloak::Shim> shim;

    bool done = false;
    while (!done) {
        try {
            os::Process& proc = kernel_.process(pid);
            const os::Program* prog = programs_.find(proc.programName);
            osh_assert(prog != nullptr, "process runs unknown program");
            if (info.needsImageSetup)
                kernel_.setupProcessImage(proc, *prog);

            if (engine_ && proc.cloaked) {
                if (info.isRestored) {
                    shim = cloak::OvershadowRuntime::launchRestored(
                        *engine_, env, info.restoredCtc,
                        info.restoredBounce);
                    pendingRestoredBounce_.erase(pid);
                } else if (info.isForkChild && info.cloakForkToken != 0) {
                    shim = cloak::OvershadowRuntime::launchForked(
                        *engine_, env, info.cloakForkToken,
                        info.parentCtc, info.parentBounce);
                } else {
                    shim = cloak::OvershadowRuntime::launch(*engine_,
                                                            env);
                }
                shims_[pid] = shim.get();
            }

            int rv = (info.isForkChild && info.forkBody)
                         ? info.forkBody(env)
                         : prog->main(env);
            status = rv;
            done = true;
        } catch (os::ExecRequested&) {
            // The shim tore the old domain down before trapping exec;
            // loop around and start the new image.
            shims_.erase(pid);
            shim.reset();
            info = StartInfo{};
            info.needsImageSetup = false; // sysExec built the image.
            continue;
        } catch (os::ThreadExit& e) {
            status = e.status;
            done = true;
        } catch (vmm::ProcessKilled& e) {
            status = -1;
            killed = true;
            kill_reason = e.reason;
            done = true;
        }
    }

    // Cloak teardown must precede frame release: it scrubs any
    // plaintext still resident in this process's frames.
    if (engine_) {
        cloak::OvershadowRuntime::teardown(*engine_, env, shim.get());
    }
    shims_.erase(pid);
    shim.reset();
    thread.vcpu.setPreemptHook(nullptr, 0);

    os::Process& proc = kernel_.process(pid);
    std::string program_name = proc.programName;
    kernel_.finalizeExit(proc, status);

    ExitResult result;
    result.pid = pid;
    result.status = status;
    result.killed = killed;
    result.killReason = kill_reason;
    result.programName = program_name;
    results_[pid] = result;
}

} // namespace osh::system
