/**
 * @file
 * Top-level simulation wiring.
 *
 * A System assembles the whole stack — simulated machine, VMM, cloak
 * engine (optional: disable it for the native baseline), guest kernel,
 * scheduler and program registry — and hosts guest threads: it creates
 * the thread body for every process (initial launch, spawn, fork
 * child), sets up the Overshadow runtime for cloaked programs, drives
 * preemption, and collects exit results.
 */

#ifndef OSH_SYSTEM_SYSTEM_HH
#define OSH_SYSTEM_SYSTEM_HH

#include "cloak/engine.hh"
#include "cloak/shim.hh"
#include "os/env.hh"
#include "os/kernel.hh"
#include "os/program.hh"
#include "os/thread.hh"
#include "sim/machine.hh"
#include "vmm/vmm.hh"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace osh::system
{

/** Configuration of a full simulation. */
struct SystemConfig
{
    /** Guest physical memory in frames (machine gets the same). */
    std::uint64_t guestFrames = 4096;

    /** Deterministic seed (workloads, IVs, master key). */
    std::uint64_t seed = 42;

    /** Cycle cost parameters. */
    sim::CostParams costs;

    /** Run with Overshadow (true) or as the native baseline (false). */
    bool cloakingEnabled = true;

    /** Metadata cache capacity (ablation knob). */
    std::size_t metadataCacheEntries = 1024;

    /** Event tracing / metrics (off by default; never affects cycles). */
    trace::TraceConfig trace;

    /** Clean-plaintext re-encryption optimization (ablation knob). */
    bool cleanOptimization = true;

    /**
     * User-mode ops between timer interrupts (0 = never preempt).
     * The default models a ~1 kHz tick on the paper's hardware:
     * roughly 2M memory operations between interrupts.
     */
    std::uint64_t preemptOpsPerTick = 2'000'000;

    /** ASID-tagged shadow retention across context switches and
     *  cloak-state flips (ablation knob; off = flush-everything VMM). */
    bool shadowRetention = true;

    /** Re-encryption victim cache entries (0 disables; ablation). */
    std::size_t victimCacheEntries = 8;

    /** Audit ring capacity; oldest events drop (counted) once full. */
    std::size_t auditLogEntries = 256;

    /**
     * Host worker threads for batched page crypto (encryptPages /
     * decryptPages / the prepareFramesForKernel pre-seal). 0 = one
     * lane per hardware thread (the default), 1 = the serial pre-pool
     * behavior. Purely a host-speed knob: simulated cycles, frames,
     * metadata and trace event order are identical for every setting.
     */
    std::size_t cryptoWorkers = 0;

    /**
     * Simulated vCPUs the guest scheduler dispatches across (SMP).
     * 0 and 1 both run the exact legacy single-core path. Dispatch
     * order is vCPU-count invariant (one ready queue, op-count
     * preemption), so guest-visible results and attack-campaign
     * verdicts are identical at any count; cycle totals vary because
     * each core warms a private TLB.
     */
    std::size_t vcpus = 0;

    /**
     * Lock stripes for the metadata store and key manager (per-ASID
     * sharding). 0 = one stripe per vCPU; 1 = the exact legacy
     * single-map layout. Purely a concurrency-structure knob: ids,
     * cycles and cache behavior are identical for every value.
     */
    std::size_t metadataShards = 0;

    /**
     * Seed for hostile-kernel attack injection (src/attack campaigns).
     * 0 derives a distinct stream from the system seed, so the attack
     * schedule never aliases workload randomness.
     */
    std::uint64_t attackSeed = 0;

    /**
     * Depth of the asynchronous re-encryption queue (in pages). 0 runs
     * the exact legacy synchronous eviction path. At depth N, evicting
     * a cloaked dirty page snapshots it into a VMM staging buffer and
     * hands the scrubbed frame back immediately; sealing and the swap
     * write retire in the background and drain at every trap boundary.
     * Guest-visible bytes, exit statuses and attack verdicts are
     * identical at every depth; only cycle accounting differs.
     */
    std::size_t asyncEvictDepth = 0;

    /**
     * Incremental per-chunk page integrity (ablation knob). When on,
     * anonymous cloaked pages carry a 256-byte-chunk hash tree so a
     * small dirty write re-MACs only the touched chunks plus the root,
     * instead of re-hashing the whole page under the flat MAC.
     */
    bool chunkedIntegrity = false;

    /**
     * Virtualized-clock fuzz amplitude in cycles (timing-channel
     * hardening). Every guest-visible cycle read (Sys::Clock, the
     * hostile prober's TSC) gets a fresh seeded term from [0, N] added.
     * 0 = the exact legacy raw counter; committed baselines replay
     * bit-identically.
     */
    Cycles clockFuzzCycles = 0;

    /**
     * Virtualized-clock per-ASID offset bound in cycles: each address
     * space sees the counter displaced by a constant drawn once from
     * [0, N]. 0 = no displacement (legacy).
     */
    Cycles clockOffsetCycles = 0;

    /**
     * Constant-cost cloak responses (timing-channel hardening,
     * ablation-flagged). The victim-cache hit, clean-page re-encrypt
     * and metadata-cache hit all charge their worst-case sibling's
     * cycles, and kernel passthrough of an already-sealed cloaked page
     * charges a full seal — so the distinguishable branches collapse
     * to one cost. Bytes and verdict-relevant behavior are unchanged;
     * only cycle accounting differs. Requires cloaking.
     */
    bool constantCostCloak = false;

    /** vCPU count actually simulated (resolves the 0 default). */
    std::size_t
    effectiveVcpus() const
    {
        return vcpus != 0 ? vcpus : 1;
    }

    /** Metadata/key shard count actually used (0 follows the vCPUs). */
    std::size_t
    effectiveMetadataShards() const
    {
        return metadataShards != 0 ? metadataShards : effectiveVcpus();
    }

    /** The attack-injection seed actually used (resolves the 0 case). */
    std::uint64_t
    effectiveAttackSeed() const
    {
        return attackSeed != 0 ? attackSeed : seed ^ 0xa77acc5eedull;
    }

    class Builder;
};

/**
 * Fluent builder for SystemConfig. Unlike brace-initializing the
 * struct, build() validates the combination and throws
 * std::invalid_argument on nonsense (no memory, zero-capacity caches),
 * so misconfigured benchmarks fail loudly instead of measuring garbage.
 *
 *   auto cfg = SystemConfig::Builder{}
 *                  .guestFrames(512)
 *                  .seed(7)
 *                  .cloaking(true)
 *                  .build();
 */
class SystemConfig::Builder
{
  public:
    Builder& guestFrames(std::uint64_t n) { cfg_.guestFrames = n; return *this; }
    Builder& seed(std::uint64_t s) { cfg_.seed = s; return *this; }
    Builder& costs(const sim::CostParams& c) { cfg_.costs = c; return *this; }
    Builder& cloaking(bool on) { cfg_.cloakingEnabled = on; return *this; }
    Builder& metadataCacheEntries(std::size_t n)
    {
        cfg_.metadataCacheEntries = n;
        return *this;
    }
    Builder& trace(const trace::TraceConfig& t) { cfg_.trace = t; return *this; }
    Builder& cleanOptimization(bool on)
    {
        cfg_.cleanOptimization = on;
        return *this;
    }
    Builder& preemptOpsPerTick(std::uint64_t ops)
    {
        cfg_.preemptOpsPerTick = ops;
        return *this;
    }
    Builder& shadowRetention(bool on)
    {
        cfg_.shadowRetention = on;
        return *this;
    }
    Builder& victimCacheEntries(std::size_t n)
    {
        cfg_.victimCacheEntries = n;
        return *this;
    }
    Builder& auditLogEntries(std::size_t n)
    {
        cfg_.auditLogEntries = n;
        return *this;
    }
    Builder& cryptoWorkers(std::size_t n)
    {
        cfg_.cryptoWorkers = n;
        return *this;
    }
    Builder& vcpus(std::size_t n)
    {
        cfg_.vcpus = n;
        return *this;
    }
    Builder& metadataShards(std::size_t n)
    {
        cfg_.metadataShards = n;
        return *this;
    }
    Builder& attackSeed(std::uint64_t s)
    {
        cfg_.attackSeed = s;
        return *this;
    }
    Builder& asyncEvictDepth(std::size_t n)
    {
        cfg_.asyncEvictDepth = n;
        return *this;
    }
    Builder& chunkedIntegrity(bool on)
    {
        cfg_.chunkedIntegrity = on;
        return *this;
    }
    Builder& clockFuzzCycles(Cycles n)
    {
        cfg_.clockFuzzCycles = n;
        return *this;
    }
    Builder& clockOffsetCycles(Cycles n)
    {
        cfg_.clockOffsetCycles = n;
        return *this;
    }
    Builder& constantCostCloak(bool on)
    {
        cfg_.constantCostCloak = on;
        return *this;
    }

    /** Validate and return the config; throws std::invalid_argument. */
    SystemConfig build() const;

  private:
    SystemConfig cfg_;
};

/** Final state of an exited process. */
struct ExitResult
{
    Pid pid = 0;
    int status = 0;
    bool killed = false;
    std::string killReason;
    std::string programName;
};

/** The assembled simulation. */
class System : public os::ProcessHost, public os::EnvRuntime
{
  public:
    explicit System(const SystemConfig& config = {});
    ~System() override;

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    // Components -----------------------------------------------------------
    sim::Machine& machine() { return machine_; }
    vmm::Vmm& vmm() { return vmm_; }
    os::Kernel& kernel() { return kernel_; }
    os::Scheduler& sched() { return sched_; }
    os::ProgramRegistry& programs() { return programs_; }
    /** Null when cloaking is disabled (native baseline). */
    cloak::CloakEngine* cloak() { return engine_.get(); }
    trace::Tracer& tracer() { return machine_.tracer(); }
    const SystemConfig& config() const { return config_; }

    /** Register a guest program. */
    void addProgram(const std::string& name, os::Program program);

    /** Create the init process for a program (thread starts Ready). */
    Pid launch(const std::string& program,
               std::vector<std::string> argv = {});

    /**
     * Start the thread of a restored (migrated-in) cloaked process.
     * The migrate layer has already built the address space and
     * imported the protection domain; the thread body attaches the
     * shim to the inherited CTC/bounce layout and re-enters main().
     */
    void startRestoredProcess(os::Process& proc, GuestVA ctc_va,
                              GuestVA bounce_va);

    /** The live shim of a cloaked process (nullptr when none). */
    cloak::Shim* shimOf(Pid pid);

    /**
     * The bounce-buffer VA a restored process will inherit when its
     * thread first runs (0 once it has, or for non-restored pids).
     * Lets a re-checkpoint of a not-yet-resumed process serialize the
     * same layout the image carried — there is no shim to ask yet.
     */
    GuestVA pendingRestoredBounce(Pid pid) const;

    /** Run until every guest thread has exited. */
    void run();

    /** Convenience: launch + run, returning the init process result. */
    ExitResult runProgram(const std::string& program,
                          std::vector<std::string> argv = {});

    Cycles cycles() const { return machine_.cost().cycles(); }

    const std::map<Pid, ExitResult>& results() const { return results_; }
    const ExitResult* resultOf(Pid pid) const;

    // os::EnvRuntime --------------------------------------------------------
    std::uint64_t registerForkBody(
        std::function<int(os::Env&)> body) override;

    // os::ProcessHost -------------------------------------------------------
    void startProgram(os::Process& proc) override;
    void startForkChild(os::Process& parent, os::Process& child,
                        std::uint64_t token) override;
    void onProcessExit(os::Process& proc) override;

  private:
    struct StartInfo
    {
        bool isForkChild = false;
        std::function<int(os::Env&)> forkBody;
        std::uint64_t cloakForkToken = 0;
        GuestVA parentCtc = 0;
        GuestVA parentBounce = 0;
        bool needsImageSetup = true;
        bool isRestored = false;
        GuestVA restoredCtc = 0;
        GuestVA restoredBounce = 0;
    };

    void startThread(os::Process& proc, StartInfo info);
    void threadBody(os::Thread& thread, Pid pid, StartInfo info);

    SystemConfig config_;
    sim::Machine machine_;
    vmm::Vmm vmm_;
    std::unique_ptr<cloak::CloakEngine> engine_;
    os::ProgramRegistry programs_;
    os::Scheduler sched_;
    os::Kernel kernel_;

    std::map<std::uint64_t, std::function<int(os::Env&)>> forkBodies_;
    std::uint64_t nextForkToken_ = 1;

    /** Live shims by pid (owned by their thread bodies). */
    std::map<Pid, cloak::Shim*> shims_;
    std::map<Pid, GuestVA> pendingRestoredBounce_;

    std::map<Pid, ExitResult> results_;
};

} // namespace osh::system

#endif // OSH_SYSTEM_SYSTEM_HH
