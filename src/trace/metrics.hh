/**
 * @file
 * Aggregate metrics: named counters and log-bucketed latency
 * histograms.
 *
 * Histograms bucket samples by bit width (bucket i holds values whose
 * highest set bit is bit i-1, bucket 0 holds zero), so recording is a
 * single `bit_width` plus two adds, capacity is fixed, and percentile
 * queries interpolate linearly inside the winning bucket and clamp to
 * the observed [min, max]. Resolution is therefore about one octave in
 * the worst case — plenty for the "where do the cycles go" questions
 * the benches ask, at a cost low enough to leave enabled everywhere.
 */

#ifndef OSH_TRACE_METRICS_HH
#define OSH_TRACE_METRICS_HH

#include "base/types.hh"

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace osh::trace
{

/** Log2-bucketed latency/size histogram. */
class LatencyHistogram
{
  public:
    static constexpr std::size_t numBuckets = 65;

    void record(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t mean() const { return count_ > 0 ? sum_ / count_ : 0; }

    /**
     * Estimate the @p p-th percentile (p in [0, 100]) by nearest rank:
     * find the bucket holding the ceil(p/100 * count)-th smallest
     * sample, interpolate linearly inside it, clamp to [min, max].
     */
    std::uint64_t percentile(double p) const;

    /** Inclusive value range of bucket @p i. */
    static std::uint64_t bucketLow(std::size_t i);
    static std::uint64_t bucketHigh(std::size_t i);

    /** Raw bucket counts (tests). */
    const std::array<std::uint64_t, numBuckets>& buckets() const
    {
        return buckets_;
    }

    void reset();

    /** "count=N sum=S mean=M p50=. p95=. p99=. max=." */
    std::string summary() const;

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

/**
 * All metrics of one tracer, keyed by (category, name). Counters and
 * histograms live in separate namespaces; references stay valid for
 * the registry's lifetime (until reset()).
 */
class MetricsRegistry
{
  public:
    std::uint64_t& counter(std::uint8_t category,
                           const std::string& name);
    LatencyHistogram& histogram(std::uint8_t category,
                                const std::string& name);

    /** Value of a counter, 0 if absent (lookup only, no creation). */
    std::uint64_t counterValue(std::uint8_t category,
                               const std::string& name) const;

    /** Histogram lookup without creation; nullptr if absent. */
    const LatencyHistogram* findHistogram(std::uint8_t category,
                                          const std::string& name) const;

    using Key = std::pair<std::uint8_t, std::string>;

    const std::map<Key, std::uint64_t>& counters() const
    {
        return counters_;
    }
    const std::map<Key, LatencyHistogram>& histograms() const
    {
        return histograms_;
    }

    void reset();

  private:
    std::map<Key, std::uint64_t> counters_;
    std::map<Key, LatencyHistogram> histograms_;
};

} // namespace osh::trace

#endif // OSH_TRACE_METRICS_HH
