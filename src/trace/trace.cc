#include "trace/trace.hh"

#include "base/logging.hh"

namespace osh::trace
{

const char*
categoryName(Category cat)
{
    switch (cat) {
      case Category::Vmm: return "vmm";
      case Category::Shadow: return "shadow";
      case Category::Cloak: return "cloak";
      case Category::Transfer: return "transfer";
      case Category::Shim: return "shim";
      case Category::Syscall: return "syscall";
      case Category::Swap: return "swap";
      case Category::Vfs: return "vfs";
      case Category::Attack: return "attack";
      case Category::User: return "user";
      case Category::NumCategories: break;
    }
    return "?";
}

TraceBuffer::TraceBuffer(std::size_t capacity)
{
    osh_assert(capacity > 0, "trace ring needs capacity");
    ring_.resize(capacity);
}

void
TraceBuffer::record(const TraceEvent& ev)
{
    ring_[head_] = ev;
    head_ = (head_ + 1) % ring_.size();
    total_++;
}

std::size_t
TraceBuffer::size() const
{
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::vector<TraceEvent> out;
    std::size_t n = size();
    out.reserve(n);
    // Oldest event: at index 0 until the ring wraps, then at head_.
    std::size_t start = wrapped() ? head_ : 0;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
TraceBuffer::clear()
{
    head_ = 0;
    total_ = 0;
}

Tracer::Tracer(const TraceConfig& config)
    : enabled_(config.enabled), buffer_(config.ringCapacity)
{
}

void
Tracer::complete(Category cat, const char* name, Cycles begin,
                 Cycles end, DomainId domain, Pid pid,
                 std::uint64_t arg0, std::uint64_t arg1)
{
    if (!enabled_)
        return;
    TraceEvent ev;
    ev.category = cat;
    ev.name = name;
    ev.domain = domain;
    ev.pid = pid;
    ev.begin = begin;
    ev.end = end >= begin ? end : begin;
    ev.arg0 = arg0;
    ev.arg1 = arg1;
    std::lock_guard<std::mutex> lk(recordMu_);
    buffer_.record(ev);
    metrics_.histogram(static_cast<std::uint8_t>(cat), name)
        .record(ev.duration());
}

void
Tracer::instant(Category cat, const char* name, DomainId domain,
                Pid pid, std::uint64_t arg0, std::uint64_t arg1)
{
    if (!enabled_)
        return;
    Cycles at = now();
    TraceEvent ev;
    ev.category = cat;
    ev.name = name;
    ev.domain = domain;
    ev.pid = pid;
    ev.begin = at;
    ev.end = at;
    ev.arg0 = arg0;
    ev.arg1 = arg1;
    std::lock_guard<std::mutex> lk(recordMu_);
    buffer_.record(ev);
    metrics_.counter(static_cast<std::uint8_t>(cat), name)++;
}

void
Tracer::count(Category cat, const char* name, std::uint64_t delta)
{
    if (!enabled_)
        return;
    std::lock_guard<std::mutex> lk(recordMu_);
    metrics_.counter(static_cast<std::uint8_t>(cat), name) += delta;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lk(recordMu_);
    buffer_.clear();
    metrics_.reset();
}

} // namespace osh::trace
