/**
 * @file
 * Trace and metrics exporters.
 *
 * Two formats:
 *   - Chrome trace-event JSON: load the file in chrome://tracing or
 *     https://ui.perfetto.dev to see the spans on a timeline. Trace
 *     "pid" lanes are protection domains, "tid" lanes are guest pids,
 *     timestamps are simulated cycles.
 *   - Plain-text metrics report: counters and latency histograms
 *     (count/sum/mean/p50/p95/p99/max) grouped by category.
 */

#ifndef OSH_TRACE_EXPORT_HH
#define OSH_TRACE_EXPORT_HH

#include "trace/trace.hh"

#include <string>

namespace osh::trace
{

/** Render the ring's live events as Chrome trace-event JSON. */
std::string toChromeJson(const TraceBuffer& buffer);

/** Write toChromeJson() to @p path; false on I/O failure. */
bool writeChromeJson(const TraceBuffer& buffer, const std::string& path);

/**
 * Render a plain-text metrics report. @p title heads the report (pass
 * the bench phase, e.g. "bench_t2_syscalls cloaked").
 */
std::string metricsReport(const MetricsRegistry& metrics,
                          const std::string& title = "");

} // namespace osh::trace

#endif // OSH_TRACE_EXPORT_HH
