/**
 * @file
 * Structured event tracing for the whole VMM/cloak/OS stack.
 *
 * Three pieces:
 *
 *   - TraceBuffer: a fixed-capacity ring of POD TraceEvents. Recording
 *     is a couple of stores; when the ring is full the oldest events
 *     are overwritten (the aggregate metrics keep counting).
 *   - Tracer: the handle every component holds. It owns the ring and a
 *     MetricsRegistry, knows the simulated clock (a raw pointer to the
 *     cost model's cycle counter), and gates everything behind a
 *     runtime `enabled` flag.
 *   - OSH_TRACE_* macros: the only way instrumentation sites should
 *     emit events. Compiling with -DOSH_TRACE_ENABLED=0 turns every
 *     site into `(void)0`, so a no-trace build carries zero code.
 *
 * Tracing never charges simulated cycles and never consumes simulation
 * randomness, so cycle counts are bit-identical with tracing enabled,
 * disabled, or compiled out.
 */

#ifndef OSH_TRACE_TRACE_HH
#define OSH_TRACE_TRACE_HH

#include "base/types.hh"
#include "trace/metrics.hh"

#include <cstdint>
#include <mutex>
#include <vector>

#ifndef OSH_TRACE_ENABLED
#define OSH_TRACE_ENABLED 1
#endif

namespace osh::trace
{

/** Event categories, one per instrumented subsystem. */
enum class Category : std::uint8_t
{
    Vmm,       ///< World switches, shadow resolution, hypercalls.
    Shadow,    ///< Shadow-page-table fills and invalidations.
    Cloak,     ///< Page encrypt/decrypt/clean-reencrypt.
    Transfer,  ///< Secure control transfer entries/exits.
    Shim,      ///< Shim syscall marshalling.
    Syscall,   ///< Guest-kernel syscall dispatch.
    Swap,      ///< Swap-device slot traffic.
    Vfs,       ///< Page-cache fills and writebacks.
    Attack,    ///< Hostile-kernel attack injections (campaigns).
    User,      ///< Free for examples/tests.
    NumCategories,
};

constexpr std::size_t numCategories =
    static_cast<std::size_t>(Category::NumCategories);

const char* categoryName(Category cat);

/** One trace event. POD; `name` must point at a static string. */
struct TraceEvent
{
    Category category = Category::User;
    const char* name = "";
    DomainId domain = systemDomain;  ///< Rendered as the trace "pid".
    Pid pid = 0;                     ///< Rendered as the trace "tid".
    Cycles begin = 0;
    Cycles end = 0;                  ///< == begin for instant events.
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;

    bool isInstant() const { return end == begin; }
    Cycles duration() const { return end - begin; }
};

/** Fixed-capacity ring buffer of trace events. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity = 1 << 16);

    void record(const TraceEvent& ev);

    std::size_t capacity() const { return ring_.size(); }

    /** Events currently held (<= capacity). */
    std::size_t size() const;

    /** Events ever recorded, including overwritten ones. */
    std::uint64_t totalRecorded() const { return total_; }

    /** Has the ring overwritten old events at least once? */
    bool wrapped() const { return total_ > ring_.size(); }

    /** Copy of the live events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;     ///< Next write position.
    std::uint64_t total_ = 0;
};

/** Static configuration of a Tracer. */
struct TraceConfig
{
    /** Record events and metrics at runtime? */
    bool enabled = false;

    /** Ring capacity in events. */
    std::size_t ringCapacity = 1 << 16;
};

/**
 * The per-machine tracing handle. Components never talk to the ring or
 * registry directly; they go through the OSH_TRACE_* macros, which
 * check `enabled()` first.
 *
 * Thread safety: the recording entry points (complete / instant /
 * count / clear) serialize on an internal mutex, so concurrent
 * emission is race-free. Deterministic event *order* is a stronger
 * property the callers provide: the parallel page-crypto paths emit
 * every event from their ordered merge on the calling thread (pool
 * workers never trace), which is an ordered flush — the ring contents
 * are identical for any worker count, and the mutex is only a backstop
 * for future cross-thread emitters. Readers (buffer(), metrics(),
 * snapshot()) must run with no recorder active, which every exporter
 * already does (reports run after the measured phase).
 */
class Tracer
{
  public:
    explicit Tracer(const TraceConfig& config = {});

    bool enabled() const { return enabled_; }
    void setEnabled(bool on) { enabled_ = on; }

    /**
     * Bind the simulated clock. @p cycle_counter must outlive the
     * tracer (it is the cost model's accumulator).
     */
    void bindClock(const Cycles* cycle_counter) { clock_ = cycle_counter; }

    /** Current simulated time (0 if no clock is bound). */
    Cycles now() const { return clock_ != nullptr ? *clock_ : 0; }

    TraceBuffer& buffer() { return buffer_; }
    const TraceBuffer& buffer() const { return buffer_; }
    MetricsRegistry& metrics() { return metrics_; }
    const MetricsRegistry& metrics() const { return metrics_; }

    /** Record a completed span + its latency histogram sample. */
    void complete(Category cat, const char* name, Cycles begin,
                  Cycles end, DomainId domain = systemDomain,
                  Pid pid = 0, std::uint64_t arg0 = 0,
                  std::uint64_t arg1 = 0);

    /** Record a point event + bump its counter. */
    void instant(Category cat, const char* name,
                 DomainId domain = systemDomain, Pid pid = 0,
                 std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

    /** Bump a counter without touching the ring. */
    void count(Category cat, const char* name, std::uint64_t delta = 1);

    /** Drop all events and metrics (per-phase reports). */
    void clear();

  private:
    bool enabled_;
    const Cycles* clock_ = nullptr;
    /** Serializes ring + metrics mutation; taken only when enabled. */
    std::mutex recordMu_;
    TraceBuffer buffer_;
    MetricsRegistry metrics_;
};

/**
 * RAII span: samples the simulated clock at construction and records a
 * complete event (plus a histogram sample) at destruction. Destruction
 * during unwinding still records — a syscall that kills the process
 * shows up in the trace with its true duration.
 */
class TraceScope
{
  public:
    TraceScope(Tracer* tracer, Category cat, const char* name,
               DomainId domain = systemDomain, Pid pid = 0,
               std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
        : tracer_(tracer != nullptr && tracer->enabled() ? tracer
                                                         : nullptr),
          cat_(cat), name_(name), domain_(domain), pid_(pid),
          arg0_(arg0), arg1_(arg1),
          begin_(tracer_ != nullptr ? tracer_->now() : 0)
    {
    }

    ~TraceScope()
    {
        if (tracer_ != nullptr) {
            tracer_->complete(cat_, name_, begin_, tracer_->now(),
                              domain_, pid_, arg0_, arg1_);
        }
    }

    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

    /** Amend payload args discovered mid-scope. */
    void setArgs(std::uint64_t arg0, std::uint64_t arg1)
    {
        arg0_ = arg0;
        arg1_ = arg1;
    }

  private:
    Tracer* tracer_;
    Category cat_;
    const char* name_;
    DomainId domain_;
    Pid pid_;
    std::uint64_t arg0_;
    std::uint64_t arg1_;
    Cycles begin_;
};

} // namespace osh::trace

// ---------------------------------------------------------------------------
// Instrumentation macros. `tracer` is a `trace::Tracer*` (may be null).
// ---------------------------------------------------------------------------

#if OSH_TRACE_ENABLED

#define OSH_TRACE_CONCAT2(a, b) a##b
#define OSH_TRACE_CONCAT(a, b) OSH_TRACE_CONCAT2(a, b)

/** Open a scoped span lasting until the end of the enclosing block. */
#define OSH_TRACE_SCOPE(tracer, cat, name, ...)                             \
    ::osh::trace::TraceScope OSH_TRACE_CONCAT(osh_trace_scope_,            \
                                              __COUNTER__)(                \
        (tracer), (cat), (name), ##__VA_ARGS__)

/** Like OSH_TRACE_SCOPE but binds the scope to a local variable so the
 *  site can call setArgs() on it. */
#define OSH_TRACE_SCOPE_NAMED(var, tracer, cat, name, ...)                  \
    ::osh::trace::TraceScope var((tracer), (cat), (name), ##__VA_ARGS__)

/** Record a point event. */
#define OSH_TRACE_INSTANT(tracer, cat, name, ...)                           \
    do {                                                                    \
        ::osh::trace::Tracer* osh_trace_t_ = (tracer);                      \
        if (osh_trace_t_ != nullptr && osh_trace_t_->enabled())             \
            osh_trace_t_->instant((cat), (name), ##__VA_ARGS__);            \
    } while (0)

/** Bump a metrics counter. */
#define OSH_TRACE_COUNT(tracer, cat, name, ...)                             \
    do {                                                                    \
        ::osh::trace::Tracer* osh_trace_t_ = (tracer);                      \
        if (osh_trace_t_ != nullptr && osh_trace_t_->enabled())             \
            osh_trace_t_->count((cat), (name), ##__VA_ARGS__);              \
    } while (0)

#else // !OSH_TRACE_ENABLED

namespace osh::trace
{
/** Stand-in for a named TraceScope in no-trace builds. */
struct NullTraceScope
{
    void setArgs(std::uint64_t, std::uint64_t) {}
};
} // namespace osh::trace

#define OSH_TRACE_SCOPE(tracer, cat, name, ...) ((void)0)
#define OSH_TRACE_SCOPE_NAMED(var, tracer, cat, name, ...)                  \
    [[maybe_unused]] ::osh::trace::NullTraceScope var
#define OSH_TRACE_INSTANT(tracer, cat, name, ...) ((void)0)
#define OSH_TRACE_COUNT(tracer, cat, name, ...) ((void)0)

#endif // OSH_TRACE_ENABLED

#endif // OSH_TRACE_TRACE_HH
