#include "trace/metrics.hh"

#include "base/logging.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace osh::trace
{

void
LatencyHistogram::record(std::uint64_t value)
{
    buckets_[std::bit_width(value)]++;
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t
LatencyHistogram::bucketLow(std::size_t i)
{
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
LatencyHistogram::bucketHigh(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

std::uint64_t
LatencyHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    rank = std::clamp<std::uint64_t>(rank, 1, count_);

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        if (cum + buckets_[i] >= rank) {
            std::uint64_t lo = bucketLow(i);
            std::uint64_t hi = bucketHigh(i);
            std::uint64_t within = rank - cum; // 1..buckets_[i]
            std::uint64_t est = lo + static_cast<std::uint64_t>(
                static_cast<double>(hi - lo) *
                static_cast<double>(within) /
                static_cast<double>(buckets_[i]));
            return std::clamp(est, min(), max_);
        }
        cum += buckets_[i];
    }
    return max_;
}

void
LatencyHistogram::reset()
{
    *this = LatencyHistogram{};
}

std::string
LatencyHistogram::summary() const
{
    return formatString(
        "count=%llu sum=%llu mean=%llu p50=%llu p95=%llu p99=%llu "
        "max=%llu",
        static_cast<unsigned long long>(count_),
        static_cast<unsigned long long>(sum_),
        static_cast<unsigned long long>(mean()),
        static_cast<unsigned long long>(percentile(50)),
        static_cast<unsigned long long>(percentile(95)),
        static_cast<unsigned long long>(percentile(99)),
        static_cast<unsigned long long>(max_));
}

std::uint64_t&
MetricsRegistry::counter(std::uint8_t category, const std::string& name)
{
    return counters_[{category, name}];
}

LatencyHistogram&
MetricsRegistry::histogram(std::uint8_t category, const std::string& name)
{
    return histograms_[{category, name}];
}

std::uint64_t
MetricsRegistry::counterValue(std::uint8_t category,
                              const std::string& name) const
{
    auto it = counters_.find({category, name});
    return it == counters_.end() ? 0 : it->second;
}

const LatencyHistogram*
MetricsRegistry::findHistogram(std::uint8_t category,
                               const std::string& name) const
{
    auto it = histograms_.find({category, name});
    return it == histograms_.end() ? nullptr : &it->second;
}

void
MetricsRegistry::reset()
{
    counters_.clear();
    histograms_.clear();
}

} // namespace osh::trace
