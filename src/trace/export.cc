#include "trace/export.hh"

#include "base/logging.hh"

#include <cstdio>

namespace osh::trace
{

namespace
{

/** JSON-escape a string (control chars, quotes, backslashes). */
std::string
jsonEscape(const char* s)
{
    std::string out;
    for (const char* p = s; *p != '\0'; ++p) {
        unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                out += formatString("\\u%04x", c);
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // namespace

std::string
toChromeJson(const TraceBuffer& buffer)
{
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : buffer.snapshot()) {
        if (!first)
            out += ",";
        first = false;
        if (ev.isInstant()) {
            out += formatString(
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                "\"s\":\"t\",\"ts\":%llu,\"pid\":%u,\"tid\":%d,"
                "\"args\":{\"arg0\":%llu,\"arg1\":%llu}}",
                jsonEscape(ev.name).c_str(),
                categoryName(ev.category),
                static_cast<unsigned long long>(ev.begin), ev.domain,
                ev.pid, static_cast<unsigned long long>(ev.arg0),
                static_cast<unsigned long long>(ev.arg1));
        } else {
            out += formatString(
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"ts\":%llu,\"dur\":%llu,\"pid\":%u,\"tid\":%d,"
                "\"args\":{\"arg0\":%llu,\"arg1\":%llu}}",
                jsonEscape(ev.name).c_str(),
                categoryName(ev.category),
                static_cast<unsigned long long>(ev.begin),
                static_cast<unsigned long long>(ev.duration()),
                ev.domain, ev.pid,
                static_cast<unsigned long long>(ev.arg0),
                static_cast<unsigned long long>(ev.arg1));
        }
    }
    out += "]}";
    return out;
}

bool
writeChromeJson(const TraceBuffer& buffer, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string json = toChromeJson(buffer);
    std::size_t wrote = std::fwrite(json.data(), 1, json.size(), f);
    bool ok = wrote == json.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

std::string
metricsReport(const MetricsRegistry& metrics, const std::string& title)
{
    std::string out;
    if (!title.empty())
        out += formatString("--- metrics: %s ---\n", title.c_str());

    if (!metrics.counters().empty()) {
        out += "counters:\n";
        for (const auto& [key, value] : metrics.counters()) {
            out += formatString(
                "  %-10s %-28s %llu\n",
                categoryName(static_cast<Category>(key.first)),
                key.second.c_str(),
                static_cast<unsigned long long>(value));
        }
    }
    if (!metrics.histograms().empty()) {
        out += "latency histograms (sim cycles):\n";
        for (const auto& [key, hist] : metrics.histograms()) {
            out += formatString(
                "  %-10s %-28s %s\n",
                categoryName(static_cast<Category>(key.first)),
                key.second.c_str(), hist.summary().c_str());
        }
    }
    if (metrics.counters().empty() && metrics.histograms().empty())
        out += "(no metrics recorded)\n";
    return out;
}

} // namespace osh::trace
