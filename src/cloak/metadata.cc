#include "cloak/metadata.hh"

#include "base/bytes.hh"
#include "base/logging.hh"
#include "crypto/hmac.hh"

#include <cstring>

namespace osh::cloak
{

MetadataStore::MetadataStore(sim::CostModel& cost,
                             std::size_t cache_capacity)
    : cost_(cost), cacheCapacity_(cache_capacity), stats_("metadata")
{
    osh_assert(cache_capacity > 0, "metadata cache needs capacity");
}

Resource&
MetadataStore::createResource(DomainId domain, bool is_file,
                              std::uint64_t file_key)
{
    ResourceId id = nextId_++;
    Resource& res = resources_[id];
    res.id = id;
    res.keyId = id;
    res.domain = domain;
    res.isFile = is_file;
    res.fileKey = file_key;
    stats_.counter("resources_created").inc();
    return res;
}

Resource&
MetadataStore::cloneResource(const Resource& src, DomainId new_domain)
{
    ResourceId id = nextId_++;
    Resource& res = resources_[id];
    res.id = id;
    res.keyId = src.keyId;   // Alias the key: copied ciphertext stays
                             // decryptable in the clone.
    res.domain = new_domain;
    res.isFile = src.isFile;
    res.fileKey = src.fileKey;
    res.pages = src.pages;
    // Plaintext residency does not transfer: the kernel eagerly copied
    // *encrypted* page images for the child.
    for (auto& [idx, meta] : res.pages) {
        if (meta.state != PageState::Encrypted && meta.initialized) {
            // The parent's plaintext pages were encrypted on the fly by
            // the kernel's fork copy, so by the time the clone is made
            // every parent page it copied is Encrypted. Pages that were
            // never encrypted keep their fresh state.
            meta.state = PageState::Encrypted;
        }
        meta.residentGpa = badAddr;
    }
    stats_.counter("resources_cloned").inc();
    return res;
}

Resource*
MetadataStore::find(ResourceId id)
{
    auto it = resources_.find(id);
    return it == resources_.end() ? nullptr : &it->second;
}

void
MetadataStore::destroyResource(ResourceId id)
{
    purgeCache(id);
    resources_.erase(id);
    stats_.counter("resources_destroyed").inc();
}

void
MetadataStore::purgeCache(ResourceId res)
{
    // CacheKey ordering is (resource, page), so one range scan covers
    // every page of the resource.
    auto it = cacheIndex_.lower_bound(CacheKey{res, 0});
    while (it != cacheIndex_.end() && it->first.first == res) {
        lru_.erase(it->second);
        it = cacheIndex_.erase(it);
    }
}

void
MetadataStore::evictToCapacity()
{
    while (cacheIndex_.size() > cacheCapacity_) {
        cacheIndex_.erase(lru_.back());
        lru_.pop_back();
    }
}

void
MetadataStore::touchCache(ResourceId res, std::uint64_t page_index)
{
    CacheKey key{res, page_index};
    auto it = cacheIndex_.find(key);
    if (it != cacheIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        cost_.charge(cost_.params().metadataHit, "metadata_hit");
        return;
    }
    cost_.charge(cost_.params().metadataMiss, "metadata_miss");
    lru_.push_front(key);
    cacheIndex_[key] = lru_.begin();
    evictToCapacity();
}

PageMeta&
MetadataStore::page(Resource& res, std::uint64_t page_index)
{
    auto it = res.pages.find(page_index);
    if (it == res.pages.end()) {
        // Freshly created metadata is born hot in the cache: there is
        // nothing to fetch or verify. The key can already be cached
        // when the page was destroyed and recreated (unseal reload);
        // splice instead of inserting a duplicate node, which would
        // orphan the old one and later erase the live index entry.
        CacheKey key{res.id, page_index};
        cost_.charge(cost_.params().metadataHit, "metadata_hit");
        auto cit = cacheIndex_.find(key);
        if (cit != cacheIndex_.end()) {
            lru_.splice(lru_.begin(), lru_, cit->second);
        } else {
            lru_.push_front(key);
            cacheIndex_[key] = lru_.begin();
            evictToCapacity();
        }
        return res.pages[page_index];
    }
    touchCache(res.id, page_index);
    return it->second;
}

void
MetadataStore::setCacheCapacity(std::size_t capacity)
{
    osh_assert(capacity > 0, "metadata cache needs capacity");
    cacheCapacity_ = capacity;
    evictToCapacity();
}

std::vector<std::uint8_t>
MetadataStore::seal(const Resource& res, const crypto::Digest& seal_key,
                    const crypto::Digest& owner_identity)
{
    return seal(res, crypto::HmacKey(seal_key), owner_identity);
}

std::vector<std::uint8_t>
MetadataStore::seal(const Resource& res, const crypto::HmacKey& seal_key,
                    const crypto::Digest& owner_identity)
{
    std::uint64_t version = ++sealVersions_[res.fileKey];

    std::vector<std::uint8_t> out;
    auto put64 = [&out](std::uint64_t v) {
        std::uint8_t b[8];
        storeLe64(b, v);
        out.insert(out.end(), b, b + 8);
    };

    put64(res.fileKey);
    put64(version);
    out.insert(out.end(), owner_identity.begin(), owner_identity.end());
    put64(res.pages.size());
    for (const auto& [idx, meta] : res.pages) {
        put64(idx);
        put64(meta.version);
        out.push_back(meta.initialized ? 1 : 0);
        out.insert(out.end(), meta.iv.begin(), meta.iv.end());
        out.insert(out.end(), meta.hash.begin(), meta.hash.end());
    }

    crypto::Digest mac = crypto::hmacSha256(seal_key, out);
    out.insert(out.end(), mac.begin(), mac.end());
    stats_.counter("seals").inc();
    return out;
}

bool
MetadataStore::unseal(std::span<const std::uint8_t> bundle,
                      const crypto::Digest& seal_key,
                      const crypto::Digest& owner_identity, Resource& dst)
{
    return unseal(bundle, crypto::HmacKey(seal_key), owner_identity, dst);
}

bool
MetadataStore::unseal(std::span<const std::uint8_t> bundle,
                      const crypto::HmacKey& seal_key,
                      const crypto::Digest& owner_identity, Resource& dst)
{
    constexpr std::size_t mac_size = crypto::sha256DigestSize;
    if (bundle.size() < 8 + 8 + mac_size + 32 + 8)
        return false;

    std::span<const std::uint8_t> body =
        bundle.first(bundle.size() - mac_size);
    std::span<const std::uint8_t> mac = bundle.last(mac_size);
    crypto::Digest expect = crypto::hmacSha256(seal_key, body);
    if (!constantTimeEqual(expect, mac)) {
        stats_.counter("unseal_bad_mac").inc();
        return false;
    }

    std::size_t pos = 0;
    auto get64 = [&](std::uint64_t& v) {
        v = loadLe64(body.data() + pos);
        pos += 8;
    };
    std::uint64_t file_key, version;
    get64(file_key);
    get64(version);

    crypto::Digest identity;
    std::memcpy(identity.data(), body.data() + pos, identity.size());
    pos += identity.size();
    if (!constantTimeEqual(identity, owner_identity)) {
        stats_.counter("unseal_bad_identity").inc();
        return false;
    }

    // Rollback detection: refuse bundles older than the newest seal we
    // have witnessed for this file key.
    auto vit = sealVersions_.find(file_key);
    if (vit != sealVersions_.end() && version < vit->second) {
        stats_.counter("unseal_rollback").inc();
        return false;
    }

    std::uint64_t count;
    get64(count);
    constexpr std::size_t per_page = 8 + 8 + 1 + 16 + 32;
    if (body.size() - pos != count * per_page)
        return false;

    dst.fileKey = file_key;
    dst.pages.clear();
    // The reload drops every existing page; stale cache keys would
    // otherwise occupy capacity forever (and alias recreated pages).
    purgeCache(dst.id);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t idx, pv;
        get64(idx);
        get64(pv);
        PageMeta meta;
        meta.version = pv;
        meta.initialized = body[pos++] != 0;
        std::memcpy(meta.iv.data(), body.data() + pos, meta.iv.size());
        pos += meta.iv.size();
        std::memcpy(meta.hash.data(), body.data() + pos,
                    meta.hash.size());
        pos += meta.hash.size();
        meta.state = PageState::Encrypted;
        meta.residentGpa = badAddr;
        dst.pages[idx] = meta;
    }
    // Advance the rollback floor: once a bundle of this version has
    // been accepted, anything older is a replay — even in a store that
    // never sealed this file key itself (fresh boot).
    std::uint64_t& floor_version = sealVersions_[file_key];
    if (version > floor_version)
        floor_version = version;
    stats_.counter("unseals").inc();
    return true;
}

std::uint64_t
MetadataStore::lastSealedVersion(std::uint64_t file_key) const
{
    auto it = sealVersions_.find(file_key);
    return it == sealVersions_.end() ? 0 : it->second;
}

void
MetadataStore::importSealVersions(
    const std::map<std::uint64_t, std::uint64_t>& floors)
{
    for (const auto& [file_key, version] : floors) {
        std::uint64_t& floor_version = sealVersions_[file_key];
        if (version > floor_version)
            floor_version = version;
    }
}

void
MetadataStore::reserveIds(ResourceId min_next)
{
    if (min_next > nextId_)
        nextId_ = min_next;
}

} // namespace osh::cloak
