#include "cloak/metadata.hh"

#include "base/bytes.hh"
#include "base/logging.hh"
#include "crypto/hmac.hh"

#include <cstring>

namespace osh::cloak
{

namespace
{
/// Rough per-entry std::map node overhead (parent/children/color + key)
/// folded into footprint estimates so the scale bench reflects real
/// VMM-private memory, not just payload bytes.
constexpr std::uint64_t mapNodeOverhead = 48;
} // namespace

MetadataStore::MetadataStore(sim::CostModel& cost,
                             std::size_t cache_capacity,
                             std::size_t shard_count)
    : cost_(cost), cacheCapacity_(cache_capacity), stats_("metadata")
{
    osh_assert(cache_capacity > 0, "metadata cache needs capacity");
    osh_assert(shard_count > 0, "metadata store needs at least one shard");
    shards_.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

void
MetadataStore::accountPages(std::int64_t resources_delta,
                            std::int64_t pages_delta)
{
    std::lock_guard<std::mutex> lk(footprintLock_);
    liveResources_ =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(liveResources_) +
                                   resources_delta);
    livePageMetas_ =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(livePageMetas_) +
                                   pages_delta);
    std::uint64_t now =
        liveResources_ * (sizeof(Resource) + mapNodeOverhead) +
        livePageMetas_ * (sizeof(PageMeta) + mapNodeOverhead);
    if (now > peakFootprint_)
        peakFootprint_ = now;
}

std::size_t
MetadataStore::resourceCount() const
{
    std::lock_guard<std::mutex> lk(footprintLock_);
    return static_cast<std::size_t>(liveResources_);
}

std::uint64_t
MetadataStore::pageMetaCount() const
{
    std::lock_guard<std::mutex> lk(footprintLock_);
    return livePageMetas_;
}

std::uint64_t
MetadataStore::footprintBytes() const
{
    std::lock_guard<std::mutex> lk(footprintLock_);
    return liveResources_ * (sizeof(Resource) + mapNodeOverhead) +
           livePageMetas_ * (sizeof(PageMeta) + mapNodeOverhead);
}

Resource&
MetadataStore::emplaceResource(DomainId domain)
{
    ResourceId id;
    {
        std::lock_guard<std::mutex> lk(idLock_);
        id = nextId_++;
    }
    std::uint32_t idx = shardOfDomain(domain);
    Shard& sh = *shards_[idx];
    Resource* res;
    {
        std::lock_guard<std::mutex> lk(sh.lock);
        res = &sh.resources[id];
    }
    res->id = id;
    res->keyId = id;
    res->domain = domain;
    {
        std::lock_guard<std::mutex> lk(directoryLock_);
        shardIndex_[id] = idx;
    }
    return *res;
}

Resource&
MetadataStore::createResource(DomainId domain, bool is_file,
                              std::uint64_t file_key)
{
    Resource& res = emplaceResource(domain);
    res.isFile = is_file;
    res.fileKey = file_key;
    accountPages(+1, 0);
    stats_.counter("resources_created").inc();
    return res;
}

Resource&
MetadataStore::cloneResource(const Resource& src, DomainId new_domain)
{
    Resource& res = emplaceResource(new_domain);
    res.keyId = src.keyId;   // Alias the key: copied ciphertext stays
                             // decryptable in the clone.
    res.key = src.key;       // Handle aliases with the key id.
    res.isFile = src.isFile;
    res.fileKey = src.fileKey;
    res.pages = src.pages;
    // Plaintext residency does not transfer: the kernel eagerly copied
    // *encrypted* page images for the child.
    for (auto& [idx, meta] : res.pages) {
        if (meta.state != PageState::Encrypted && meta.initialized) {
            // The parent's plaintext pages were encrypted on the fly by
            // the kernel's fork copy, so by the time the clone is made
            // every parent page it copied is Encrypted. Pages that were
            // never encrypted keep their fresh state.
            meta.state = PageState::Encrypted;
        }
        meta.residentGpa = badAddr;
        // Chunked-integrity state is per-resource: deep-copy it so the
        // clone's future partial writes never mutate the parent's
        // chunk versions or snapshots.
        if (meta.chunks)
            meta.chunks = std::make_shared<ChunkState>(*meta.chunks);
    }
    accountPages(+1, static_cast<std::int64_t>(res.pages.size()));
    stats_.counter("resources_cloned").inc();
    return res;
}

Expected<Resource*, CloakError>
MetadataStore::lookup(ResourceId id)
{
    std::uint32_t idx;
    {
        std::lock_guard<std::mutex> lk(directoryLock_);
        auto it = shardIndex_.find(id);
        if (it == shardIndex_.end())
            return Error(CloakError::UnknownResource);
        idx = it->second;
    }
    Shard& sh = *shards_[idx];
    std::lock_guard<std::mutex> lk(sh.lock);
    auto it = sh.resources.find(id);
    if (it == sh.resources.end()) {
        // The directory said the shard owns the id but the shard lost
        // it — a store-consistency failure distinct from a stale id.
        stats_.counter("shard_misses").inc();
        return Error(CloakError::ShardMiss);
    }
    return &it->second;
}

void
MetadataStore::destroyResource(ResourceId id)
{
    purgeCache(id);
    std::uint32_t idx;
    bool known = false;
    {
        std::lock_guard<std::mutex> lk(directoryLock_);
        auto it = shardIndex_.find(id);
        if (it != shardIndex_.end()) {
            idx = it->second;
            known = true;
            shardIndex_.erase(it);
        }
    }
    if (known) {
        Shard& sh = *shards_[idx];
        std::int64_t pages = 0;
        {
            std::lock_guard<std::mutex> lk(sh.lock);
            auto it = sh.resources.find(id);
            if (it != sh.resources.end()) {
                pages = static_cast<std::int64_t>(it->second.pages.size());
                sh.resources.erase(it);
            }
        }
        accountPages(-1, -pages);
    }
    stats_.counter("resources_destroyed").inc();
}

void
MetadataStore::purgeCache(ResourceId res)
{
    std::lock_guard<std::mutex> lk(cacheLock_);
    // CacheKey ordering is (resource, page), so one range scan covers
    // every page of the resource.
    auto it = cacheIndex_.lower_bound(CacheKey{res, 0});
    while (it != cacheIndex_.end() && it->first.first == res) {
        lru_.erase(it->second);
        it = cacheIndex_.erase(it);
    }
}

void
MetadataStore::evictToCapacity()
{
    while (cacheIndex_.size() > cacheCapacity_) {
        cacheIndex_.erase(lru_.back());
        lru_.pop_back();
    }
}

void
MetadataStore::touchCache(ResourceId res, std::uint64_t page_index)
{
    CacheKey key{res, page_index};
    std::lock_guard<std::mutex> lk(cacheLock_);
    auto it = cacheIndex_.find(key);
    if (it != cacheIndex_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        // Constant-cost mode: a hit priced below a miss tells the
        // kernel which (resource, page) pairs were touched recently.
        cost_.charge(constantCostLookups_ ? cost_.params().metadataMiss
                                          : cost_.params().metadataHit,
                     "metadata_hit");
        return;
    }
    cost_.charge(cost_.params().metadataMiss, "metadata_miss");
    lru_.push_front(key);
    cacheIndex_[key] = lru_.begin();
    evictToCapacity();
}

PageMeta&
MetadataStore::page(Resource& res, std::uint64_t page_index)
{
    auto it = res.pages.find(page_index);
    if (it == res.pages.end()) {
        // Freshly created metadata is born hot in the cache: there is
        // nothing to fetch or verify. The key can already be cached
        // when the page was destroyed and recreated (unseal reload);
        // splice instead of inserting a duplicate node, which would
        // orphan the old one and later erase the live index entry.
        CacheKey key{res.id, page_index};
        {
            std::lock_guard<std::mutex> lk(cacheLock_);
            cost_.charge(constantCostLookups_
                             ? cost_.params().metadataMiss
                             : cost_.params().metadataHit,
                         "metadata_hit");
            auto cit = cacheIndex_.find(key);
            if (cit != cacheIndex_.end()) {
                lru_.splice(lru_.begin(), lru_, cit->second);
            } else {
                lru_.push_front(key);
                cacheIndex_[key] = lru_.begin();
                evictToCapacity();
            }
        }
        accountPages(0, +1);
        return res.pages[page_index];
    }
    touchCache(res.id, page_index);
    return it->second;
}

void
MetadataStore::setCacheCapacity(std::size_t capacity)
{
    osh_assert(capacity > 0, "metadata cache needs capacity");
    std::lock_guard<std::mutex> lk(cacheLock_);
    cacheCapacity_ = capacity;
    evictToCapacity();
}

std::vector<std::uint8_t>
MetadataStore::seal(const Resource& res, const crypto::Digest& seal_key,
                    const crypto::Digest& owner_identity)
{
    return seal(res, crypto::HmacKey(seal_key), owner_identity);
}

std::vector<std::uint8_t>
MetadataStore::seal(const Resource& res, const crypto::HmacKey& seal_key,
                    const crypto::Digest& owner_identity)
{
    std::uint64_t version;
    {
        std::lock_guard<std::mutex> lk(sealLock_);
        version = ++sealVersions_[res.fileKey];
    }

    std::vector<std::uint8_t> out;
    auto put64 = [&out](std::uint64_t v) {
        std::uint8_t b[8];
        storeLe64(b, v);
        out.insert(out.end(), b, b + 8);
    };

    put64(res.fileKey);
    put64(version);
    out.insert(out.end(), owner_identity.begin(), owner_identity.end());
    put64(res.pages.size());
    for (const auto& [idx, meta] : res.pages) {
        put64(idx);
        put64(meta.version);
        out.push_back(meta.initialized ? 1 : 0);
        out.insert(out.end(), meta.iv.begin(), meta.iv.end());
        out.insert(out.end(), meta.hash.begin(), meta.hash.end());
    }

    crypto::Digest mac = crypto::hmacSha256(seal_key, out);
    out.insert(out.end(), mac.begin(), mac.end());
    stats_.counter("seals").inc();
    return out;
}

Expected<void, CloakError>
MetadataStore::unseal(std::span<const std::uint8_t> bundle,
                      const crypto::Digest& seal_key,
                      const crypto::Digest& owner_identity, Resource& dst)
{
    return unseal(bundle, crypto::HmacKey(seal_key), owner_identity, dst);
}

Expected<void, CloakError>
MetadataStore::unseal(std::span<const std::uint8_t> bundle,
                      const crypto::HmacKey& seal_key,
                      const crypto::Digest& owner_identity, Resource& dst)
{
    constexpr std::size_t mac_size = crypto::sha256DigestSize;
    if (bundle.size() < 8 + 8 + mac_size + 32 + 8)
        return Error(CloakError::SealMalformed);

    std::span<const std::uint8_t> body =
        bundle.first(bundle.size() - mac_size);
    std::span<const std::uint8_t> mac = bundle.last(mac_size);
    crypto::Digest expect = crypto::hmacSha256(seal_key, body);
    if (!constantTimeEqual(expect, mac)) {
        stats_.counter("unseal_bad_mac").inc();
        return Error(CloakError::SealBadMac);
    }

    std::size_t pos = 0;
    auto get64 = [&](std::uint64_t& v) {
        v = loadLe64(body.data() + pos);
        pos += 8;
    };
    std::uint64_t file_key, version;
    get64(file_key);
    get64(version);

    crypto::Digest identity;
    std::memcpy(identity.data(), body.data() + pos, identity.size());
    pos += identity.size();
    if (!constantTimeEqual(identity, owner_identity)) {
        stats_.counter("unseal_bad_identity").inc();
        return Error(CloakError::SealBadIdentity);
    }

    // Rollback detection: refuse bundles older than the newest seal we
    // have witnessed for this file key.
    {
        std::lock_guard<std::mutex> lk(sealLock_);
        auto vit = sealVersions_.find(file_key);
        if (vit != sealVersions_.end() && version < vit->second) {
            stats_.counter("unseal_rollback").inc();
            return Error(CloakError::SealRollback);
        }
    }

    std::uint64_t count;
    get64(count);
    constexpr std::size_t per_page = 8 + 8 + 1 + 16 + 32;
    if (body.size() - pos != count * per_page)
        return Error(CloakError::SealMalformed);

    std::int64_t old_pages = static_cast<std::int64_t>(dst.pages.size());
    dst.fileKey = file_key;
    dst.pages.clear();
    // The reload drops every existing page; stale cache keys would
    // otherwise occupy capacity forever (and alias recreated pages).
    purgeCache(dst.id);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t idx, pv;
        get64(idx);
        get64(pv);
        PageMeta meta;
        meta.version = pv;
        meta.initialized = body[pos++] != 0;
        std::memcpy(meta.iv.data(), body.data() + pos, meta.iv.size());
        pos += meta.iv.size();
        std::memcpy(meta.hash.data(), body.data() + pos,
                    meta.hash.size());
        pos += meta.hash.size();
        meta.state = PageState::Encrypted;
        meta.residentGpa = badAddr;
        dst.pages[idx] = meta;
    }
    accountPages(0, static_cast<std::int64_t>(count) - old_pages);
    // Advance the rollback floor: once a bundle of this version has
    // been accepted, anything older is a replay — even in a store that
    // never sealed this file key itself (fresh boot).
    {
        std::lock_guard<std::mutex> lk(sealLock_);
        std::uint64_t& floor_version = sealVersions_[file_key];
        if (version > floor_version)
            floor_version = version;
    }
    stats_.counter("unseals").inc();
    return {};
}

std::uint64_t
MetadataStore::lastSealedVersion(std::uint64_t file_key) const
{
    std::lock_guard<std::mutex> lk(sealLock_);
    auto it = sealVersions_.find(file_key);
    return it == sealVersions_.end() ? 0 : it->second;
}

void
MetadataStore::importSealVersions(
    const std::map<std::uint64_t, std::uint64_t>& floors)
{
    std::lock_guard<std::mutex> lk(sealLock_);
    for (const auto& [file_key, version] : floors) {
        std::uint64_t& floor_version = sealVersions_[file_key];
        if (version > floor_version)
            floor_version = version;
    }
}

void
MetadataStore::reserveIds(ResourceId min_next)
{
    std::lock_guard<std::mutex> lk(idLock_);
    if (min_next > nextId_)
        nextId_ = min_next;
}

} // namespace osh::cloak
