/**
 * @file
 * The Overshadow runtime: attested launch of cloaked applications.
 *
 * In the paper, a cloaked application starts through a trusted loader:
 * the VMM measures the shim, creates the protection domain and confers
 * the application identity before any application code runs. This
 * module models that path: it creates the domain, switches the vCPU
 * into the domain's view, builds the shim (which registers regions,
 * the CTC and the marshalling buffers) and installs the interposition
 * hooks. It also handles the fork-child attach and final teardown.
 */

#ifndef OSH_CLOAK_RUNTIME_HH
#define OSH_CLOAK_RUNTIME_HH

#include "cloak/engine.hh"
#include "cloak/shim.hh"
#include "os/env.hh"

#include <memory>

namespace osh::cloak
{

/** Launch/teardown helpers for cloaked processes. */
class OvershadowRuntime
{
  public:
    /** Attested launch of a fresh cloaked program. */
    static std::unique_ptr<Shim> launch(CloakEngine& engine, os::Env& env);

    /**
     * Attach a fork child to its parent's protection using the token
     * the parent shim minted, inheriting the parent shim's layout.
     */
    static std::unique_ptr<Shim> launchForked(CloakEngine& engine,
                                              os::Env& env,
                                              std::uint64_t fork_token,
                                              GuestVA parent_ctc,
                                              GuestVA parent_bounce);

    /** Final teardown when the process exits (any path). */
    static void teardown(CloakEngine& engine, os::Env& env, Shim* shim);
};

} // namespace osh::cloak

#endif // OSH_CLOAK_RUNTIME_HH
