/**
 * @file
 * The Overshadow runtime: attested launch of cloaked applications.
 *
 * In the paper, a cloaked application starts through a trusted loader:
 * the VMM measures the shim, creates the protection domain and confers
 * the application identity before any application code runs. This
 * module models that path: it creates the domain, switches the vCPU
 * into the domain's view, builds the shim (which registers regions,
 * the CTC and the marshalling buffers) and installs the interposition
 * hooks. It also handles the fork-child attach and final teardown.
 */

#ifndef OSH_CLOAK_RUNTIME_HH
#define OSH_CLOAK_RUNTIME_HH

#include "cloak/engine.hh"
#include "cloak/shim.hh"
#include "os/env.hh"

#include <memory>

namespace osh::cloak
{

/** Launch/teardown helpers for cloaked processes. */
class OvershadowRuntime
{
  public:
    /** Attested launch of a fresh cloaked program. */
    static std::unique_ptr<Shim> launch(CloakEngine& engine, os::Env& env);

    /**
     * Attach a fork child to its parent's protection using the token
     * the parent shim minted, inheriting the parent shim's layout.
     */
    static std::unique_ptr<Shim> launchForked(CloakEngine& engine,
                                              os::Env& env,
                                              std::uint64_t fork_token,
                                              GuestVA parent_ctc,
                                              GuestVA parent_bounce);

    /**
     * Attach a restored (migrated-in) process to the domain the
     * migrate layer imported for it, inheriting the CTC/bounce layout
     * serialized in the checkpoint image. Regions are already
     * registered (the import did it), so only the view switch, the
     * shim hooks and the CTC thread registration remain.
     */
    static std::unique_ptr<Shim> launchRestored(CloakEngine& engine,
                                                os::Env& env,
                                                GuestVA ctc_va,
                                                GuestVA bounce_va);

    /** Final teardown when the process exits (any path). */
    static void teardown(CloakEngine& engine, os::Env& env, Shim* shim);
};

} // namespace osh::cloak

#endif // OSH_CLOAK_RUNTIME_HH
