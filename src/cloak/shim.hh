/**
 * @file
 * The cloaked shim.
 *
 * Overshadow loads a small shim into every cloaked application. It
 * interposes on all system calls and adapts each one so the untrusted
 * kernel can service it without ever seeing plaintext:
 *
 *   - *Pass-through* calls carry no memory references (getpid, yield,
 *     close, ...) and trap straight through.
 *   - *Marshalled* calls carry buffers or strings; the shim copies them
 *     between cloaked memory and an uncloaked bounce buffer and
 *     rewrites the pointers, so the kernel only ever touches the
 *     bounce pages.
 *   - *Emulated* calls are file I/O on protected files: the shim maps
 *     the cloaked file into the address space once and turns read()/
 *     write()/lseek() into memory copies against the mapping — the
 *     paper's "transparent memory-mapped emulation of I/O calls". Data
 *     never crosses the kernel in plaintext, and the page cache holds
 *     ciphertext from the kernel's point of view.
 *
 * Files under a protected prefix (default "/cloaked") are treated as
 * protected; everything else (pipes, ordinary files) is marshalled.
 */

#ifndef OSH_CLOAK_SHIM_HH
#define OSH_CLOAK_SHIM_HH

#include "base/types.hh"
#include "cloak/engine.hh"
#include "os/env.hh"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace osh::cloak
{

/** The per-process cloaked shim. */
class Shim : public os::SyscallInterposer
{
  public:
    /**
     * @param engine The cloak engine.
     * @param domain The domain this shim's process runs in.
     * @param env The process's environment.
     */
    Shim(CloakEngine& engine, DomainId domain, os::Env& env);

    /**
     * Allocate the CTC page and bounce buffers, register the existing
     * cloaked regions (stack, code) with the VMM and install the
     * interposer + secure-trap hook on the Env.
     *
     * @param inherit_from Present for fork children: the parent shim's
     *        layout (regions already attached via fork; only hooks and
     *        tables need rebuilding).
     */
    struct InheritedLayout
    {
        GuestVA ctcVa;
        GuestVA bounceVa;
    };
    void initialize(const std::optional<InheritedLayout>& inherit = {});

    /** Tear down hooks (before exec / exit). */
    void detach();

    DomainId domain() const { return domain_; }
    GuestVA ctcVa() const { return ctcVa_; }
    GuestVA bounceVa() const { return bounceVa_; }
    /** The persistent marshal arena (0 until the first real batch). */
    GuestVA arenaVa() const { return arenaVa_; }

    /** Cloak fork token minted at the last Fork syscall (consumed by
     *  the system layer when starting the child). */
    std::uint64_t takePendingForkToken();

    /** Add a protected-path prefix (default "/cloaked"). */
    void addProtectedPrefix(const std::string& prefix);
    bool isProtectedPath(const std::string& path) const;

    // os::SyscallInterposer ------------------------------------------------
    std::int64_t syscall(os::Env& env, os::Sys num,
                         const os::SyscallArgs& args) override;

  private:
    /** An open protected file, served via its cloaked mapping. */
    struct CloakedFile
    {
        std::uint64_t fd = 0;
        std::string path;
        std::uint64_t fileKey = 0;
        ResourceId resource = 0;
        GuestVA mapVa = 0;
        std::uint64_t mapPages = 0;
        std::uint64_t size = 0;
        std::uint64_t offset = 0;
    };

    /** Trap with secure control transfer. */
    std::int64_t trap(os::Sys num, const os::SyscallArgs& args);

    /** Guest-to-guest memory copy through a host staging buffer. */
    void copyGuest(GuestVA dst, GuestVA src, std::uint64_t len);

    /** Copy a string into the bounce area; returns its VA. */
    GuestVA stageString(const std::string& s, std::uint64_t slot);

    std::int64_t marshalledRead(os::Sys num, std::uint64_t fd,
                                GuestVA user_buf, std::uint64_t len);
    std::int64_t marshalledWrite(std::uint64_t fd, GuestVA user_buf,
                                 std::uint64_t len);
    std::int64_t marshalledPread(std::uint64_t fd, GuestVA user_buf,
                                 std::uint64_t len, std::uint64_t off);
    std::int64_t marshalledPwrite(std::uint64_t fd, GuestVA user_buf,
                                  std::uint64_t len, std::uint64_t off);
    std::int64_t shimOpen(const os::SyscallArgs& args);
    std::int64_t shimMmap(const os::SyscallArgs& args);
    std::int64_t shimMunmap(const os::SyscallArgs& args);
    std::int64_t shimExec(const os::SyscallArgs& args);
    std::int64_t shimFork(const os::SyscallArgs& args);

    std::int64_t openProtected(const std::string& path,
                               std::uint64_t flags);
    std::int64_t emulatedRead(CloakedFile& cf, GuestVA buf,
                              std::uint64_t len);
    std::int64_t emulatedWrite(CloakedFile& cf, GuestVA buf,
                               std::uint64_t len);
    std::int64_t emulatedPread(CloakedFile& cf, GuestVA buf,
                               std::uint64_t len, std::uint64_t off);
    std::int64_t emulatedPwrite(CloakedFile& cf, GuestVA buf,
                                std::uint64_t len, std::uint64_t off);
    std::int64_t emulatedLseek(CloakedFile& cf, std::int64_t off,
                               std::uint64_t whence);
    std::int64_t growMapping(CloakedFile& cf, std::uint64_t new_size);
    std::int64_t closeProtected(std::uint64_t fd);

    /**
     * Batched submission (Sys::SubmitBatch from a cloaked process):
     * reads the app's descriptor ring out of cloaked memory once,
     * serves emulated calls locally, stages the rest into the marshal
     * arena's kernel-facing ring and dispatches them in ONE secure
     * control transfer, then validates every completion (echo token +
     * result bounds) before copying data back. args = {app submission
     * VA, app completion VA, count}.
     */
    std::int64_t shimSubmitBatch(const os::SyscallArgs& args);

    /** Lazily allocate the persistent uncloaked marshal arena. */
    GuestVA marshalArena();

    /** Next echo token from the shim's private stream. */
    std::uint64_t nextBatchNonce();

    /** Kill this process: the kernel molested the syscall ring. */
    [[noreturn]] void ringViolation(const char* what);

    static std::uint64_t pathKey(const std::string& path);

    CloakEngine& engine_;
    DomainId domain_;
    os::Env& env_;

    GuestVA ctcVa_ = 0;
    GuestVA bounceVa_ = 0;
    static constexpr std::uint64_t bouncePages_ = 20;
    /** Bytes of bounce space usable for data staging. */
    static constexpr std::uint64_t bounceDataBytes = 16 * pageSize;

    /**
     * Persistent marshal arena for batched submission: page 0 holds the
     * kernel-facing submission ring, page 1 the completion ring, and
     * the rest is scatter/gather data staging. Allocated on the first
     * batch deeper than 1 and reused for the life of the shim, so a
     * busy server pays the setup once instead of per call. Uncloaked by
     * construction — everything staged here is data the kernel would
     * see on the legacy marshalled path anyway.
     */
    GuestVA arenaVa_ = 0;
    static constexpr std::uint64_t arenaDataPages_ = 16;
    static constexpr std::uint64_t arenaPages_ = 2 + arenaDataPages_;
    std::uint64_t batchNonceState_ = 0x0b5e55ed0a7e4a11ull;

    std::map<std::uint64_t, CloakedFile> cloakedFiles_;
    std::vector<std::string> protectedPrefixes_;
    std::vector<std::uint64_t> pendingForkTokens_;
};

} // namespace osh::cloak

#endif // OSH_CLOAK_SHIM_HH
