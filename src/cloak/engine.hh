/**
 * @file
 * The cloak engine — Overshadow's core mechanism.
 *
 * Implements vmm::CloakBackend. On every shadow resolution it decides
 * how the faulting context may see the page:
 *
 *   - The owning cloaked application sees plaintext. If the page is
 *     currently encrypted, the engine decrypts it in place and verifies
 *     its integrity hash first (any kernel tampering or replay is
 *     caught here and kills the application rather than feeding it
 *     corrupt data).
 *   - Every other context — the kernel, other processes, other
 *     domains — sees ciphertext. If the page is currently plaintext,
 *     the engine encrypts it in place (fresh IV + hash + version bump
 *     for dirty pages; cheap deterministic re-encryption for clean
 *     ones) before the mapping is handed out.
 *
 * The per-frame "plaintext index" guarantees no frame ever leaves an
 * application's exclusive view while still holding plaintext.
 */

#ifndef OSH_CLOAK_ENGINE_HH
#define OSH_CLOAK_ENGINE_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "cloak/metadata.hh"
#include "crypto/keys.hh"
#include "sim/machine.hh"
#include "vmm/hooks.hh"
#include "vmm/vmm.hh"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace osh::cloak
{

/** A cloaked VA range of one address space, backed by a resource. */
struct Region
{
    Asid asid = 0;
    GuestVA start = 0;
    GuestVA end = 0;
    ResourceId resource = 0;
    /** Resource page index of the first page of the region. */
    std::uint64_t resourcePageOffset = 0;

    bool contains(GuestVA va) const { return va >= start && va < end; }
};

/** A protection domain: one cloaked application (+ forked children). */
struct Domain
{
    DomainId id = systemDomain;
    Asid asid = 0;
    Pid pid = 0;
    crypto::Digest identity{};   ///< Application identity (program hash).
    std::vector<Region> regions;

    /** Cloaked thread context page + VMM-held integrity hash. */
    GuestVA ctcVa = 0;
    crypto::Digest ctcHash{};
    bool ctcHashValid = false;
};

/** One recorded protection violation. */
struct AuditEvent
{
    DomainId domain;
    ResourceId resource;
    std::uint64_t pageIndex;
    std::string reason;
};

/** The Overshadow cloak engine. */
class CloakEngine : public vmm::CloakBackend
{
  public:
    /**
     * @param vmm The VMM to interpose on.
     * @param master_seed Seed of the VMM master secret.
     * @param metadata_cache Metadata-cache capacity (ablation knob).
     */
    CloakEngine(vmm::Vmm& vmm, std::uint64_t master_seed = 0x05ead0,
                std::size_t metadata_cache = 1024);
    ~CloakEngine() override;

    // vmm::CloakBackend ---------------------------------------------------
    vmm::ResolvedPage resolvePage(const vmm::Context& ctx, GuestVA va_page,
                                  const vmm::GuestPte& pte,
                                  vmm::AccessType access) override;
    std::int64_t hypercall(vmm::Vcpu& vcpu, vmm::Hypercall num,
                           std::span<const std::uint64_t> args) override;

    // Trusted runtime services (modelling VMM<->shim cooperation) ---------

    /** Create a domain for (asid, pid) with the given identity. */
    DomainId createDomain(Asid asid, Pid pid,
                          const crypto::Digest& identity);

    /** Tear down a domain: purge plaintext index, destroy resources. */
    void teardownDomain(DomainId id);

    Domain* findDomain(DomainId id);

    /** Register/unregister a cloaked VA range for a domain. */
    ResourceId registerRegion(DomainId domain, GuestVA start,
                              std::uint64_t pages,
                              ResourceId resource = 0,
                              std::uint64_t resource_page_offset = 0);
    void unregisterRegion(DomainId domain, GuestVA start);

    /** CTC handling used by the secure-control-transfer path. */
    void bindCtc(DomainId domain, GuestVA ctc_va);
    void recordCtcHash(DomainId domain, const crypto::Digest& hash);
    bool verifyCtcHash(DomainId domain, const crypto::Digest& hash) const;

    /** Fork support. The parent mints a token before the fork trap;
     *  immediately after the trap returns (when the kernel has eagerly
     *  copied the encrypted page images and the parent has not yet run)
     *  it snapshots its metadata; the child consumes the snapshot. */
    std::uint64_t prepareFork(DomainId parent);
    std::int64_t snapshotFork(DomainId parent, std::uint64_t token);
    DomainId forkAttach(Asid child_asid, Pid child_pid,
                        std::uint64_t token);

    /** Protected-file support. */
    ResourceId attachFileResource(DomainId domain, std::uint64_t file_key);
    std::int64_t sealFileResource(DomainId domain, ResourceId resource);
    void discardFileMetadata(std::uint64_t file_key);

    /** Sealed-bundle store (tests tamper with this directly). */
    std::map<std::uint64_t, std::vector<std::uint8_t>>& sealedStore()
    {
        return sealedStore_;
    }

    MetadataStore& metadata() { return metadata_; }
    const std::vector<AuditEvent>& auditLog() const { return auditLog_; }
    StatGroup& stats() { return stats_; }

    /** Enable/disable the clean-plaintext optimization (ablation). */
    void setCleanOptimization(bool on) { cleanOptimization_ = on; }

  private:
    struct PlaintextRef
    {
        ResourceId resource;
        std::uint64_t pageIndex;
    };

    Region* findRegion(DomainId domain, Asid asid, GuestVA va_page);
    Domain& domainOf(DomainId id);

    /** Encrypt the plaintext page of (resource,page) in place. */
    void encryptPage(Resource& res, std::uint64_t page_index,
                     PageMeta& meta);

    /** Decrypt + verify the page image in @p gpa; throws on mismatch. */
    void decryptAndVerify(Resource& res, std::uint64_t page_index,
                          PageMeta& meta, Gpa gpa);

    /** Integrity hash of a ciphertext page bound to its identity. */
    crypto::Digest pageHash(const Resource& res, std::uint64_t page_index,
                            const PageMeta& meta,
                            std::span<const std::uint8_t> ciphertext);

    [[noreturn]] void violation(Resource& res, std::uint64_t page_index,
                                const std::string& reason);

    std::span<std::uint8_t> frameBytes(Gpa gpa);

    vmm::Vmm& vmm_;
    crypto::KeyManager keys_;
    MetadataStore metadata_;

    std::map<DomainId, Domain> domains_;
    DomainId nextDomain_ = 1;

    /** Frames currently holding plaintext: gpa -> owner page. */
    std::map<Gpa, PlaintextRef> plaintextIndex_;

    /** One pre-cloned region awaiting a fork child. */
    struct PendingRegion
    {
        Region region;          ///< Parent-relative template.
        ResourceId clonedResource;
    };

    /** Outstanding fork authorizations. */
    struct PendingFork
    {
        DomainId parent = systemDomain;
        bool snapshotted = false;
        std::vector<PendingRegion> regions;
        GuestVA ctcVa = 0;
    };
    std::map<std::uint64_t, PendingFork> pendingForks_;
    std::uint64_t nextForkToken_ = 0x4f56'0001;

    /** Sealed metadata bundles keyed by file key. */
    std::map<std::uint64_t, std::vector<std::uint8_t>> sealedStore_;

    bool cleanOptimization_ = true;
    std::vector<AuditEvent> auditLog_;
    StatGroup stats_;
};

/** Application identity: hash of the program name (stands in for a
 *  hash of the binary + shim in the paper). */
crypto::Digest programIdentity(const std::string& program_name);

} // namespace osh::cloak

#endif // OSH_CLOAK_ENGINE_HH
