/**
 * @file
 * The cloak engine — Overshadow's core mechanism.
 *
 * Implements vmm::CloakBackend. On every shadow resolution it decides
 * how the faulting context may see the page:
 *
 *   - The owning cloaked application sees plaintext. If the page is
 *     currently encrypted, the engine decrypts it in place and verifies
 *     its integrity hash first (any kernel tampering or replay is
 *     caught here and kills the application rather than feeding it
 *     corrupt data).
 *   - Every other context — the kernel, other processes, other
 *     domains — sees ciphertext. If the page is currently plaintext,
 *     the engine encrypts it in place (fresh IV + hash + version bump
 *     for dirty pages; cheap deterministic re-encryption for clean
 *     ones) before the mapping is handed out.
 *
 * The per-frame "plaintext index" guarantees no frame ever leaves an
 * application's exclusive view while still holding plaintext.
 */

#ifndef OSH_CLOAK_ENGINE_HH
#define OSH_CLOAK_ENGINE_HH

#include "base/expected.hh"
#include "base/pool.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "cloak/errors.hh"
#include "cloak/metadata.hh"
#include "crypto/keys.hh"
#include "sim/machine.hh"
#include "vmm/hooks.hh"
#include "vmm/vmm.hh"

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace osh::cloak
{

/** A cloaked VA range of one address space, backed by a resource. */
struct Region
{
    Asid asid = 0;
    GuestVA start = 0;
    GuestVA end = 0;
    ResourceId resource = 0;
    /** Resource page index of the first page of the region. */
    std::uint64_t resourcePageOffset = 0;

    bool contains(GuestVA va) const { return va >= start && va < end; }
};

/** A protection domain: one cloaked application (+ forked children). */
struct Domain
{
    DomainId id = systemDomain;
    Asid asid = 0;
    Pid pid = 0;
    crypto::Digest identity{};   ///< Application identity (program hash).
    std::vector<Region> regions;

    /** Cloaked thread context page + VMM-held integrity hash. */
    GuestVA ctcVa = 0;
    crypto::Digest ctcHash{};
    bool ctcHashValid = false;
};

// CloakError and cloakErrorName live in cloak/errors.hh (shared with
// the metadata store, whose Expected API returns the same codes).

/** One recorded protection violation or rejected operation. */
struct AuditEvent
{
    DomainId domain;
    ResourceId resource;
    std::uint64_t pageIndex;
    std::string reason;
    CloakError code = CloakError::IntegrityViolation;
};

/**
 * Fixed-capacity audit ring. Violations are diagnostics, not load-
 * bearing state: under an adversarial kernel the log must not grow
 * without bound, so once full the oldest events are dropped and
 * counted. front() is the oldest retained event.
 */
class AuditLog
{
  public:
    explicit AuditLog(std::size_t capacity = 256) : capacity_(capacity) {}

    void
    push(AuditEvent ev)
    {
        events_.push_back(std::move(ev));
        while (events_.size() > capacity_) {
            events_.pop_front();
            ++dropped_;
        }
    }

    bool empty() const { return events_.empty(); }
    std::size_t size() const { return events_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Events discarded because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    const AuditEvent& front() const { return events_.front(); }
    const AuditEvent& back() const { return events_.back(); }
    auto begin() const { return events_.begin(); }
    auto end() const { return events_.end(); }

    void
    setCapacity(std::size_t capacity)
    {
        capacity_ = capacity == 0 ? 1 : capacity;
        while (events_.size() > capacity_) {
            events_.pop_front();
            ++dropped_;
        }
    }

  private:
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    std::deque<AuditEvent> events_;
};

/**
 * Re-encryption victim cache.
 *
 * Remembers the last N encryption results keyed by
 * (resource, page index, version): the IV and hash the metadata holds
 * plus byte copies of the ciphertext and plaintext images. When a page
 * ping-pongs between the kernel view and its owner without being
 * modified, the version never changes, so:
 *
 *   - re-encrypting a clean page becomes a copy of the cached
 *     ciphertext (AES-CTR under the stored IV is deterministic, so the
 *     bytes are identical and the stored hash stays valid);
 *   - decrypting becomes a compare of the frame against the cached
 *     authentic ciphertext followed by a copy of the cached plaintext —
 *     any kernel tampering makes the compare fail, which falls back to
 *     the full hash-verify path and is caught there.
 *
 * A dirty encryption bumps the version and takes a fresh IV, so stale
 * entries can never false-hit. Capacity 0 disables the cache.
 */
class VictimCache
{
  public:
    struct Entry
    {
        ResourceId resource = 0;
        std::uint64_t pageIndex = 0;
        std::uint64_t version = 0;
        crypto::Iv iv{};
        crypto::Digest hash{};
        std::array<std::uint8_t, pageSize> ciphertext{};
        std::array<std::uint8_t, pageSize> plaintext{};
    };

    explicit VictimCache(std::size_t capacity = 8) : capacity_(capacity) {}

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return lru_.size(); }

    void
    setCapacity(std::size_t capacity)
    {
        capacity_ = capacity;
        evictToCapacity();
    }

    /** Find an entry and mark it most recently used. */
    Entry*
    find(ResourceId resource, std::uint64_t page_index,
         std::uint64_t version)
    {
        auto it = index_.find(Key{resource, page_index, version});
        if (it == index_.end())
            return nullptr;
        lru_.splice(lru_.begin(), lru_, it->second);
        return &*it->second;
    }

    /**
     * Insert (or replace) the entry for a key and return the slot for
     * the caller to fill. Returns nullptr when the cache is disabled.
     */
    Entry*
    insert(ResourceId resource, std::uint64_t page_index,
           std::uint64_t version)
    {
        if (capacity_ == 0)
            return nullptr;
        Key key{resource, page_index, version};
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
        } else {
            lru_.push_front(Entry{});
            index_[key] = lru_.begin();
            evictToCapacity();
        }
        Entry& e = lru_.front();
        e.resource = resource;
        e.pageIndex = page_index;
        e.version = version;
        return &e;
    }

  private:
    struct Key
    {
        ResourceId resource;
        std::uint64_t pageIndex;
        std::uint64_t version;

        bool
        operator==(const Key& o) const
        {
            return resource == o.resource && pageIndex == o.pageIndex &&
                   version == o.version;
        }
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key& k) const
        {
            std::uint64_t h = k.resource * 0x9e3779b97f4a7c15ull;
            h ^= k.pageIndex + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            h ^= k.version + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    void
    evictToCapacity()
    {
        while (lru_.size() > capacity_) {
            const Entry& victim = lru_.back();
            index_.erase(
                Key{victim.resource, victim.pageIndex, victim.version});
            lru_.pop_back();
        }
    }

    std::size_t capacity_;
    std::list<Entry> lru_; ///< Front = most recently used.
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
};

/**
 * One unit of work for the batched page-crypto API: a page of a
 * resource plus its (already looked-up) metadata. For decryption the
 * gpa names the frame holding the ciphertext image.
 */
struct PageCryptoItem
{
    std::uint64_t pageIndex = 0;
    PageMeta* meta = nullptr;
    Gpa gpa = badAddr;
};

/**
 * One deferred eviction seal. The page was already encrypted — same
 * RNG draws, metadata transitions and victim-cache traffic as the
 * synchronous path — with its cycle charges routed into the background
 * lane; the sealed ciphertext waits in @p sealed until the drain
 * barrier invokes @p commit (which performs the swap-slot write and
 * the kernel's tamper/replay/attack observation points).
 */
struct AsyncSealEntry
{
    Gpa gpa = badAddr;              ///< Frame the page was evicted from.
    ResourceId resource = 0;
    std::uint64_t pageIndex = 0;
    Cycles readyAt = 0;             ///< Lane completion time (stalls).
    std::array<std::uint8_t, pageSize> sealed{};
    std::function<void(std::span<const std::uint8_t>)> commit;
};

/** The Overshadow cloak engine. */
class CloakEngine : public vmm::CloakBackend
{
  public:
    /**
     * @param vmm The VMM to interpose on.
     * @param master_seed Seed of the VMM master secret.
     * @param metadata_cache Metadata-cache capacity (ablation knob).
     * @param shards Lock stripes for the metadata store and key cache
     *   (>= 1). Guest-visible behavior is shard-count invariant.
     */
    CloakEngine(vmm::Vmm& vmm, std::uint64_t master_seed = 0x05ead0,
                std::size_t metadata_cache = 1024, std::size_t shards = 1);
    ~CloakEngine() override;

    // vmm::CloakBackend ---------------------------------------------------
    vmm::ResolvedPage resolvePage(const vmm::Context& ctx, GuestVA va_page,
                                  const vmm::GuestPte& pte,
                                  vmm::AccessType access) override;
    std::int64_t hypercall(vmm::Vcpu& vcpu, vmm::Hypercall num,
                           std::span<const std::uint64_t> args) override;
    std::size_t sealPlaintextFrames(std::span<const Gpa> gpas) override;
    bool evictPageAsync(
        Gpa gpa,
        std::function<void(std::span<const std::uint8_t>)> commit) override;
    void drainAsyncEvictions() override;
    std::size_t asyncPendingEvictions() const override
    {
        return asyncQueue_.size();
    }

    // Batched page crypto -------------------------------------------------

    /**
     * Encrypt every listed plaintext page of @p res in place, exactly
     * as a sequential loop of per-page encryptions would — same bytes,
     * same metadata updates, same simulated-cycle charges — but with
     * the cipher looked up once and one enclosing trace scope for the
     * whole batch. Pages already encrypted are the caller's bug (same
     * contract as the single-page path).
     */
    void encryptPages(Resource& res, std::span<const PageCryptoItem> items);

    /**
     * Decrypt + verify every listed ciphertext page of @p res in
     * place. Each item's gpa names the frame holding its image; after
     * the call the page is plaintext-clean and resident there, with
     * the plaintext index updated and its shadows suspended — the same
     * end state a per-page read resolution leaves. Items are processed
     * in order; an integrity violation on any page kills the process
     * mid-batch (pages before it are already plaintext, exactly as the
     * sequential loop would leave them).
     */
    void decryptPages(Resource& res, std::span<const PageCryptoItem> items);

    // Trusted runtime services (modelling VMM<->shim cooperation) ---------

    /** Create a domain for (asid, pid) with the given identity. */
    DomainId createDomain(Asid asid, Pid pid,
                          const crypto::Digest& identity);

    /** Tear down a domain: purge plaintext index, destroy resources. */
    void teardownDomain(DomainId id);

    Domain* findDomain(DomainId id);

    /** Register/unregister a cloaked VA range for a domain. */
    ResourceId registerRegion(DomainId domain, GuestVA start,
                              std::uint64_t pages,
                              ResourceId resource = 0,
                              std::uint64_t resource_page_offset = 0);
    void unregisterRegion(DomainId domain, GuestVA start);

    /** CTC handling used by the secure-control-transfer path. A failed
     *  verification names its cause and is recorded in the audit log. */
    void bindCtc(DomainId domain, GuestVA ctc_va);
    void recordCtcHash(DomainId domain, const crypto::Digest& hash);
    Expected<void, CloakError> verifyCtcHash(DomainId domain,
                                             const crypto::Digest& hash);

    /** Fork support. The parent mints a token before the fork trap;
     *  immediately after the trap returns (when the kernel has eagerly
     *  copied the encrypted page images and the parent has not yet run)
     *  it snapshots its metadata; the child consumes the snapshot.
     *  Every rejection carries a typed reason and is audited. */
    Expected<std::uint64_t, CloakError> prepareFork(DomainId parent);
    Expected<void, CloakError> snapshotFork(DomainId parent,
                                            std::uint64_t token);
    Expected<DomainId, CloakError> forkAttach(Asid child_asid,
                                              Pid child_pid,
                                              std::uint64_t token);

    // Checkpoint/restore & live migration services ------------------------

    /**
     * Encrypt every resident plaintext page of a domain in place,
     * batched per resource (the same bulk path prepareFramesForKernel
     * uses). After this the domain's entire protected state is
     * ciphertext + metadata — the canonical form a checkpoint image or
     * a pre-copy round serializes. Returns the number of pages sealed.
     */
    std::size_t sealDomainPlaintext(DomainId id);

    /**
     * MAC key for a migration image/stream identified by @p nonce.
     * Derived from the VMM master secret: source and target VMMs
     * sharing a platform secret derive the same key (the trusted
     * VMM-to-VMM channel of the paper's migration sketch).
     */
    crypto::Digest migrationKey(std::uint64_t nonce) const
    {
        return keys_.migrationKey(nonce);
    }

    /**
     * Restore-side resource materialization: create a resource for
     * @p domain whose key identity @p key_id was minted on the source
     * machine, and reserve the local id space past it so no future
     * resource aliases the imported key.
     */
    Resource& importResource(DomainId domain, ResourceId key_id,
                             bool is_file = false,
                             std::uint64_t file_key = 0);

    /** Protected-file support. */
    Expected<ResourceId, CloakError>
    attachFileResource(DomainId domain, std::uint64_t file_key);
    Expected<void, CloakError> sealFileResource(DomainId domain,
                                                ResourceId resource);
    void discardFileMetadata(std::uint64_t file_key);

    /** Sealed-bundle store (tests tamper with this directly). */
    std::map<std::uint64_t, std::vector<std::uint8_t>>& sealedStore()
    {
        return sealedStore_;
    }

    MetadataStore& metadata() { return metadata_; }
    crypto::KeyManager& keys() { return keys_; }
    const AuditLog& auditLog() const { return auditLog_; }
    StatGroup& stats() { return stats_; }

    /** Enable/disable the clean-plaintext optimization (ablation). */
    void setCleanOptimization(bool on) { cleanOptimization_ = on; }

    /** Resize the re-encryption victim cache (0 disables; ablation). */
    void setVictimCacheCapacity(std::size_t entries)
    {
        victims_.setCapacity(entries);
    }
    const VictimCache& victimCache() const { return victims_; }

    /** Bound the audit ring (oldest events drop once full). */
    void setAuditLogCapacity(std::size_t entries)
    {
        auditLog_.setCapacity(entries);
    }

    /**
     * Host worker threads for the batched page-crypto paths
     * (encryptPages / decryptPages and everything routed through them,
     * including the prepareFramesForKernel pre-seal). 1 = the serial
     * pre-pool behavior, 0 = one lane per hardware thread. Purely a
     * host-speed knob: frames, metadata, victim-cache contents,
     * simulated cycles and trace event order are identical for every
     * setting (see encryptPagesParallel for the determinism argument).
     */
    void setCryptoWorkers(unsigned workers) { pool_.resize(workers); }
    unsigned cryptoWorkers() const { return pool_.workers(); }

    /**
     * Depth of the asynchronous eviction queue. 0 (the default) keeps
     * the exact synchronous legacy path: evictPageAsync always refuses
     * and the kernel seals + writes on its critical path. At depth N
     * up to N eviction seals ride the background lane; enqueueing when
     * full retires the oldest entry first.
     */
    void setAsyncEvictDepth(std::size_t depth) { asyncDepth_ = depth; }
    std::size_t asyncEvictDepth() const { return asyncDepth_; }

    /** Entries still awaiting their drain commit (leak-oracle scans
     *  read the staging ciphertext through this). */
    const std::deque<AsyncSealEntry>& asyncPendingEntries() const
    {
        return asyncQueue_;
    }

    /**
     * Incremental page integrity: per-chunk hash tree instead of the
     * flat page MAC, so partial writes re-MAC only touched chunks plus
     * the root. Opt-in (anonymous resources only; files keep the flat
     * MAC, and checkpoint refuses — chunk state is not serialized).
     * Must be flipped before any page of the run is sealed.
     */
    void setChunkedIntegrity(bool on) { chunkedIntegrity_ = on; }
    bool chunkedIntegrity() const { return chunkedIntegrity_; }

    /**
     * Constant-cost response mode (timing-channel hardening, ablation).
     * Every distinguishable cloak response charges its worst-case
     * sibling's cycles: victim-cache hits and clean re-encrypts charge
     * the full dirty seal, the victim-decrypt fast path charges a full
     * verify+decrypt, metadata-cache hits charge a miss, and kernel
     * passthrough of an already-sealed cloaked page charges a full seal
     * (the zero-cost distinguisher the timing campaign found). Bytes,
     * verdicts and cache behavior are unchanged — only cycle
     * accounting. See docs/threat-model.md for the oracle inventory.
     */
    void setConstantCostMode(bool on);
    bool constantCostMode() const { return constantCost_; }

  private:
    struct PlaintextRef
    {
        ResourceId resource;
        std::uint64_t pageIndex;
    };

    Region* findRegion(DomainId domain, Asid asid, GuestVA va_page);
    Domain& domainOf(DomainId id);

    /** Key material via the resource's handle, re-acquiring only when
     *  the key identity changed since the handle was taken. */
    const crypto::Aes128& cipherFor(Resource& res);
    const crypto::HmacKey& sealingHmacFor(Resource& res);

    /** Encrypt the plaintext page of (resource,page) in place. */
    void encryptPage(Resource& res, std::uint64_t page_index,
                     PageMeta& meta);

    /** encryptPage with the per-resource cipher already looked up
     *  (the batch path hoists the lookup out of its loop). When
     *  @p defer_cycles is non-null the page's cycle charges accumulate
     *  there instead of the guest timeline (the asynchronous eviction
     *  lane); event counts are still recorded. */
    void encryptPageWith(Resource& res, std::uint64_t page_index,
                         PageMeta& meta, const crypto::Aes128& cipher,
                         std::uint64_t* defer_cycles = nullptr);

    /** Decrypt + verify the page image in @p gpa; throws on mismatch. */
    void decryptAndVerify(Resource& res, std::uint64_t page_index,
                          PageMeta& meta, Gpa gpa);

    /** decryptAndVerify with the cipher already looked up. */
    void decryptAndVerifyWith(Resource& res, std::uint64_t page_index,
                              PageMeta& meta, Gpa gpa,
                              const crypto::Aes128& cipher);

    /** Chunked-integrity seal / unseal bodies (chunkedIntegrity_ on,
     *  anonymous resources). Same in-place contract as the flat paths;
     *  cost scales with the number of dirty chunks. */
    void sealPageChunked(Resource& res, std::uint64_t page_index,
                         PageMeta& meta, const crypto::Aes128& cipher,
                         std::uint64_t* defer_cycles);
    void unsealPageChunked(Resource& res, std::uint64_t page_index,
                           PageMeta& meta, Gpa gpa,
                           const crypto::Aes128& cipher);

    /** Integrity hash of one chunk's ciphertext bound to its identity
     *  (key, page, chunk index, chunk version, chunk IV). */
    crypto::Digest chunkHash(const Resource& res, std::uint64_t page_index,
                             std::size_t chunk, const ChunkState& cs,
                             std::span<const std::uint8_t> ciphertext);

    /** Root of the chunk hash tree: SHA-256 over the chunk hashes. */
    crypto::Digest chunkRoot(const ChunkState& cs);

    /** Retire the oldest queued async eviction (stall + commit). */
    void drainOneAsyncEviction();

    /** Parallel fan-out/ordered-merge bodies of the batch API, used
     *  when the pool has more than one lane and the batch more than
     *  one item. Output-identical to the serial loops. */
    void encryptPagesParallel(Resource& res,
                              std::span<const PageCryptoItem> items,
                              const crypto::Aes128& cipher);
    void decryptPagesParallel(Resource& res,
                              std::span<const PageCryptoItem> items,
                              const crypto::Aes128& cipher);

    /** Integrity hash of a ciphertext page bound to its identity. */
    crypto::Digest pageHash(const Resource& res, std::uint64_t page_index,
                            const PageMeta& meta,
                            std::span<const std::uint8_t> ciphertext);

    [[noreturn]] void violation(Resource& res, std::uint64_t page_index,
                                const std::string& reason);

    /** Record a rejected operation in the audit log and build the
     *  error tag the caller returns. All Expected error paths funnel
     *  through here, so emission cannot be forgotten at a call site. */
    Error<CloakError> auditError(CloakError code, DomainId domain,
                                 ResourceId resource = 0,
                                 std::uint64_t page_index = 0);

    std::span<std::uint8_t> frameBytes(Gpa gpa);

    vmm::Vmm& vmm_;
    crypto::KeyManager keys_;
    MetadataStore metadata_;

    std::map<DomainId, Domain> domains_;
    DomainId nextDomain_ = 1;

    /** Frames currently holding plaintext: gpa -> owner page. */
    std::map<Gpa, PlaintextRef> plaintextIndex_;

    /** One pre-cloned region awaiting a fork child. */
    struct PendingRegion
    {
        Region region;          ///< Parent-relative template.
        ResourceId clonedResource;
    };

    /** Outstanding fork authorizations. */
    struct PendingFork
    {
        DomainId parent = systemDomain;
        bool snapshotted = false;
        std::vector<PendingRegion> regions;
        GuestVA ctcVa = 0;
    };
    std::map<std::uint64_t, PendingFork> pendingForks_;
    std::uint64_t nextForkToken_ = 0x4f56'0001;

    /** Sealed metadata bundles keyed by file key. */
    std::map<std::uint64_t, std::vector<std::uint8_t>> sealedStore_;

    bool cleanOptimization_ = true;
    VictimCache victims_;
    AuditLog auditLog_;
    StatGroup stats_;

    /** Asynchronous eviction pipeline (0 = exact legacy sync path). */
    std::size_t asyncDepth_ = 0;
    std::deque<AsyncSealEntry> asyncQueue_;
    /** When the background lane finishes its last accepted job. */
    Cycles laneBusyUntil_ = 0;
    /** Reentrancy guard: commits must not re-enter the drain. */
    bool asyncDraining_ = false;

    /** Per-chunk hash-tree integrity instead of the flat page MAC. */
    bool chunkedIntegrity_ = false;

    /** Constant-cost responses (see setConstantCostMode). */
    bool constantCost_ = false;

    /** The dirty full-seal charge — the cost every equalized branch
     *  pays under constant-cost mode. */
    Cycles worstCaseSealCycles() const;

    /** Is @p va_page inside any domain's cloaked region of @p asid?
     *  (The equalized-passthrough check; O(domains), cold path.) */
    bool inCloakedRegion(Asid asid, GuestVA va_page);

    /** Host lanes for the batch paths; one lane = no threads. */
    WorkerPool pool_{1};
};

/** Application identity: hash of the program name (stands in for a
 *  hash of the binary + shim in the paper). */
crypto::Digest programIdentity(const std::string& program_name);

} // namespace osh::cloak

#endif // OSH_CLOAK_ENGINE_HH
