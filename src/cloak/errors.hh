/**
 * @file
 * Typed failure codes shared across the cloak layer.
 *
 * CloakError used to live in engine.hh, but the metadata store's
 * Expected-based lookup/unseal API returns the same codes, and
 * metadata.hh cannot include engine.hh (the engine owns a store).
 * Every error travels in an Expected<T, CloakError>; the engine
 * records each one in the audit ring at the point of failure, so
 * callers never translate sentinels back into causes.
 */

#ifndef OSH_CLOAK_ERRORS_HH
#define OSH_CLOAK_ERRORS_HH

#include <cstdint>

namespace osh::cloak
{

/** Typed failure reasons for the cloak layer's fallible operations. */
enum class CloakError : std::uint8_t
{
    UnknownDomain,          ///< Operation on a domain id that does not exist.
    NoCtcHash,              ///< CTC verified before any hash was recorded.
    CtcHashMismatch,        ///< CTC contents differ from the recorded hash.
    BadForkToken,           ///< Fork token unknown or for another domain.
    ForkAlreadySnapshotted, ///< snapshotFork called twice for one token.
    ForkNotSnapshotted,     ///< forkAttach before snapshotFork.
    UnknownResource,        ///< Resource id absent from the shard directory.
    ForeignResource,        ///< Resource belongs to another domain.
    NotAFileResource,       ///< File operation on a private memory resource.
    SealRejected,           ///< Sealed bundle failed MAC/identity/version.
    IntegrityViolation,     ///< Page hash mismatch (kernel tampering/replay).

    // Metadata-store typed failures (shard-miss vs. integrity split).
    ShardMiss,              ///< Directory names a shard that lost the id.
    SealBadMac,             ///< Sealed bundle MAC did not verify.
    SealBadIdentity,        ///< Bundle sealed under another identity.
    SealRollback,           ///< Bundle older than the witnessed floor.
    SealMalformed,          ///< Bundle truncated or structurally invalid.
};

/** Stable short name for an error (used as the audit-event reason). */
inline const char*
cloakErrorName(CloakError e)
{
    switch (e) {
      case CloakError::UnknownDomain: return "unknown_domain";
      case CloakError::NoCtcHash: return "no_ctc_hash";
      case CloakError::CtcHashMismatch: return "ctc_hash_mismatch";
      case CloakError::BadForkToken: return "bad_fork_token";
      case CloakError::ForkAlreadySnapshotted:
        return "fork_already_snapshotted";
      case CloakError::ForkNotSnapshotted: return "fork_not_snapshotted";
      case CloakError::UnknownResource: return "unknown_resource";
      case CloakError::ForeignResource: return "foreign_resource";
      case CloakError::NotAFileResource: return "not_a_file_resource";
      case CloakError::SealRejected: return "seal_rejected";
      case CloakError::IntegrityViolation: return "integrity_violation";
      case CloakError::ShardMiss: return "shard_miss";
      case CloakError::SealBadMac: return "seal_bad_mac";
      case CloakError::SealBadIdentity: return "seal_bad_identity";
      case CloakError::SealRollback: return "seal_rollback";
      case CloakError::SealMalformed: return "seal_malformed";
    }
    return "?";
}

} // namespace osh::cloak

#endif // OSH_CLOAK_ERRORS_HH
