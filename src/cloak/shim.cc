#include "cloak/shim.hh"

#include "base/bytes.hh"
#include "base/logging.hh"
#include "cloak/transfer.hh"
#include "crypto/sha256.hh"
#include "os/kernel.hh"
#include "vmm/context.hh"

#include <array>
#include <cstring>
#include <vector>

namespace osh::cloak
{

using os::Sys;
using os::SyscallArgs;

namespace
{

/** splitmix64: the shim's private echo-token stream. */
std::uint64_t
splitmix(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Shim::Shim(CloakEngine& engine, DomainId domain, os::Env& env)
    : engine_(engine), domain_(domain), env_(env)
{
    protectedPrefixes_.push_back("/cloaked");
}

std::uint64_t
Shim::pathKey(const std::string& path)
{
    crypto::Digest d = crypto::Sha256::hash(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(path.data()), path.size()));
    return loadLe64(d.data());
}

void
Shim::addProtectedPrefix(const std::string& prefix)
{
    protectedPrefixes_.push_back(prefix);
}

bool
Shim::isProtectedPath(const std::string& path) const
{
    for (const std::string& p : protectedPrefixes_) {
        if (path.rfind(p, 0) == 0)
            return true;
    }
    return false;
}

std::uint64_t
Shim::takePendingForkToken()
{
    osh_assert(!pendingForkTokens_.empty(),
               "fork attach without a prepared token");
    std::uint64_t token = pendingForkTokens_.back();
    pendingForkTokens_.pop_back();
    return token;
}

void
Shim::initialize(const std::optional<InheritedLayout>& inherit)
{
    auto& vcpu = env_.vcpu();
    auto hyper = [&vcpu](vmm::Hypercall num,
                         std::initializer_list<std::uint64_t> a) {
        std::array<std::uint64_t, 4> args{};
        std::size_t i = 0;
        for (std::uint64_t v : a)
            args[i++] = v;
        return vcpu.hypercall(num, std::span<const std::uint64_t>(
                                       args.data(), i));
    };

    if (inherit) {
        // Fork child: regions were attached by the VMM during fork
        // attach; address-space layout (CTC, bounce) is inherited.
        ctcVa_ = inherit->ctcVa;
        bounceVa_ = inherit->bounceVa;
    } else {
        // Register the cloaked regions the loader created (stack,
        // code) before the program touches them.
        for (const auto& [start, vma] : env_.process().as.vmas()) {
            if (!vma.cloaked)
                continue;
            hyper(vmm::Hypercall::CloakRegisterRegion,
                  {vma.start, vma.pages(), 0, 0});
        }

        // Cloaked thread context page.
        std::int64_t ctc = env_.trapToKernel(
            Sys::Mmap, {pageSize, os::protRead | os::protWrite,
                        os::mapAnon | os::mapCloaked, ~0ull, 0});
        osh_assert(ctc > 0, "CTC allocation failed");
        ctcVa_ = static_cast<GuestVA>(ctc);
        hyper(vmm::Hypercall::CloakRegisterRegion, {ctcVa_, 1, 0, 0});

        // Uncloaked bounce buffers for marshalling.
        std::int64_t bounce = env_.trapToKernel(
            Sys::Mmap, {bouncePages_ * pageSize,
                        os::protRead | os::protWrite, os::mapAnon,
                        ~0ull, 0});
        osh_assert(bounce > 0, "bounce allocation failed");
        bounceVa_ = static_cast<GuestVA>(bounce);
    }

    hyper(vmm::Hypercall::CloakRegisterThread, {ctcVa_});

    env_.setInterposer(this);
    env_.setTrapHook([this](os::Env& env, Sys num,
                            const SyscallArgs& args) {
        return SecureTransfer::aroundSyscall(engine_, domain_, env, num,
                                             args);
    });
}

void
Shim::detach()
{
    env_.setInterposer(nullptr);
    env_.setTrapHook(nullptr);
}

std::int64_t
Shim::trap(Sys num, const SyscallArgs& args)
{
    return env_.trapToKernel(num, args);
}

void
Shim::copyGuest(GuestVA dst, GuestVA src, std::uint64_t len)
{
    std::array<std::uint8_t, pageSize> buf;
    std::uint64_t done = 0;
    while (done < len) {
        std::uint64_t n = std::min<std::uint64_t>(len - done, buf.size());
        env_.readBytes(src + done,
                       std::span<std::uint8_t>(buf.data(), n));
        env_.writeBytes(dst + done,
                        std::span<const std::uint8_t>(buf.data(), n));
        done += n;
    }
}

GuestVA
Shim::stageString(const std::string& s, std::uint64_t slot)
{
    GuestVA va = bounceVa_ + bounceDataBytes + slot * 1024;
    env_.writeString(va, s);
    return va;
}

// ---------------------------------------------------------------------------
// Marshalled calls
// ---------------------------------------------------------------------------

std::int64_t
Shim::marshalledRead(Sys num, std::uint64_t fd, GuestVA user_buf,
                     std::uint64_t len)
{
    std::uint64_t done = 0;
    while (done < len) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(len - done, bounceDataBytes);
        std::int64_t rv = trap(num, {fd, bounceVa_, chunk});
        if (rv < 0)
            return done > 0 ? static_cast<std::int64_t>(done) : rv;
        if (rv > 0)
            copyGuest(user_buf + done, bounceVa_,
                      static_cast<std::uint64_t>(rv));
        done += static_cast<std::uint64_t>(rv);
        // A short transfer means EOF or (for pipes) all that was
        // available; do not trap again, which could block.
        if (static_cast<std::uint64_t>(rv) < chunk)
            break;
    }
    engine_.stats().counter("shim_marshalled_reads").inc();
    return static_cast<std::int64_t>(done);
}

std::int64_t
Shim::marshalledWrite(std::uint64_t fd, GuestVA user_buf,
                      std::uint64_t len)
{
    std::uint64_t done = 0;
    while (done < len) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(len - done, bounceDataBytes);
        copyGuest(bounceVa_, user_buf + done, chunk);
        std::int64_t rv = trap(Sys::Write, {fd, bounceVa_, chunk});
        if (rv < 0)
            return done > 0 ? static_cast<std::int64_t>(done) : rv;
        done += static_cast<std::uint64_t>(rv);
        if (static_cast<std::uint64_t>(rv) < chunk)
            break;
    }
    engine_.stats().counter("shim_marshalled_writes").inc();
    return static_cast<std::int64_t>(done);
}

std::int64_t
Shim::marshalledPread(std::uint64_t fd, GuestVA user_buf,
                      std::uint64_t len, std::uint64_t off)
{
    std::uint64_t done = 0;
    while (done < len) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(len - done, bounceDataBytes);
        std::int64_t rv = trap(Sys::Pread,
                               {fd, bounceVa_, chunk, off + done});
        if (rv < 0)
            return done > 0 ? static_cast<std::int64_t>(done) : rv;
        if (rv > 0)
            copyGuest(user_buf + done, bounceVa_,
                      static_cast<std::uint64_t>(rv));
        done += static_cast<std::uint64_t>(rv);
        if (static_cast<std::uint64_t>(rv) < chunk)
            break;
    }
    engine_.stats().counter("shim_marshalled_reads").inc();
    return static_cast<std::int64_t>(done);
}

std::int64_t
Shim::marshalledPwrite(std::uint64_t fd, GuestVA user_buf,
                       std::uint64_t len, std::uint64_t off)
{
    std::uint64_t done = 0;
    while (done < len) {
        std::uint64_t chunk =
            std::min<std::uint64_t>(len - done, bounceDataBytes);
        copyGuest(bounceVa_, user_buf + done, chunk);
        std::int64_t rv = trap(Sys::Pwrite,
                               {fd, bounceVa_, chunk, off + done});
        if (rv < 0)
            return done > 0 ? static_cast<std::int64_t>(done) : rv;
        done += static_cast<std::uint64_t>(rv);
        if (static_cast<std::uint64_t>(rv) < chunk)
            break;
    }
    engine_.stats().counter("shim_marshalled_writes").inc();
    return static_cast<std::int64_t>(done);
}

// ---------------------------------------------------------------------------
// Protected-file emulation
// ---------------------------------------------------------------------------

std::int64_t
Shim::openProtected(const std::string& path, std::uint64_t flags)
{
    auto& vcpu = env_.vcpu();
    GuestVA staged = stageString(path, 0);
    std::int64_t fd = trap(Sys::Open, {staged, flags});
    if (fd < 0)
        return fd;

    std::uint64_t key = pathKey(path);
    std::array<std::uint64_t, 1> key_arg{key};
    if (flags & os::openTrunc)
        vcpu.hypercall(vmm::Hypercall::CloakDiscardFile, key_arg);

    std::int64_t res =
        vcpu.hypercall(vmm::Hypercall::CloakAttachFile, key_arg);
    if (res <= 0 && (flags & os::openCreate)) {
        // A freshly created file found stale sealed metadata (e.g. the
        // path was unlinked outside the shim): the creator explicitly
        // authorizes a reset.
        vcpu.hypercall(vmm::Hypercall::CloakDiscardFile, key_arg);
        res = vcpu.hypercall(vmm::Hypercall::CloakAttachFile, key_arg);
    }
    if (res <= 0) {
        trap(Sys::Close, {static_cast<std::uint64_t>(fd)});
        return -os::errPerm;
    }

    // Size via a marshalled fstat.
    GuestVA out = bounceVa_ + bounceDataBytes + 3 * 1024;
    std::int64_t sr = trap(Sys::Fstat,
                           {static_cast<std::uint64_t>(fd), out});
    std::uint64_t size = 0;
    if (sr == 0)
        size = env_.load64(out); // StatBuf.size is the first field.

    std::uint64_t map_pages =
        std::max<std::uint64_t>(1, roundUpToPage(size) / pageSize);
    std::int64_t mva = trap(Sys::Mmap,
                            {map_pages * pageSize,
                             os::protRead | os::protWrite,
                             os::mapShared | os::mapCloaked,
                             static_cast<std::uint64_t>(fd), 0});
    if (mva < 0) {
        trap(Sys::Close, {static_cast<std::uint64_t>(fd)});
        return mva;
    }
    std::array<std::uint64_t, 4> reg{static_cast<std::uint64_t>(mva),
                                     map_pages,
                                     static_cast<std::uint64_t>(res), 0};
    vcpu.hypercall(vmm::Hypercall::CloakRegisterRegion, reg);

    CloakedFile cf;
    cf.fd = static_cast<std::uint64_t>(fd);
    cf.path = path;
    cf.fileKey = key;
    cf.resource = static_cast<ResourceId>(res);
    cf.mapVa = static_cast<GuestVA>(mva);
    cf.mapPages = map_pages;
    cf.size = size;
    cf.offset = 0;
    cloakedFiles_[cf.fd] = cf;
    engine_.stats().counter("shim_protected_opens").inc();
    return fd;
}

std::int64_t
Shim::emulatedRead(CloakedFile& cf, GuestVA buf, std::uint64_t len)
{
    if (cf.offset >= cf.size || len == 0)
        return 0;
    std::uint64_t n = std::min<std::uint64_t>(len, cf.size - cf.offset);
    copyGuest(buf, cf.mapVa + cf.offset, n);
    cf.offset += n;
    engine_.stats().counter("shim_emulated_reads").inc();
    return static_cast<std::int64_t>(n);
}

std::int64_t
Shim::growMapping(CloakedFile& cf, std::uint64_t new_size)
{
    std::uint64_t new_pages = roundUpToPage(new_size) / pageSize;
    if (new_pages <= cf.mapPages)
        return 0;
    // Grow with slack so streaming writes do not remap per page.
    new_pages = std::max(new_pages, cf.mapPages * 2);

    auto& vcpu = env_.vcpu();
    std::array<std::uint64_t, 1> unreg{cf.mapVa};
    vcpu.hypercall(vmm::Hypercall::CloakUnregisterRegion, unreg);
    trap(Sys::Munmap, {cf.mapVa});

    std::int64_t mva = trap(Sys::Mmap,
                            {new_pages * pageSize,
                             os::protRead | os::protWrite,
                             os::mapShared | os::mapCloaked, cf.fd, 0});
    if (mva < 0)
        return mva;
    std::array<std::uint64_t, 4> reg{static_cast<std::uint64_t>(mva),
                                     new_pages, cf.resource, 0};
    vcpu.hypercall(vmm::Hypercall::CloakRegisterRegion, reg);
    cf.mapVa = static_cast<GuestVA>(mva);
    cf.mapPages = new_pages;
    engine_.stats().counter("shim_map_grows").inc();
    return 0;
}

std::int64_t
Shim::emulatedWrite(CloakedFile& cf, GuestVA buf, std::uint64_t len)
{
    if (len == 0)
        return 0;
    std::uint64_t new_end = cf.offset + len;
    if (new_end > cf.mapPages * pageSize) {
        std::int64_t r = growMapping(cf, new_end);
        if (r < 0)
            return r;
    }
    copyGuest(cf.mapVa + cf.offset, buf, len);
    cf.offset = new_end;
    if (new_end > cf.size) {
        cf.size = new_end;
        // Keep the kernel's idea of the size current so writeback and
        // later opens see the full file.
        trap(Sys::Ftruncate, {cf.fd, new_end});
    }
    engine_.stats().counter("shim_emulated_writes").inc();
    return static_cast<std::int64_t>(len);
}

std::int64_t
Shim::emulatedPread(CloakedFile& cf, GuestVA buf, std::uint64_t len,
                    std::uint64_t off)
{
    // Positional read: the file offset is untouched.
    if (off >= cf.size || len == 0)
        return 0;
    std::uint64_t n = std::min<std::uint64_t>(len, cf.size - off);
    copyGuest(buf, cf.mapVa + off, n);
    engine_.stats().counter("shim_emulated_reads").inc();
    return static_cast<std::int64_t>(n);
}

std::int64_t
Shim::emulatedPwrite(CloakedFile& cf, GuestVA buf, std::uint64_t len,
                     std::uint64_t off)
{
    if (len == 0)
        return 0;
    std::uint64_t new_end = off + len;
    if (new_end > cf.mapPages * pageSize) {
        std::int64_t r = growMapping(cf, new_end);
        if (r < 0)
            return r;
    }
    copyGuest(cf.mapVa + off, buf, len);
    if (new_end > cf.size) {
        cf.size = new_end;
        trap(Sys::Ftruncate, {cf.fd, new_end});
    }
    engine_.stats().counter("shim_emulated_writes").inc();
    return static_cast<std::int64_t>(len);
}

std::int64_t
Shim::emulatedLseek(CloakedFile& cf, std::int64_t off,
                    std::uint64_t whence)
{
    std::int64_t base;
    switch (whence) {
      case os::seekSet: base = 0; break;
      case os::seekCur: base = static_cast<std::int64_t>(cf.offset); break;
      case os::seekEnd: base = static_cast<std::int64_t>(cf.size); break;
      default: return -os::errInval;
    }
    std::int64_t target = base + off;
    if (target < 0)
        return -os::errInval;
    cf.offset = static_cast<std::uint64_t>(target);
    return target;
}

std::int64_t
Shim::closeProtected(std::uint64_t fd)
{
    auto it = cloakedFiles_.find(fd);
    osh_assert(it != cloakedFiles_.end(), "closeProtected of unknown fd");
    CloakedFile cf = it->second;
    auto& vcpu = env_.vcpu();

    trap(Sys::Fsync, {cf.fd});
    std::array<std::uint64_t, 1> seal{cf.resource};
    vcpu.hypercall(vmm::Hypercall::CloakSealMetadata, seal);
    std::array<std::uint64_t, 1> unreg{cf.mapVa};
    vcpu.hypercall(vmm::Hypercall::CloakUnregisterRegion, unreg);
    trap(Sys::Munmap, {cf.mapVa});
    std::int64_t r = trap(Sys::Close, {cf.fd});
    cloakedFiles_.erase(it);
    engine_.stats().counter("shim_protected_closes").inc();
    return r;
}

// ---------------------------------------------------------------------------
// Batched submission
// ---------------------------------------------------------------------------

GuestVA
Shim::marshalArena()
{
    if (arenaVa_ == 0) {
        static_assert(os::maxBatchDepth * os::batchDescBytes <= pageSize,
                      "kernel submission ring no longer fits one page");
        static_assert(os::maxBatchDepth * os::batchCompBytes <= pageSize,
                      "kernel completion ring no longer fits one page");
        // Plain uncloaked anonymous memory, registered once and reused
        // for every batch: this replaces the per-call bounce setup cost
        // with a persistent arena.
        std::int64_t va = trap(Sys::Mmap,
                               {arenaPages_ * pageSize,
                                os::protRead | os::protWrite, os::mapAnon,
                                ~0ull, 0});
        osh_assert(va > 0, "marshal arena allocation failed");
        arenaVa_ = static_cast<GuestVA>(va);
    }
    return arenaVa_;
}

std::uint64_t
Shim::nextBatchNonce()
{
    return splitmix(batchNonceState_);
}

[[noreturn]] void
Shim::ringViolation(const char* what)
{
    engine_.stats().counter("ring_violations").inc();
    Pid pid = 0;
    if (Domain* d = engine_.findDomain(domain_))
        pid = d->pid;
    osh_warn("domain %llu: syscall ring violation: %s",
             static_cast<unsigned long long>(domain_), what);
    throw vmm::ProcessKilled{
        pid, std::string("cloak violation: syscall ring tampered (") +
                 what + ")"};
}

std::int64_t
Shim::shimSubmitBatch(const SyscallArgs& args)
{
    GuestVA app_sub = args[0];
    GuestVA app_comp = args[1];
    std::uint64_t count = args[2];
    if (count == 0 || count > os::maxBatchDepth)
        return -os::errInval;

    // Copy the app's descriptors out of cloaked memory exactly once;
    // everything below works on this private snapshot.
    std::vector<std::uint8_t> araw(count * os::batchDescBytes);
    env_.readBytes(app_sub, araw);
    std::vector<os::BatchDesc> descs(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint8_t* d = araw.data() + i * os::batchDescBytes;
        descs[i].num = static_cast<Sys>(loadLe64(d));
        for (std::size_t a = 0; a < 5; ++a)
            descs[i].args[a] = loadLe64(d + 8 * (a + 1));
        descs[i].echo = loadLe64(d + 48);
        descs[i].reserved = loadLe64(d + 56);
    }

    auto writeAppCompletion = [&](std::uint64_t slot, std::int64_t rv) {
        std::array<std::uint8_t, os::batchCompBytes> c{};
        storeLe64(c.data(), static_cast<std::uint64_t>(rv));
        storeLe64(c.data() + 8, descs[slot].echo);
        env_.writeBytes(app_comp + slot * os::batchCompBytes, c);
    };

    auto rejected = [](const os::BatchDesc& d) {
        return d.reserved != 0 || d.num == Sys::SubmitBatch ||
               !os::Kernel::batchable(d.num);
    };

    // Calls the shim must serve locally: protected-file emulation, and
    // fd duplication that would alias a protected fd behind our back.
    auto localOnly = [&](const os::BatchDesc& d) {
        switch (d.num) {
          case Sys::Read:
          case Sys::Write:
          case Sys::Pread:
          case Sys::Pwrite:
          case Sys::Lseek:
          case Sys::Close:
          case Sys::Ftruncate:
          case Sys::Fsync:
          case Sys::Fstat:
            return cloakedFiles_.count(d.args[0]) != 0;
          case Sys::Dup2:
            // dup2 closing a protected fd underneath the shim's table
            // is refused; dup/dup2 FROM a protected fd pass through.
            return cloakedFiles_.count(d.args[1]) != 0;
          default:
            return false;
        }
    };

    if (count == 1) {
        // Depth 1 reproduces the legacy per-trap path bit for bit: no
        // arena, no kernel ring — route straight through the ordinary
        // dispatch so every committed baseline replays unchanged.
        const os::BatchDesc& d = descs[0];
        std::int64_t rv;
        if (rejected(d)) {
            rv = -os::errInval;
        } else {
            rv = syscall(env_, d.num,
                         {d.args[0], d.args[1], d.args[2], d.args[3],
                          d.args[4]});
        }
        writeAppCompletion(0, rv);
        engine_.stats().counter("shim_batches").inc();
        return 1;
    }

    GuestVA arena = marshalArena();
    GuestVA ksub = arena;
    GuestVA kcomp = arena + pageSize;
    GuestVA stage = arena + 2 * pageSize;
    const std::uint64_t stageBytes = arenaDataPages_ * pageSize;
    std::uint64_t stageUsed = 0;

    /** One descriptor staged onto the kernel-facing ring. */
    struct KernelSlot
    {
        std::uint64_t appIndex = 0; ///< Slot in the app's ring.
        std::uint64_t nonce = 0;    ///< Private echo token we expect back.
        os::BatchDesc desc;         ///< Rewritten descriptor.
        GuestVA appBuf = 0;         ///< App destination for read-backs.
        GuestVA stageVa = 0;        ///< Arena staging address (0: none).
        std::uint64_t len = 0;      ///< Requested transfer length.
    };
    std::vector<KernelSlot> slots;
    std::vector<std::int64_t> results(count, 0);

    // Dispatch the pending kernel-facing ring in ONE secure control
    // transfer, validate every completion (echo token + result bound)
    // and copy read data back into cloaked buffers. Called when the
    // batch is fully staged, and early when staging space runs out or
    // ordering demands the kernel catch up (a locally-served call
    // follows staged kernel work).
    auto flushKernelSlots = [&]() {
        if (slots.empty())
            return;
        std::vector<std::uint8_t> kraw(slots.size() * os::batchDescBytes,
                                       0);
        for (std::size_t k = 0; k < slots.size(); ++k) {
            std::uint8_t* d = kraw.data() + k * os::batchDescBytes;
            const os::BatchDesc& kd = slots[k].desc;
            storeLe64(d, static_cast<std::uint64_t>(kd.num));
            for (std::size_t a = 0; a < 5; ++a)
                storeLe64(d + 8 * (a + 1), kd.args[a]);
            storeLe64(d + 48, kd.echo);
            storeLe64(d + 56, 0);
        }
        env_.writeBytes(ksub, kraw);

        std::int64_t rv = trap(Sys::SubmitBatch,
                               {ksub, kcomp, slots.size()});
        if (rv < 0) {
            // The batch itself was refused (a denial of service, not a
            // protection violation): surface the error per call.
            for (const KernelSlot& s : slots)
                results[s.appIndex] = rv;
        } else if (static_cast<std::uint64_t>(rv) != slots.size()) {
            ringViolation("completion count mismatch");
        } else {
            // Copy completions out of the uncloaked ring exactly once,
            // then validate each before touching cloaked memory.
            std::vector<std::uint8_t> craw(slots.size() *
                                           os::batchCompBytes);
            env_.readBytes(kcomp, craw);
            for (std::size_t k = 0; k < slots.size(); ++k) {
                const KernelSlot& s = slots[k];
                const std::uint8_t* c =
                    craw.data() + k * os::batchCompBytes;
                std::int64_t res =
                    static_cast<std::int64_t>(loadLe64(c));
                std::uint64_t echo = loadLe64(c + 8);
                if (echo != s.nonce)
                    ringViolation("echo token mismatch");
                bool bounded = s.desc.num == Sys::Read ||
                               s.desc.num == Sys::Pread ||
                               s.desc.num == Sys::Write ||
                               s.desc.num == Sys::Pwrite;
                if (bounded && res > static_cast<std::int64_t>(s.len))
                    ringViolation("result exceeds request");
                if ((s.desc.num == Sys::Read ||
                     s.desc.num == Sys::Pread) &&
                    res > 0) {
                    copyGuest(s.appBuf, s.stageVa,
                              static_cast<std::uint64_t>(res));
                }
                if (s.desc.num == Sys::Fstat && res == 0)
                    copyGuest(s.appBuf, s.stageVa, sizeof(os::StatBuf));
                results[s.appIndex] = res;
            }
        }
        engine_.stats().counter("shim_batch_traps").inc();
        engine_.stats().counter("shim_batched_calls").inc(slots.size());
        slots.clear();
        stageUsed = 0;
    };

    auto legacyServe = [&](std::uint64_t i) {
        const os::BatchDesc& d = descs[i];
        results[i] = syscall(env_, d.num,
                             {d.args[0], d.args[1], d.args[2],
                              d.args[3], d.args[4]});
    };

    for (std::uint64_t i = 0; i < count; ++i) {
        const os::BatchDesc& d = descs[i];
        if (rejected(d)) {
            results[i] = -os::errInval;
            continue;
        }
        if (localOnly(d)) {
            if (d.num == Sys::Dup2) {
                results[i] = -os::errInval;
            } else {
                // Let the kernel catch up first so emulated and
                // kernel-bound calls retire in submission order.
                flushKernelSlots();
                legacyServe(i);
            }
            continue;
        }

        KernelSlot s;
        s.appIndex = i;
        s.desc = d;
        std::uint64_t need = 0;
        switch (d.num) {
          case Sys::Read:
          case Sys::Pread:
          case Sys::Fstat:
          case Sys::Write:
          case Sys::Pwrite:
            need = d.num == Sys::Fstat ? sizeof(os::StatBuf)
                                       : d.args[2];
            break;
          default:
            // Register-only: getpid/yield/clock/lseek/dup/close/...
            break;
        }
        if (need > stageBytes) {
            // Larger than the whole staging area: serve through the
            // legacy chunked marshalling path, in order.
            flushKernelSlots();
            legacyServe(i);
            continue;
        }
        if (need > stageBytes - stageUsed)
            flushKernelSlots(); // make room, preserving order
        if (need > 0) {
            s.stageVa = stage + stageUsed;
            stageUsed += need;
            s.len = need;
            if (d.num == Sys::Write || d.num == Sys::Pwrite) {
                // Outbound data leaves cloaked memory here, once.
                copyGuest(s.stageVa, d.args[1], need);
            } else {
                s.appBuf = d.args[1];
            }
            s.desc.args[1] = s.stageVa;
        }
        s.nonce = nextBatchNonce();
        s.desc.echo = s.nonce;
        s.desc.reserved = 0;
        slots.push_back(s);
    }
    flushKernelSlots();

    // Publish all app completions in one bulk write to cloaked memory.
    std::vector<std::uint8_t> acomp(count * os::batchCompBytes, 0);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint8_t* c = acomp.data() + i * os::batchCompBytes;
        storeLe64(c, static_cast<std::uint64_t>(results[i]));
        storeLe64(c + 8, descs[i].echo);
    }
    env_.writeBytes(app_comp, acomp);
    engine_.stats().counter("shim_batches").inc();
    return static_cast<std::int64_t>(count);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

std::int64_t
Shim::shimOpen(const SyscallArgs& args)
{
    std::string path = env_.readString(args[0]);
    std::uint64_t flags = args[1];
    if (isProtectedPath(path))
        return openProtected(path, flags);
    GuestVA staged = stageString(path, 0);
    return trap(Sys::Open, {staged, flags});
}

std::int64_t
Shim::shimMmap(const SyscallArgs& args)
{
    std::int64_t rv = trap(Sys::Mmap, args);
    if (rv > 0 && (args[2] & os::mapCloaked) && (args[2] & os::mapAnon)) {
        std::uint64_t pages = roundUpToPage(args[0]) / pageSize;
        std::array<std::uint64_t, 4> reg{static_cast<std::uint64_t>(rv),
                                         pages, 0, 0};
        env_.vcpu().hypercall(vmm::Hypercall::CloakRegisterRegion, reg);
    }
    return rv;
}

std::int64_t
Shim::shimMunmap(const SyscallArgs& args)
{
    GuestVA va = args[0];
    // If this VA starts a registered cloaked region, detach it first so
    // the VMM scrubs/encrypts resident plaintext before the kernel
    // recycles the frames.
    if (Domain* d = engine_.findDomain(domain_)) {
        for (const Region& r : d->regions) {
            if (r.start == pageBase(va)) {
                std::array<std::uint64_t, 1> unreg{va};
                env_.vcpu().hypercall(
                    vmm::Hypercall::CloakUnregisterRegion, unreg);
                break;
            }
        }
    }
    return trap(Sys::Munmap, args);
}

std::int64_t
Shim::shimFork(const SyscallArgs& args)
{
    std::int64_t token = env_.vcpu().hypercall(
        vmm::Hypercall::CloakPrepareFork, {});
    osh_assert(token > 0, "prepareFork failed");
    pendingForkTokens_.push_back(static_cast<std::uint64_t>(token));
    std::int64_t rv = trap(Sys::Fork, args);
    // Snapshot immediately: the kernel just finished eagerly copying
    // our encrypted page images for the child, and nothing has
    // re-encrypted them yet. The child attaches to this snapshot.
    std::array<std::uint64_t, 1> t{static_cast<std::uint64_t>(token)};
    env_.vcpu().hypercall(vmm::Hypercall::CloakSnapshotFork, t);
    return rv;
}

std::int64_t
Shim::shimExec(const SyscallArgs& args)
{
    // Marshal the program name and argv blob out of cloaked memory
    // while we still can.
    std::string name = env_.readString(args[0]);
    GuestVA staged_name = stageString(name, 0);
    GuestVA staged_blob = 0;
    std::uint64_t blob_len = args[2];
    if (args[1] != 0 && blob_len != 0) {
        staged_blob = bounceVa_;
        copyGuest(staged_blob, args[1],
                  std::min<std::uint64_t>(blob_len, bounceDataBytes));
    }

    // Dismantle this image's protection: exec replaces everything.
    for (auto it = cloakedFiles_.begin(); it != cloakedFiles_.end();) {
        std::uint64_t fd = it->first;
        ++it;
        closeProtected(fd);
    }
    auto& vcpu = env_.vcpu();
    vcpu.hypercall(vmm::Hypercall::CloakTeardownDomain, {});
    detach();
    vcpu.context().view = systemDomain;

    return env_.trapToKernel(Sys::Exec,
                             {staged_name, staged_blob, blob_len});
}

std::int64_t
Shim::syscall(os::Env& env, Sys num, const SyscallArgs& args)
{
    (void)env;
    OSH_TRACE_SCOPE(&env_.vcpu().vmm().machine().tracer(),
                    trace::Category::Shim, os::sysName(num), domain_,
                    env_.thread().pid,
                    static_cast<std::uint64_t>(num));
    switch (num) {
      case Sys::Open:
        return shimOpen(args);

      case Sys::Read:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            return emulatedRead(it->second, args[1], args[2]);
        }
        return marshalledRead(Sys::Read, args[0], args[1], args[2]);

      case Sys::Write:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            return emulatedWrite(it->second, args[1], args[2]);
        }
        return marshalledWrite(args[0], args[1], args[2]);

      case Sys::Pread:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            return emulatedPread(it->second, args[1], args[2], args[3]);
        }
        return marshalledPread(args[0], args[1], args[2], args[3]);

      case Sys::Pwrite:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            return emulatedPwrite(it->second, args[1], args[2], args[3]);
        }
        return marshalledPwrite(args[0], args[1], args[2], args[3]);

      case Sys::Lseek:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            return emulatedLseek(it->second,
                                 static_cast<std::int64_t>(args[1]),
                                 args[2]);
        }
        return trap(num, args);

      case Sys::Dup2:
        // dup/dup2 of a protected fd pass through (the duplicate is a
        // plain kernel descriptor), but dup2 must not CLOSE a protected
        // fd underneath the shim's table: refuse that.
        if (cloakedFiles_.count(args[1]))
            return -os::errInval;
        return trap(num, args);

      case Sys::SubmitBatch:
        return shimSubmitBatch(args);

      case Sys::Close:
        if (cloakedFiles_.count(args[0]))
            return closeProtected(args[0]);
        return trap(num, args);

      case Sys::Ftruncate:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            CloakedFile& cf = it->second;
            if (args[1] < cf.size)
                return -os::errInval; // Shrink unsupported (see docs).
            std::int64_t r = growMapping(cf, args[1]);
            if (r < 0)
                return r;
            cf.size = args[1];
            return trap(num, args);
        }
        return trap(num, args);

      case Sys::Fsync:
        if (auto it = cloakedFiles_.find(args[0]);
            it != cloakedFiles_.end()) {
            std::int64_t r = trap(num, args);
            std::array<std::uint64_t, 1> seal{it->second.resource};
            env_.vcpu().hypercall(vmm::Hypercall::CloakSealMetadata,
                                  seal);
            return r;
        }
        return trap(num, args);

      case Sys::Fstat:
        {
            GuestVA out = bounceVa_ + bounceDataBytes + 3 * 1024;
            std::int64_t r = trap(num, {args[0], out});
            if (r == 0) {
                if (auto it = cloakedFiles_.find(args[0]);
                    it != cloakedFiles_.end()) {
                    // The kernel's size lags emulated writes that have
                    // not been truncated in yet; report the shim's.
                    env_.store64(out, it->second.size);
                }
                copyGuest(args[1], out, sizeof(os::StatBuf));
            }
            return r;
        }

      case Sys::Unlink:
        {
            std::string path = env_.readString(args[0]);
            GuestVA staged = stageString(path, 0);
            std::int64_t r = trap(num, {staged});
            if (r == 0 && isProtectedPath(path)) {
                std::array<std::uint64_t, 1> key{pathKey(path)};
                env_.vcpu().hypercall(vmm::Hypercall::CloakDiscardFile,
                                      key);
            }
            return r;
        }

      case Sys::Mkdir:
        {
            std::string path = env_.readString(args[0]);
            return trap(num, {stageString(path, 0)});
        }

      case Sys::Rename:
        {
            std::string from = env_.readString(args[0]);
            std::string to = env_.readString(args[1]);
            GuestVA f = stageString(from, 0);
            GuestVA t = stageString(to, 1);
            return trap(num, {f, t});
        }

      case Sys::ReadDir:
        {
            GuestVA out = bounceVa_ + bounceDataBytes + 2 * 1024;
            std::uint64_t n = std::min<std::uint64_t>(args[3], 512);
            std::int64_t r = trap(num, {args[0], args[1], out, n});
            if (r >= 0)
                copyGuest(args[2], out,
                          static_cast<std::uint64_t>(r) + 1);
            return r;
        }

      case Sys::Pipe:
        {
            GuestVA out = bounceVa_ + bounceDataBytes + 3 * 1024 + 256;
            std::int64_t r = trap(num, {out});
            if (r == 0)
                copyGuest(args[0], out, 8);
            return r;
        }

      case Sys::WaitPid:
        {
            GuestVA out = bounceVa_ + bounceDataBytes + 3 * 1024 + 512;
            std::int64_t r = trap(num, {args[0], args[1] ? out : 0});
            if (r > 0 && args[1] != 0)
                copyGuest(args[1], out, 4);
            return r;
        }

      case Sys::Spawn:
        {
            std::string name = env_.readString(args[0]);
            GuestVA staged_name = stageString(name, 0);
            GuestVA staged_blob = 0;
            if (args[1] != 0 && args[2] != 0) {
                staged_blob = bounceVa_;
                copyGuest(staged_blob, args[1],
                          std::min<std::uint64_t>(args[2],
                                                  bounceDataBytes));
            }
            return trap(num, {staged_name, staged_blob, args[2]});
        }

      case Sys::Mmap:
        return shimMmap(args);

      case Sys::Munmap:
        return shimMunmap(args);

      case Sys::Fork:
        return shimFork(args);

      case Sys::Exec:
        return shimExec(args);

      default:
        // Pass-through: no memory operands.
        return trap(num, args);
    }
}

} // namespace osh::cloak
