/**
 * @file
 * Protection metadata.
 *
 * For every cloaked resource (a private memory region or a protected
 * file) the VMM records, per page: the cloaking state, the IV used for
 * its latest encryption, the SHA-256 integrity hash of the ciphertext
 * (bound to the resource identity, page index and version), and a
 * monotonically increasing version. Metadata lives in VMM-private
 * memory — the guest can never touch it — and can be *sealed*
 * (serialized + HMAC) for persistence alongside protected files.
 *
 * Resources are partitioned into lock-striped shards keyed by the
 * owning protection domain (per-ASID in this system: one domain per
 * cloaked address space), with a directory mapping resource ids to
 * their shard. Concurrent vCPUs resolving faults in different address
 * spaces therefore touch different stripes. Resource ids stay globally
 * monotonic from a single counter regardless of shard count — ids feed
 * AES key derivation, so they must be shard-count invariant.
 *
 * A capacity-bounded LRU models the paper's metadata cache: lookups
 * charge metadataHit or metadataMiss cycles accordingly. The cache
 * model deliberately stays a single global LRU (with its own lock):
 * splitting it per shard would change the eviction sequence — and the
 * charged cycles — with the shard count, breaking the determinism bar.
 *
 * Fallible entry points (lookup, unseal) return
 * Expected<T, CloakError> with typed codes, so a shard miss and an
 * integrity failure are distinguishable at every call site and the
 * engine's audit ring can record the precise cause.
 */

#ifndef OSH_CLOAK_METADATA_HH
#define OSH_CLOAK_METADATA_HH

#include "base/expected.hh"
#include "base/stats.hh"
#include "base/types.hh"
#include "cloak/errors.hh"
#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/keys.hh"
#include "crypto/sha256.hh"
#include "sim/cost_model.hh"

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace osh::cloak
{

/** Cloaked-page states (the paper's page state machine). */
enum class PageState : std::uint8_t
{
    Encrypted,       ///< Ciphertext; kernel view maps it RW.
    PlaintextClean,  ///< Plaintext, unmodified since decryption; the
                     ///< stored (IV, hash) are still valid, so handing
                     ///< it back to the kernel needs no re-hash.
    PlaintextDirty,  ///< Plaintext, modified; next encryption takes a
                     ///< fresh IV, hash and version.
};

/** Chunk geometry of the incremental-integrity (hash tree) mode. */
constexpr std::size_t chunkSize = 256;
constexpr std::size_t chunksPerPage = pageSize / chunkSize;

/**
 * Per-chunk integrity state for the incremental-MAC mode: each 256-byte
 * chunk carries its own (IV, version, hash) so a partial write re-MACs
 * only the touched chunks plus the root (PageMeta::hash becomes the
 * root — SHA-256 over the concatenated chunk hashes). The plaintext
 * snapshot diffs the next seal's dirty chunks; the ciphertext snapshot
 * lets clean chunks be copied without re-running AES. Both snapshots
 * live in VMM-private memory, like all metadata.
 */
struct ChunkState
{
    std::array<crypto::Iv, chunksPerPage> ivs{};
    std::array<std::uint64_t, chunksPerPage> versions{};
    std::array<crypto::Digest, chunksPerPage> hashes{};
    std::array<std::uint8_t, pageSize> plaintext{};
    std::array<std::uint8_t, pageSize> ciphertext{};
};

/** Per-page protection metadata. */
struct PageMeta
{
    PageState state = PageState::Encrypted;
    crypto::Iv iv{};
    crypto::Digest hash{};
    std::uint64_t version = 0;
    bool initialized = false;     ///< Has this page ever held data?
    Gpa residentGpa = badAddr;    ///< Frame holding plaintext (if any).
    /** Chunked-integrity state; allocated on first seal in chunked
     *  mode, absent (and the flat MAC authoritative) otherwise. */
    std::shared_ptr<ChunkState> chunks;
};

/** A cloaked resource: a keyed collection of page metadata. */
struct Resource
{
    ResourceId id = 0;
    /**
     * Key identity: resources cloned across fork, and file resources
     * re-attached across processes, share the key of their root so
     * ciphertext remains decryptable. For private resources keyId==id.
     */
    ResourceId keyId = 0;
    /**
     * Pre-resolved key material for keyId (cipher + sealing HMAC),
     * acquired once at cloak-attach. The fault hot path encrypts and
     * decrypts through this handle — never through a key-map lookup.
     */
    crypto::KeyHandle key;
    DomainId domain = systemDomain;
    bool isFile = false;
    std::uint64_t fileKey = 0;    ///< Stable file identity (path hash).
    std::map<std::uint64_t, PageMeta> pages;
};

/**
 * The metadata store: all resources plus the cache cost model and the
 * sealed-bundle persistence for protected files.
 */
class MetadataStore
{
  public:
    /**
     * @param cost Cost model charged on lookups.
     * @param cache_capacity Entries the hot metadata cache holds.
     * @param shard_count Lock stripes for resource storage (>= 1).
     *   Guest-visible behavior — ids, cycles, cache hit/miss order —
     *   is identical for every shard count.
     */
    MetadataStore(sim::CostModel& cost, std::size_t cache_capacity = 1024,
                  std::size_t shard_count = 1);

    /** Create a fresh resource, homed in its domain's shard. */
    Resource& createResource(DomainId domain, bool is_file = false,
                             std::uint64_t file_key = 0);

    /** Clone a resource (fork): copies metadata, aliases the key. */
    Resource& cloneResource(const Resource& src, DomainId new_domain);

    /**
     * Resolve a resource id through the shard directory. Typed
     * failures: UnknownResource when the directory has never seen the
     * id (or it was destroyed), ShardMiss when the directory names a
     * shard that no longer holds it (a store-consistency bug).
     */
    Expected<Resource*, CloakError> lookup(ResourceId id);

    /** Remove a resource entirely (no-op for unknown ids). */
    void destroyResource(ResourceId id);

    /**
     * Look up (creating if absent) page metadata, charging the cache
     * model.
     */
    PageMeta& page(Resource& res, std::uint64_t page_index);

    /** Change the cache capacity (ablation benchmarks). */
    void setCacheCapacity(std::size_t capacity);

    /** Constant-cost lookups (timing hardening): hits charge the miss
     *  cost, so residency in the hot cache is not observable. */
    void setConstantCostLookups(bool on) { constantCostLookups_ = on; }

    // Sealing -------------------------------------------------------------

    /**
     * Serialize a resource's metadata and seal it with HMAC under
     * @p seal_key, binding @p owner_identity. The bundle version is one
     * greater than any previous seal of the same file key. The HmacKey
     * overload reuses a prepared key midstate; the Digest overload is
     * kept for callers holding raw key bytes.
     */
    std::vector<std::uint8_t> seal(const Resource& res,
                                   const crypto::HmacKey& seal_key,
                                   const crypto::Digest& owner_identity);
    std::vector<std::uint8_t> seal(const Resource& res,
                                   const crypto::Digest& seal_key,
                                   const crypto::Digest& owner_identity);

    /**
     * Verify and import a sealed bundle into @p dst. Fails with a
     * typed code: SealBadMac (MAC mismatch), SealBadIdentity (sealed
     * under another identity), SealRollback (older than the witnessed
     * floor), SealMalformed (truncated/structurally invalid).
     */
    Expected<void, CloakError> unseal(std::span<const std::uint8_t> bundle,
                                      const crypto::HmacKey& seal_key,
                                      const crypto::Digest& owner_identity,
                                      Resource& dst);
    Expected<void, CloakError> unseal(std::span<const std::uint8_t> bundle,
                                      const crypto::Digest& seal_key,
                                      const crypto::Digest& owner_identity,
                                      Resource& dst);

    /** Latest sealed version seen for a file key (rollback floor). */
    std::uint64_t lastSealedVersion(std::uint64_t file_key) const;

    // Checkpoint/restore --------------------------------------------------

    /**
     * The full rollback-floor table (file key -> newest sealed bundle
     * version witnessed). A checkpoint must carry it: a restored store
     * that forgot the floors would accept replayed older bundles.
     */
    std::map<std::uint64_t, std::uint64_t>
    sealVersions() const
    {
        std::lock_guard<std::mutex> lk(sealLock_);
        return sealVersions_;
    }

    /**
     * Merge an imported rollback-floor table, keeping the maximum per
     * file key (floors only ever advance).
     */
    void importSealVersions(
        const std::map<std::uint64_t, std::uint64_t>& floors);

    /**
     * Ensure future resource ids start at @p min_next or later. An
     * import materializes resources whose keyIds were minted on another
     * machine; without reserving, a later createResource could mint an
     * id equal to an imported keyId and alias its derived AES key.
     */
    void reserveIds(ResourceId min_next);

    // Footprint / sharding introspection -----------------------------------

    std::size_t shardCount() const { return shards_.size(); }

    /** Live resources across every shard. */
    std::size_t resourceCount() const;

    /** Live PageMeta entries across every shard. */
    std::uint64_t pageMetaCount() const;

    /** Rough bytes of VMM-private memory the live metadata occupies. */
    std::uint64_t footprintBytes() const;

    /** High-water mark of footprintBytes() over the store's lifetime. */
    std::uint64_t peakFootprintBytes() const { return peakFootprint_; }

    // Cache introspection (consistency tests) ------------------------------

    /** Keys currently occupying cache capacity. */
    std::size_t cacheSize() const { return cacheIndex_.size(); }
    /** LRU list length; always equals cacheSize() when consistent. */
    std::size_t lruLength() const { return lru_.size(); }
    /** Whether (resource, page) is resident in the cache model. */
    bool
    cached(ResourceId res, std::uint64_t page_index) const
    {
        return cacheIndex_.find(CacheKey{res, page_index}) !=
               cacheIndex_.end();
    }

    StatGroup& stats() { return stats_; }

  private:
    /** One lock stripe: the resources homed in it. std::map keeps
     *  Resource references stable across inserts. */
    struct Shard
    {
        mutable std::mutex lock;
        std::map<ResourceId, Resource> resources;
    };

    /** Shard a domain's resources are homed in (stable, seed-free). */
    std::uint32_t
    shardOfDomain(DomainId domain) const
    {
        return static_cast<std::uint32_t>(domain % shards_.size());
    }

    /** Mint a resource in @p domain's shard and index it. */
    Resource& emplaceResource(DomainId domain);

    void touchCache(ResourceId res, std::uint64_t page_index);

    /** Drop every cached key of one resource (destroy/unseal reload). */
    void purgeCache(ResourceId res);

    /** Shrink the LRU to the configured capacity. */
    void evictToCapacity();

    /** Fold page-count deltas into the footprint accounting. */
    void accountPages(std::int64_t resources_delta,
                      std::int64_t pages_delta);

    sim::CostModel& cost_;
    std::size_t cacheCapacity_;

    /** Hits charge the miss cost (see setConstantCostLookups). */
    bool constantCostLookups_ = false;

    std::vector<std::unique_ptr<Shard>> shards_;

    /** Resource id -> owning shard. The only global map on lookups;
     *  reads take directoryLock_ briefly, never a shard lock. */
    mutable std::mutex directoryLock_;
    std::unordered_map<ResourceId, std::uint32_t> shardIndex_;

    /** Globally monotonic id mint (ids derive AES keys, so they must
     *  not depend on shard count). */
    mutable std::mutex idLock_;
    ResourceId nextId_ = 1;

    /**
     * LRU cache model: key = (resource, page). Global across shards —
     * see the file comment for why — and only touched from the
     * serialized fault/seal paths, guarded for structure by cacheLock_.
     */
    using CacheKey = std::pair<ResourceId, std::uint64_t>;
    mutable std::mutex cacheLock_;
    std::list<CacheKey> lru_;
    std::map<CacheKey, std::list<CacheKey>::iterator> cacheIndex_;

    /** Monotonic bundle versions per file key (rollback detection). */
    mutable std::mutex sealLock_;
    std::map<std::uint64_t, std::uint64_t> sealVersions_;

    /** Footprint accounting (tracks store-managed allocations). */
    mutable std::mutex footprintLock_;
    std::uint64_t liveResources_ = 0;
    std::uint64_t livePageMetas_ = 0;
    std::uint64_t peakFootprint_ = 0;

    StatGroup stats_;
};

} // namespace osh::cloak

#endif // OSH_CLOAK_METADATA_HH
