/**
 * @file
 * Protection metadata.
 *
 * For every cloaked resource (a private memory region or a protected
 * file) the VMM records, per page: the cloaking state, the IV used for
 * its latest encryption, the SHA-256 integrity hash of the ciphertext
 * (bound to the resource identity, page index and version), and a
 * monotonically increasing version. Metadata lives in VMM-private
 * memory — the guest can never touch it — and can be *sealed*
 * (serialized + HMAC) for persistence alongside protected files.
 *
 * A capacity-bounded LRU models the paper's metadata cache: lookups
 * charge metadataHit or metadataMiss cycles accordingly.
 */

#ifndef OSH_CLOAK_METADATA_HH
#define OSH_CLOAK_METADATA_HH

#include "base/stats.hh"
#include "base/types.hh"
#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "sim/cost_model.hh"

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

namespace osh::cloak
{

/** Cloaked-page states (the paper's page state machine). */
enum class PageState : std::uint8_t
{
    Encrypted,       ///< Ciphertext; kernel view maps it RW.
    PlaintextClean,  ///< Plaintext, unmodified since decryption; the
                     ///< stored (IV, hash) are still valid, so handing
                     ///< it back to the kernel needs no re-hash.
    PlaintextDirty,  ///< Plaintext, modified; next encryption takes a
                     ///< fresh IV, hash and version.
};

/** Per-page protection metadata. */
struct PageMeta
{
    PageState state = PageState::Encrypted;
    crypto::Iv iv{};
    crypto::Digest hash{};
    std::uint64_t version = 0;
    bool initialized = false;     ///< Has this page ever held data?
    Gpa residentGpa = badAddr;    ///< Frame holding plaintext (if any).
};

/** A cloaked resource: a keyed collection of page metadata. */
struct Resource
{
    ResourceId id = 0;
    /**
     * Key identity: resources cloned across fork, and file resources
     * re-attached across processes, share the key of their root so
     * ciphertext remains decryptable. For private resources keyId==id.
     */
    ResourceId keyId = 0;
    DomainId domain = systemDomain;
    bool isFile = false;
    std::uint64_t fileKey = 0;    ///< Stable file identity (path hash).
    std::map<std::uint64_t, PageMeta> pages;
};

/**
 * The metadata store: all resources plus the cache cost model and the
 * sealed-bundle persistence for protected files.
 */
class MetadataStore
{
  public:
    /**
     * @param cost Cost model charged on lookups.
     * @param cache_capacity Entries the hot metadata cache holds.
     */
    MetadataStore(sim::CostModel& cost, std::size_t cache_capacity = 1024);

    /** Create a fresh resource. */
    Resource& createResource(DomainId domain, bool is_file = false,
                             std::uint64_t file_key = 0);

    /** Clone a resource (fork): copies metadata, aliases the key. */
    Resource& cloneResource(const Resource& src, DomainId new_domain);

    Resource* find(ResourceId id);

    /** Remove a resource entirely. */
    void destroyResource(ResourceId id);

    /**
     * Look up (creating if absent) page metadata, charging the cache
     * model.
     */
    PageMeta& page(Resource& res, std::uint64_t page_index);

    /** Change the cache capacity (ablation benchmarks). */
    void setCacheCapacity(std::size_t capacity);

    // Sealing -------------------------------------------------------------

    /**
     * Serialize a resource's metadata and seal it with HMAC under
     * @p seal_key, binding @p owner_identity. The bundle version is one
     * greater than any previous seal of the same file key. The HmacKey
     * overload reuses a prepared key midstate; the Digest overload is
     * kept for callers holding raw key bytes.
     */
    std::vector<std::uint8_t> seal(const Resource& res,
                                   const crypto::HmacKey& seal_key,
                                   const crypto::Digest& owner_identity);
    std::vector<std::uint8_t> seal(const Resource& res,
                                   const crypto::Digest& seal_key,
                                   const crypto::Digest& owner_identity);

    /**
     * Verify and import a sealed bundle into @p dst. Fails (false) on a
     * bad MAC, an identity mismatch, or a rolled-back bundle version.
     */
    bool unseal(std::span<const std::uint8_t> bundle,
                const crypto::HmacKey& seal_key,
                const crypto::Digest& owner_identity, Resource& dst);
    bool unseal(std::span<const std::uint8_t> bundle,
                const crypto::Digest& seal_key,
                const crypto::Digest& owner_identity, Resource& dst);

    /** Latest sealed version seen for a file key (rollback floor). */
    std::uint64_t lastSealedVersion(std::uint64_t file_key) const;

    // Checkpoint/restore --------------------------------------------------

    /**
     * The full rollback-floor table (file key -> newest sealed bundle
     * version witnessed). A checkpoint must carry it: a restored store
     * that forgot the floors would accept replayed older bundles.
     */
    const std::map<std::uint64_t, std::uint64_t>& sealVersions() const
    {
        return sealVersions_;
    }

    /**
     * Merge an imported rollback-floor table, keeping the maximum per
     * file key (floors only ever advance).
     */
    void importSealVersions(
        const std::map<std::uint64_t, std::uint64_t>& floors);

    /**
     * Ensure future resource ids start at @p min_next or later. An
     * import materializes resources whose keyIds were minted on another
     * machine; without reserving, a later createResource could mint an
     * id equal to an imported keyId and alias its derived AES key.
     */
    void reserveIds(ResourceId min_next);

    // Cache introspection (consistency tests) ------------------------------

    /** Keys currently occupying cache capacity. */
    std::size_t cacheSize() const { return cacheIndex_.size(); }
    /** LRU list length; always equals cacheSize() when consistent. */
    std::size_t lruLength() const { return lru_.size(); }
    /** Whether (resource, page) is resident in the cache model. */
    bool
    cached(ResourceId res, std::uint64_t page_index) const
    {
        return cacheIndex_.find(CacheKey{res, page_index}) !=
               cacheIndex_.end();
    }

    StatGroup& stats() { return stats_; }

  private:
    void touchCache(ResourceId res, std::uint64_t page_index);

    /** Drop every cached key of one resource (destroy/unseal reload). */
    void purgeCache(ResourceId res);

    /** Shrink the LRU to the configured capacity. */
    void evictToCapacity();

    sim::CostModel& cost_;
    std::size_t cacheCapacity_;
    std::map<ResourceId, Resource> resources_;
    ResourceId nextId_ = 1;

    /** LRU cache model: key = (resource, page). */
    using CacheKey = std::pair<ResourceId, std::uint64_t>;
    std::list<CacheKey> lru_;
    std::map<CacheKey, std::list<CacheKey>::iterator> cacheIndex_;

    /** Monotonic bundle versions per file key (rollback detection). */
    std::map<std::uint64_t, std::uint64_t> sealVersions_;

    StatGroup stats_;
};

} // namespace osh::cloak

#endif // OSH_CLOAK_METADATA_HH
