#include "cloak/transfer.hh"

#include "base/bytes.hh"
#include "base/logging.hh"
#include "os/layout.hh"

#include <array>

namespace osh::cloak
{

namespace
{

std::array<std::uint8_t, ctcBytes>
serializeRegs(const vmm::RegisterFile& regs)
{
    std::array<std::uint8_t, ctcBytes> out;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < vmm::numGprs; ++i, pos += 8)
        storeLe64(out.data() + pos, regs.gpr[i]);
    storeLe64(out.data() + pos, regs.pc);
    storeLe64(out.data() + pos + 8, regs.sp);
    storeLe64(out.data() + pos + 16, regs.flags);
    return out;
}

vmm::RegisterFile
deserializeRegs(const std::array<std::uint8_t, ctcBytes>& in)
{
    vmm::RegisterFile regs;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < vmm::numGprs; ++i, pos += 8)
        regs.gpr[i] = loadLe64(in.data() + pos);
    regs.pc = loadLe64(in.data() + pos);
    regs.sp = loadLe64(in.data() + pos + 8);
    regs.flags = loadLe64(in.data() + pos + 16);
    return regs;
}

} // namespace

void
SecureTransfer::saveToCtc(CloakEngine& engine, DomainId domain,
                          os::Env& env, GuestVA ctc_va)
{
    auto bytes = serializeRegs(env.vcpu().regs());
    env.writeBytes(ctc_va, bytes);
    engine.recordCtcHash(domain, crypto::Sha256::hash(bytes));
    auto& cost = env.vcpu().vmm().machine().cost();
    cost.charge(cost.params().ctcSaveRestore, "ctc_save");
}

void
SecureTransfer::restoreFromCtc(CloakEngine& engine, DomainId domain,
                               os::Env& env, GuestVA ctc_va)
{
    std::array<std::uint8_t, ctcBytes> bytes;
    env.readBytes(ctc_va, bytes);
    if (!engine.verifyCtcHash(domain, crypto::Sha256::hash(bytes))) {
        Pid pid = 0;
        if (Domain* d = engine.findDomain(domain))
            pid = d->pid;
        engine.stats().counter("ctc_violations").inc();
        throw vmm::ProcessKilled{
            pid, "cloak violation: thread context tampered"};
    }
    env.vcpu().regs() = deserializeRegs(bytes);
    auto& cost = env.vcpu().vmm().machine().cost();
    cost.charge(cost.params().ctcSaveRestore, "ctc_restore");
}

std::int64_t
SecureTransfer::aroundSyscall(CloakEngine& engine, DomainId domain,
                              os::Env& env, os::Sys num,
                              const os::SyscallArgs& args)
{
    Domain* d = engine.findDomain(domain);
    osh_assert(d != nullptr && d->ctcVa != 0,
               "secure trap without a bound CTC");
    GuestVA ctc_va = d->ctcVa;
    vmm::Vmm& vmm = env.vcpu().vmm();

    OSH_TRACE_SCOPE(&vmm.machine().tracer(),
                    trace::Category::Transfer, "secure_syscall",
                    domain, d->pid,
                    static_cast<std::uint64_t>(num));
    vmm.chargeWorldSwitch("cloak_trap_enter");
    saveToCtc(engine, domain, env, ctc_va);
    env.vcpu().regs().scrub(0, os::trampolinePc, os::trampolineSp);

    std::int64_t rv = env.rawKernelEntry(num, args);

    vmm.chargeWorldSwitch("cloak_trap_return");
    restoreFromCtc(engine, domain, env, ctc_va);
    env.vcpu().regs().gpr[0] = static_cast<std::uint64_t>(rv);
    return rv;
}

void
SecureTransfer::aroundInterrupt(CloakEngine& engine, DomainId domain,
                                os::Env& env,
                                const std::function<void()>& kernel_work)
{
    Domain* d = engine.findDomain(domain);
    if (d == nullptr || d->ctcVa == 0) {
        // Domain still initializing (no CTC yet): run unprotected; the
        // shim installs the CTC before any secrets reach registers.
        kernel_work();
        return;
    }
    GuestVA ctc_va = d->ctcVa;
    vmm::Vmm& vmm = env.vcpu().vmm();

    OSH_TRACE_SCOPE(&vmm.machine().tracer(),
                    trace::Category::Transfer, "secure_interrupt",
                    domain, d->pid);
    vmm.chargeWorldSwitch("cloak_intr_enter");
    saveToCtc(engine, domain, env, ctc_va);
    env.vcpu().regs().scrub(0, os::trampolinePc, os::trampolineSp);

    kernel_work();

    vmm.chargeWorldSwitch("cloak_intr_return");
    restoreFromCtc(engine, domain, env, ctc_va);
}

} // namespace osh::cloak
