/**
 * @file
 * Secure control transfer.
 *
 * Every transition from a cloaked context into the kernel — system
 * call or asynchronous (timer) interrupt — is mediated here, exactly as
 * Overshadow's VMM mediates them:
 *
 *   1. the full register file is saved into the thread's cloaked
 *      thread context (CTC) page, and the VMM records its hash;
 *   2. the registers the kernel does not need are scrubbed (for a
 *      syscall, r0..r5 carry the number and marshalled arguments; for
 *      an interrupt, nothing survives), and pc/sp are pointed at the
 *      uncloaked trampoline;
 *   3. the kernel runs;
 *   4. on return, the CTC is re-read, its hash verified against the
 *      VMM-held copy, and the registers restored (with the syscall
 *      return value injected into r0).
 *
 * The CTC page is itself cloaked, so kernel tampering is caught both by
 * the page-integrity machinery and by the explicit hash check.
 */

#ifndef OSH_CLOAK_TRANSFER_HH
#define OSH_CLOAK_TRANSFER_HH

#include "base/types.hh"
#include "cloak/engine.hh"
#include "os/env.hh"

#include <functional>

namespace osh::cloak
{

/** Serialized register-file size in the CTC. */
constexpr std::size_t ctcBytes = (vmm::numGprs + 3) * 8;

/** Secure control transfer around a kernel entry. */
class SecureTransfer
{
  public:
    /** Wrap a system call (r0..r5 preserved for the kernel). */
    static std::int64_t aroundSyscall(CloakEngine& engine, DomainId domain,
                                      os::Env& env, os::Sys num,
                                      const os::SyscallArgs& args);

    /** Wrap an asynchronous interrupt (everything scrubbed). */
    static void aroundInterrupt(CloakEngine& engine, DomainId domain,
                                os::Env& env,
                                const std::function<void()>& kernel_work);

  private:
    static void saveToCtc(CloakEngine& engine, DomainId domain,
                          os::Env& env, GuestVA ctc_va);
    static void restoreFromCtc(CloakEngine& engine, DomainId domain,
                               os::Env& env, GuestVA ctc_va);
};

} // namespace osh::cloak

#endif // OSH_CLOAK_TRANSFER_HH
