#include "cloak/engine.hh"

#include "base/bytes.hh"
#include "base/logging.hh"
#include "crypto/ctr.hh"
#include "vmm/vcpu.hh"

#include <cstring>
#include <set>

namespace osh::cloak
{

namespace
{

/** Key-space tag keeping file keys disjoint from private resource ids. */
constexpr ResourceId fileKeyTag = ResourceId{1} << 63;

/**
 * Charge cycles to the guest timeline, or — when the asynchronous
 * eviction lane owns the work — accumulate them into @p defer while
 * still counting the event, so the event stream is identical in both
 * modes.
 */
void
chargeOrDefer(sim::CostModel& cost, Cycles c, const char* ev,
              std::uint64_t* defer)
{
    if (defer != nullptr) {
        *defer += c;
        cost.charge(0, ev);
    } else {
        cost.charge(c, ev);
    }
}

} // namespace

crypto::Digest
programIdentity(const std::string& program_name)
{
    crypto::Sha256 ctx;
    ctx.update(std::string("osh-program:"));
    ctx.update(program_name);
    return ctx.final();
}

CloakEngine::CloakEngine(vmm::Vmm& vmm, std::uint64_t master_seed,
                         std::size_t metadata_cache, std::size_t shards)
    : vmm_(vmm), keys_(master_seed, shards),
      metadata_(vmm.machine().cost(), metadata_cache, shards),
      stats_("cloak")
{
    vmm_.setCloakBackend(this);
}

CloakEngine::~CloakEngine()
{
    // Never run deferred commits here: System destroys the kernel (and
    // with it the swap device the commits write into) before the
    // engine. The kernel's destructor drains the queue while everything
    // is still alive; anything left is scrubbed and dropped.
    for (AsyncSealEntry& e : asyncQueue_)
        std::memset(e.sealed.data(), 0, e.sealed.size());
    asyncQueue_.clear();
    vmm_.setCloakBackend(nullptr);
}

std::span<std::uint8_t>
CloakEngine::frameBytes(Gpa gpa)
{
    return vmm_.machine().memory().framePlain(
        vmm_.pmap().translate(pageBase(gpa)));
}

Region*
CloakEngine::findRegion(DomainId domain, Asid asid, GuestVA va_page)
{
    auto dit = domains_.find(domain);
    if (dit == domains_.end())
        return nullptr;
    for (Region& r : dit->second.regions) {
        if (r.asid == asid && r.contains(va_page))
            return &r;
    }
    return nullptr;
}

bool
CloakEngine::inCloakedRegion(Asid asid, GuestVA va_page)
{
    for (auto& [id, d] : domains_) {
        for (Region& r : d.regions) {
            if (r.asid == asid && r.contains(va_page))
                return true;
        }
    }
    return false;
}

Cycles
CloakEngine::worstCaseSealCycles() const
{
    const auto& p = vmm_.machine().cost().params();
    return p.aesPerByte * pageSize + p.shaPerByte * (pageSize + 40) +
           p.cloakFaultFixed;
}

void
CloakEngine::setConstantCostMode(bool on)
{
    constantCost_ = on;
    metadata_.setConstantCostLookups(on);
}

Domain&
CloakEngine::domainOf(DomainId id)
{
    auto it = domains_.find(id);
    osh_assert(it != domains_.end(), "unknown domain %u", id);
    return it->second;
}

Domain*
CloakEngine::findDomain(DomainId id)
{
    auto it = domains_.find(id);
    return it == domains_.end() ? nullptr : &it->second;
}

crypto::Digest
CloakEngine::pageHash(const Resource& res, std::uint64_t page_index,
                      const PageMeta& meta,
                      std::span<const std::uint8_t> ciphertext)
{
    std::uint8_t header[40];
    storeLe64(header, res.keyId);
    storeLe64(header + 8, page_index);
    storeLe64(header + 16, meta.version);
    std::memcpy(header + 24, meta.iv.data(), meta.iv.size());
    crypto::Sha256 ctx;
    ctx.update(std::span<const std::uint8_t>(header, sizeof(header)));
    ctx.update(ciphertext);
    return ctx.final();
}

Error<CloakError>
CloakEngine::auditError(CloakError code, DomainId domain,
                        ResourceId resource, std::uint64_t page_index)
{
    auditLog_.push(
        {domain, resource, page_index, cloakErrorName(code), code});
    stats_.counter("audit_errors").inc();
    OSH_TRACE_INSTANT(&vmm_.machine().tracer(), trace::Category::Cloak,
                      "audit_error", domain, 0, resource, page_index);
    return Error<CloakError>(code);
}

void
CloakEngine::violation(Resource& res, std::uint64_t page_index,
                       const std::string& reason)
{
    auditLog_.push({res.domain, res.id, page_index, reason,
                    CloakError::IntegrityViolation});
    stats_.counter("violations").inc();
    OSH_TRACE_INSTANT(&vmm_.machine().tracer(), trace::Category::Cloak,
                      "violation", res.domain, 0, res.id, page_index);
    Pid pid = 0;
    if (Domain* d = findDomain(res.domain))
        pid = d->pid;
    osh_warn("cloak violation in domain %u (pid %d): %s", res.domain,
             pid, reason.c_str());
    throw vmm::ProcessKilled{
        pid, formatString("cloak violation: %s", reason.c_str())};
}

const crypto::Aes128&
CloakEngine::cipherFor(Resource& res)
{
    // Resources normally carry a handle from cloak-attach; re-acquire
    // lazily only if the key identity changed after the handle was
    // taken (importResource rewrites keyId) or an exotic path skipped
    // the attach. Never a per-fault map lookup.
    if (!res.key.valid() || res.key.keyId() != res.keyId)
        res.key = keys_.acquire(res.keyId);
    return res.key.cipher();
}

const crypto::HmacKey&
CloakEngine::sealingHmacFor(Resource& res)
{
    if (!res.key.valid() || res.key.keyId() != res.keyId)
        res.key = keys_.acquire(res.keyId);
    return res.key.sealingHmac();
}

void
CloakEngine::encryptPage(Resource& res, std::uint64_t page_index,
                         PageMeta& meta)
{
    encryptPageWith(res, page_index, meta, cipherFor(res));
}

void
CloakEngine::encryptPageWith(Resource& res, std::uint64_t page_index,
                             PageMeta& meta,
                             const crypto::Aes128& cipher,
                             std::uint64_t* defer_cycles)
{
    osh_assert(meta.state != PageState::Encrypted,
               "encryptPage on already-encrypted page");
    osh_assert(meta.residentGpa != badAddr, "no resident plaintext");
    Gpa gpa = meta.residentGpa;
    auto frame = frameBytes(gpa);
    auto& cost = vmm_.machine().cost();

    if (chunkedIntegrity_ && !res.isFile) {
        sealPageChunked(res, page_index, meta, cipher, defer_cycles);
        plaintextIndex_.erase(gpa);
        meta.state = PageState::Encrypted;
        meta.residentGpa = badAddr;
        vmm_.suspendMpa(vmm_.pmap().translate(gpa));
        return;
    }

    if (meta.state == PageState::PlaintextDirty || !cleanOptimization_ ||
        meta.version == 0) {
        OSH_TRACE_SCOPE(&vmm_.machine().tracer(),
                        trace::Category::Cloak, "page_encrypt",
                        res.domain, 0, res.id, page_index);
        vmm_.machine().rng().fill(meta.iv);
        meta.version++;
        // The bumped version orphans any cached result for the old
        // contents; remember the new one for the next ping-pong.
        VictimCache::Entry* v =
            victims_.insert(res.id, page_index, meta.version);
        if (v != nullptr)
            std::memcpy(v->plaintext.data(), frame.data(), frame.size());
        crypto::aesCtrXcryptInPlace(cipher, meta.iv, frame);
        meta.hash = pageHash(res, page_index, meta, frame);
        if (v != nullptr) {
            v->iv = meta.iv;
            v->hash = meta.hash;
            std::memcpy(v->ciphertext.data(), frame.data(),
                        frame.size());
        }
        chargeOrDefer(cost,
                      cost.params().aesPerByte * pageSize +
                          cost.params().shaPerByte * (pageSize + 40) +
                          cost.params().cloakFaultFixed,
                      "page_encrypt", defer_cycles);
        stats_.counter("page_encrypts").inc();
    } else {
        // Clean page: the stored (IV, hash) still cover the contents,
        // so re-encryption is deterministic. If the victim cache holds
        // this exact (resource, page, version) the ciphertext is
        // already known — copy it instead of running AES again. The
        // plaintext compare is a cheap host-side consistency guard; a
        // mismatch (which no legitimate path produces) falls back to
        // real encryption.
        VictimCache::Entry* v =
            victims_.find(res.id, page_index, meta.version);
        if (v != nullptr && v->iv == meta.iv &&
            std::memcmp(v->plaintext.data(), frame.data(),
                        frame.size()) == 0) {
            OSH_TRACE_SCOPE(&vmm_.machine().tracer(),
                            trace::Category::Cloak, "victim_reencrypt",
                            res.domain, 0, res.id, page_index);
            std::memcpy(frame.data(), v->ciphertext.data(),
                        frame.size());
            // Constant-cost mode: the hit must be indistinguishable
            // from the dirty worst case, or its cheapness is an oracle
            // for "the victim did not write this page".
            chargeOrDefer(cost,
                          constantCost_
                              ? worstCaseSealCycles()
                              : cost.params().victimHitCopy +
                                    cost.params().cloakFaultFixed,
                          "page_reencrypt_victim", defer_cycles);
            stats_.counter("victim_reencrypt_hits").inc();
            stats_.counter("clean_reencrypts").inc();
        } else {
            if (v != nullptr)
                stats_.counter("victim_reencrypt_mismatches").inc();
            OSH_TRACE_SCOPE(&vmm_.machine().tracer(),
                            trace::Category::Cloak, "clean_reencrypt",
                            res.domain, 0, res.id, page_index);
            v = victims_.insert(res.id, page_index, meta.version);
            if (v != nullptr)
                std::memcpy(v->plaintext.data(), frame.data(),
                            frame.size());
            crypto::aesCtrXcryptInPlace(cipher, meta.iv, frame);
            if (v != nullptr) {
                v->iv = meta.iv;
                v->hash = meta.hash;
                std::memcpy(v->ciphertext.data(), frame.data(),
                            frame.size());
            }
            chargeOrDefer(cost,
                          constantCost_
                              ? worstCaseSealCycles()
                              : cost.params().aesPerByte * pageSize +
                                    cost.params().cloakFaultFixed,
                          "page_reencrypt_clean", defer_cycles);
            stats_.counter("clean_reencrypts").inc();
        }
    }

    plaintextIndex_.erase(gpa);
    meta.state = PageState::Encrypted;
    meta.residentGpa = badAddr;
    // Translations of the frame are unchanged — only its view flipped.
    // Suspend the shadows (retained for cheap revalidation) instead of
    // tearing them down.
    vmm_.suspendMpa(vmm_.pmap().translate(gpa));
}

void
CloakEngine::decryptAndVerify(Resource& res, std::uint64_t page_index,
                              PageMeta& meta, Gpa gpa)
{
    decryptAndVerifyWith(res, page_index, meta, gpa, cipherFor(res));
}

void
CloakEngine::decryptAndVerifyWith(Resource& res, std::uint64_t page_index,
                                  PageMeta& meta, Gpa gpa,
                                  const crypto::Aes128& cipher)
{
    if (chunkedIntegrity_ && !res.isFile) {
        unsealPageChunked(res, page_index, meta, gpa, cipher);
        return;
    }

    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "page_decrypt", res.domain, 0, res.id, page_index);
    auto frame = frameBytes(gpa);
    auto& cost = vmm_.machine().cost();

    // Victim-cache fast path: if we still hold the (IV, hash,
    // ciphertext, plaintext) of this exact version and the frame is
    // byte-identical to the cached *authentic* ciphertext, the stored
    // hash is known to cover it — skip SHA and AES and copy the
    // plaintext back. Any tampering makes the compare fail and we fall
    // through to the full verify, which kills the process as usual.
    if (VictimCache::Entry* v =
            victims_.find(res.id, page_index, meta.version)) {
        if (v->iv == meta.iv && constantTimeEqual(v->hash, meta.hash) &&
            std::memcmp(v->ciphertext.data(), frame.data(),
                        frame.size()) == 0) {
            OSH_TRACE_INSTANT(&vmm_.machine().tracer(),
                              trace::Category::Cloak, "victim_decrypt",
                              res.domain, 0, res.id, page_index);
            std::memcpy(frame.data(), v->plaintext.data(),
                        frame.size());
            cost.charge(constantCost_
                            ? worstCaseSealCycles()
                            : cost.params().victimHitCopy +
                                  cost.params().cloakFaultFixed,
                        "page_decrypt_victim");
            stats_.counter("victim_decrypt_hits").inc();
            stats_.counter("page_decrypts").inc();
            return;
        }
        stats_.counter("victim_decrypt_mismatches").inc();
    }

    cost.charge(cost.params().shaPerByte * (pageSize + 40) +
                cost.params().aesPerByte * pageSize +
                cost.params().cloakFaultFixed,
                "page_decrypt");

    crypto::Digest h = pageHash(res, page_index, meta, frame);
    if (!constantTimeEqual(h, meta.hash)) {
        violation(res, page_index,
                  formatString("integrity check failed for resource "
                               "%llu page %llu",
                               static_cast<unsigned long long>(res.id),
                               static_cast<unsigned long long>(
                                   page_index)));
    }
    // Verified: remember this version's images so an unmodified
    // round trip back to the kernel view can skip the crypto.
    VictimCache::Entry* v =
        victims_.insert(res.id, page_index, meta.version);
    if (v != nullptr) {
        v->iv = meta.iv;
        v->hash = meta.hash;
        std::memcpy(v->ciphertext.data(), frame.data(), frame.size());
    }
    crypto::aesCtrXcryptInPlace(cipher, meta.iv, frame);
    if (v != nullptr)
        std::memcpy(v->plaintext.data(), frame.data(), frame.size());
    stats_.counter("page_decrypts").inc();
}

// ---------------------------------------------------------------------------
// Batched page crypto
// ---------------------------------------------------------------------------

namespace
{

/**
 * Per-item staging for the parallel batch paths. The fan-out writes
 * only its own item's slot; the ordered merge on the calling thread
 * folds the slots back into engine state in submission order.
 */
struct CryptoStage
{
    std::span<std::uint8_t> frame;  ///< Resolved on the calling thread.
    Gpa gpa = badAddr;              ///< Frame address for bookkeeping.
    bool dirtyPath = false;         ///< Fresh-IV encryption vs clean.
    crypto::Digest hash{};          ///< Staged SHA-256 result.
    std::array<std::uint8_t, pageSize> bytes; ///< Staged AES output.
};

} // namespace

void
CloakEngine::encryptPages(Resource& res,
                          std::span<const PageCryptoItem> items)
{
    if (items.empty())
        return;
    // Amortized across the batch: one cipher (key schedule) lookup and
    // one enclosing trace/audit scope. The per-page work — metadata
    // updates, victim-cache fills, cycle charges — is byte-for-byte
    // the sequential loop, so batching never changes simulated cost.
    // With more than one pool lane the AES/SHA compute fans out across
    // host threads; everything observable still happens in submission
    // order on this thread. Items must name distinct pages (the same
    // contract under which the serial loop is well-defined).
    const crypto::Aes128& cipher = cipherFor(res);
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "encrypt_batch", res.domain, 0, res.id,
                    items.size());
    // Chunked-integrity mode forces the serial loop: per-chunk dirty
    // diffing and RNG draws are inherently ordered.
    if (pool_.workers() <= 1 || items.size() == 1 || chunkedIntegrity_) {
        for (const PageCryptoItem& item : items)
            encryptPageWith(res, item.pageIndex, *item.meta, cipher);
    } else {
        encryptPagesParallel(res, items, cipher);
    }
    stats_.counter("batch_encrypt_calls").inc();
    stats_.counter("batch_encrypt_pages").inc(items.size());
}

/*
 * Determinism argument, shared by both *Parallel paths. The serial
 * loop's work divides into three classes:
 *
 *   1. Stateful inputs: RNG draws for fresh IVs, version bumps, frame
 *      lookups (pmap backing is allocated lazily). These run in a
 *      pre-pass on the calling thread, in submission order — the RNG
 *      stream and metadata transitions are exactly the serial ones.
 *   2. Pure compute: AES-CTR keystreams and SHA-256 hashes. These read
 *      frozen inputs (frames, per-item metadata fixed by the pre-pass,
 *      the shared read-only cipher schedule) and write only their own
 *      item's staging slot. This is the only part that fans out, so
 *      worker scheduling cannot be observed.
 *   3. Stateful outputs: frame writes, hash/state updates, victim-cache
 *      insertions and lookups, cycle charges, stats counters, trace
 *      events, plaintext-index and shadow bookkeeping. These replay in
 *      an ordered merge on the calling thread, item by item, in the
 *      exact statement order of the serial loop.
 *
 * The fan-out is a full barrier (parallelFor returns before the merge
 * starts), so staged reads of a frame never race the merge's write to
 * another frame. Victim-cache LRU traffic happens only in the merge,
 * in serial order, so hit/miss/eviction sequences — and therefore the
 * charged cycles — are identical to workers=1. A clean page whose
 * re-encryption is served by a victim hit wastes its staged AES work;
 * that trade (a little redundant host compute for exact determinism)
 * is deliberate.
 */
void
CloakEngine::encryptPagesParallel(Resource& res,
                                  std::span<const PageCryptoItem> items,
                                  const crypto::Aes128& cipher)
{
    auto& machine = vmm_.machine();

    // Pre-pass: consume stateful inputs in submission order.
    std::vector<CryptoStage> st(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        PageMeta& meta = *items[i].meta;
        osh_assert(meta.state != PageState::Encrypted,
                   "encryptPage on already-encrypted page");
        osh_assert(meta.residentGpa != badAddr, "no resident plaintext");
        st[i].gpa = meta.residentGpa;
        st[i].frame = frameBytes(meta.residentGpa);
        st[i].dirtyPath = meta.state == PageState::PlaintextDirty ||
                          !cleanOptimization_ || meta.version == 0;
        if (st[i].dirtyPath) {
            machine.rng().fill(meta.iv);
            meta.version++;
        }
    }

    // Fan-out: pure compute into per-item staging.
    pool_.parallelFor(items.size(), [&](std::size_t i) {
        const PageMeta& meta = *items[i].meta;
        std::memcpy(st[i].bytes.data(), st[i].frame.data(), pageSize);
        crypto::aesCtrXcryptInPlace(
            cipher, meta.iv,
            std::span<std::uint8_t>(st[i].bytes.data(), pageSize));
        if (st[i].dirtyPath) {
            st[i].hash = pageHash(res, items[i].pageIndex, meta,
                                  st[i].bytes);
        }
    });

    // Ordered merge: replay the serial loop's stateful effects.
    auto& cost = machine.cost();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const PageCryptoItem& item = items[i];
        PageMeta& meta = *item.meta;
        auto frame = st[i].frame;
        if (st[i].dirtyPath) {
            OSH_TRACE_SCOPE(&machine.tracer(), trace::Category::Cloak,
                            "page_encrypt", res.domain, 0, res.id,
                            item.pageIndex);
            VictimCache::Entry* v =
                victims_.insert(res.id, item.pageIndex, meta.version);
            if (v != nullptr)
                std::memcpy(v->plaintext.data(), frame.data(),
                            frame.size());
            std::memcpy(frame.data(), st[i].bytes.data(), frame.size());
            meta.hash = st[i].hash;
            if (v != nullptr) {
                v->iv = meta.iv;
                v->hash = meta.hash;
                std::memcpy(v->ciphertext.data(), frame.data(),
                            frame.size());
            }
            cost.charge(cost.params().aesPerByte * pageSize +
                        cost.params().shaPerByte * (pageSize + 40) +
                        cost.params().cloakFaultFixed,
                        "page_encrypt");
            stats_.counter("page_encrypts").inc();
        } else {
            VictimCache::Entry* v =
                victims_.find(res.id, item.pageIndex, meta.version);
            if (v != nullptr && v->iv == meta.iv &&
                std::memcmp(v->plaintext.data(), frame.data(),
                            frame.size()) == 0) {
                OSH_TRACE_SCOPE(&machine.tracer(),
                                trace::Category::Cloak,
                                "victim_reencrypt", res.domain, 0,
                                res.id, item.pageIndex);
                std::memcpy(frame.data(), v->ciphertext.data(),
                            frame.size());
                cost.charge(cost.params().victimHitCopy +
                            cost.params().cloakFaultFixed,
                            "page_reencrypt_victim");
                stats_.counter("victim_reencrypt_hits").inc();
                stats_.counter("clean_reencrypts").inc();
            } else {
                if (v != nullptr)
                    stats_.counter("victim_reencrypt_mismatches").inc();
                OSH_TRACE_SCOPE(&machine.tracer(),
                                trace::Category::Cloak,
                                "clean_reencrypt", res.domain, 0,
                                res.id, item.pageIndex);
                v = victims_.insert(res.id, item.pageIndex,
                                    meta.version);
                if (v != nullptr)
                    std::memcpy(v->plaintext.data(), frame.data(),
                                frame.size());
                std::memcpy(frame.data(), st[i].bytes.data(),
                            frame.size());
                if (v != nullptr) {
                    v->iv = meta.iv;
                    v->hash = meta.hash;
                    std::memcpy(v->ciphertext.data(), frame.data(),
                                frame.size());
                }
                cost.charge(cost.params().aesPerByte * pageSize +
                            cost.params().cloakFaultFixed,
                            "page_reencrypt_clean");
                stats_.counter("clean_reencrypts").inc();
            }
        }
        plaintextIndex_.erase(st[i].gpa);
        meta.state = PageState::Encrypted;
        meta.residentGpa = badAddr;
        vmm_.suspendMpa(vmm_.pmap().translate(st[i].gpa));
    }
}

void
CloakEngine::decryptPages(Resource& res,
                          std::span<const PageCryptoItem> items)
{
    if (items.empty())
        return;
    const crypto::Aes128& cipher = cipherFor(res);
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "decrypt_batch", res.domain, 0, res.id,
                    items.size());
    if (pool_.workers() <= 1 || items.size() == 1 || chunkedIntegrity_) {
        for (const PageCryptoItem& item : items) {
            decryptAndVerifyWith(res, item.pageIndex, *item.meta,
                                 item.gpa, cipher);
            // Same post-decrypt bookkeeping as a read resolution: the
            // page is plaintext-clean (dirty when the clean
            // optimization is off, so the stored IV/hash are never
            // reused) and resident, and its shadows are suspended so
            // the next access revalidates.
            item.meta->state = cleanOptimization_
                                   ? PageState::PlaintextClean
                                   : PageState::PlaintextDirty;
            item.meta->residentGpa = item.gpa;
            plaintextIndex_[item.gpa] = {res.id, item.pageIndex};
            vmm_.suspendMpa(vmm_.pmap().translate(item.gpa));
        }
    } else {
        decryptPagesParallel(res, items, cipher);
    }
    stats_.counter("batch_decrypt_calls").inc();
    stats_.counter("batch_decrypt_pages").inc(items.size());
}

void
CloakEngine::decryptPagesParallel(Resource& res,
                                  std::span<const PageCryptoItem> items,
                                  const crypto::Aes128& cipher)
{
    auto& machine = vmm_.machine();

    // Pre-pass: resolve frames on the calling thread (pmap::translate
    // may lazily back a frame and bump its counters).
    std::vector<CryptoStage> st(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        st[i].gpa = items[i].gpa;
        st[i].frame = frameBytes(items[i].gpa);
    }

    // Fan-out: hash every ciphertext image and stage its decryption.
    // No frame is written here — the ordered merge decides, page by
    // page, whether the staged plaintext lands or the process dies
    // mid-batch with every later frame untouched, exactly like the
    // serial loop.
    pool_.parallelFor(items.size(), [&](std::size_t i) {
        const PageMeta& meta = *items[i].meta;
        st[i].hash = pageHash(res, items[i].pageIndex, meta,
                              st[i].frame);
        std::memcpy(st[i].bytes.data(), st[i].frame.data(), pageSize);
        crypto::aesCtrXcryptInPlace(
            cipher, meta.iv,
            std::span<std::uint8_t>(st[i].bytes.data(), pageSize));
    });

    // Ordered merge: verify and commit in submission order.
    auto& cost = machine.cost();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const PageCryptoItem& item = items[i];
        PageMeta& meta = *item.meta;
        auto frame = st[i].frame;
        {
            OSH_TRACE_SCOPE(&machine.tracer(), trace::Category::Cloak,
                            "page_decrypt", res.domain, 0, res.id,
                            item.pageIndex);
            bool victim_hit = false;
            if (VictimCache::Entry* v = victims_.find(
                    res.id, item.pageIndex, meta.version)) {
                if (v->iv == meta.iv &&
                    constantTimeEqual(v->hash, meta.hash) &&
                    std::memcmp(v->ciphertext.data(), frame.data(),
                                frame.size()) == 0) {
                    OSH_TRACE_INSTANT(&machine.tracer(),
                                      trace::Category::Cloak,
                                      "victim_decrypt", res.domain, 0,
                                      res.id, item.pageIndex);
                    std::memcpy(frame.data(), v->plaintext.data(),
                                frame.size());
                    cost.charge(cost.params().victimHitCopy +
                                cost.params().cloakFaultFixed,
                                "page_decrypt_victim");
                    stats_.counter("victim_decrypt_hits").inc();
                    stats_.counter("page_decrypts").inc();
                    victim_hit = true;
                } else {
                    stats_.counter("victim_decrypt_mismatches").inc();
                }
            }
            if (!victim_hit) {
                cost.charge(cost.params().shaPerByte * (pageSize + 40) +
                            cost.params().aesPerByte * pageSize +
                            cost.params().cloakFaultFixed,
                            "page_decrypt");
                if (!constantTimeEqual(st[i].hash, meta.hash)) {
                    violation(
                        res, item.pageIndex,
                        formatString(
                            "integrity check failed for resource "
                            "%llu page %llu",
                            static_cast<unsigned long long>(res.id),
                            static_cast<unsigned long long>(
                                item.pageIndex)));
                }
                VictimCache::Entry* v = victims_.insert(
                    res.id, item.pageIndex, meta.version);
                if (v != nullptr) {
                    v->iv = meta.iv;
                    v->hash = meta.hash;
                    std::memcpy(v->ciphertext.data(), frame.data(),
                                frame.size());
                }
                std::memcpy(frame.data(), st[i].bytes.data(),
                            frame.size());
                if (v != nullptr)
                    std::memcpy(v->plaintext.data(), frame.data(),
                                frame.size());
                stats_.counter("page_decrypts").inc();
            }
        }
        meta.state = cleanOptimization_ ? PageState::PlaintextClean
                                        : PageState::PlaintextDirty;
        meta.residentGpa = item.gpa;
        plaintextIndex_[item.gpa] = {res.id, item.pageIndex};
        vmm_.suspendMpa(vmm_.pmap().translate(item.gpa));
    }
}

std::size_t
CloakEngine::sealPlaintextFrames(std::span<const Gpa> gpas)
{
    // Group the resident plaintext frames by owning resource so each
    // resource's pages go through one encryptPages() batch. Frames not
    // holding cloaked plaintext are skipped — the hint is always safe.
    std::map<ResourceId, std::vector<PageCryptoItem>> work;
    for (Gpa gpa : gpas) {
        auto pit = plaintextIndex_.find(pageBase(gpa));
        if (pit == plaintextIndex_.end())
            continue;
        Resource* res = metadata_.lookup(pit->second.resource).valueOr(nullptr);
        if (res == nullptr) {
            plaintextIndex_.erase(pit);
            continue;
        }
        PageMeta& meta = metadata_.page(*res, pit->second.pageIndex);
        if (meta.state == PageState::Encrypted)
            continue;
        work[res->id].push_back(
            {pit->second.pageIndex, &meta, pageBase(gpa)});
    }
    std::size_t sealed = 0;
    for (auto& [resource, items] : work) {
        Resource* res = metadata_.lookup(resource).valueOr(nullptr);
        if (res == nullptr)
            continue;
        encryptPages(*res, items);
        sealed += items.size();
    }
    if (sealed > 0)
        stats_.counter("preseal_frames").inc(sealed);
    return sealed;
}

// ---------------------------------------------------------------------------
// Asynchronous eviction pipeline
// ---------------------------------------------------------------------------

bool
CloakEngine::evictPageAsync(
    Gpa gpa, std::function<void(std::span<const std::uint8_t>)> commit)
{
    if (asyncDepth_ == 0 || asyncDraining_)
        return false;
    gpa = pageBase(gpa);
    auto pit = plaintextIndex_.find(gpa);
    if (pit == plaintextIndex_.end())
        return false; // No cloaked plaintext: nothing to defer.
    Resource* res = metadata_.lookup(pit->second.resource).valueOr(nullptr);
    if (res == nullptr)
        return false;
    std::uint64_t page_index = pit->second.pageIndex;
    PageMeta& meta = metadata_.page(*res, page_index);
    if (meta.state == PageState::Encrypted || meta.residentGpa != gpa)
        return false;

    // Queue full: retire the oldest entry first, so depth bounds the
    // staging memory and entries always commit in FIFO order.
    if (asyncQueue_.size() >= asyncDepth_)
        drainOneAsyncEviction();

    auto& cost = vmm_.machine().cost();
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "async_evict_enqueue", res->domain, 0, res->id,
                    page_index);

    // Eager host-side seal: the exact synchronous encryption — same
    // RNG draws, version bumps, victim-cache traffic, metadata
    // transitions and event counts — with its cycle charges routed
    // into the background lane instead of the guest timeline.
    std::uint64_t lane_cycles = 0;
    encryptPageWith(*res, page_index, meta, cipherFor(*res),
                    &lane_cycles);

    AsyncSealEntry entry;
    entry.gpa = gpa;
    entry.resource = res->id;
    entry.pageIndex = page_index;
    auto frame = frameBytes(gpa);
    std::memcpy(entry.sealed.data(), frame.data(), pageSize);
    // Double buffer: the ciphertext lives in staging from here on; the
    // frame goes back to the kernel scrubbed.
    std::memset(frame.data(), 0, frame.size());
    entry.commit = std::move(commit);

    // Lane model: the seal and its swap-slot write proceed as
    // background work on one lane, serialized behind whatever the lane
    // was already doing. The guest only re-synchronizes (and pays a
    // stall) if it drains before the lane catches up.
    lane_cycles += cost.params().diskAccess +
                   cost.params().diskPerByte * pageSize;
    Cycles now = cost.cycles();
    laneBusyUntil_ = std::max(laneBusyUntil_, now) + lane_cycles;
    entry.readyAt = laneBusyUntil_;
    asyncQueue_.push_back(std::move(entry));

    // Critical-path cost of handing the frame back: snapshot the page
    // into staging, scrub the frame, fixed fault handling.
    cost.charge(cost.params().pageCopy + cost.params().pageZero +
                cost.params().cloakFaultFixed,
                "page_encrypt_async_enqueue");
    stats_.counter("async_evictions").inc();
    return true;
}

void
CloakEngine::drainOneAsyncEviction()
{
    osh_assert(!asyncQueue_.empty(), "drain of an empty async queue");
    AsyncSealEntry entry = std::move(asyncQueue_.front());
    asyncQueue_.pop_front();

    auto& cost = vmm_.machine().cost();
    Cycles now = cost.cycles();
    if (entry.readyAt > now) {
        // The lane has not finished this seal yet: the guest stalls at
        // the drain barrier until it does.
        cost.charge(entry.readyAt - now, "async_evict_stall");
        stats_.counter("async_evict_stalls").inc();
    }
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "async_evict_commit", systemDomain, 0,
                    entry.resource, entry.pageIndex);
    if (entry.commit)
        entry.commit(std::span<const std::uint8_t>(entry.sealed.data(),
                                                   pageSize));
    std::memset(entry.sealed.data(), 0, entry.sealed.size());
    stats_.counter("async_evict_commits").inc();
}

void
CloakEngine::drainAsyncEvictions()
{
    if (asyncDraining_ || asyncQueue_.empty())
        return;
    asyncDraining_ = true;
    while (!asyncQueue_.empty())
        drainOneAsyncEviction();
    asyncDraining_ = false;
}

// ---------------------------------------------------------------------------
// Chunked (incremental) page integrity
// ---------------------------------------------------------------------------

crypto::Digest
CloakEngine::chunkHash(const Resource& res, std::uint64_t page_index,
                       std::size_t chunk, const ChunkState& cs,
                       std::span<const std::uint8_t> ciphertext)
{
    std::uint8_t header[48];
    storeLe64(header, res.keyId);
    storeLe64(header + 8, page_index);
    storeLe64(header + 16, chunk);
    storeLe64(header + 24, cs.versions[chunk]);
    std::memcpy(header + 32, cs.ivs[chunk].data(), cs.ivs[chunk].size());
    crypto::Sha256 ctx;
    ctx.update(std::span<const std::uint8_t>(header, sizeof(header)));
    ctx.update(ciphertext);
    return ctx.final();
}

crypto::Digest
CloakEngine::chunkRoot(const ChunkState& cs)
{
    crypto::Sha256 ctx;
    for (const crypto::Digest& h : cs.hashes)
        ctx.update(std::span<const std::uint8_t>(h.data(), h.size()));
    return ctx.final();
}

void
CloakEngine::sealPageChunked(Resource& res, std::uint64_t page_index,
                             PageMeta& meta,
                             const crypto::Aes128& cipher,
                             std::uint64_t* defer_cycles)
{
    auto frame = frameBytes(meta.residentGpa);
    auto& cost = vmm_.machine().cost();

    bool fresh = meta.chunks == nullptr;
    if (fresh)
        meta.chunks = std::make_shared<ChunkState>();
    ChunkState& cs = *meta.chunks;

    // Diff against the last-seal plaintext snapshot to find the dirty
    // chunks; a first seal (no snapshot yet) dirties everything.
    std::array<bool, chunksPerPage> dirty{};
    std::size_t ndirty = 0;
    for (std::size_t c = 0; c < chunksPerPage; ++c) {
        dirty[c] = fresh ||
                   std::memcmp(frame.data() + c * chunkSize,
                               cs.plaintext.data() + c * chunkSize,
                               chunkSize) != 0;
        if (dirty[c])
            ++ndirty;
    }

    if (ndirty == 0) {
        // Unmodified page: every stored chunk hash still covers the
        // contents, so re-sealing is a copy of the stored ciphertext.
        OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                        "chunk_reencrypt_clean", res.domain, 0, res.id,
                        page_index);
        std::memcpy(frame.data(), cs.ciphertext.data(), pageSize);
        chargeOrDefer(cost,
                      cost.params().victimHitCopy +
                          cost.params().cloakFaultFixed,
                      "chunk_reencrypt_clean", defer_cycles);
        stats_.counter("chunk_clean_reencrypts").inc();
        return;
    }

    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "chunk_encrypt", res.domain, 0, res.id, page_index);
    meta.version++;
    std::memcpy(cs.plaintext.data(), frame.data(), pageSize);
    for (std::size_t c = 0; c < chunksPerPage; ++c) {
        auto chunk = frame.subspan(c * chunkSize, chunkSize);
        if (dirty[c]) {
            vmm_.machine().rng().fill(cs.ivs[c]);
            cs.versions[c]++;
            crypto::aesCtrXcryptInPlace(cipher, cs.ivs[c], chunk);
            cs.hashes[c] = chunkHash(res, page_index, c, cs, chunk);
        } else {
            std::memcpy(chunk.data(),
                        cs.ciphertext.data() + c * chunkSize, chunkSize);
        }
    }
    std::memcpy(cs.ciphertext.data(), frame.data(), pageSize);
    meta.hash = chunkRoot(cs);

    // Cost scales with the dirty chunks (AES + chunk MACs) plus the
    // fixed root recompute — not with the page size.
    std::uint64_t dirty_bytes = ndirty * chunkSize;
    chargeOrDefer(cost,
                  cost.params().aesPerByte * dirty_bytes +
                      cost.params().shaPerByte *
                          (dirty_bytes + 48 * ndirty) +
                      cost.params().shaPerByte *
                          (chunksPerPage * sizeof(crypto::Digest)) +
                      cost.params().cloakFaultFixed,
                  "chunk_encrypt", defer_cycles);
    stats_.counter("chunk_encrypts").inc();
    stats_.counter("chunk_dirty_chunks").inc(ndirty);
}

void
CloakEngine::unsealPageChunked(Resource& res, std::uint64_t page_index,
                               PageMeta& meta, Gpa gpa,
                               const crypto::Aes128& cipher)
{
    OSH_TRACE_SCOPE(&vmm_.machine().tracer(), trace::Category::Cloak,
                    "chunk_decrypt", res.domain, 0, res.id, page_index);
    osh_assert(meta.chunks != nullptr,
               "chunked decrypt of a page never chunk-sealed");
    ChunkState& cs = *meta.chunks;
    auto frame = frameBytes(gpa);
    auto& cost = vmm_.machine().cost();

    cost.charge(cost.params().shaPerByte *
                    (pageSize + 48 * chunksPerPage +
                     chunksPerPage * sizeof(crypto::Digest)) +
                cost.params().aesPerByte * pageSize +
                cost.params().cloakFaultFixed,
                "chunk_decrypt");

    // Verify every chunk hash over the presented ciphertext, then the
    // root, before a single byte is decrypted.
    for (std::size_t c = 0; c < chunksPerPage; ++c) {
        crypto::Digest h =
            chunkHash(res, page_index, c, cs,
                      std::span<const std::uint8_t>(
                          frame.data() + c * chunkSize, chunkSize));
        if (!constantTimeEqual(h, cs.hashes[c])) {
            violation(res, page_index,
                      formatString(
                          "chunk integrity check failed for resource "
                          "%llu page %llu chunk %llu",
                          static_cast<unsigned long long>(res.id),
                          static_cast<unsigned long long>(page_index),
                          static_cast<unsigned long long>(c)));
        }
    }
    if (!constantTimeEqual(chunkRoot(cs), meta.hash)) {
        violation(res, page_index,
                  formatString("chunk root mismatch for resource "
                               "%llu page %llu",
                               static_cast<unsigned long long>(res.id),
                               static_cast<unsigned long long>(
                                   page_index)));
    }
    std::memcpy(cs.ciphertext.data(), frame.data(), pageSize);
    for (std::size_t c = 0; c < chunksPerPage; ++c) {
        crypto::aesCtrXcryptInPlace(
            cipher, cs.ivs[c], frame.subspan(c * chunkSize, chunkSize));
    }
    std::memcpy(cs.plaintext.data(), frame.data(), pageSize);
    stats_.counter("chunk_decrypts").inc();
    stats_.counter("page_decrypts").inc();
}

std::size_t
CloakEngine::sealDomainPlaintext(DomainId id)
{
    auto dit = domains_.find(id);
    if (dit == domains_.end())
        return 0;
    Domain& d = dit->second;

    // Regions can share a resource (explicit re-registration), so walk
    // each resource once. Within a resource every resident plaintext
    // page goes through one encryptPages() batch; encryptPageWith does
    // the per-page bookkeeping (plaintext index, state, shadow
    // suspension) exactly as the eviction path would.
    std::set<ResourceId> seen;
    std::size_t sealed = 0;
    for (Region& r : d.regions) {
        if (!seen.insert(r.resource).second)
            continue;
        Resource* res = metadata_.lookup(r.resource).valueOr(nullptr);
        if (res == nullptr)
            continue;
        std::vector<PageCryptoItem> items;
        for (auto& [idx, meta] : res->pages) {
            if (meta.state == PageState::Encrypted ||
                meta.residentGpa == badAddr)
                continue;
            auto pit = plaintextIndex_.find(meta.residentGpa);
            if (pit == plaintextIndex_.end() ||
                pit->second.resource != res->id ||
                pit->second.pageIndex != idx)
                continue;
            items.push_back({idx, &meta, meta.residentGpa});
        }
        if (items.empty())
            continue;
        encryptPages(*res, items);
        sealed += items.size();
    }
    if (sealed > 0)
        stats_.counter("domain_seals_pages").inc(sealed);
    return sealed;
}

Resource&
CloakEngine::importResource(DomainId domain, ResourceId key_id,
                            bool is_file, std::uint64_t file_key)
{
    Domain& d = domainOf(domain);
    (void)d;
    Resource& res = metadata_.createResource(domain, is_file, file_key);
    res.keyId = key_id;
    res.key = keys_.acquire(key_id);
    metadata_.reserveIds(key_id + 1);
    stats_.counter("resources_imported").inc();
    return res;
}

vmm::ResolvedPage
CloakEngine::resolvePage(const vmm::Context& ctx, GuestVA va_page,
                         const vmm::GuestPte& pte, vmm::AccessType access)
{
    Gpa gpa = pageBase(pte.gpa);
    Mpa mpa = vmm_.pmap().translate(gpa);

    Region* region = nullptr;
    if (ctx.view != systemDomain && !ctx.kernelMode)
        region = findRegion(ctx.view, ctx.asid, va_page);

    Resource* res = nullptr;
    std::uint64_t page_index = 0;
    if (region != nullptr) {
        res = metadata_.lookup(region->resource).valueOr(nullptr);
        if (res != nullptr) {
            page_index = (va_page - region->start) / pageSize +
                         region->resourcePageOffset;
        }
    }

    // Never let a frame holding some other page's plaintext escape its
    // owner's exclusive view.
    auto pit = plaintextIndex_.find(gpa);
    bool was_plaintext = pit != plaintextIndex_.end();
    if (pit != plaintextIndex_.end()) {
        bool self = res != nullptr && pit->second.resource == res->id &&
                    pit->second.pageIndex == page_index;
        if (!self) {
            Resource* owner = metadata_.lookup(pit->second.resource).valueOr(nullptr);
            if (owner != nullptr) {
                PageMeta& ometa =
                    metadata_.page(*owner, pit->second.pageIndex);
                encryptPage(*owner, pit->second.pageIndex, ometa);
            } else {
                plaintextIndex_.erase(pit);
            }
            stats_.counter("foreign_plaintext_seals").inc();
        }
    }

    if (res == nullptr) {
        // System view, another domain's view, or an uncloaked page:
        // plain passthrough (the frame now holds no foreign plaintext).
        //
        // Campaign audit finding: when the page was ALREADY sealed the
        // branch above never ran and this passthrough cost the engine
        // nothing — a zero-cost distinguisher between "sealed" and
        // "held plaintext" on every kernel access to a cloaked VA.
        // Constant-cost mode charges the worst-case seal either way.
        if (constantCost_ && !was_plaintext &&
            inCloakedRegion(ctx.asid, va_page)) {
            vmm_.machine().cost().charge(worstCaseSealCycles(),
                                         "page_seal_equalized");
            stats_.counter("equalized_passthroughs").inc();
        }
        return {mpa, true, pte.writable};
    }

    auto& cost = vmm_.machine().cost();
    PageMeta& meta = metadata_.page(*res, page_index);
    stats_.counter("cloak_faults").inc();

    if (!meta.initialized) {
        // First touch: contents are VMM-defined (zero), regardless of
        // what the kernel left in the frame.
        auto frame = frameBytes(gpa);
        std::memset(frame.data(), 0, frame.size());
        // The kernel already charged the zero-fill; the VMM only pays
        // its fixed fault cost for re-zeroing/validating.
        cost.charge(cost.params().cloakFaultFixed, "cloak_zero_fill");
        meta.initialized = true;
        meta.state = PageState::PlaintextDirty;
        meta.residentGpa = gpa;
        plaintextIndex_[gpa] = {res->id, page_index};
        vmm_.suspendMpa(mpa);
        return {mpa, true, pte.writable};
    }

    if (meta.state != PageState::Encrypted && meta.residentGpa != gpa) {
        // The guest PTE points at a different frame than the one we
        // know holds plaintext. No legitimate kernel path does this
        // (paging always touches the frame, encrypting it first), so
        // seal the old location and validate the new frame as a
        // ciphertext image — which will fail unless the kernel somehow
        // reproduced the exact sealed bytes.
        if (auto old = plaintextIndex_.find(meta.residentGpa);
            old != plaintextIndex_.end() &&
            old->second.resource == res->id &&
            old->second.pageIndex == page_index) {
            encryptPage(*res, page_index, meta);
        } else {
            meta.state = PageState::Encrypted;
            meta.residentGpa = badAddr;
        }
        stats_.counter("plaintext_relocations").inc();
    }

    switch (meta.state) {
      case PageState::Encrypted:
        decryptAndVerify(*res, page_index, meta, gpa);
        meta.residentGpa = gpa;
        plaintextIndex_[gpa] = {res->id, page_index};
        vmm_.suspendMpa(mpa);
        if (access == vmm::AccessType::Write || !cleanOptimization_) {
            meta.state = PageState::PlaintextDirty;
            return {mpa, true, pte.writable};
        }
        // Map read-only so a later write faults and marks the page
        // dirty; until then the stored (IV, hash) remain valid.
        meta.state = PageState::PlaintextClean;
        return {mpa, true, false};

      case PageState::PlaintextClean:
        if (access == vmm::AccessType::Write) {
            meta.state = PageState::PlaintextDirty;
            stats_.counter("clean_to_dirty").inc();
            return {mpa, true, pte.writable};
        }
        return {mpa, true, false};

      case PageState::PlaintextDirty:
        return {mpa, true, pte.writable};
    }
    osh_panic("unreachable page state");
}

// ---------------------------------------------------------------------------
// Domain / region management
// ---------------------------------------------------------------------------

DomainId
CloakEngine::createDomain(Asid asid, Pid pid,
                          const crypto::Digest& identity)
{
    DomainId id = nextDomain_++;
    Domain& d = domains_[id];
    d.id = id;
    d.asid = asid;
    d.pid = pid;
    d.identity = identity;
    stats_.counter("domains_created").inc();
    return id;
}

void
CloakEngine::teardownDomain(DomainId id)
{
    auto dit = domains_.find(id);
    if (dit == domains_.end())
        return;
    Domain& d = dit->second;

    for (Region& r : d.regions) {
        Resource* res = metadata_.lookup(r.resource).valueOr(nullptr);
        if (res == nullptr)
            continue;
        // Scrub any plaintext still resident: the kernel will reuse
        // these frames and must find nothing.
        for (auto& [idx, meta] : res->pages) {
            if (meta.state != PageState::Encrypted &&
                meta.residentGpa != badAddr) {
                auto pit = plaintextIndex_.find(meta.residentGpa);
                if (pit != plaintextIndex_.end() &&
                    pit->second.resource == res->id &&
                    pit->second.pageIndex == idx) {
                    auto frame = frameBytes(meta.residentGpa);
                    std::memset(frame.data(), 0, frame.size());
                    vmm_.invalidateMpa(
                        vmm_.pmap().translate(meta.residentGpa));
                    plaintextIndex_.erase(pit);
                }
                meta.state = PageState::Encrypted;
                meta.residentGpa = badAddr;
            }
        }
        if (res->isFile) {
            // Persist protection for the file before letting go; the
            // resource is known-owned and a file, so this cannot fail.
            (void)sealFileResource(id, res->id);
        }
        metadata_.destroyResource(r.resource);
    }
    domains_.erase(dit);
    stats_.counter("domains_destroyed").inc();
}

ResourceId
CloakEngine::registerRegion(DomainId domain, GuestVA start,
                            std::uint64_t pages, ResourceId resource,
                            std::uint64_t resource_page_offset)
{
    Domain& d = domainOf(domain);
    Resource* res = nullptr;
    if (resource == 0) {
        res = &metadata_.createResource(domain);
        res->key = keys_.acquire(res->keyId);
    } else {
        res = metadata_.lookup(resource).valueOr(nullptr);
        osh_assert(res != nullptr, "register to unknown resource");
        osh_assert(res->domain == domain,
                   "register to another domain's resource");
    }
    Region r;
    r.asid = d.asid;
    r.start = pageBase(start);
    r.end = r.start + pages * pageSize;
    r.resource = res->id;
    r.resourcePageOffset = resource_page_offset;
    d.regions.push_back(r);
    stats_.counter("regions_registered").inc();
    // Existing (uncloaked) shadow and TLB mappings of this range are
    // now wrong. Invalidate at page granularity: translations outside
    // the region — including retained shadows of other processes —
    // stay live.
    for (GuestVA va = r.start; va < r.end; va += pageSize) {
        vmm_.shadows().invalidateVa(d.asid, va);
        vmm_.shootdownVa(d.asid, va);
    }
    return res->id;
}

void
CloakEngine::unregisterRegion(DomainId domain, GuestVA start)
{
    Domain& d = domainOf(domain);
    for (auto it = d.regions.begin(); it != d.regions.end(); ++it) {
        if (it->start != pageBase(start))
            continue;
        Resource* res = metadata_.lookup(it->resource).valueOr(nullptr);
        if (res != nullptr) {
            bool still_referenced = false;
            for (const Region& other : d.regions) {
                if (other.start != it->start &&
                    other.resource == it->resource) {
                    still_referenced = true;
                }
            }
            bool dying = !still_referenced && !res->isFile;
            // Scrub resident plaintext of this region's pages. If the
            // data must survive (file resource, or still mapped
            // elsewhere) encrypt it in place; if the resource dies with
            // the region, zeroing is sufficient — and much cheaper.
            if (dying) {
                for (auto& [idx, meta] : res->pages) {
                    if (meta.state == PageState::Encrypted ||
                        meta.residentGpa == badAddr) {
                        continue;
                    }
                    auto pit = plaintextIndex_.find(meta.residentGpa);
                    if (pit != plaintextIndex_.end() &&
                        pit->second.resource == res->id &&
                        pit->second.pageIndex == idx) {
                        auto frame = frameBytes(meta.residentGpa);
                        std::memset(frame.data(), 0, frame.size());
                        vmm_.invalidateMpa(
                            vmm_.pmap().translate(meta.residentGpa));
                        plaintextIndex_.erase(pit);
                        auto& cost = vmm_.machine().cost();
                        cost.charge(cost.params().pageZero,
                                    "cloak_scrub_zero");
                    }
                    meta.state = PageState::Encrypted;
                    meta.residentGpa = badAddr;
                }
            } else {
                std::vector<PageCryptoItem> to_seal;
                for (auto& [idx, meta] : res->pages) {
                    if (meta.state != PageState::Encrypted &&
                        meta.residentGpa != badAddr) {
                        to_seal.push_back({idx, &meta,
                                           meta.residentGpa});
                    }
                }
                encryptPages(*res, to_seal);
            }
            if (dying)
                metadata_.destroyResource(it->resource);
        }
        d.regions.erase(it);
        stats_.counter("regions_unregistered").inc();
        return;
    }
}

void
CloakEngine::bindCtc(DomainId domain, GuestVA ctc_va)
{
    Domain& d = domainOf(domain);
    d.ctcVa = ctc_va;
    d.ctcHashValid = false;
}

void
CloakEngine::recordCtcHash(DomainId domain, const crypto::Digest& hash)
{
    Domain& d = domainOf(domain);
    d.ctcHash = hash;
    d.ctcHashValid = true;
}

Expected<void, CloakError>
CloakEngine::verifyCtcHash(DomainId domain, const crypto::Digest& hash)
{
    auto it = domains_.find(domain);
    if (it == domains_.end())
        return auditError(CloakError::UnknownDomain, domain);
    if (!it->second.ctcHashValid)
        return auditError(CloakError::NoCtcHash, domain);
    if (!constantTimeEqual(it->second.ctcHash, hash))
        return auditError(CloakError::CtcHashMismatch, domain);
    return {};
}

// ---------------------------------------------------------------------------
// Fork
// ---------------------------------------------------------------------------

Expected<std::uint64_t, CloakError>
CloakEngine::prepareFork(DomainId parent)
{
    if (domains_.count(parent) == 0)
        return auditError(CloakError::UnknownDomain, parent);
    std::uint64_t token = nextForkToken_++;
    PendingFork& pf = pendingForks_[token];
    pf.parent = parent;
    return token;
}

Expected<void, CloakError>
CloakEngine::snapshotFork(DomainId parent, std::uint64_t token)
{
    auto it = pendingForks_.find(token);
    if (it == pendingForks_.end() || it->second.parent != parent) {
        stats_.counter("fork_snapshot_rejected").inc();
        return auditError(CloakError::BadForkToken, parent);
    }
    if (it->second.snapshotted) {
        stats_.counter("fork_snapshot_rejected").inc();
        return auditError(CloakError::ForkAlreadySnapshotted, parent);
    }
    Domain* pd = findDomain(parent);
    if (pd == nullptr)
        return auditError(CloakError::UnknownDomain, parent);
    PendingFork& pf = it->second;

    // Clone each resource *now*, while the child's eagerly copied page
    // images exactly match the parent's just-encrypted metadata. The
    // parent may re-encrypt its own pages afterwards without breaking
    // the child. Clones are parked in the parent domain until attach.
    std::map<ResourceId, ResourceId> cloned;
    for (const Region& r : pd->regions) {
        Resource* src = metadata_.lookup(r.resource).valueOr(nullptr);
        if (src == nullptr)
            continue;
        // Protected files do not survive fork (the parent keeps its
        // mapping; sharing page-cache plaintext across two domains is
        // unsound). Children reopen protected files themselves.
        if (src->isFile)
            continue;
        auto cit = cloned.find(r.resource);
        ResourceId new_res;
        if (cit == cloned.end()) {
            new_res = metadata_.cloneResource(*src, parent).id;
            cloned[r.resource] = new_res;
        } else {
            new_res = cit->second;
        }
        pf.regions.push_back({r, new_res});
    }
    pf.ctcVa = pd->ctcVa;
    pf.snapshotted = true;
    stats_.counter("fork_snapshots").inc();
    return {};
}

Expected<DomainId, CloakError>
CloakEngine::forkAttach(Asid child_asid, Pid child_pid,
                        std::uint64_t token)
{
    auto it = pendingForks_.find(token);
    if (it == pendingForks_.end()) {
        stats_.counter("fork_attach_rejected").inc();
        return auditError(CloakError::BadForkToken, systemDomain);
    }
    if (!it->second.snapshotted) {
        stats_.counter("fork_attach_rejected").inc();
        return auditError(CloakError::ForkNotSnapshotted,
                          it->second.parent);
    }
    PendingFork pf = std::move(it->second);
    pendingForks_.erase(it);
    Domain* parent = findDomain(pf.parent);
    if (parent == nullptr) {
        for (const PendingRegion& pr : pf.regions)
            metadata_.destroyResource(pr.clonedResource);
        return auditError(CloakError::UnknownDomain, pf.parent);
    }

    DomainId child_id =
        createDomain(child_asid, child_pid, parent->identity);
    Domain& child = domainOf(child_id);
    child.ctcVa = pf.ctcVa;

    // Mirror the parent's regions at the same virtual addresses (fork
    // preserves the address-space layout), re-homing the clones.
    for (const PendingRegion& pr : pf.regions) {
        Resource* res = metadata_.lookup(pr.clonedResource).valueOr(nullptr);
        if (res == nullptr)
            continue;
        res->domain = child_id;
        Region nr = pr.region;
        nr.asid = child_asid;
        nr.resource = pr.clonedResource;
        child.regions.push_back(nr);
    }
    stats_.counter("fork_attaches").inc();
    return child_id;
}

// ---------------------------------------------------------------------------
// Protected files
// ---------------------------------------------------------------------------

Expected<ResourceId, CloakError>
CloakEngine::attachFileResource(DomainId domain, std::uint64_t file_key)
{
    Domain& d = domainOf(domain);
    Resource& res = metadata_.createResource(domain, true, file_key);
    res.keyId = fileKeyTag | file_key;
    // Resolve the key material once, here at attach: every later fault
    // and seal on this resource goes through the handle.
    res.key = keys_.acquire(res.keyId);

    auto sit = sealedStore_.find(file_key);
    if (sit != sealedStore_.end()) {
        auto unsealed = metadata_.unseal(sit->second,
                                         res.key.sealingHmac(),
                                         d.identity, res);
        if (!unsealed.ok()) {
            stats_.counter("file_attach_rejected").inc();
            ResourceId dead = res.id;
            metadata_.destroyResource(dead);
            // Propagate the store's typed cause (bad MAC vs identity vs
            // rollback vs malformed) instead of a blanket rejection.
            return auditError(unsealed.error(), domain, dead);
        }
    }
    stats_.counter("file_attaches").inc();
    return res.id;
}

Expected<void, CloakError>
CloakEngine::sealFileResource(DomainId domain, ResourceId resource)
{
    Domain& d = domainOf(domain);
    Resource* res = metadata_.lookup(resource).valueOr(nullptr);
    if (res == nullptr)
        return auditError(CloakError::UnknownResource, domain, resource);
    if (res->domain != domain)
        return auditError(CloakError::ForeignResource, domain, resource);
    if (!res->isFile)
        return auditError(CloakError::NotAFileResource, domain,
                          resource);
    // Hashes must cover final contents: force-encrypt anything still
    // plaintext, as one batch.
    std::vector<PageCryptoItem> to_seal;
    for (auto& [idx, meta] : res->pages) {
        if (meta.state != PageState::Encrypted &&
            meta.residentGpa != badAddr) {
            to_seal.push_back({idx, &meta, meta.residentGpa});
        }
    }
    encryptPages(*res, to_seal);
    sealedStore_[res->fileKey] = metadata_.seal(
        *res, sealingHmacFor(*res), d.identity);
    stats_.counter("file_seals").inc();
    return {};
}

void
CloakEngine::discardFileMetadata(std::uint64_t file_key)
{
    sealedStore_.erase(file_key);
    stats_.counter("file_discards").inc();
}

// ---------------------------------------------------------------------------
// Hypercalls
// ---------------------------------------------------------------------------

std::int64_t
CloakEngine::hypercall(vmm::Vcpu& vcpu, vmm::Hypercall num,
                       std::span<const std::uint64_t> args)
{
    const vmm::Context& ctx = vcpu.context();
    auto arg = [&args](std::size_t i) -> std::uint64_t {
        return i < args.size() ? args[i] : 0;
    };

    switch (num) {
      case vmm::Hypercall::CloakRegisterRegion:
        if (ctx.view == systemDomain)
            return -1;
        return static_cast<std::int64_t>(
            registerRegion(ctx.view, arg(0), arg(1),
                           static_cast<ResourceId>(arg(2)), arg(3)));

      case vmm::Hypercall::CloakUnregisterRegion:
        if (ctx.view == systemDomain)
            return -1;
        unregisterRegion(ctx.view, arg(0));
        return 0;

      case vmm::Hypercall::CloakRegisterThread:
        if (ctx.view == systemDomain)
            return -1;
        bindCtc(ctx.view, arg(0));
        return 0;

      case vmm::Hypercall::CloakSealMetadata:
        if (ctx.view == systemDomain)
            return -1;
        return sealFileResource(ctx.view,
                                static_cast<ResourceId>(arg(0)))
                   .ok()
                   ? 0
                   : -1;

      case vmm::Hypercall::CloakPrepareFork:
        if (ctx.view == systemDomain)
            return -1;
        // Tokens are always positive; 0 signals rejection.
        return static_cast<std::int64_t>(
            prepareFork(ctx.view).valueOr(0));

      case vmm::Hypercall::CloakSnapshotFork:
        if (ctx.view == systemDomain)
            return -1;
        return snapshotFork(ctx.view, arg(0)).ok() ? 0 : -1;

      case vmm::Hypercall::CloakForkAttach:
        // The caller has no domain yet; its asid doubles as its pid in
        // this system (see os::Process).
        return static_cast<std::int64_t>(
            forkAttach(ctx.asid, static_cast<Pid>(ctx.asid), arg(0))
                .valueOr(systemDomain));

      case vmm::Hypercall::CloakAttachFile:
        if (ctx.view == systemDomain)
            return -1;
        // Resource ids are always positive; 0 signals rejection.
        return static_cast<std::int64_t>(
            attachFileResource(ctx.view, arg(0)).valueOr(0));

      case vmm::Hypercall::CloakDiscardFile:
        if (ctx.view == systemDomain)
            return -1;
        discardFileMetadata(arg(0));
        return 0;

      case vmm::Hypercall::CloakTeardownDomain:
        if (ctx.view == systemDomain)
            return -1;
        teardownDomain(ctx.view);
        return 0;

      case vmm::Hypercall::CloakInfo:
        switch (arg(0)) {
          case 0: return static_cast<std::int64_t>(auditLog_.size());
          case 1:
            return static_cast<std::int64_t>(plaintextIndex_.size());
          case 2: return static_cast<std::int64_t>(domains_.size());
          case 3: return static_cast<std::int64_t>(auditLog_.dropped());
          default: return -1;
        }

      case vmm::Hypercall::CloakIntrospect:
        // Timing-hardening introspection: lets the guest (and the
        // tests) assert what a prober can actually observe. None of
        // these values are secret — the knobs are system policy, not
        // per-domain state — so no domain check.
        switch (arg(0)) {
          case vmm::introspectClockFuzz:
            return static_cast<std::int64_t>(vmm_.clockFuzzCycles());
          case vmm::introspectClockOffset:
            return static_cast<std::int64_t>(vmm_.clockOffsetCycles());
          case vmm::introspectConstantCost:
            return constantCost_ ? 1 : 0;
          case vmm::introspectVictimCacheCapacity:
            return static_cast<std::int64_t>(victims_.capacity());
          case vmm::introspectAsyncEvictDepth:
            return static_cast<std::int64_t>(asyncDepth_);
          default: return -1;
        }

      case vmm::Hypercall::CloakCreateDomain:
        // Domain creation is part of the attested launch path and goes
        // through the trusted runtime API, not a guest hypercall.
        return -1;
    }
    return -1;
}

} // namespace osh::cloak
