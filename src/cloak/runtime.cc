#include "cloak/runtime.hh"

#include "base/logging.hh"

namespace osh::cloak
{

std::unique_ptr<Shim>
OvershadowRuntime::launch(CloakEngine& engine, os::Env& env)
{
    os::Process& proc = env.process();
    osh_assert(proc.cloaked, "launch of uncloaked program");

    crypto::Digest identity = programIdentity(proc.programName);
    DomainId domain = engine.createDomain(proc.as.asid(), proc.pid,
                                          identity);
    proc.domain = domain;

    // The VMM confers the domain's view on the vCPU (attested launch).
    env.vcpu().context().view = domain;
    env.vcpu().vmm().chargeWorldSwitch("cloak_launch");

    auto shim = std::make_unique<Shim>(engine, domain, env);
    shim->initialize();
    return shim;
}

std::unique_ptr<Shim>
OvershadowRuntime::launchForked(CloakEngine& engine, os::Env& env,
                                std::uint64_t fork_token,
                                GuestVA parent_ctc, GuestVA parent_bounce)
{
    os::Process& proc = env.process();
    osh_assert(proc.cloaked, "forked launch of uncloaked program");

    std::array<std::uint64_t, 1> args{fork_token};
    std::int64_t domain = env.vcpu().hypercall(
        vmm::Hypercall::CloakForkAttach, args);
    if (domain <= 0) {
        // The engine refused to confer the parent's domain — a hostile
        // kernel corrupted cloaked state between fork and attach (the
        // rejection is audited). The child must not run half-attached;
        // kill it gracefully rather than panic the simulator.
        throw vmm::ProcessKilled{proc.pid,
                                 "cloak violation: fork attach rejected"};
    }
    proc.domain = static_cast<DomainId>(domain);

    env.vcpu().context().view = proc.domain;
    env.vcpu().vmm().chargeWorldSwitch("cloak_fork_launch");

    auto shim = std::make_unique<Shim>(engine, proc.domain, env);
    shim->initialize(Shim::InheritedLayout{parent_ctc, parent_bounce});
    return shim;
}

std::unique_ptr<Shim>
OvershadowRuntime::launchRestored(CloakEngine& engine, os::Env& env,
                                  GuestVA ctc_va, GuestVA bounce_va)
{
    os::Process& proc = env.process();
    osh_assert(proc.cloaked && proc.domain != systemDomain,
               "restored launch without an imported domain");

    env.vcpu().context().view = proc.domain;
    env.vcpu().vmm().chargeWorldSwitch("cloak_restore_launch");

    auto shim = std::make_unique<Shim>(engine, proc.domain, env);
    shim->initialize(Shim::InheritedLayout{ctc_va, bounce_va});
    return shim;
}

void
OvershadowRuntime::teardown(CloakEngine& engine, os::Env& env, Shim* shim)
{
    if (shim != nullptr)
        shim->detach();
    os::Process& proc = env.process();
    if (proc.domain != systemDomain) {
        engine.teardownDomain(proc.domain);
        proc.domain = systemDomain;
    }
    env.vcpu().context().view = systemDomain;
}

} // namespace osh::cloak
