#include "workloads/workloads.hh"

#include "base/logging.hh"
#include "os/env.hh"
#include "os/layout.hh"

#include <algorithm>
#include <array>
#include <cstring>

namespace osh::workloads
{

using os::Env;

namespace
{

// ---------------------------------------------------------------------------
// Guest-side helpers
// ---------------------------------------------------------------------------

std::uint64_t
splitmix(std::uint64_t& s)
{
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

void
fnvMix(std::uint64_t& h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= fnvPrime;
    }
}

std::uint64_t
argAt(Env& env, std::size_t i, std::uint64_t fallback)
{
    const auto& args = env.args();
    if (i >= args.size())
        return fallback;
    return std::strtoull(args[i].c_str(), nullptr, 10);
}

/** Workload seed: the system seed, so native/cloaked runs match. */
std::uint64_t
workloadSeed(Env& env)
{
    return env.kernel().vmm().machine().config().seed;
}

std::string
toHex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

/** Write the result checksum to /results/<name> (public output). */
int
writeResult(Env& env, const std::string& name, std::uint64_t checksum)
{
    env.mkdir("/results"); // errExist is fine
    std::int64_t fd = env.open("/results/" + name,
                               os::openCreate | os::openWrite |
                                   os::openTrunc);
    if (fd < 0)
        return 20;
    std::string hex = toHex64(checksum);
    if (env.writeAll(static_cast<std::uint64_t>(fd), hex) !=
        static_cast<std::int64_t>(hex.size()))
        return 21;
    env.close(static_cast<std::uint64_t>(fd));
    return 0;
}

/** Hash a guest buffer in chunks (charges guest memory costs). */
std::uint64_t
hashGuestRange(Env& env, GuestVA va, std::uint64_t len)
{
    std::uint64_t h = fnvOffset;
    std::array<std::uint8_t, 4096> buf;
    std::uint64_t done = 0;
    while (done < len) {
        std::uint64_t n = std::min<std::uint64_t>(len - done, buf.size());
        env.readBytes(va + done, std::span<std::uint8_t>(buf.data(), n));
        for (std::uint64_t i = 0; i < n; ++i) {
            h ^= buf[i];
            h *= fnvPrime;
        }
        done += n;
    }
    return h;
}

// ---------------------------------------------------------------------------
// Compute kernels (F1 suite)
// ---------------------------------------------------------------------------

int
wlMatmul(Env& env)
{
    std::uint64_t n = argAt(env, 0, 20);
    std::uint64_t bytes = n * n * 8;
    GuestVA a = env.allocPages(roundUpToPage(bytes) / pageSize);
    GuestVA b = env.allocPages(roundUpToPage(bytes) / pageSize);
    GuestVA c = env.allocPages(roundUpToPage(bytes) / pageSize);

    std::uint64_t s = workloadSeed(env);
    for (std::uint64_t i = 0; i < n * n; ++i) {
        env.store64(a + i * 8, splitmix(s) & 0xffff);
        env.store64(b + i * 8, splitmix(s) & 0xffff);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        for (std::uint64_t j = 0; j < n; ++j) {
            std::uint64_t acc = 0;
            for (std::uint64_t k = 0; k < n; ++k) {
                acc += env.load64(a + (i * n + k) * 8) *
                       env.load64(b + (k * n + j) * 8);
            }
            env.store64(c + (i * n + j) * 8, acc);
        }
    }
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < n * n; ++i)
        fnvMix(h, env.load64(c + i * 8));
    return writeResult(env, "wl.matmul", h);
}

int
wlSort(Env& env)
{
    std::uint64_t n = argAt(env, 0, 4096);
    GuestVA arr = env.allocPages(roundUpToPage(n * 8) / pageSize);
    std::uint64_t s = workloadSeed(env);
    for (std::uint64_t i = 0; i < n; ++i)
        env.store64(arr + i * 8, splitmix(s));

    // In-place iterative bottom-up merge sort with a scratch buffer.
    GuestVA tmp = env.allocPages(roundUpToPage(n * 8) / pageSize);
    for (std::uint64_t width = 1; width < n; width *= 2) {
        for (std::uint64_t lo = 0; lo < n; lo += 2 * width) {
            std::uint64_t mid = std::min(lo + width, n);
            std::uint64_t hi = std::min(lo + 2 * width, n);
            std::uint64_t i = lo, j = mid, k = lo;
            while (i < mid && j < hi) {
                std::uint64_t vi = env.load64(arr + i * 8);
                std::uint64_t vj = env.load64(arr + j * 8);
                if (vi <= vj) {
                    env.store64(tmp + k * 8, vi);
                    ++i;
                } else {
                    env.store64(tmp + k * 8, vj);
                    ++j;
                }
                ++k;
            }
            for (; i < mid; ++i, ++k)
                env.store64(tmp + k * 8, env.load64(arr + i * 8));
            for (; j < hi; ++j, ++k)
                env.store64(tmp + k * 8, env.load64(arr + j * 8));
        }
        std::swap(arr, tmp);
    }

    // Verify sorted while hashing.
    std::uint64_t h = fnvOffset;
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t v = env.load64(arr + i * 8);
        if (v < prev)
            return 30;
        prev = v;
        fnvMix(h, v);
    }
    return writeResult(env, "wl.sort", h);
}

int
wlStream(Env& env)
{
    std::uint64_t kb = argAt(env, 0, 256);
    std::uint64_t passes = argAt(env, 1, 2);
    std::uint64_t bytes = kb * 1024;
    GuestVA buf = env.allocPages(roundUpToPage(bytes) / pageSize);
    std::uint64_t s = workloadSeed(env);
    // Fill in 64-bit strides, then stream-hash repeatedly.
    for (std::uint64_t i = 0; i < bytes; i += 8)
        env.store64(buf + i, splitmix(s));
    std::uint64_t h = fnvOffset;
    for (std::uint64_t p = 0; p < passes; ++p)
        fnvMix(h, hashGuestRange(env, buf, bytes));
    return writeResult(env, "wl.stream", h);
}

int
wlChase(Env& env)
{
    std::uint64_t n = argAt(env, 0, 8192);
    std::uint64_t steps = argAt(env, 1, 4 * n);
    GuestVA arr = env.allocPages(roundUpToPage(n * 8) / pageSize);

    // Build a random single-cycle permutation (Sattolo's algorithm).
    std::uint64_t s = workloadSeed(env);
    for (std::uint64_t i = 0; i < n; ++i)
        env.store64(arr + i * 8, i);
    for (std::uint64_t i = n - 1; i > 0; --i) {
        std::uint64_t j = splitmix(s) % i;
        std::uint64_t vi = env.load64(arr + i * 8);
        std::uint64_t vj = env.load64(arr + j * 8);
        env.store64(arr + i * 8, vj);
        env.store64(arr + j * 8, vi);
    }
    std::uint64_t pos = 0;
    std::uint64_t h = fnvOffset;
    for (std::uint64_t k = 0; k < steps; ++k) {
        pos = env.load64(arr + pos * 8);
        fnvMix(h, pos);
    }
    return writeResult(env, "wl.chase", h);
}

int
wlHistogram(Env& env)
{
    std::uint64_t n = argAt(env, 0, 65536);
    GuestVA data = env.allocPages(roundUpToPage(n) / pageSize);
    GuestVA hist = env.allocPages(1);
    std::uint64_t s = workloadSeed(env);
    for (std::uint64_t i = 0; i < n; i += 8)
        env.store64(data + i, splitmix(s));
    for (std::uint64_t i = 0; i < 256; ++i)
        env.store64(hist + i * 8, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint8_t b = env.load8(data + i);
        GuestVA slot = hist + std::uint64_t{b} * 8;
        env.store64(slot, env.load64(slot) + 1);
    }
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < 256; ++i)
        fnvMix(h, env.load64(hist + i * 8));
    return writeResult(env, "wl.histogram", h);
}

int
wlStencil(Env& env)
{
    std::uint64_t g = argAt(env, 0, 48);
    std::uint64_t iters = argAt(env, 1, 8);
    std::uint64_t bytes = g * g * 8;
    GuestVA cur = env.allocPages(roundUpToPage(bytes) / pageSize);
    GuestVA nxt = env.allocPages(roundUpToPage(bytes) / pageSize);
    std::uint64_t s = workloadSeed(env);
    for (std::uint64_t i = 0; i < g * g; ++i)
        env.store64(cur + i * 8, splitmix(s) & 0xffff);

    for (std::uint64_t it = 0; it < iters; ++it) {
        for (std::uint64_t y = 1; y + 1 < g; ++y) {
            for (std::uint64_t x = 1; x + 1 < g; ++x) {
                std::uint64_t acc =
                    env.load64(cur + ((y - 1) * g + x) * 8) +
                    env.load64(cur + ((y + 1) * g + x) * 8) +
                    env.load64(cur + (y * g + x - 1) * 8) +
                    env.load64(cur + (y * g + x + 1) * 8) +
                    env.load64(cur + (y * g + x) * 8);
                env.store64(nxt + (y * g + x) * 8, acc / 5);
            }
        }
        std::swap(cur, nxt);
    }
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < g * g; ++i)
        fnvMix(h, env.load64(cur + i * 8));
    return writeResult(env, "wl.stencil", h);
}

// ---------------------------------------------------------------------------
// File server (F2)
// ---------------------------------------------------------------------------

int
wlFileserver(Env& env)
{
    std::uint64_t file_kb = argAt(env, 0, 128);
    std::uint64_t requests = argAt(env, 1, 100);
    std::uint64_t req_bytes = argAt(env, 2, 4096);
    bool protected_file = argAt(env, 3, 1) != 0;

    std::string path;
    if (protected_file) {
        env.mkdir("/cloaked");
        path = "/cloaked/site.dat";
    } else {
        env.mkdir("/www");
        path = "/www/site.dat";
    }

    // Populate the data file deterministically.
    std::uint64_t file_bytes = file_kb * 1024;
    {
        std::int64_t fd = env.open(path, os::openCreate | os::openWrite |
                                             os::openTrunc);
        if (fd < 0)
            return 40;
        GuestVA chunk = env.allocPages(1);
        std::uint64_t s = workloadSeed(env) ^ 0xf11e;
        std::uint64_t written = 0;
        while (written < file_bytes) {
            for (std::uint64_t i = 0; i < pageSize; i += 8)
                env.store64(chunk + i, splitmix(s));
            std::uint64_t n =
                std::min<std::uint64_t>(pageSize, file_bytes - written);
            if (env.write(static_cast<std::uint64_t>(fd), chunk, n) !=
                static_cast<std::int64_t>(n))
                return 41;
            written += n;
        }
        env.close(static_cast<std::uint64_t>(fd));
    }

    // Serve requests: seek to a pseudo-random offset, read the payload
    // and "send" it — modelled as a write to an uncloaked response
    // sink (a socket is public by nature), which crosses the kernel
    // exactly as Apache's response writes do.
    std::int64_t fd = env.open(path, os::openRead);
    if (fd < 0)
        return 42;
    env.mkdir("/www");
    std::int64_t sink = env.open("/www/response",
                                 os::openCreate | os::openWrite |
                                     os::openTrunc);
    if (sink < 0)
        return 44;
    GuestVA buf = env.allocPages(
        std::max<std::uint64_t>(1, roundUpToPage(req_bytes) / pageSize));
    std::uint64_t s = workloadSeed(env) ^ 0x5e71;
    std::uint64_t h = fnvOffset;
    std::uint64_t span = file_bytes > req_bytes
                             ? file_bytes - req_bytes
                             : 1;
    std::uint64_t depth = argAt(env, 4, 0);
    if (depth > 1) {
        // Batched serve loop: groups of up to `depth` requests are
        // submitted as one pread batch (range reads replace the
        // lseek+read pairs), hashed, then answered with one pwrite
        // batch. Byte-for-byte the same responses and final sink state
        // as the serial loop below — only the trap count changes.
        std::uint64_t k_max = std::min<std::uint64_t>(
            std::min<std::uint64_t>(depth, os::maxBatchDepth), requests);
        std::uint64_t req_pages = std::max<std::uint64_t>(
            1, roundUpToPage(req_bytes) / pageSize);
        GuestVA bufs = env.allocPages(req_pages * k_max);
        std::vector<os::BatchEntry> entries;
        std::vector<std::int64_t> results;
        std::uint64_t r = 0;
        while (r < requests) {
            std::uint64_t k =
                std::min<std::uint64_t>(k_max, requests - r);
            entries.clear();
            for (std::uint64_t c = 0; c < k; ++c) {
                std::uint64_t off = splitmix(s) % span;
                entries.push_back(
                    {os::Sys::Pread,
                     {static_cast<std::uint64_t>(fd),
                      bufs + c * req_pages * pageSize, req_bytes, off}});
            }
            if (env.submitBatch(entries, results) !=
                static_cast<std::int64_t>(k))
                return 46;
            entries.clear();
            for (std::uint64_t c = 0; c < k; ++c) {
                std::int64_t got = results[c];
                if (got <= 0)
                    return 43;
                GuestVA cbuf = bufs + c * req_pages * pageSize;
                fnvMix(h, hashGuestRange(
                              env, cbuf,
                              static_cast<std::uint64_t>(got)));
                entries.push_back(
                    {os::Sys::Pwrite,
                     {static_cast<std::uint64_t>(sink), cbuf,
                      static_cast<std::uint64_t>(got), 0}});
            }
            if (env.submitBatch(entries, results) !=
                static_cast<std::int64_t>(k))
                return 46;
            for (std::uint64_t c = 0; c < k; ++c)
                if (results[c] < 0)
                    return 45;
            r += k;
        }
    } else {
        for (std::uint64_t r = 0; r < requests; ++r) {
            std::uint64_t off = splitmix(s) % span;
            env.lseek(static_cast<std::uint64_t>(fd),
                      static_cast<std::int64_t>(off), os::seekSet);
            std::int64_t got = env.read(static_cast<std::uint64_t>(fd),
                                        buf, req_bytes);
            if (got <= 0)
                return 43;
            fnvMix(h, hashGuestRange(env, buf,
                                     static_cast<std::uint64_t>(got)));
            if (env.write(static_cast<std::uint64_t>(sink), buf,
                          static_cast<std::uint64_t>(got)) != got)
                return 45;
            env.lseek(static_cast<std::uint64_t>(sink), 0, os::seekSet);
        }
    }
    env.close(static_cast<std::uint64_t>(sink));
    env.close(static_cast<std::uint64_t>(fd));
    return writeResult(env, "wl.fileserver", h);
}

// ---------------------------------------------------------------------------
// Build driver (F3)
// ---------------------------------------------------------------------------

int
wlCompile(Env& env)
{
    std::uint64_t index = argAt(env, 0, 0);
    std::string src = formatString("/src/file_%llu.c",
                                   static_cast<unsigned long long>(index));
    std::string obj = formatString("/obj/file_%llu.o",
                                   static_cast<unsigned long long>(index));

    std::int64_t fd = env.open(src, os::openRead);
    if (fd < 0)
        return 50;
    os::StatBuf sb{};
    env.fstat(static_cast<std::uint64_t>(fd), sb);
    std::uint64_t size = sb.size;
    GuestVA buf = env.allocPages(
        std::max<std::uint64_t>(1, roundUpToPage(size) / pageSize));
    if (env.read(static_cast<std::uint64_t>(fd), buf, size) !=
        static_cast<std::int64_t>(size))
        return 51;
    env.close(static_cast<std::uint64_t>(fd));

    // "Compile": a couple of transformation passes over the buffer.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t i = 0; i + 8 <= size; i += 8) {
            std::uint64_t v = env.load64(buf + i);
            v = (v ^ 0xa5a5a5a5a5a5a5a5ull) * fnvPrime;
            v = (v << 13) | (v >> 51);
            env.store64(buf + i, v);
        }
    }

    std::int64_t ofd = env.open(obj, os::openCreate | os::openWrite |
                                         os::openTrunc);
    if (ofd < 0)
        return 52;
    if (env.write(static_cast<std::uint64_t>(ofd), buf, size) !=
        static_cast<std::int64_t>(size))
        return 53;
    env.close(static_cast<std::uint64_t>(ofd));
    return static_cast<int>(index & 0x3f);
}

int
wlBuild(Env& env)
{
    std::uint64_t tasks = argAt(env, 0, 4);
    std::uint64_t work_kb = argAt(env, 1, 16);
    env.mkdir("/src");
    env.mkdir("/obj");

    // Generate the "source files".
    std::uint64_t s = workloadSeed(env) ^ 0xb01d;
    GuestVA chunk = env.allocPages(1);
    for (std::uint64_t i = 0; i < tasks; ++i) {
        std::string src =
            formatString("/src/file_%llu.c",
                         static_cast<unsigned long long>(i));
        std::int64_t fd = env.open(src, os::openCreate | os::openWrite |
                                            os::openTrunc);
        if (fd < 0)
            return 60;
        std::uint64_t remaining = work_kb * 1024;
        while (remaining > 0) {
            for (std::uint64_t b = 0; b < pageSize; b += 8)
                env.store64(chunk + b, splitmix(s));
            std::uint64_t n = std::min<std::uint64_t>(pageSize,
                                                      remaining);
            env.write(static_cast<std::uint64_t>(fd), chunk, n);
            remaining -= n;
        }
        env.close(static_cast<std::uint64_t>(fd));
    }

    // Spawn one compiler per source and wait for all of them.
    std::vector<Pid> children;
    for (std::uint64_t i = 0; i < tasks; ++i) {
        Pid pid = env.spawn("wl.compile",
                            {formatString("%llu",
                                          static_cast<unsigned long long>(
                                              i))});
        if (pid <= 0)
            return 61;
        children.push_back(pid);
    }
    for (Pid pid : children) {
        int status = -1;
        if (env.waitpid(pid, &status) != pid)
            return 62;
        (void)status;
    }

    // Checksum the object files.
    std::uint64_t h = fnvOffset;
    GuestVA buf = env.allocPages(
        std::max<std::uint64_t>(1, roundUpToPage(work_kb * 1024) /
                                        pageSize));
    for (std::uint64_t i = 0; i < tasks; ++i) {
        std::string obj =
            formatString("/obj/file_%llu.o",
                         static_cast<unsigned long long>(i));
        std::int64_t fd = env.open(obj, os::openRead);
        if (fd < 0)
            return 63;
        std::int64_t got = env.read(static_cast<std::uint64_t>(fd), buf,
                                    work_kb * 1024);
        if (got <= 0)
            return 64;
        fnvMix(h, hashGuestRange(env, buf,
                                 static_cast<std::uint64_t>(got)));
        env.close(static_cast<std::uint64_t>(fd));
    }
    return writeResult(env, "wl.build", h);
}

// ---------------------------------------------------------------------------
// Memory-pressure stressor (F5)
// ---------------------------------------------------------------------------

int
wlMemstress(Env& env)
{
    std::uint64_t pages = argAt(env, 0, 512);
    std::uint64_t passes = argAt(env, 1, 3);
    // 0 = sequential sweep (worst case for clock eviction),
    // 1 = uniform random touches (graduated miss rate).
    std::uint64_t random_order = argAt(env, 2, 0);
    GuestVA buf = env.allocPages(pages);

    std::uint64_t s = workloadSeed(env) ^ 0x3355;
    // Initialize every page.
    for (std::uint64_t p = 0; p < pages; ++p)
        env.store64(buf + p * pageSize, splitmix(s) | 1);
    // Repeated passes of read-modify-write, one line per page touch,
    // forcing paging when the resident budget is under the buffer size.
    std::uint64_t h = fnvOffset;
    std::uint64_t rs = workloadSeed(env) ^ 0x77aa;
    for (std::uint64_t pass = 0; pass < passes; ++pass) {
        for (std::uint64_t i = 0; i < pages; ++i) {
            std::uint64_t p =
                random_order ? splitmix(rs) % pages : i;
            GuestVA va = buf + p * pageSize;
            std::uint64_t v = env.load64(va);
            v = v * fnvPrime + pass;
            env.store64(va, v);
            fnvMix(h, v);
        }
    }
    return writeResult(env, "wl.memstress", h);
}

// Attack-campaign victims --------------------------------------------------

/** Fill @p pages whole pages at @p va with the sentinel word. */
void
plantSentinel(Env& env, GuestVA va, std::uint64_t pages,
              std::uint64_t sentinel)
{
    for (std::uint64_t off = 0; off < pages * pageSize; off += 8)
        env.store64(va + off, sentinel);
}

/** Re-read every sentinel word; false means silent corruption. */
bool
sentinelIntact(Env& env, GuestVA va, std::uint64_t pages,
               std::uint64_t sentinel)
{
    for (std::uint64_t off = 0; off < pages * pageSize; off += 8)
        if (env.load64(va + off) != sentinel)
            return false;
    return true;
}

// Migration-aware victim machinery -----------------------------------------
//
// The compute and paging victims are also the checkpoint/restore test
// subjects, so they must survive being frozen at ANY trap boundary
// (syscall entry or timer tick), serialized, and re-entered from
// main() on a different machine. Host-side locals are lost across that
// trip; all progress lives in a state page INSIDE the cloaked arena:
//
//   word 0  magic      seed-derived tag proving the arena is ours
//   word 1  phase      current phase of the state machine
//   word 2  pass       mutation pass within the phase
//   word 3  index      next word/page to process within the pass
//
// Every mutation write is a pure function of (seed, pass, index) — not
// a read-modify-write — so the one iteration that may replay after a
// restore (frozen between the data store and the index store) writes
// the same bytes again. Read-only phases (verify/hash) restart from
// zero on resume instead of persisting an accumulator, because a
// checksum and its index cannot be committed atomically.

constexpr std::uint64_t stMagic = 0;
constexpr std::uint64_t stPhase = 8;
constexpr std::uint64_t stPass = 16;
constexpr std::uint64_t stIndex = 24;

std::uint64_t
arenaMagic(std::uint64_t seed)
{
    std::uint64_t s = seed ^ 0x517a7e0ff5e7ull;
    return splitmix(s) | 1;
}

/** The pure per-index word: what mutation @p pass leaves at @p index. */
std::uint64_t
victimWord(std::uint64_t seed, std::uint64_t salt, std::uint64_t index,
           std::uint64_t pass_done)
{
    std::uint64_t s = seed ^ salt ^ (index * 0x9e3779b97f4a7c15ull);
    std::uint64_t v = splitmix(s) | 1;
    for (std::uint64_t p = 0; p < pass_done; ++p)
        v = v * fnvPrime + p;
    return v;
}

/**
 * Find this victim's arena from a previous (checkpointed) life: the
 * cloaked anonymous mapping of exactly @p pages pages in the mmap
 * range whose state page carries our magic. 0 when this is a fresh
 * start. The scan is the reason Sys::VmaQuery exists: a restored
 * process owns mappings it never created in this life.
 */
GuestVA
findResumeArena(Env& env, std::uint64_t pages, std::uint64_t magic,
                GuestVA state_offset)
{
    for (std::uint64_t i = 0;; ++i) {
        std::int64_t start = env.vmaQuery(i, os::vmaQueryStart);
        if (start < 0)
            return 0;
        std::int64_t end = env.vmaQuery(i, os::vmaQueryEnd);
        std::int64_t flags = env.vmaQuery(i, os::vmaQueryFlags);
        if (end < 0 || flags < 0)
            return 0;
        GuestVA va = static_cast<GuestVA>(start);
        if (va < os::mmapBase || va >= os::fileMapBase)
            continue;
        if (static_cast<GuestVA>(end) - va != pages * pageSize)
            continue;
        std::uint64_t want = os::vmaFlagCloaked | os::vmaFlagAnon;
        if ((static_cast<std::uint64_t>(flags) & want) != want)
            continue;
        if (env.load64(va + state_offset + stMagic) == magic)
            return va;
    }
}

/**
 * Compute-category victim: sentinel arena + multiply-accumulate passes
 * over a work arena, with getpid() traps sprinkled through the passes
 * so syscall-boundary attacks (snoop/scribble/trap-frame/shadow) and
 * migration freezes get boundaries to land on. Checkpoint/restore-safe
 * (see the state-page commentary above); the result checksum is
 * pid-independent so it matches across the migration's pid change.
 */
int
wlVictimCompute(Env& env)
{
    const std::uint64_t seed = workloadSeed(env);
    const std::uint64_t sentinel = attackSentinel(seed);
    const std::uint64_t magic = arenaMagic(seed ^ 0xc0);
    const std::uint64_t secret_pages = 4;
    const std::uint64_t work_pages = 4;
    const std::uint64_t total_pages = secret_pages + work_pages + 1;
    const std::uint64_t work_words = work_pages * pageSize / 8;
    const std::uint64_t passes = 4;
    const GuestVA state_offset = (secret_pages + work_pages) * pageSize;

    GuestVA arena =
        findResumeArena(env, total_pages, magic, state_offset);
    if (arena == 0) {
        arena = env.allocPages(total_pages);
        GuestVA st = arena + state_offset;
        env.store64(st + stPhase, 0);
        env.store64(st + stPass, 0);
        env.store64(st + stIndex, 0);
        env.store64(st + stMagic, magic); // commits the arena last
    }
    GuestVA work = arena + secret_pages * pageSize;
    GuestVA st = arena + state_offset;

    // Phase 0: plant the sentinel + initial work words (pure writes).
    if (env.load64(st + stPhase) == 0) {
        plantSentinel(env, arena, secret_pages, sentinel);
        for (std::uint64_t i = 0; i < work_words; ++i)
            env.store64(work + i * 8, victimWord(seed, 0xc09a, i, 0));
        env.store64(st + stPhase, 1);
        env.getpid();
    }

    // Phase 1: the mutation passes, progress committed per word.
    while (env.load64(st + stPhase) == 1) {
        std::uint64_t pass = env.load64(st + stPass);
        if (pass >= passes) {
            env.store64(st + stPhase, 2);
            break;
        }
        for (std::uint64_t i = env.load64(st + stIndex); i < work_words;
             ++i) {
            std::uint64_t have = env.load64(work + i * 8);
            // Tolerate exactly the one replayed iteration a restore
            // can produce; anything else is silent corruption.
            if (have != victimWord(seed, 0xc09a, i, pass) &&
                have != victimWord(seed, 0xc09a, i, pass + 1))
                return victimStatusCorrupt;
            env.store64(work + i * 8,
                        victimWord(seed, 0xc09a, i, pass + 1));
            env.store64(st + stIndex, i + 1);
            if (i % 128 == 0)
                env.getpid();
        }
        env.store64(st + stIndex, 0);
        env.store64(st + stPass, pass + 1);
        env.getpid();
    }

    // Phase 2: read-only verify + checksum (restarts whole on resume).
    if (!sentinelIntact(env, arena, secret_pages, sentinel))
        return victimStatusCorrupt;
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < work_words; ++i) {
        std::uint64_t v = env.load64(work + i * 8);
        if (v != victimWord(seed, 0xc09a, i, passes))
            return victimStatusCorrupt;
        fnvMix(h, v);
    }
    return writeResult(env, "wl.victim.compute", h);
}

/**
 * Process-category victim: the sentinel arena is inherited by a fork
 * child through cloaked COW; both sides verify. A child killed by the
 * cloak engine surfaces in System::results() and the campaign
 * classifier treats any cloak-violation kill as Detected, so the
 * parent's exit code need not propagate the child's fate exactly.
 */
int
wlVictimFork(Env& env)
{
    const std::uint64_t sentinel = attackSentinel(workloadSeed(env));
    const std::uint64_t secret_pages = 4;
    GuestVA arena = env.allocPages(secret_pages);
    plantSentinel(env, arena, secret_pages, sentinel);
    env.getpid();

    Pid child = env.fork([arena, secret_pages, sentinel](Env& c) {
        if (!sentinelIntact(c, arena, secret_pages, sentinel))
            return victimStatusCorrupt;
        // Dirty the COW pages from the child side, then re-verify.
        for (std::uint64_t p = 0; p < secret_pages; ++p)
            c.store64(arena + p * pageSize, sentinel);
        c.getpid();
        if (!sentinelIntact(c, arena, secret_pages, sentinel))
            return victimStatusCorrupt;
        return 33;
    });
    if (child < 0)
        return 9;
    int child_status = 0;
    if (env.waitpid(child, &child_status) != child)
        return 9;
    if (child_status == victimStatusCorrupt)
        return victimStatusCorrupt;

    env.getpid();
    if (!sentinelIntact(env, arena, secret_pages, sentinel))
        return victimStatusCorrupt;
    return child_status == 33 || child_status == -1 ? 0 : 9;
}

/**
 * File-I/O-category victim: seals the sentinel into a protected file
 * twice (v1 then v2), crossing two fsync boundaries and one exec
 * boundary — the injection points for sealed-metadata corruption,
 * truncation and rollback replay. The exec'd "read" phase re-opens the
 * file: a refused open (the engine rejected tampered metadata) exits
 * victimStatusRefused, silently wrong bytes exit victimStatusCorrupt.
 */
int
wlVictimFileio(Env& env)
{
    const std::uint64_t sentinel = attackSentinel(workloadSeed(env));
    const std::uint64_t file_pages = 2;
    const std::uint64_t file_bytes = file_pages * pageSize;
    const std::string path = "/cloaked/attack_vault";
    const auto& args = env.args();
    bool read_phase = !args.empty() && args[0] == "read";

    if (!read_phase) {
        env.mkdir("/cloaked");
        GuestVA buf = env.allocPages(file_pages);
        plantSentinel(env, buf, file_pages, sentinel);

        // A plain scratch file whose fsync provides the boundary (the
        // protected file's own I/O is emulated inside the shim and
        // never traps). Contents are public — never the sentinel.
        GuestVA pub = env.allocUncloakedPages(1);
        env.store64(pub, 0x5a5a5a5a5a5a5a5aull);
        std::int64_t sync_fd =
            env.open("/victim_syncfile",
                     os::openCreate | os::openWrite | os::openTrunc);
        if (sync_fd < 0)
            return 9;

        for (std::uint64_t round = 0; round < 2; ++round) {
            std::int64_t fd =
                env.open(path, os::openCreate | os::openWrite |
                                   os::openTrunc);
            if (fd == -os::errPerm)
                return victimStatusRefused;
            if (fd < 0)
                return 9;
            if (env.write(fd, buf, file_bytes) !=
                static_cast<std::int64_t>(file_bytes)) {
                return 9;
            }
            env.close(fd); // close seals this version
            if (env.write(sync_fd, pub, 8) != 8)
                return 9;
            env.fsync(sync_fd); // fsync boundary after each seal
        }
        env.close(sync_fd);
        // Read the public scratch file back through the trapping read
        // path. Its contents are kernel-controlled (unprotected), so
        // the victim must tolerate whatever comes back — read-buffer
        // corruption of *unprotected* data is outside the guarantee.
        std::int64_t rb = env.open("/victim_syncfile", os::openRead);
        if (rb < 0)
            return 10;
        env.read(rb, pub, 8);
        env.close(rb);
        env.exec("wl.victim.fileio", {"read"}); // exec boundary
    }

    std::int64_t fd = env.open(path, os::openRead);
    if (fd == -os::errPerm)
        return victimStatusRefused;
    if (fd < 0)
        return 9;
    GuestVA back = env.allocPages(file_pages);
    if (env.read(fd, back, file_bytes) !=
        static_cast<std::int64_t>(file_bytes)) {
        return victimStatusCorrupt;
    }
    env.close(fd);
    if (!sentinelIntact(env, back, file_pages, sentinel))
        return victimStatusCorrupt;
    return 0;
}

/**
 * Paging-category victim: an arena larger than guest memory (campaigns
 * run it with guestFrames well below the arena size), so the sentinel
 * and work pages cycle through swap — the injection point for swap
 * tampering, replay, and freed-slot resurrection. Checkpoint/restore-
 * safe via the same state-page protocol as the compute victim (the
 * state page rides at the end of the cloaked arena, so it swaps and
 * migrates with everything else).
 */
int
wlVictimPaging(Env& env)
{
    const std::uint64_t seed = workloadSeed(env);
    const std::uint64_t sentinel = attackSentinel(seed);
    const std::uint64_t magic = arenaMagic(seed ^ 0x9a);
    std::uint64_t pages = argAt(env, 0, 144);
    std::uint64_t passes = argAt(env, 1, 2);
    const std::uint64_t secret_pages = 4;
    if (pages <= secret_pages)
        return 9;
    const std::uint64_t total_pages = pages + 1;
    const GuestVA state_offset = pages * pageSize;

    GuestVA arena =
        findResumeArena(env, total_pages, magic, state_offset);
    if (arena == 0) {
        arena = env.allocPages(total_pages);
        GuestVA st = arena + state_offset;
        env.store64(st + stPhase, 0);
        env.store64(st + stPass, 0);
        env.store64(st + stIndex, 0);
        env.store64(st + stMagic, magic); // commits the arena last
    }
    GuestVA st = arena + state_offset;

    // Phase 0: sentinel + one pure word per work page.
    if (env.load64(st + stPhase) == 0) {
        plantSentinel(env, arena, secret_pages, sentinel);
        for (std::uint64_t p = secret_pages; p < pages; ++p)
            env.store64(arena + p * pageSize,
                        victimWord(seed, 0x9a61, p, 0));
        env.store64(st + stPhase, 1);
        env.getpid();
    }

    // Phase 1: mutation passes over the work pages, committed per page.
    while (env.load64(st + stPhase) == 1) {
        std::uint64_t pass = env.load64(st + stPass);
        if (pass >= passes) {
            env.store64(st + stPhase, 2);
            break;
        }
        std::uint64_t start =
            std::max(env.load64(st + stIndex), secret_pages);
        for (std::uint64_t p = start; p < pages; ++p) {
            GuestVA va = arena + p * pageSize;
            std::uint64_t have = env.load64(va);
            if (have != victimWord(seed, 0x9a61, p, pass) &&
                have != victimWord(seed, 0x9a61, p, pass + 1))
                return victimStatusCorrupt;
            env.store64(va, victimWord(seed, 0x9a61, p, pass + 1));
            env.store64(st + stIndex, p + 1);
            if (p % 16 == 0)
                env.getpid();
        }
        // Touch the sentinel pages each pass so they keep swapping.
        for (std::uint64_t p = 0; p < secret_pages; ++p)
            if (env.load64(arena + p * pageSize) != sentinel)
                return victimStatusCorrupt;
        env.store64(st + stIndex, 0);
        env.store64(st + stPass, pass + 1);
        env.getpid();
    }

    // Phase 2: read-only verify + checksum (restarts whole on resume).
    if (!sentinelIntact(env, arena, secret_pages, sentinel))
        return victimStatusCorrupt;
    std::uint64_t h = fnvOffset;
    for (std::uint64_t p = secret_pages; p < pages; ++p) {
        std::uint64_t v = env.load64(arena + p * pageSize);
        if (v != victimWord(seed, 0x9a61, p, passes))
            return victimStatusCorrupt;
        fnvMix(h, v);
    }
    return writeResult(env, "wl.victim.paging", h);
}

/**
 * Server-category victim: a many-connection content server that
 * submits its syscalls in batches (Sys::SubmitBatch), so the
 * submission/completion rings in uncloaked memory become attack
 * surface — the injection point for ring descriptor tampering and
 * completion forgery. Secrets live in a cloaked sentinel arena; the
 * served content is public (a socket is public by nature), so the
 * victim tolerates corrupted response payloads but not sentinel damage.
 */
int
wlVictimServer(Env& env)
{
    const std::uint64_t seed = workloadSeed(env);
    const std::uint64_t sentinel = attackSentinel(seed);
    const std::uint64_t secret_pages = 4;
    const std::uint64_t conns = argAt(env, 0, 6);
    const std::uint64_t rounds = argAt(env, 1, 3);
    const std::uint64_t req_bytes = 512;
    const std::uint64_t file_pages = 4;
    const std::uint64_t file_bytes = file_pages * pageSize;

    GuestVA arena = env.allocPages(secret_pages);
    plantSentinel(env, arena, secret_pages, sentinel);
    env.getpid();

    // Public content file.
    env.mkdir("/www");
    std::int64_t fd = env.open("/www/srv_content",
                               os::openCreate | os::openRead |
                                   os::openWrite | os::openTrunc);
    if (fd < 0)
        return 9;
    {
        GuestVA page = env.allocPages(1);
        std::uint64_t s = seed ^ 0x5e6e6;
        for (std::uint64_t p = 0; p < file_pages; ++p) {
            for (std::uint64_t i = 0; i < pageSize; i += 8)
                env.store64(page + i, splitmix(s));
            if (env.write(static_cast<std::uint64_t>(fd), page,
                          pageSize) !=
                static_cast<std::int64_t>(pageSize))
                return 9;
        }
    }
    std::int64_t sink = env.open("/www/srv_resp",
                                 os::openCreate | os::openWrite |
                                     os::openTrunc);
    if (sink < 0)
        return 9;

    std::uint64_t k = std::min<std::uint64_t>(conns, os::maxBatchDepth);
    std::uint64_t req_pages =
        std::max<std::uint64_t>(1, roundUpToPage(req_bytes) / pageSize);
    GuestVA bufs = env.allocPages(req_pages * k);
    std::uint64_t s = seed ^ 0x5e71e;
    std::uint64_t h = fnvOffset;
    std::vector<os::BatchEntry> entries;
    std::vector<std::int64_t> results;
    for (std::uint64_t round = 0; round < rounds; ++round) {
        entries.clear();
        for (std::uint64_t c = 0; c < k; ++c) {
            std::uint64_t off = splitmix(s) % (file_bytes - req_bytes);
            entries.push_back({os::Sys::Pread,
                               {static_cast<std::uint64_t>(fd),
                                bufs + c * req_pages * pageSize,
                                req_bytes, off}});
        }
        if (env.submitBatch(entries, results) !=
            static_cast<std::int64_t>(k))
            return 9;
        entries.clear();
        for (std::uint64_t c = 0; c < k; ++c) {
            // The content is public and kernel-controlled, so only the
            // transfer length is checked — never the payload bytes.
            if (results[c] != static_cast<std::int64_t>(req_bytes))
                return 9;
            GuestVA cbuf = bufs + c * req_pages * pageSize;
            fnvMix(h, hashGuestRange(env, cbuf, req_bytes));
            entries.push_back({os::Sys::Pwrite,
                               {static_cast<std::uint64_t>(sink), cbuf,
                                req_bytes, c * req_bytes}});
        }
        if (env.submitBatch(entries, results) !=
            static_cast<std::int64_t>(k))
            return 9;
        for (std::uint64_t c = 0; c < k; ++c)
            if (results[c] != static_cast<std::int64_t>(req_bytes))
                return 9;
        env.getpid(); // per-round trap boundary for syscall attacks
        if (!sentinelIntact(env, arena, secret_pages, sentinel))
            return victimStatusCorrupt;
    }
    env.close(static_cast<std::uint64_t>(sink));
    env.close(static_cast<std::uint64_t>(fd));
    if (!sentinelIntact(env, arena, secret_pages, sentinel))
        return victimStatusCorrupt;
    return writeResult(env, "wl.victim.server", h);
}

/**
 * Timing-channel victim: encodes a balanced 32-bit secret purely into
 * *cloak-cache behavior* — never into any kernel-visible byte. Arena
 * layout (20 pages):
 *
 *   [0..1]   sentinel pages (leak oracle, as in every victim)
 *   [2..17]  16 noise pages driving the metadata-LRU signal
 *   [18]     signal page B: always read (always clean)
 *   [19]     signal page A: bit=1 -> written (dirty), bit=0 -> read
 *
 * Each round also encodes the bit into metadata-cache residency:
 * bit=1 touches all 16 distinct noise pages (evicting B from a
 * 12-entry LRU), bit=0 touches noise[0] 16 times (B stays resident).
 * One Yield per round hands the hostile kernel a probe point that is
 * exactly synchronous with the bit; the timing campaign's oracle
 * recovers the secret from cost deltas alone — or fails to, once the
 * virtualized clock and constant-cost hardening are enabled.
 */
int
wlVictimTiming(Env& env)
{
    const std::uint64_t seed = workloadSeed(env);
    const std::uint64_t sentinel = attackSentinel(seed);
    const std::vector<std::uint8_t> bits = timingSecretBits(seed);
    const std::uint64_t sentinel_pages = 2;
    const std::uint64_t noise_pages = 16;
    const std::uint64_t total_pages = 20;

    GuestVA arena = env.allocPages(total_pages);
    GuestVA noise = arena + sentinel_pages * pageSize;
    GuestVA page_b = arena + (total_pages - 2) * pageSize;
    GuestVA page_a = arena + (total_pages - 1) * pageSize;

    plantSentinel(env, arena, sentinel_pages, sentinel);
    for (std::uint64_t i = 0; i < noise_pages; ++i)
        env.store64(noise + i * pageSize, victimWord(seed, 0x7193, i, 0));
    env.store64(page_b, victimWord(seed, 0x7193, 100, 0));
    env.store64(page_a, victimWord(seed, 0x7193, 101, 0));

    std::uint64_t h = fnvOffset;
    env.yield(); // Warmup round: lets a prober seal the arena once.

    for (std::size_t r = 0; r < bits.size(); ++r) {
        if (bits[r]) {
            // Secret bit 1: dirty the signal page. The store is a pure
            // function of (seed, round) so reruns are deterministic.
            env.store64(page_a, victimWord(seed, 0x7193, 200 + r, 0));
        } else {
            // Secret bit 0: same page, read-only touch.
            fnvMix(h, env.load64(page_a));
        }
        fnvMix(h, env.load64(page_b));
        for (std::uint64_t i = 0; i < noise_pages; ++i) {
            GuestVA p = bits[r] ? noise + i * pageSize : noise;
            fnvMix(h, env.load64(p));
        }
        env.yield(); // The probe point: one trap per encoded bit.
    }

    if (!sentinelIntact(env, arena, sentinel_pages, sentinel))
        return victimStatusCorrupt;
    return writeResult(env, "wl.victim.timing", h);
}

// ---------------------------------------------------------------------------
// Scale-bench tenant (bench_scale)
// ---------------------------------------------------------------------------
//
// One small cloaked tenant: a couple of private pages, seeded stores, a
// strided hash, exit status derived from the hash. Argv[0] is the tenant
// index so every tenant computes a distinct (but host-predictable)
// result; tenantStatus() mirrors the computation without a guest. No
// /results file is written — ten thousand of these must not grow the
// guest filesystem.

std::uint64_t
tenantHash(std::uint64_t system_seed, std::uint64_t tenant_idx,
           std::uint64_t pages)
{
    std::uint64_t s = system_seed ^
                      (tenant_idx * 0x9e3779b97f4a7c15ull) ^ 0x7e4a47ull;
    std::uint64_t words = pages * (pageSize / 8);
    std::uint64_t h = fnvOffset;
    std::uint64_t stream = s;
    // The strided hash reads every 7th stored word; replay the store
    // stream and fold in the same positions.
    for (std::uint64_t i = 0; i < words; ++i) {
        std::uint64_t v = splitmix(stream);
        if (i % 7 == 0)
            fnvMix(h, v);
    }
    return h;
}

int
wlTenant(Env& env)
{
    std::uint64_t idx = argAt(env, 0, 0);
    std::uint64_t pages = argAt(env, 1, 2);
    GuestVA buf = env.allocPages(pages);
    std::uint64_t s = workloadSeed(env) ^
                      (idx * 0x9e3779b97f4a7c15ull) ^ 0x7e4a47ull;
    std::uint64_t words = pages * (pageSize / 8);
    for (std::uint64_t i = 0; i < words; ++i)
        env.store64(buf + i * 8, splitmix(s));
    std::uint64_t h = fnvOffset;
    for (std::uint64_t i = 0; i < words; i += 7)
        fnvMix(h, env.load64(buf + i * 8));
    return static_cast<int>(h & 0x3f);
}

} // namespace

int
tenantStatus(std::uint64_t system_seed, std::uint64_t tenant_idx,
             std::uint64_t pages)
{
    return static_cast<int>(tenantHash(system_seed, tenant_idx, pages) &
                            0x3f);
}

const std::vector<std::string>&
victimNames()
{
    static const std::vector<std::string> names = {
        "wl.victim.compute",
        "wl.victim.fork",
        "wl.victim.fileio",
        "wl.victim.paging",
        "wl.victim.server",
        "wl.victim.timing",
    };
    return names;
}

std::vector<std::uint8_t>
timingSecretBits(std::uint64_t system_seed)
{
    // 16 ones and 16 zeros, order shuffled by a seeded Fisher-Yates,
    // so a guess-everything strategy recovers exactly half the bits.
    std::vector<std::uint8_t> bits(32, 0);
    for (std::size_t i = 0; i < 16; ++i)
        bits[i] = 1;
    std::uint64_t s = system_seed ^ 0x0071b17e5ec2e7ull;
    for (std::size_t i = bits.size() - 1; i > 0; --i) {
        std::size_t j = splitmix(s) % (i + 1);
        std::swap(bits[i], bits[j]);
    }
    return bits;
}

std::uint64_t
attackSentinel(std::uint64_t system_seed)
{
    // High bit + low bit forced on so the sentinel can never collide
    // with zeroed frames or small loop counters in kernel memory.
    std::uint64_t s = system_seed ^ 0x0a77ac5e471e1ull;
    return splitmix(s) | 0x8000000000000001ull;
}

const std::vector<std::string>&
computeKernelNames()
{
    static const std::vector<std::string> names = {
        "wl.matmul", "wl.sort", "wl.stream",
        "wl.chase",  "wl.histogram", "wl.stencil",
    };
    return names;
}

void
registerAll(system::System& sys)
{
    auto add = [&sys](const std::string& name, os::ProgramMain main) {
        os::Program p;
        p.main = std::move(main);
        p.cloaked = true;
        sys.addProgram(name, std::move(p));
    };
    add("wl.matmul", wlMatmul);
    add("wl.sort", wlSort);
    add("wl.stream", wlStream);
    add("wl.chase", wlChase);
    add("wl.histogram", wlHistogram);
    add("wl.stencil", wlStencil);
    add("wl.fileserver", wlFileserver);
    add("wl.compile", wlCompile);
    add("wl.build", wlBuild);
    add("wl.memstress", wlMemstress);
    add("wl.tenant", wlTenant);
    add("wl.victim.compute", wlVictimCompute);
    add("wl.victim.fork", wlVictimFork);
    add("wl.victim.fileio", wlVictimFileio);
    add("wl.victim.paging", wlVictimPaging);
    add("wl.victim.server", wlVictimServer);
    add("wl.victim.timing", wlVictimTiming);
}

std::string
readGuestFile(system::System& sys, const std::string& path)
{
    auto& vfs = sys.kernel().vfs();
    std::int64_t ino_id = vfs.lookup(path);
    if (ino_id < 0)
        return {};
    os::Inode& ino = vfs.inode(static_cast<os::InodeId>(ino_id));
    std::string out(ino.size, '\0');
    // Assemble from the page cache where present, disk image otherwise.
    for (std::uint64_t off = 0; off < ino.size; off += pageSize) {
        std::uint64_t n = std::min<std::uint64_t>(pageSize,
                                                  ino.size - off);
        auto cit = ino.cache.find(pageNumber(off));
        if (cit != ino.cache.end()) {
            Mpa mpa = sys.vmm().pmap().translate(cit->second.gpa);
            auto frame = sys.machine().memory().framePlain(mpa);
            std::memcpy(out.data() + off, frame.data(), n);
        } else if (off < ino.diskData.size()) {
            std::uint64_t have =
                std::min<std::uint64_t>(n, ino.diskData.size() - off);
            std::memcpy(out.data() + off, ino.diskData.data() + off,
                        have);
        }
    }
    return out;
}

std::string
resultOf(system::System& sys, const std::string& name)
{
    return readGuestFile(sys, "/results/" + name);
}

void
writeGuestFile(system::System& sys, const std::string& path,
               const std::string& contents)
{
    auto& vfs = sys.kernel().vfs();
    std::int64_t ino_id = vfs.lookup(path);
    if (ino_id < 0) {
        ino_id = vfs.create(path, os::InodeType::File);
        osh_assert(ino_id > 0, "writeGuestFile: cannot create '%s'",
                   path.c_str());
    }
    os::Inode& ino = vfs.inode(static_cast<os::InodeId>(ino_id));
    ino.diskData.assign(
        reinterpret_cast<const std::uint8_t*>(contents.data()),
        reinterpret_cast<const std::uint8_t*>(contents.data()) +
            contents.size());
    ino.size = contents.size();
}

} // namespace osh::workloads
