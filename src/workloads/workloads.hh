/**
 * @file
 * Guest workload programs.
 *
 * Stand-ins for the paper's evaluation workloads, matched by resource
 * profile rather than by name:
 *
 *   - compute kernels (matmul, sort, stream, pointer-chase, histogram,
 *     stencil): SPEC-CPU-like, almost no kernel interaction;
 *   - a file server: I/O-intensive request loop over a data file
 *     (Apache with static files);
 *   - a build driver: process-creation-heavy fork/spawn + pipe tree
 *     (parallel compilation);
 *   - microbenchmark helpers used by the syscall-latency table.
 *
 * Every program is registered cloaked; on a System with cloaking
 * disabled the same programs run as the native baseline. All programs
 * are deterministic given the system seed and write a result checksum
 * to /results/<name>, which tests compare across native and cloaked
 * runs (the transparency property).
 */

#ifndef OSH_WORKLOADS_WORKLOADS_HH
#define OSH_WORKLOADS_WORKLOADS_HH

#include "system/system.hh"

#include <cstdint>
#include <string>
#include <vector>

namespace osh::workloads
{

/** Names of the compute-kernel programs (the F1 suite). */
const std::vector<std::string>& computeKernelNames();

/** Register every workload program on a system. */
void registerAll(system::System& sys);

/**
 * Expected exit status of `wl.tenant <idx> <pages>` on a system seeded
 * @p system_seed — a pure host-side mirror of the tenant's computation,
 * so the scale bench and the SMP tests can verify ten thousand cloaked
 * tenants without reading guest files.
 */
int tenantStatus(std::uint64_t system_seed, std::uint64_t tenant_idx,
                 std::uint64_t pages = 2);

// Attack-campaign victims --------------------------------------------------
//
// wl.victim.{compute,fork,fileio,paging} plant a plaintext sentinel in
// cloaked memory (and, for fileio, a protected file), do work in their
// resource category, and self-verify. Exit protocol: 0 = clean run,
// victimStatusRefused = a protected-file open was refused (the engine
// rejected tampered sealed metadata), victimStatusCorrupt = the victim
// observed silently corrupted cloaked data (a defense failure), any
// other nonzero = harness/setup trouble.

/** Names of the attack-victim programs (campaign matrix columns). */
const std::vector<std::string>& victimNames();

/**
 * The 64-bit plaintext sentinel a victim plants for @p system_seed.
 * Host-side oracles derive the same value to scan kernel-visible state.
 */
std::uint64_t attackSentinel(std::uint64_t system_seed);

constexpr int victimStatusRefused = 42;
constexpr int victimStatusCorrupt = 7;

/**
 * The balanced 32-bit secret (16 ones, 16 zeros, seeded shuffle) that
 * wl.victim.timing encodes purely into cloak-cache *behavior* — dirty
 * vs clean signal pages, metadata-LRU residency — never into any
 * kernel-visible byte. Balance makes chance recovery exactly 50%, so
 * the campaign's timing oracle can claim LEAK only when its
 * threshold-recovered bits beat chance decisively (>= 24/32 matches).
 */
std::vector<std::uint8_t> timingSecretBits(std::uint64_t system_seed);

/** Read a guest file's contents from the host (for verification). */
std::string readGuestFile(system::System& sys, const std::string& path);

/** Read the 16-hex-digit checksum a workload wrote to /results/. */
std::string resultOf(system::System& sys, const std::string& name);

/** Write a guest file from the host (test fixtures). */
void writeGuestFile(system::System& sys, const std::string& path,
                    const std::string& contents);

} // namespace osh::workloads

#endif // OSH_WORKLOADS_WORKLOADS_HH
