#!/usr/bin/env python3
"""Compare two BENCH_<phase>.json files and fail on perf regressions.

Usage:
    compare.py BASELINE.json CURRENT.json [--tolerance 0.10] [--all]

Both files are the `schema: 1` output of osh::bench::BenchReport: one
flat "metrics" object of deterministic simulated integers. Cycle-like
metrics (total cycles, per-op cycle costs, histogram percentiles) are
*gated*: if the current value exceeds baseline * (1 + tolerance) the
script prints the offending rows and exits 1. Non-cycle counters
(faults, crypto ops, cache hits) are informational by default — they
describe *why* cycles moved — unless --all gates them too.

Keys starting with "host_" are host wall-time observations (ns, MB/s,
speedup ratios): they depend on the machine the bench ran on, so they
are shown in their own informational section, never gated — even with
--all — and never produce missing/new warnings (baselines deliberately
omit them).

Keys present in only one file are reported as warnings, never errors:
adding a metric must not break CI, and a renamed metric shows up as
one "missing" plus one "new" line, which is the reviewer's cue to
refresh the baseline.
"""

import argparse
import json
import sys


def is_host(key: str) -> bool:
    """Host wall-time metrics: informational on any machine."""
    return key.startswith("host_")


def is_gated(key: str) -> bool:
    """Cycle-like metrics that constitute a perf regression."""
    return not is_host(key) and (
        key.endswith("cycles")
        or ".op." in key
        or key.endswith(".p50")
        or key.endswith(".p95")
    )


def load_metrics(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return doc["metrics"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed fractional increase on gated metrics "
        "(default 0.10 = +10%%)",
    )
    ap.add_argument(
        "--all",
        action="store_true",
        help="gate every metric, not just cycle-like ones",
    )
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    regressions = []
    improvements = []
    drifts = []
    host_deltas = []
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        if b == c:
            continue
        delta = (c - b) / b if b else float("inf")
        row = (key, b, c, delta)
        if is_host(key):
            host_deltas.append(row)
        elif args.all or is_gated(key):
            if c > b * (1.0 + args.tolerance):
                regressions.append(row)
            elif c < b:
                improvements.append(row)
        else:
            drifts.append(row)

    missing = sorted(k for k in base.keys() - cur.keys() if not is_host(k))
    new = sorted(k for k in cur.keys() - base.keys() if not is_host(k))

    def show(rows, label):
        if not rows:
            return
        print(f"{label}:")
        for key, b, c, delta in rows:
            print(f"  {key}: {b} -> {c} ({delta:+.1%})")

    show(regressions, "REGRESSIONS (beyond tolerance)")
    show(improvements, "improvements")
    show(drifts, "counter drift (informational)")
    show(host_deltas, "host-time deltas (informational, never gated)")
    for key in missing:
        print(f"warning: metric missing from current run: {key}")
    for key in new:
        print(f"warning: new metric not in baseline: {key}")

    n_checked = sum(
        1
        for k in base.keys() & cur.keys()
        if not is_host(k) and (args.all or is_gated(k))
    )
    if regressions:
        print(
            f"FAIL: {len(regressions)}/{n_checked} gated metrics "
            f"regressed beyond {args.tolerance:.0%}"
        )
        return 1
    print(
        f"OK: {n_checked} gated metrics within {args.tolerance:.0%} "
        f"of baseline ({len(improvements)} improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
