#!/usr/bin/env python3
"""Compare two BENCH_<phase>.json files and fail on perf regressions.

Usage:
    compare.py BASELINE.json CURRENT.json [--tolerance 0.10] [--all]

Both files are the `schema: 1` output of osh::bench::BenchReport: one
flat "metrics" object of deterministic simulated integers. Cycle-like
metrics (total cycles, per-op cycle costs, histogram percentiles) are
*gated*: if the current value exceeds baseline * (1 + tolerance) the
script prints the offending rows and exits 1. Non-cycle counters
(faults, crypto ops, cache hits) are informational by default — they
describe *why* cycles moved — unless --all gates them too.

Keys starting with "host_" are host wall-time observations (ns, MB/s,
speedup ratios): they depend on the machine the bench ran on, so they
are shown side by side in their own informational table, never gated —
even with --all — and never produce missing/new warnings or a nonzero
exit (baselines may omit them entirely; a key present in only one run
shows "—" in the other column).

Key-set drift is asymmetric. A key present only in the *current* run is
a warning: adding a metric must not break CI. A baseline key *missing*
from the current run is an error (exit 1): a dropped or renamed metric
silently un-gates whatever it measured, so the baseline must be
refreshed deliberately, in the same change that renames the metric.
--allow-missing downgrades that error back to a warning, for runs
that are partial on purpose (e.g. a --quick sweep compared against
the full committed baseline).
"""

import argparse
import json
import sys


def is_host(key: str) -> bool:
    """Host wall-time metrics: informational on any machine."""
    return key.startswith("host_")


def is_gated(key: str) -> bool:
    """Cycle-like metrics that constitute a perf regression."""
    return not is_host(key) and (
        key.endswith("cycles")
        or ".op." in key
        or key.endswith(".p50")
        or key.endswith(".p95")
    )


def load_metrics(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return doc["metrics"]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        metavar="FRAC",
        help="allowed fractional increase on gated metrics "
        "(default 0.10 = +10%%)",
    )
    ap.add_argument(
        "--all",
        action="store_true",
        help="gate every metric, not just cycle-like ones",
    )
    ap.add_argument(
        "--allow-missing",
        action="store_true",
        help="downgrade baseline keys missing from the current run "
        "from an error to a warning (for intentionally partial runs, "
        "e.g. --quick sweeps against a full baseline)",
    )
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    regressions = []
    improvements = []
    drifts = []
    for key in sorted(base.keys() & cur.keys()):
        if is_host(key):
            continue
        b, c = base[key], cur[key]
        if b == c:
            continue
        delta = (c - b) / b if b else float("inf")
        row = (key, b, c, delta)
        if args.all or is_gated(key):
            if c > b * (1.0 + args.tolerance):
                regressions.append(row)
            elif c < b:
                improvements.append(row)
        else:
            drifts.append(row)

    # Host wall-time: union of both runs' host_ keys, side by side.
    host_rows = []
    for key in sorted(k for k in base.keys() | cur.keys() if is_host(k)):
        b = base.get(key)
        c = cur.get(key)
        if b is not None and c is not None and b != 0:
            delta = f"{(c - b) / b:+.1%}"
        else:
            delta = "—"
        host_rows.append(
            (key, "—" if b is None else str(b),
             "—" if c is None else str(c), delta)
        )

    missing = sorted(k for k in base.keys() - cur.keys() if not is_host(k))
    new = sorted(k for k in cur.keys() - base.keys() if not is_host(k))

    def show(rows, label):
        if not rows:
            return
        print(f"{label}:")
        for key, b, c, delta in rows:
            print(f"  {key}: {b} -> {c} ({delta:+.1%})")

    def show_host(rows):
        if not rows:
            return
        key_w = max(len(r[0]) for r in rows)
        b_w = max(len("baseline"), max(len(r[1]) for r in rows))
        c_w = max(len("current"), max(len(r[2]) for r in rows))
        print("host wall-time (informational, never gated):")
        print(
            f"  {'metric':<{key_w}}  {'baseline':>{b_w}}  "
            f"{'current':>{c_w}}  delta"
        )
        for key, b, c, delta in rows:
            print(f"  {key:<{key_w}}  {b:>{b_w}}  {c:>{c_w}}  {delta}")

    show(regressions, "REGRESSIONS (beyond tolerance)")
    show(improvements, "improvements")
    show(drifts, "counter drift (informational)")
    show_host(host_rows)
    missing_label = "warning" if args.allow_missing else "error"
    for key in missing:
        print(f"{missing_label}: baseline metric missing from current "
              f"run: {key}")
    for key in new:
        print(f"warning: new metric not in baseline: {key}")

    n_checked = sum(
        1
        for k in base.keys() & cur.keys()
        if not is_host(k) and (args.all or is_gated(k))
    )
    if regressions:
        print(
            f"FAIL: {len(regressions)}/{n_checked} gated metrics "
            f"regressed beyond {args.tolerance:.0%}"
        )
        return 1
    if missing and not args.allow_missing:
        print(
            f"FAIL: {len(missing)} baseline metrics missing from the "
            f"current run (refresh the baseline if they were renamed)"
        )
        return 1
    print(
        f"OK: {n_checked} gated metrics within {args.tolerance:.0%} "
        f"of baseline ({len(improvements)} improved)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
