/**
 * @file
 * Ablation A1 — the clean-plaintext re-encryption optimization.
 *
 * A read-heavy protected-file workload makes pages ping-pong between
 * the application (reads) and the kernel (writeback, eviction). With
 * the optimization, unmodified pages keep their (IV, hash) and can be
 * handed back to the kernel with a cheap deterministic re-encryption;
 * without it, every transition pays a fresh IV, a full SHA-256 and a
 * metadata update. The figure shows total cycles and page-encryption
 * counts for both configurations.
 */

#include "bench_common.hh"

namespace
{

using namespace osh;

struct Point
{
    Cycles cycles;
    std::uint64_t encrypts;
    std::uint64_t cleanReencrypts;
};

Point
run(bool clean_opt, std::uint64_t requests)
{
    trace::TraceConfig tc;
    tc.enabled = bench::tracingRequested();
    auto cfg = system::SystemConfig::Builder{}
                   .cloaking(true)
                   .guestFrames(4096)
                   .cleanOptimization(clean_opt)
                   .trace(tc)
                   .build();
    system::System sys(cfg);
    workloads::registerAll(sys);
    auto r = sys.runProgram("wl.fileserver",
                            {"128", std::to_string(requests), "4096",
                             "1"});
    if (r.status != 0)
        osh_fatal("fileserver failed: %s", r.killReason.c_str());
    bench::reportPhase(sys,
                       std::string(clean_opt ? "a1_cleanopt_"
                                             : "a1_nocleanopt_") +
                           std::to_string(requests));
    return {sys.cycles(), sys.cloak()->stats().value("page_encrypts"),
            sys.cloak()->stats().value("clean_reencrypts")};
}

} // namespace

int
main()
{
    bench::header("Ablation A1: clean-plaintext optimization "
                  "(protected file server)");
    std::printf("%-10s | %14s %12s %10s | %14s %12s | %8s\n",
                "requests", "opt-on(cyc)", "encrypts", "clean-re",
                "opt-off(cyc)", "encrypts", "saving");
    for (std::uint64_t requests : {20u, 60u, 120u, 240u}) {
        Point on = run(true, requests);
        Point off = run(false, requests);
        std::printf("%-10llu | %14llu %12llu %10llu | %14llu %12llu "
                    "| %7.1f%%\n",
                    static_cast<unsigned long long>(requests),
                    static_cast<unsigned long long>(on.cycles),
                    static_cast<unsigned long long>(on.encrypts),
                    static_cast<unsigned long long>(on.cleanReencrypts),
                    static_cast<unsigned long long>(off.cycles),
                    static_cast<unsigned long long>(off.encrypts),
                    (1.0 - static_cast<double>(on.cycles) /
                               static_cast<double>(off.cycles)) * 100.0);
    }
    std::printf("\n(the optimization removes the hash+metadata cost "
                "for pages the app only read)\n");
    return 0;
}
