/**
 * @file
 * Figure F1 — compute-bound workload suite, normalized runtime.
 *
 * Reproduces the paper's SPEC-like figure: each kernel runs on the
 * native baseline and under Overshadow; the bar is cloaked/native
 * runtime. Compute-bound code interacts with the kernel rarely, so the
 * expected shape is overhead within a few percent to ~15% (small
 * workloads pay proportionally more fixed launch cost than the paper's
 * minutes-long runs).
 */

#include "bench_common.hh"

namespace
{

using namespace osh;

struct Case
{
    const char* name;
    std::vector<std::string> argv;
};

} // namespace

int
main()
{
    bench::header("Figure F1: compute suite, normalized runtime "
                  "(cloaked / native)");

    const Case cases[] = {
        {"wl.matmul", {"108"}},
        {"wl.sort", {"65536"}},
        {"wl.stream", {"256", "160"}},
        {"wl.chase", {"8192", "786432"}},
        {"wl.histogram", {"1048576"}},
        {"wl.stencil", {"96", "32"}},
    };

    std::printf("%-14s %14s %14s %10s\n", "kernel", "native(cyc)",
                "cloaked(cyc)", "overhead");
    double worst = 0;
    for (const Case& c : cases) {
        Cycles n = bench::runCycles(false, c.name, c.argv);
        Cycles k = bench::runCycles(true, c.name, c.argv);
        double ratio = static_cast<double>(k) / static_cast<double>(n);
        worst = std::max(worst, ratio);
        std::printf("%-14s %14llu %14llu %9.1f%%\n", c.name,
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(k),
                    (ratio - 1.0) * 100.0);
    }
    std::printf("\nworst-case overhead: %.1f%% (paper: compute-bound "
                "workloads stay in the single digits)\n",
                (worst - 1.0) * 100.0);
    return 0;
}
