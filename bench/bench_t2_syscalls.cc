/**
 * @file
 * Table T2 — system-call latency microbenchmarks.
 *
 * Reproduces the paper's syscall table: for each operation, the latency
 * in simulated cycles on the native baseline and under Overshadow, and
 * the slowdown factor. Cheap calls (getpid) pay the fixed secure
 * control transfer + marshalling cost, so they show the largest
 * factors; fork/exec pay the eager re-encryption of the address space;
 * protected-file reads are *emulated* in the shim and can beat
 * marshalled reads.
 */

#include "bench_common.hh"

#include <map>
#include <sstream>

namespace
{

using namespace osh;
using os::Env;

constexpr std::uint64_t loops = 64;

/** Time one op repeated @p n times; returns cycles per op. */
template <typename Fn>
std::uint64_t
timed(Env& env, std::uint64_t n, Fn&& fn)
{
    Cycles c0 = env.clock();
    for (std::uint64_t i = 0; i < n; ++i)
        fn();
    Cycles c1 = env.clock();
    return (c1 - c0) / n;
}

int
microMain(Env& env)
{
    std::string out;
    auto emit = [&out](const char* name, std::uint64_t v) {
        out += formatString("%s %llu\n", name,
                            static_cast<unsigned long long>(v));
    };

    // Null syscall.
    emit("getpid", timed(env, loops, [&] { env.getpid(); }));

    // Regular-file read/write, 4 KiB.
    std::int64_t fd = env.open("/plain.dat",
                               os::openCreate | os::openRead |
                                   os::openWrite);
    GuestVA buf = env.allocPages(1);
    env.write(fd, buf, pageSize); // materialize one page
    emit("write_4k", timed(env, loops, [&] {
        env.lseek(fd, 0, os::seekSet);
        env.write(fd, buf, pageSize);
    }));
    emit("read_4k", timed(env, loops, [&] {
        env.lseek(fd, 0, os::seekSet);
        env.read(fd, buf, pageSize);
    }));
    env.close(fd);

    // Protected-file read/write, 4 KiB (shim-emulated when cloaked).
    env.mkdir("/cloaked");
    std::int64_t pfd = env.open("/cloaked/prot.dat",
                                os::openCreate | os::openRead |
                                    os::openWrite);
    env.write(pfd, buf, pageSize);
    emit("prot_write_4k", timed(env, loops, [&] {
        env.lseek(pfd, 0, os::seekSet);
        env.write(pfd, buf, pageSize);
    }));
    emit("prot_read_4k", timed(env, loops, [&] {
        env.lseek(pfd, 0, os::seekSet);
        env.read(pfd, buf, pageSize);
    }));
    env.close(pfd);

    // open + close.
    emit("open_close", timed(env, loops, [&] {
        std::int64_t f = env.open("/plain.dat", os::openRead);
        env.close(static_cast<std::uint64_t>(f));
    }));

    // mmap + touch + munmap.
    emit("mmap_munmap", timed(env, loops, [&] {
        GuestVA p = env.allocPages(1);
        env.store64(p, 1);
        env.munmap(p);
    }));

    // Signal round trip (registration outside the loop).
    int hits = 0;
    env.onSignal(os::sigUser1, [&hits](Env&, int) { ++hits; });
    emit("signal", timed(env, loops, [&] {
        env.kill(env.getpid(), os::sigUser1);
        env.yield();
    }));
    if (hits == 0)
        return 2;

    // Pipe ping (write 64B + read 64B through the kernel).
    int rfd = -1, wfd = -1;
    env.pipe(rfd, wfd);
    emit("pipe_pingpong", timed(env, loops, [&] {
        env.write(static_cast<std::uint64_t>(wfd), buf, 64);
        env.read(static_cast<std::uint64_t>(rfd), buf, 64);
    }));
    env.close(rfd);
    env.close(wfd);

    // fork + child exit + wait. The child has this whole address
    // space to clone, so it measures fork of a real process.
    emit("fork_wait", timed(env, 8, [&] {
        Pid c = env.fork([](Env&) { return 0; });
        env.waitpid(c, nullptr);
    }));

    // spawn (fork+exec combo) of a trivial program + wait.
    emit("spawn_wait", timed(env, 8, [&] {
        Pid c = env.spawn("mb.noop");
        env.waitpid(c, nullptr);
    }));

    // Batched submission (depth 8): per-op cost with one kernel entry
    // (one secure control transfer when cloaked) amortized over the
    // whole batch. Emitted last so every legacy measurement above is
    // bit-identical to the unbatched bench.
    constexpr std::uint64_t depth = 8;
    {
        std::vector<os::BatchEntry> gp(depth,
                                       os::BatchEntry{os::Sys::GetPid,
                                                      {}});
        std::vector<std::int64_t> res;
        emit("batched_getpid", timed(env, loops / depth, [&] {
                 env.submitBatch(gp, res);
             }) / depth);

        std::int64_t bfd = env.open("/plain.dat", os::openRead);
        std::vector<os::BatchEntry> rd;
        for (std::uint64_t i = 0; i < depth; ++i)
            rd.push_back({os::Sys::Pread,
                          {static_cast<std::uint64_t>(bfd), buf,
                           pageSize, 0}});
        emit("batched_read_4k", timed(env, loops / depth, [&] {
                 env.submitBatch(rd, res);
             }) / depth);
        env.close(static_cast<std::uint64_t>(bfd));
        if (res.size() != depth || res[0] !=
                                       static_cast<std::int64_t>(pageSize))
            return 3;
    }

    // Publish.
    env.mkdir("/results");
    std::int64_t rfd2 = env.open("/results/micro",
                                 os::openCreate | os::openWrite |
                                     os::openTrunc);
    env.writeAll(static_cast<std::uint64_t>(rfd2), out);
    env.close(static_cast<std::uint64_t>(rfd2));
    return 0;
}

std::map<std::string, std::uint64_t>
runMicro(const bench::BenchOptions& opt, const std::string& label,
         bench::BenchReport& report)
{
    auto sys = bench::makeSystem(opt);
    sys->addProgram("mb.noop",
                    os::Program{[](Env&) { return 0; }, true, 16});
    sys->addProgram("mb.micro", os::Program{microMain, true, 64});
    auto r = sys->runProgram("mb.micro");
    if (r.status != 0)
        osh_fatal("micro failed: %d %s", r.status, r.killReason.c_str());
    bench::reportPhase(*sys, "t2_" + label);

    std::map<std::string, std::uint64_t> vals;
    std::istringstream in(workloads::readGuestFile(*sys,
                                                   "/results/micro"));
    std::string name;
    std::uint64_t v;
    while (in >> name >> v)
        vals[name] = v;

    for (const auto& [op, cycles] : vals)
        report.set(label + ".op." + op, cycles);
    report.captureSystem(label, *sys);
    return vals;
}

} // namespace

int
main()
{
    using namespace osh;
    bench::header("Table T2: system-call latencies (simulated cycles)");

    bench::BenchReport report("t2_syscalls");

    bench::BenchOptions native_opt;
    native_opt.cloaked = false;
    auto native = runMicro(native_opt, "native", report);

    bench::BenchOptions cloaked_opt;
    cloaked_opt.cloaked = true;
    auto cloaked = runMicro(cloaked_opt, "cloaked", report);

    // Ablation: same cloaked system with the shadow-resolution fast
    // path off — untagged shadows flushed on every context switch and
    // no re-encryption victim cache.
    bench::BenchOptions slow_opt;
    slow_opt.cloaked = true;
    slow_opt.fastPath = false;
    auto slowpath = runMicro(slow_opt, "cloaked_nofastpath", report);

    std::printf("%-16s %12s %12s %10s %14s\n", "operation", "native",
                "overshadow", "slowdown", "no-fastpath");
    const char* order[] = {
        "getpid",      "read_4k",     "write_4k",   "prot_read_4k",
        "prot_write_4k", "open_close", "mmap_munmap", "signal",
        "pipe_pingpong", "fork_wait",  "spawn_wait",
        "batched_getpid", "batched_read_4k",
    };
    for (const char* op : order) {
        double n = static_cast<double>(native[op]);
        double c = static_cast<double>(cloaked[op]);
        double s = static_cast<double>(slowpath[op]);
        std::printf("%-16s %12.0f %12.0f %9.2fx %14.0f\n", op, n, c,
                    n > 0 ? c / n : 0.0, s);
    }
    std::printf("\nNote: prot_* rows use a protected file; under "
                "Overshadow the shim serves them\nfrom the cloaked "
                "mapping (memory-mapped emulation) instead of "
                "trapping per call.\nThe no-fastpath column disables "
                "ASID-tagged shadow retention and the\nre-encryption "
                "victim cache (ablation).\n");

    report.write();
    return 0;
}
