/**
 * @file
 * Ablation A2 — protection-metadata cache capacity.
 *
 * Every cloaking transition (encrypt on page-out, decrypt+verify on
 * page-in) consults per-page metadata; the VMM keeps a hot cache of
 * metadata entries and pays a verification cost on each miss. This
 * sweep runs a paging-heavy cloaked workload (working set larger than
 * RAM, random-ish reuse) across cache capacities and reports the hit
 * rate and the cycles attributable to metadata misses.
 */

#include "bench_common.hh"

int
main()
{
    using namespace osh;
    bench::header("Ablation A2: metadata cache capacity sweep "
                  "(cloaked paging workload)");

    std::printf("%-10s %14s %12s %12s %10s %14s\n", "capacity",
                "cycles", "md hits", "md misses", "hit rate",
                "miss cycles");
    for (std::size_t capacity : {16u, 64u, 256u, 1024u, 4096u}) {
        trace::TraceConfig tc;
        tc.enabled = bench::tracingRequested();
        auto cfg = system::SystemConfig::Builder{}
                       .cloaking(true)
                       .guestFrames(224)
                       .metadataCacheEntries(capacity)
                       .trace(tc)
                       .build();
        system::System sys(cfg);
        workloads::registerAll(sys);
        auto r = sys.runProgram("wl.memstress", {"256", "3"});
        if (r.status != 0)
            osh_fatal("memstress failed: %s", r.killReason.c_str());
        bench::reportPhase(sys, "a2_cap" + std::to_string(capacity));

        std::uint64_t hits =
            sys.machine().cost().stats().value("metadata_hit");
        std::uint64_t misses =
            sys.machine().cost().stats().value("metadata_miss");
        double rate = hits + misses > 0
                          ? static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;
        std::uint64_t miss_cycles =
            misses * sys.machine().cost().params().metadataMiss;
        std::printf("%-10zu %14llu %12llu %12llu %9.1f%% %14llu\n",
                    capacity,
                    static_cast<unsigned long long>(sys.cycles()),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses), rate * 100,
                    static_cast<unsigned long long>(miss_cycles));
    }
    std::printf("\n(larger caches turn repeat transitions into hits; "
                "the paper keeps metadata hot in the VMM)\n");
    return 0;
}
