/**
 * @file
 * Shared helpers for the benchmark binaries.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: it runs the relevant workloads on a native system (VMM,
 * no cloaking — the paper's baseline) and on an Overshadow system, and
 * prints the same rows/series the paper reports. All numbers are
 * deterministic simulated cycles.
 */

#ifndef OSH_BENCH_COMMON_HH
#define OSH_BENCH_COMMON_HH

#include "os/env.hh"
#include "system/system.hh"
#include "trace/export.hh"
#include "workloads/workloads.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace osh::bench
{

/**
 * True when the OSH_TRACE environment variable asks for tracing.
 * Always false when tracing is compiled out (-DOSH_TRACE=OFF): the
 * instrumentation sites are gone, so a report would be empty.
 */
inline bool
tracingRequested()
{
#if OSH_TRACE_ENABLED
    const char* v = std::getenv("OSH_TRACE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
#else
    return false;
#endif
}

/**
 * Monotonic host wall-clock in nanoseconds. Host time measures how
 * fast the simulator itself runs (real crypto throughput on this
 * machine); it is never part of the gated simulated-cycle metrics.
 */
inline std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Whole MB/s (1 MB = 10^6 bytes) for `bytes` processed in `ns`. */
inline std::uint64_t
mbPerSec(std::uint64_t bytes, std::uint64_t ns)
{
    return ns == 0 ? 0 : bytes * 1000 / ns;
}

/** Knobs a bench varies when building systems. */
struct BenchOptions
{
    bool cloaked = true;
    std::uint64_t frames = 4096;
    std::uint64_t seed = 42;
    std::uint64_t preemptOps = 2'000'000;
    /** Shadow-resolution fast path (ablation: off = flush-everything
     *  VMM and no re-encryption victim cache). */
    bool fastPath = true;
    /** Async eviction queue depth (0 = synchronous legacy path). */
    std::size_t asyncEvictDepth = 0;
    /** Timing-channel hardening posture: virtualized per-context clock
     *  plus constant-cost cloak responses (docs/threat-model.md). Off
     *  is the exact-cost legacy system every committed baseline
     *  replays bit-identically. */
    bool timingHardened = false;
};

/** Clock-spoofing knobs the hardened bench series use — the same
 *  values the attack campaign applies to its timing cells. */
constexpr Cycles hardenedClockFuzzCycles = 1'000'000;
constexpr Cycles hardenedClockOffsetCycles = 1'000'000;

/** Build a system with workloads registered. */
inline std::unique_ptr<system::System>
makeSystem(const BenchOptions& opt)
{
    trace::TraceConfig tc;
    tc.enabled = tracingRequested();
    auto builder =
        system::SystemConfig::Builder{}
            .cloaking(opt.cloaked)
            .guestFrames(opt.frames)
            .seed(opt.seed)
            .preemptOpsPerTick(opt.preemptOps)
            .shadowRetention(opt.fastPath)
            .victimCacheEntries(
                opt.fastPath ? system::SystemConfig{}.victimCacheEntries
                             : 0)
            .asyncEvictDepth(opt.cloaked ? opt.asyncEvictDepth : 0)
            .trace(tc);
    if (opt.timingHardened)
        builder.clockFuzzCycles(hardenedClockFuzzCycles)
            .clockOffsetCycles(hardenedClockOffsetCycles)
            .constantCostCloak(true);
    auto cfg = builder.build();
    auto sys = std::make_unique<system::System>(cfg);
    workloads::registerAll(*sys);
    return sys;
}

/** Build a system with workloads registered (legacy signature). */
inline std::unique_ptr<system::System>
makeSystem(bool cloaked, std::uint64_t frames = 4096,
           std::uint64_t seed = 42,
           std::uint64_t preempt_ops = 2'000'000)
{
    BenchOptions opt;
    opt.cloaked = cloaked;
    opt.frames = frames;
    opt.seed = seed;
    opt.preemptOps = preempt_ops;
    return makeSystem(opt);
}

/**
 * Dump tracing artifacts for one bench phase: a plain-text metrics
 * report on stdout and a Chrome trace JSON (`<phase>.trace.json`,
 * loadable in Perfetto / chrome://tracing). No-op unless the bench ran
 * with OSH_TRACE=1. Tracing never charges simulated cycles, so the
 * numbers a bench prints are identical with and without it.
 */
inline void
reportPhase(system::System& sys, const std::string& phase)
{
    auto& tracer = sys.tracer();
    if (!tracer.enabled())
        return;
    std::fputs(trace::metricsReport(tracer.metrics(), phase).c_str(),
               stdout);
    std::string path = phase + ".trace.json";
    if (trace::writeChromeJson(tracer.buffer(), path))
        std::printf("[trace] wrote %s (%llu events)\n\n", path.c_str(),
                    static_cast<unsigned long long>(
                        tracer.buffer().size()));
}

/** Run one workload and return total simulated cycles (asserts ok). */
inline Cycles
runCycles(bool cloaked, const std::string& program,
          const std::vector<std::string>& argv,
          std::uint64_t frames = 4096, std::uint64_t seed = 42)
{
    auto sys = makeSystem(cloaked, frames, seed);
    auto r = sys->runProgram(program, argv);
    if (r.status != 0) {
        osh_fatal("bench workload %s failed: status=%d %s",
                  program.c_str(), r.status, r.killReason.c_str());
    }
    reportPhase(*sys, program + (cloaked ? ".cloaked" : ".native"));
    return sys->cycles();
}

inline void
header(const char* title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title);
    std::printf("==================================================="
                "===========\n");
}

/**
 * Machine-readable bench result, written as `BENCH_<phase>.json` for
 * the perf-regression harness (bench/compare.py diffs two files and
 * fails on cycle regressions beyond a tolerance).
 *
 * The file holds one flat `metrics` object of integer values: total
 * cycles, per-operation cycle costs, fault/crypto-op counters, and —
 * when tracing is on — p50/p95 latencies from the trace histograms.
 * Every such value is a deterministic simulated quantity: two runs of
 * the same binary with the same seed produce byte-identical metrics.
 * Keys starting with `host_` (see setHost) are the exception: they
 * carry host wall-time observations, are reported but never gated by
 * compare.py, and do not belong in committed baselines.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string phase) : phase_(std::move(phase)) {}

    /** Record one scalar metric (use '.'-separated key paths). */
    void
    set(const std::string& key, std::uint64_t value)
    {
        metrics_.emplace_back(key, value);
    }

    /**
     * Record a host wall-time metric (nanoseconds, MB/s, speedup
     * ratios). Host metrics carry a `host_` key prefix:
     * bench/compare.py reports their deltas but never gates on them,
     * and committed baselines leave them out — wall time is a property
     * of the machine the bench ran on, not of the simulation.
     */
    void
    setHost(const std::string& key, std::uint64_t value)
    {
        set("host_" + key, value);
    }

    /** Record every counter of a StatGroup under `prefix.group.name`. */
    void
    setGroup(const std::string& prefix, const StatGroup& group)
    {
        for (const auto& [name, value] : group.snapshot())
            set(prefix + "." + group.name() + "." + name, value);
    }

    /**
     * Capture a finished system run: total cycles, the fault/crypto
     * counters of every major component, and (when tracing ran)
     * p50/p95 of each latency histogram.
     */
    void
    captureSystem(const std::string& prefix, system::System& sys)
    {
        set(prefix + ".cycles", sys.cycles());
        setGroup(prefix, sys.vmm().stats());
        setGroup(prefix, sys.vmm().shadows().stats());
        setGroup(prefix, sys.vmm().tlb().stats());
        setGroup(prefix, sys.sched().stats());
        if (sys.cloak() != nullptr) {
            setGroup(prefix, sys.cloak()->stats());
            set(prefix + ".cloak.audit_dropped",
                sys.cloak()->auditLog().dropped());
        }
        if (sys.tracer().enabled()) {
            for (const auto& [key, hist] :
                 sys.tracer().metrics().histograms()) {
                std::string base =
                    prefix + ".hist." +
                    trace::categoryName(
                        static_cast<trace::Category>(key.first)) +
                    "." + key.second;
                set(base + ".p50", hist.percentile(50));
                set(base + ".p95", hist.percentile(95));
            }
        }
    }

    /** Write `BENCH_<phase>.json`; returns the path ("" on failure). */
    std::string
    write() const
    {
        std::string path = "BENCH_" + phase_ + ".json";
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "[bench] cannot write %s\n",
                         path.c_str());
            return "";
        }
        std::fprintf(f, "{\n  \"schema\": 1,\n  \"phase\": \"%s\",\n"
                        "  \"metrics\": {\n",
                     phase_.c_str());
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
            std::fprintf(f, "    \"%s\": %llu%s\n",
                         metrics_[i].first.c_str(),
                         static_cast<unsigned long long>(
                             metrics_[i].second),
                         i + 1 < metrics_.size() ? "," : "");
        }
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("[bench] wrote %s (%zu metrics)\n", path.c_str(),
                    metrics_.size());
        return path;
    }

  private:
    std::string phase_;
    std::vector<std::pair<std::string, std::uint64_t>> metrics_;
};

} // namespace osh::bench

#endif // OSH_BENCH_COMMON_HH
