/**
 * @file
 * Shared helpers for the benchmark binaries.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: it runs the relevant workloads on a native system (VMM,
 * no cloaking — the paper's baseline) and on an Overshadow system, and
 * prints the same rows/series the paper reports. All numbers are
 * deterministic simulated cycles.
 */

#ifndef OSH_BENCH_COMMON_HH
#define OSH_BENCH_COMMON_HH

#include "os/env.hh"
#include "system/system.hh"
#include "trace/export.hh"
#include "workloads/workloads.hh"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

namespace osh::bench
{

/**
 * True when the OSH_TRACE environment variable asks for tracing.
 * Always false when tracing is compiled out (-DOSH_TRACE=OFF): the
 * instrumentation sites are gone, so a report would be empty.
 */
inline bool
tracingRequested()
{
#if OSH_TRACE_ENABLED
    const char* v = std::getenv("OSH_TRACE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
#else
    return false;
#endif
}

/** Build a system with workloads registered. */
inline std::unique_ptr<system::System>
makeSystem(bool cloaked, std::uint64_t frames = 4096,
           std::uint64_t seed = 42,
           std::uint64_t preempt_ops = 2'000'000)
{
    system::SystemConfig cfg;
    cfg.cloakingEnabled = cloaked;
    cfg.guestFrames = frames;
    cfg.seed = seed;
    cfg.preemptOpsPerTick = preempt_ops;
    cfg.trace.enabled = tracingRequested();
    auto sys = std::make_unique<system::System>(cfg);
    workloads::registerAll(*sys);
    return sys;
}

/**
 * Dump tracing artifacts for one bench phase: a plain-text metrics
 * report on stdout and a Chrome trace JSON (`<phase>.trace.json`,
 * loadable in Perfetto / chrome://tracing). No-op unless the bench ran
 * with OSH_TRACE=1. Tracing never charges simulated cycles, so the
 * numbers a bench prints are identical with and without it.
 */
inline void
reportPhase(system::System& sys, const std::string& phase)
{
    auto& tracer = sys.tracer();
    if (!tracer.enabled())
        return;
    std::fputs(trace::metricsReport(tracer.metrics(), phase).c_str(),
               stdout);
    std::string path = phase + ".trace.json";
    if (trace::writeChromeJson(tracer.buffer(), path))
        std::printf("[trace] wrote %s (%llu events)\n\n", path.c_str(),
                    static_cast<unsigned long long>(
                        tracer.buffer().size()));
}

/** Run one workload and return total simulated cycles (asserts ok). */
inline Cycles
runCycles(bool cloaked, const std::string& program,
          const std::vector<std::string>& argv,
          std::uint64_t frames = 4096, std::uint64_t seed = 42)
{
    auto sys = makeSystem(cloaked, frames, seed);
    auto r = sys->runProgram(program, argv);
    if (r.status != 0) {
        osh_fatal("bench workload %s failed: status=%d %s",
                  program.c_str(), r.status, r.killReason.c_str());
    }
    reportPhase(*sys, program + (cloaked ? ".cloaked" : ".native"));
    return sys->cycles();
}

inline void
header(const char* title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title);
    std::printf("==================================================="
                "===========\n");
}

} // namespace osh::bench

#endif // OSH_BENCH_COMMON_HH
