/**
 * @file
 * Shared helpers for the benchmark binaries.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: it runs the relevant workloads on a native system (VMM,
 * no cloaking — the paper's baseline) and on an Overshadow system, and
 * prints the same rows/series the paper reports. All numbers are
 * deterministic simulated cycles.
 */

#ifndef OSH_BENCH_COMMON_HH
#define OSH_BENCH_COMMON_HH

#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace osh::bench
{

/** Build a system with workloads registered. */
inline std::unique_ptr<system::System>
makeSystem(bool cloaked, std::uint64_t frames = 4096,
           std::uint64_t seed = 42,
           std::uint64_t preempt_ops = 2'000'000)
{
    system::SystemConfig cfg;
    cfg.cloakingEnabled = cloaked;
    cfg.guestFrames = frames;
    cfg.seed = seed;
    cfg.preemptOpsPerTick = preempt_ops;
    auto sys = std::make_unique<system::System>(cfg);
    workloads::registerAll(*sys);
    return sys;
}

/** Run one workload and return total simulated cycles (asserts ok). */
inline Cycles
runCycles(bool cloaked, const std::string& program,
          const std::vector<std::string>& argv,
          std::uint64_t frames = 4096, std::uint64_t seed = 42)
{
    auto sys = makeSystem(cloaked, frames, seed);
    auto r = sys->runProgram(program, argv);
    if (r.status != 0) {
        osh_fatal("bench workload %s failed: status=%d %s",
                  program.c_str(), r.status, r.killReason.c_str());
    }
    return sys->cycles();
}

inline void
header(const char* title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title);
    std::printf("==================================================="
                "===========\n");
}

} // namespace osh::bench

#endif // OSH_BENCH_COMMON_HH
