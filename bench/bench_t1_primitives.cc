/**
 * @file
 * Table T1 — cloaking primitive costs.
 *
 * Reproduces the paper's microbenchmark table of the basic Overshadow
 * operations: page encryption (dirty), decryption + integrity
 * verification, the clean-page re-encryption optimization, shadow page
 * table fill, a VMM world switch, and metadata cache hit/miss — plus
 * the shadow-resolution fast paths added on top of the paper's design
 * (suspended-shadow revalidation and the re-encryption victim cache).
 *
 * Each primitive is defined once and measured two ways:
 *   - via google-benchmark for host-side throughput, reporting
 *     *simulated cycles per operation* as the "sim_cycles" counter
 *     (the numbers corresponding to the paper's table);
 *   - via a fixed warmup+measure loop whose result is bit-reproducible
 *     across hosts, written to BENCH_t1_primitives.json for the
 *     perf-regression harness (bench/compare.py).
 */

#include "bench_common.hh"

#include "cloak/engine.hh"
#include "crypto/ctr.hh"
#include "crypto/sha256.hh"
#include "sim/machine.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"

#include <benchmark/benchmark.h>

#include <functional>
#include <map>
#include <span>

namespace
{

using namespace osh;

/** Minimal guest OS for driving the engine directly. */
class BenchOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA, vmm::AccessType) override
    {
        osh_panic("unexpected guest fault in bench harness");
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/** Engine harness shared by the primitive benchmarks. */
struct Harness
{
    explicit Harness(bool fast_path = true)
        : machine(sim::MachineConfig{512, 1, {}, {}}), vmm(machine, 512),
          engine(vmm, 7, 4096)
    {
        vmm.setGuestOs(&os);
        vmm.setShadowRetention(fast_path);
        engine.setVictimCacheCapacity(fast_path ? 8 : 0);
        domain = engine.createDomain(appAsid, 1,
                                     cloak::programIdentity("bench"));
        os.map(appAsid, appVa, gpa);
        os.map(0, kernelVa, gpa);
        engine.registerRegion(domain, appVa, 1);
    }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{appAsid, domain, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{0, systemDomain, true});
    }

    static constexpr Asid appAsid = 3;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa = 0x4000;
    static constexpr GuestVA kernelVa = 0x0000'8000'0000'0000ull + gpa;

    sim::Machine machine;
    vmm::Vmm vmm;
    cloak::CloakEngine engine;
    BenchOs os;
    DomainId domain = 0;
};

/** Per-run state a primitive operates on. */
struct Ctx
{
    explicit Ctx(bool fast_path)
        : h(fast_path), app(h.appCpu()), kernel(h.kernelCpu())
    {
    }

    Harness h;
    vmm::Vcpu app;
    vmm::Vcpu kernel;
    std::uint64_t scratch = 0;
    cloak::Resource* res = nullptr;
};

/**
 * One measured primitive. `prep` runs before every measured `op` and
 * is excluded from the timing; `init` runs once after construction.
 * `fixedOnly` keeps a primitive out of the open-ended google-benchmark
 * loop (used when the op consumes a bounded resource, like the async
 * staging region, that only the fixed iteration count respects).
 */
struct Primitive
{
    const char* name;
    bool fastPath;
    std::function<void(Ctx&)> init;
    std::function<void(Ctx&)> prep;
    std::function<void(Ctx&)> op;
    bool fixedOnly = false;
};

/** Pages backing the async-eviction primitive: enough that the fixed
 *  warmup+measure loop (72 evictions) never revisits a sealed page. */
constexpr std::uint64_t asyncBenchPages = 128;

const std::vector<Primitive>&
primitives()
{
    static const std::vector<Primitive> prims = {
        {"page_encrypt_dirty", false,
         nullptr,
         [](Ctx& c) { c.app.store64(Harness::appVa, ++c.scratch); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        // Raw decrypt + integrity verification (fast paths off so the
        // full SHA-256 + AES cost is visible, as in the paper).
        {"page_decrypt_verify", false,
         [](Ctx& c) { c.app.store64(Harness::appVa, 1); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); },
         [](Ctx& c) { c.app.store64(Harness::appVa, 2); }},

        // Clean-page re-encryption: AES under the stored IV, no hash.
        {"clean_reencrypt", false,
         [](Ctx& c) {
             c.app.store64(Harness::appVa, 1);
             c.kernel.load64(Harness::kernelVa);
         },
         [](Ctx& c) { c.app.load64(Harness::appVa); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        // Victim-cache hits: the same kernel<->app ping-pong with the
        // fast path on skips AES and SHA entirely.
        {"victim_reencrypt", true,
         [](Ctx& c) {
             c.app.store64(Harness::appVa, 1);
             c.kernel.load64(Harness::kernelVa);
         },
         [](Ctx& c) { c.app.load64(Harness::appVa); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        {"victim_decrypt", true,
         [](Ctx& c) {
             c.app.store64(Harness::appVa, 1);
             c.kernel.load64(Harness::kernelVa);
         },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); },
         [](Ctx& c) { c.app.load64(Harness::appVa); }},

        // Full shadow-page-table fill after a true invalidation.
        {"shadow_fill", true,
         [](Ctx& c) { c.app.store64(Harness::appVa, 1); },
         [](Ctx& c) {
             c.h.vmm.shadows().invalidateVa(Harness::appAsid,
                                            Harness::appVa);
             c.h.vmm.tlb().invalidateVa(Harness::appAsid,
                                        Harness::appVa);
         },
         [](Ctx& c) { c.app.load64(Harness::appVa); }},

        // Revalidation of a suspended shadow entry (retention hit):
        // the translation survived a cloaking-state flip.
        {"shadow_revalidate", true,
         [](Ctx& c) { c.app.store64(Harness::appVa, 1); },
         [](Ctx& c) {
             c.h.vmm.suspendMpa(
                 c.h.vmm.pmap().translate(Harness::gpa));
         },
         [](Ctx& c) { c.app.load64(Harness::appVa); }},

        {"world_switch_hypercall", true,
         nullptr,
         nullptr,
         [](Ctx& c) {
             std::array<std::uint64_t, 1> a{0};
             c.app.hypercall(vmm::Hypercall::CloakInfo, a);
         }},

        {"metadata_cache_hit", true,
         [](Ctx& c) {
             c.res = &c.h.engine.metadata().createResource(c.h.domain);
             c.h.engine.metadata().page(*c.res, 0); // warm
         },
         nullptr,
         [](Ctx& c) { c.h.engine.metadata().page(*c.res, 0); }},

        // Asynchronous eviction enqueue: the critical-path cost of
        // handing a dirty cloaked frame back to the kernel while the
        // seal + swap write ride the background lane (depth 256, so
        // the fixed loop never fills the queue or drains).
        {"page_encrypt_dirty_async", false,
         [](Ctx& c) {
             c.h.engine.setAsyncEvictDepth(256);
             for (std::uint64_t i = 1; i <= asyncBenchPages; ++i)
                 c.h.os.map(Harness::appAsid,
                            Harness::appVa + i * pageSize,
                            Harness::gpa + i * pageSize);
             c.h.engine.registerRegion(c.h.domain,
                                       Harness::appVa + pageSize,
                                       asyncBenchPages);
         },
         [](Ctx& c) {
             std::uint64_t i = 1 + c.scratch % asyncBenchPages;
             c.app.store64(Harness::appVa + i * pageSize,
                           c.scratch + 1);
         },
         [](Ctx& c) {
             std::uint64_t i = 1 + c.scratch % asyncBenchPages;
             bool queued = c.h.engine.evictPageAsync(
                 Harness::gpa + i * pageSize,
                 [](std::span<const std::uint8_t>) {});
             osh_assert(queued, "async enqueue refused in bench");
             ++c.scratch;
         },
         /*fixedOnly=*/true},

        // Incremental integrity: an 8-byte store dirties one 256-byte
        // chunk, so the kernel-side re-seal re-MACs that chunk plus
        // the root instead of the whole page (compare against
        // page_encrypt_dirty, the flat-MAC cost of the same access
        // pattern).
        {"chunk_remac", false,
         [](Ctx& c) { c.h.engine.setChunkedIntegrity(true); },
         [](Ctx& c) { c.app.store64(Harness::appVa, ++c.scratch); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        {"metadata_cache_miss", true,
         [](Ctx& c) {
             c.h.engine.metadata().setCacheCapacity(1);
             c.res = &c.h.engine.metadata().createResource(c.h.domain);
         },
         nullptr,
         [](Ctx& c) {
             c.h.engine.metadata().page(*c.res, c.scratch);
             c.scratch = (c.scratch + 1) % 64; // never reuse the cache
         }},

        // --- Timing-hardened series (docs/threat-model.md) ---
        // The same primitives with constant-cost cloak responses on:
        // every secret-dependent fast path charges its worst-case
        // sibling, so the hardened cost is the overhead a defender
        // pays to close the timing oracles. The dirty seal is already
        // the worst case, so hardening adds only the metadata
        // hit-charged-as-miss delta to it — and the clean/victim
        // paths must land on exactly the same hardened cost (that
        // equality IS the defense).
        {"hardened_page_encrypt_dirty", false,
         [](Ctx& c) { c.h.engine.setConstantCostMode(true); },
         [](Ctx& c) { c.app.store64(Harness::appVa, ++c.scratch); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        {"hardened_clean_reencrypt", false,
         [](Ctx& c) {
             c.h.engine.setConstantCostMode(true);
             c.app.store64(Harness::appVa, 1);
             c.kernel.load64(Harness::kernelVa);
         },
         [](Ctx& c) { c.app.load64(Harness::appVa); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        {"hardened_victim_reencrypt", true,
         [](Ctx& c) {
             c.h.engine.setConstantCostMode(true);
             c.app.store64(Harness::appVa, 1);
             c.kernel.load64(Harness::kernelVa);
         },
         [](Ctx& c) { c.app.load64(Harness::appVa); },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); }},

        {"hardened_victim_decrypt", true,
         [](Ctx& c) {
             c.h.engine.setConstantCostMode(true);
             c.app.store64(Harness::appVa, 1);
             c.kernel.load64(Harness::kernelVa);
         },
         [](Ctx& c) { c.kernel.load64(Harness::kernelVa); },
         [](Ctx& c) { c.app.load64(Harness::appVa); }},

        {"hardened_metadata_cache_hit", true,
         [](Ctx& c) {
             c.h.engine.setConstantCostMode(true);
             c.res = &c.h.engine.metadata().createResource(c.h.domain);
             c.h.engine.metadata().page(*c.res, 0); // warm
         },
         nullptr,
         [](Ctx& c) { c.h.engine.metadata().page(*c.res, 0); }},
    };
    return prims;
}

/**
 * Deterministic measurement: fixed warmup + fixed iteration count, so
 * the average is independent of host speed and bit-identical across
 * runs. These are the numbers BENCH_t1_primitives.json records.
 */
std::uint64_t
fixedCyclesPerOp(const Primitive& p)
{
    constexpr int warmup = 8;
    constexpr int iters = 64;
    Ctx ctx(p.fastPath);
    if (p.init)
        p.init(ctx);
    for (int i = 0; i < warmup; ++i) {
        if (p.prep)
            p.prep(ctx);
        p.op(ctx);
    }
    Cycles total = 0;
    for (int i = 0; i < iters; ++i) {
        if (p.prep)
            p.prep(ctx);
        Cycles before = ctx.h.machine.cost().cycles();
        p.op(ctx);
        total += ctx.h.machine.cost().cycles() - before;
    }
    return total / iters;
}

void
runPrimitive(benchmark::State& state, const Primitive& p)
{
    Ctx ctx(p.fastPath);
    if (p.init)
        p.init(ctx);
    Cycles total = 0;
    for (auto _ : state) {
        if (p.prep)
            p.prep(ctx);
        Cycles before = ctx.h.machine.cost().cycles();
        p.op(ctx);
        total += ctx.h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) /
        static_cast<double>(state.iterations()));
}

void
BM_AesCtrPageHost(benchmark::State& state)
{
    crypto::AesKey key{};
    key[0] = 1;
    crypto::Aes128 aes(key);
    crypto::Iv iv{};
    std::vector<std::uint8_t> page(pageSize, 0xab);
    for (auto _ : state) {
        crypto::aesCtrXcryptInPlace(aes, iv, page);
        benchmark::DoNotOptimize(page.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * pageSize));
}
BENCHMARK(BM_AesCtrPageHost);

void
BM_Sha256PageHost(benchmark::State& state)
{
    std::vector<std::uint8_t> page(pageSize, 0xcd);
    for (auto _ : state) {
        auto d = crypto::Sha256::hash(page);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * pageSize));
}
BENCHMARK(BM_Sha256PageHost);

} // namespace

int
main(int argc, char** argv)
{
    for (const Primitive& p : primitives()) {
        if (p.fixedOnly)
            continue;
        benchmark::RegisterBenchmark(
            ("BM_" + std::string(p.name)).c_str(),
            [&p](benchmark::State& state) { runPrimitive(state, p); });
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    osh::bench::BenchReport report("t1_primitives");
    for (const Primitive& p : primitives())
        report.set(std::string(p.name) + ".sim_cycles",
                   fixedCyclesPerOp(p));
    report.write();
    return 0;
}
