/**
 * @file
 * Table T1 — cloaking primitive costs.
 *
 * Reproduces the paper's microbenchmark table of the basic Overshadow
 * operations: page encryption (dirty), decryption + integrity
 * verification, the clean-page re-encryption optimization, shadow page
 * table fill, a VMM world switch, and metadata cache hit/miss. Uses
 * google-benchmark for host-side throughput and reports *simulated
 * cycles per operation* as the "sim_cycles" counter — those are the
 * numbers that correspond to the paper's table.
 */

#include "cloak/engine.hh"
#include "crypto/ctr.hh"
#include "crypto/sha256.hh"
#include "sim/machine.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"

#include <benchmark/benchmark.h>

#include <map>

namespace
{

using namespace osh;

/** Minimal guest OS for driving the engine directly. */
class BenchOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA, vmm::AccessType) override
    {
        osh_panic("unexpected guest fault in bench harness");
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

/** Engine harness shared by the primitive benchmarks. */
struct Harness
{
    Harness()
        : machine(sim::MachineConfig{512, 1, {}}), vmm(machine, 512),
          engine(vmm, 7, 4096)
    {
        vmm.setGuestOs(&os);
        domain = engine.createDomain(appAsid, 1,
                                     cloak::programIdentity("bench"));
        os.map(appAsid, appVa, gpa);
        os.map(0, kernelVa, gpa);
        engine.registerRegion(domain, appVa, 1);
    }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{appAsid, domain, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{0, systemDomain, true});
    }

    static constexpr Asid appAsid = 3;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa = 0x4000;
    static constexpr GuestVA kernelVa = 0x0000'8000'0000'0000ull + gpa;

    sim::Machine machine;
    vmm::Vmm vmm;
    cloak::CloakEngine engine;
    BenchOs os;
    DomainId domain = 0;
};

void
BM_AesCtrPageHost(benchmark::State& state)
{
    crypto::AesKey key{};
    key[0] = 1;
    crypto::Aes128 aes(key);
    crypto::Iv iv{};
    std::vector<std::uint8_t> page(pageSize, 0xab);
    for (auto _ : state) {
        crypto::aesCtrXcryptInPlace(aes, iv, page);
        benchmark::DoNotOptimize(page.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * pageSize));
}
BENCHMARK(BM_AesCtrPageHost);

void
BM_Sha256PageHost(benchmark::State& state)
{
    std::vector<std::uint8_t> page(pageSize, 0xcd);
    for (auto _ : state) {
        auto d = crypto::Sha256::hash(page);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * pageSize));
}
BENCHMARK(BM_Sha256PageHost);

void
BM_PageEncryptDirty(benchmark::State& state)
{
    Harness h;
    auto app = h.appCpu();
    auto kernel = h.kernelCpu();
    Cycles total = 0;
    for (auto _ : state) {
        app.store64(Harness::appVa, 1); // dirty plaintext
        Cycles before = h.machine.cost().cycles();
        kernel.load64(Harness::kernelVa); // forces full encrypt
        total += h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PageEncryptDirty);

void
BM_PageDecryptVerify(benchmark::State& state)
{
    Harness h;
    auto app = h.appCpu();
    auto kernel = h.kernelCpu();
    app.store64(Harness::appVa, 1);
    Cycles total = 0;
    for (auto _ : state) {
        kernel.load64(Harness::kernelVa); // encrypt (excluded)
        Cycles before = h.machine.cost().cycles();
        app.store64(Harness::appVa, 2);   // decrypt + verify
        total += h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PageDecryptVerify);

void
BM_CleanReencrypt(benchmark::State& state)
{
    Harness h;
    auto app = h.appCpu();
    auto kernel = h.kernelCpu();
    app.store64(Harness::appVa, 1);
    kernel.load64(Harness::kernelVa); // first full encrypt
    Cycles total = 0;
    for (auto _ : state) {
        app.load64(Harness::appVa);   // decrypt -> CLEAN (excluded)
        Cycles before = h.machine.cost().cycles();
        kernel.load64(Harness::kernelVa); // cheap re-encrypt
        total += h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_CleanReencrypt);

void
BM_ShadowFill(benchmark::State& state)
{
    Harness h;
    auto app = h.appCpu();
    app.store64(Harness::appVa, 1);
    Cycles total = 0;
    for (auto _ : state) {
        h.vmm.shadows().invalidateVa(Harness::appAsid, Harness::appVa);
        h.vmm.tlb().invalidateVa(Harness::appAsid, Harness::appVa);
        Cycles before = h.machine.cost().cycles();
        app.load64(Harness::appVa);
        total += h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ShadowFill);

void
BM_WorldSwitchHypercall(benchmark::State& state)
{
    Harness h;
    auto app = h.appCpu();
    Cycles total = 0;
    for (auto _ : state) {
        Cycles before = h.machine.cost().cycles();
        std::array<std::uint64_t, 1> a{0};
        app.hypercall(vmm::Hypercall::CloakInfo, a);
        total += h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_WorldSwitchHypercall);

void
BM_MetadataCacheHit(benchmark::State& state)
{
    Harness h;
    cloak::Resource& res = h.engine.metadata().createResource(h.domain);
    h.engine.metadata().page(res, 0); // warm
    Cycles total = 0;
    for (auto _ : state) {
        Cycles before = h.machine.cost().cycles();
        h.engine.metadata().page(res, 0);
        total += h.machine.cost().cycles() - before;
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MetadataCacheHit);

void
BM_MetadataCacheMiss(benchmark::State& state)
{
    Harness h;
    h.engine.metadata().setCacheCapacity(1);
    cloak::Resource& res = h.engine.metadata().createResource(h.domain);
    Cycles total = 0;
    std::uint64_t page = 0;
    for (auto _ : state) {
        Cycles before = h.machine.cost().cycles();
        h.engine.metadata().page(res, page);
        total += h.machine.cost().cycles() - before;
        page = (page + 1) % 64; // never reuse the 1-entry cache
    }
    state.counters["sim_cycles"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_MetadataCacheMiss);

} // namespace

BENCHMARK_MAIN();
