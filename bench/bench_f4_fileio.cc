/**
 * @file
 * Figure F4 — file-read bandwidth vs buffer size, and the marshalled
 * vs emulated I/O ablation.
 *
 * Reproduces the paper's file-I/O microbenchmark figure. Three series:
 *   - native: ordinary read() on the baseline system;
 *   - cloaked-marshalled: read() of an *unprotected* file from a
 *     cloaked process — every call traps and data is copied through
 *     the uncloaked bounce buffer;
 *   - cloaked-emulated: read() of a *protected* file — the shim
 *     serves it from the cloaked mapping, no kernel involvement per
 *     call (the paper's memory-mapped emulation of I/O).
 *
 * Expected shape: marshalling hurts most at small buffers; emulation
 * tracks native closely once the mapping is warm.
 */

#include "bench_common.hh"

namespace
{

using namespace osh;
using os::Env;

constexpr std::uint64_t fileBytes = 256 * 1024;

int
readerMain(Env& env)
{
    bool protected_file = env.args().at(0) == "1";
    std::uint64_t buf_bytes =
        std::strtoull(env.args().at(1).c_str(), nullptr, 10);

    std::string path;
    if (protected_file) {
        env.mkdir("/cloaked");
        path = "/cloaked/data.bin";
    } else {
        path = "/data.bin";
    }

    // Create the file.
    std::int64_t fd = env.open(path, os::openCreate | os::openRead |
                                         os::openWrite);
    if (fd < 0)
        return 1;
    GuestVA page = env.allocPages(1);
    for (std::uint64_t off = 0; off < fileBytes; off += pageSize) {
        for (GuestVA i = 0; i < pageSize; i += 8)
            env.store64(page + i, off + i);
        env.write(fd, page, pageSize);
    }

    // Warm pass + timed passes of sequential reads.
    GuestVA buf = env.allocPages(
        std::max<std::uint64_t>(1, roundUpToPage(buf_bytes) / pageSize));
    auto one_pass = [&] {
        env.lseek(fd, 0, os::seekSet);
        std::uint64_t total = 0;
        while (total < fileBytes) {
            std::int64_t got = env.read(fd, buf, buf_bytes);
            if (got <= 0)
                return false;
            total += static_cast<std::uint64_t>(got);
        }
        return true;
    };
    if (!one_pass())
        return 2;
    Cycles c0 = env.clock();
    for (int pass = 0; pass < 3; ++pass) {
        if (!one_pass())
            return 3;
    }
    Cycles c1 = env.clock();
    env.close(fd);

    env.mkdir("/results");
    std::int64_t rf = env.open("/results/fileio",
                               os::openCreate | os::openWrite |
                                   os::openTrunc);
    env.writeAll(static_cast<std::uint64_t>(rf),
                 formatString("%llu",
                              static_cast<unsigned long long>(
                                  (c1 - c0) / 3)));
    env.close(static_cast<std::uint64_t>(rf));
    return 0;
}

double
bandwidth(bool cloaked, bool protected_file, std::uint64_t buf_bytes)
{
    auto sys = bench::makeSystem(cloaked);
    sys->addProgram("reader", os::Program{readerMain, true, 64});
    auto r = sys->runProgram(
        "reader",
        {protected_file ? "1" : "0", std::to_string(buf_bytes)});
    if (r.status != 0)
        osh_fatal("reader failed: %d %s", r.status,
                  r.killReason.c_str());
    bench::reportPhase(*sys,
                       std::string("f4_") +
                           (cloaked ? "cloaked" : "native") +
                           (protected_file ? "_prot_" : "_plain_") +
                           std::to_string(buf_bytes));
    std::uint64_t cycles = std::strtoull(
        workloads::readGuestFile(*sys, "/results/fileio").c_str(),
        nullptr, 10);
    // Bytes per kilocycle.
    return static_cast<double>(fileBytes) /
           (static_cast<double>(cycles) / 1000.0);
}

} // namespace

int
main()
{
    bench::header("Figure F4: read() bandwidth vs buffer size "
                  "(bytes/kcycle)");
    std::printf("%-10s %12s %18s %18s\n", "buffer", "native",
                "cloaked-marshal", "cloaked-emulated");
    for (std::uint64_t buf : {256u, 1024u, 4096u, 16384u, 65536u}) {
        double native = bandwidth(false, false, buf);
        double marshal = bandwidth(true, false, buf);
        double emulated = bandwidth(true, true, buf);
        std::printf("%7lluB %12.1f %18.1f %18.1f\n",
                    static_cast<unsigned long long>(buf), native,
                    marshal, emulated);
    }
    std::printf("\n(paper shape: marshalling is worst at small "
                "buffers; emulation approaches native)\n");
    return 0;
}
