/**
 * @file
 * Tenant-scale sweep: 10 -> 100 -> 1k -> 10k cloaked processes.
 *
 * Each point runs N short-lived cloaked tenants (wl.tenant: two private
 * pages, seeded stores, strided hash) through one 4-vCPU system,
 * launched in bounded waves so live concurrency — and therefore the
 * protection state the VMM must hold at once — is capped while total
 * work scales with N. Every tenant's exit status is checked against the
 * host-side mirror (workloads::tenantStatus), so a point only counts if
 * all N tenants computed correctly under cloaking.
 *
 * Charted per point:
 *   - total and per-tenant simulated cycles (gated by compare.py:
 *     per-tenant cost must stay flat as N grows);
 *   - peak shadow-page-table slots and peak metadata footprint bytes
 *     (ungated; sub-linear per tenant — they track live tenants, not
 *     historical ones);
 *   - context switches, derived AES keys (linear in N: key identities
 *     persist for the store's lifetime), metadata shard count;
 *   - host wall time (host_ prefix, never gated).
 *
 * Writes BENCH_scale.json; CI runs `--quick` (10 and 100 only) against
 * the committed full-sweep baseline — compare.py warns on the missing
 * large points and gates the cycle metrics of the points that ran.
 */

#include "bench_common.hh"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace
{

using namespace osh;

constexpr std::uint64_t benchSeed = 42;
constexpr std::uint64_t tenantPages = 2;
constexpr std::uint64_t waveWidth = 24;
constexpr std::size_t benchVcpus = 4;

struct ScalePoint
{
    std::uint64_t tenants = 0;
    Cycles cycles = 0;
    std::uint64_t shadowPeakSlots = 0;
    std::uint64_t metaPeakBytes = 0;
    std::uint64_t metaShards = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t derivedKeys = 0;
    std::uint64_t hostNs = 0;
};

ScalePoint
runScale(std::uint64_t n)
{
    // A short tick (vs the 2M-op default) forces the tenants of a wave
    // to genuinely interleave: up to waveWidth cloaked processes are
    // mid-flight at once, so peak shadow/metadata state reflects real
    // concurrent tenants and threads migrate across the vCPU slots.
    auto cfg = system::SystemConfig::Builder{}
                   .seed(benchSeed)
                   .guestFrames(4096)
                   .cloaking(true)
                   .vcpus(benchVcpus)
                   .preemptOpsPerTick(500)
                   .build();
    system::System sys(cfg);
    workloads::registerAll(sys);

    std::uint64_t host0 = bench::hostNowNs();
    std::uint64_t idx = 0;
    std::vector<std::pair<Pid, std::uint64_t>> wave;
    while (idx < n) {
        std::uint64_t batch = std::min(waveWidth, n - idx);
        wave.clear();
        for (std::uint64_t i = 0; i < batch; ++i, ++idx) {
            Pid pid = sys.launch("wl.tenant",
                                 {std::to_string(idx),
                                  std::to_string(tenantPages)});
            wave.emplace_back(pid, idx);
        }
        sys.run();
        for (const auto& [pid, tenant] : wave) {
            const system::ExitResult* r = sys.resultOf(pid);
            int expected = workloads::tenantStatus(benchSeed, tenant,
                                                   tenantPages);
            if (r == nullptr || r->killed || r->status != expected) {
                osh_fatal("tenant %llu diverged: status=%d expected=%d "
                          "%s",
                          static_cast<unsigned long long>(tenant),
                          r != nullptr ? r->status : -999, expected,
                          r != nullptr ? r->killReason.c_str() : "");
            }
        }
        // Release finished host-thread stacks so 10k tenants fit in
        // bounded host memory.
        sys.sched().reapFinished();
    }

    ScalePoint p;
    p.tenants = n;
    p.cycles = sys.cycles();
    p.shadowPeakSlots = sys.vmm().shadows().peakSlotCount();
    p.metaPeakBytes = sys.cloak()->metadata().peakFootprintBytes();
    p.metaShards = sys.cloak()->metadata().shardCount();
    p.contextSwitches =
        sys.machine().cost().stats().value("context_switch");
    p.derivedKeys = sys.cloak()->keys().derivedKeyCount();
    p.hostNs = bench::hostNowNs() - host0;
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
    }

    std::vector<std::uint64_t> points = {10, 100, 1000, 10000};
    if (quick)
        points = {10, 100};

    bench::header("Tenant scale sweep (cloaked, 4 vCPUs)");
    std::printf("%8s %14s %12s %12s %12s %10s %10s %9s\n", "tenants",
                "cycles", "cyc/tenant", "shadow_peak", "meta_peakB",
                "ctx_sw", "keys", "host_ms");

    bench::BenchReport report("scale");
    for (std::uint64_t n : points) {
        ScalePoint p = runScale(n);
        std::printf("%8llu %14llu %12llu %12llu %12llu %10llu %10llu "
                    "%9llu\n",
                    static_cast<unsigned long long>(p.tenants),
                    static_cast<unsigned long long>(p.cycles),
                    static_cast<unsigned long long>(p.cycles / n),
                    static_cast<unsigned long long>(p.shadowPeakSlots),
                    static_cast<unsigned long long>(p.metaPeakBytes),
                    static_cast<unsigned long long>(p.contextSwitches),
                    static_cast<unsigned long long>(p.derivedKeys),
                    static_cast<unsigned long long>(p.hostNs / 1000000));

        std::string k = "scale.n" + std::to_string(n);
        report.set(k + ".cycles", p.cycles);
        report.set(k + ".per_tenant_cycles", p.cycles / n);
        report.set(k + ".shadow_peak_slots", p.shadowPeakSlots);
        report.set(k + ".meta_peak_bytes", p.metaPeakBytes);
        report.set(k + ".meta_shards", p.metaShards);
        report.set(k + ".context_switches", p.contextSwitches);
        report.set(k + ".derived_keys", p.derivedKeys);
        report.setHost(k + ".ns", p.hostNs);
    }
    report.write();
    return 0;
}
