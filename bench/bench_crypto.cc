/**
 * @file
 * Crypto pipeline microbenchmarks — host throughput and batch cost.
 *
 * Three independent sections:
 *
 *  1. Host wall-time: the real cost of page crypto on this machine,
 *     measured for the optimized pipeline (T-table AES, multi-block
 *     CTR, HMAC key midstates) and for the pre-optimization reference
 *     path (byte-wise FIPS-197 AES via setReferenceMode, per-call HMAC
 *     pad hashing). These numbers vary by host and are recorded under
 *     `host_` keys, which bench/compare.py reports but never gates.
 *
 *  2. Worker sweep: wall-time of a 64-page encryptPages/decryptPages
 *     batch at each crypto worker count in `--threads=<list>` (default
 *     1,2,4,8). Scaling depends entirely on host core count, so these
 *     are `host_` keys too; the sweep additionally asserts that frames,
 *     metadata and simulated cycles are bit-identical at every worker
 *     count (the pool's determinism contract).
 *
 *  3. Simulated cycles: the engine-level batched page-crypto API
 *     (encryptPages / decryptPages / sealPlaintextFrames) measured
 *     against the equivalent per-page sequence. The batch API is
 *     documented to charge byte-identical simulated cost; this bench
 *     asserts that and writes both totals to BENCH_crypto.json so the
 *     perf harness (bench/compare.py) pins them.
 *
 * `--quick` shrinks the host-time iteration counts for sanitizer CI;
 * the simulated-cycle metrics are iteration-count-fixed and identical
 * either way.
 */

#include "bench_common.hh"

#include "base/pool.hh"
#include "cloak/engine.hh"
#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "sim/machine.hh"
#include "vmm/vcpu.hh"
#include "vmm/vmm.hh"

#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace
{

using namespace osh;

// ---------------------------------------------------------------------------
// Section 1: host wall-time, reference vs optimized crypto pipeline
// ---------------------------------------------------------------------------

/** One measured host-side operation over `bytes` bytes per call. */
struct HostResult
{
    std::uint64_t nsPerOp = 0;
    std::uint64_t mbPerSec = 0;
};

template <typename F>
HostResult
measureHost(std::size_t bytes_per_op, int iters, F&& op)
{
    for (int i = 0; i < iters / 8 + 1; ++i)
        op(i);
    std::uint64_t t0 = bench::hostNowNs();
    for (int i = 0; i < iters; ++i)
        op(i);
    std::uint64_t elapsed = bench::hostNowNs() - t0;
    HostResult r;
    r.nsPerOp = elapsed / static_cast<std::uint64_t>(iters);
    r.mbPerSec = bench::mbPerSec(
        bytes_per_op * static_cast<std::uint64_t>(iters), elapsed);
    return r;
}

/**
 * Page encrypt + MAC exactly as the cloak engine does it: AES-CTR over
 * the 4 KiB page under a fresh-ish IV, then SHA-256 over the 40-byte
 * identity header plus the ciphertext.
 */
HostResult
measurePageEncryptMac(const crypto::Aes128& aes, int iters)
{
    std::array<std::uint8_t, pageSize> page{};
    std::array<std::uint8_t, 40> header{};
    crypto::Iv iv{};
    return measureHost(pageSize, iters, [&](int i) {
        iv[0] = static_cast<std::uint8_t>(i);
        page[0] = static_cast<std::uint8_t>(i);
        crypto::aesCtrXcryptInPlace(aes, iv, page);
        header[0] = static_cast<std::uint8_t>(i);
        crypto::Sha256 h;
        h.update(header);
        h.update(page);
        auto d = h.final();
        page[1] = d[0]; // keep the digest live
    });
}

/** Page decrypt + verify: hash the ciphertext, then CTR-decrypt. */
HostResult
measurePageDecryptVerify(const crypto::Aes128& aes, int iters)
{
    std::array<std::uint8_t, pageSize> page{};
    std::array<std::uint8_t, 40> header{};
    crypto::Iv iv{};
    return measureHost(pageSize, iters, [&](int i) {
        iv[0] = static_cast<std::uint8_t>(i);
        crypto::Sha256 h;
        h.update(header);
        h.update(page);
        auto d = h.final();
        page[1] = d[0];
        crypto::aesCtrXcryptInPlace(aes, iv, page);
    });
}

/**
 * Metadata-bundle MAC. The reference path constructs the HMAC key per
 * call (the pre-optimization interface re-hashed the ipad/opad blocks
 * every time); the optimized path reuses a prepared HmacKey midstate.
 */
HostResult
measureHmacSeal(std::span<const std::uint8_t> bundle, bool midstate,
                int iters)
{
    std::array<std::uint8_t, 32> key_bytes{};
    key_bytes[0] = 0x5e;
    crypto::HmacKey prepared{std::span<const std::uint8_t>(key_bytes)};
    return measureHost(bundle.size(), iters, [&](int i) {
        crypto::Digest d =
            midstate ? crypto::hmacSha256(prepared, bundle)
                     : crypto::hmacSha256(key_bytes, bundle);
        key_bytes[1] = static_cast<std::uint8_t>(d[0] + i);
    });
}

void
reportHostPair(bench::BenchReport& report, const char* name,
               const HostResult& ref, const HostResult& opt)
{
    std::uint64_t speedup_x100 =
        opt.nsPerOp == 0 ? 0 : ref.nsPerOp * 100 / opt.nsPerOp;
    std::printf("  %-24s %8llu ns  %6llu MB/s   -> %8llu ns  %6llu "
                "MB/s   (%llu.%02llux)\n",
                name,
                static_cast<unsigned long long>(ref.nsPerOp),
                static_cast<unsigned long long>(ref.mbPerSec),
                static_cast<unsigned long long>(opt.nsPerOp),
                static_cast<unsigned long long>(opt.mbPerSec),
                static_cast<unsigned long long>(speedup_x100 / 100),
                static_cast<unsigned long long>(speedup_x100 % 100));
    std::string key(name);
    report.setHost("ref." + key + ".ns", ref.nsPerOp);
    report.setHost("ref." + key + ".mb_s", ref.mbPerSec);
    report.setHost("opt." + key + ".ns", opt.nsPerOp);
    report.setHost("opt." + key + ".mb_s", opt.mbPerSec);
    report.setHost("speedup." + key + "_x100", speedup_x100);
}

void
runHostSection(bench::BenchReport& report, bool quick)
{
    const int page_iters = quick ? 64 : 2048;
    const int mac_iters = quick ? 256 : 8192;

    crypto::AesKey key{};
    key[0] = 1;
    crypto::Aes128 opt_aes(key);
    crypto::Aes128 ref_aes(key);
    ref_aes.setReferenceMode(true);

    // A metadata bundle the size sealFileResource produces for a
    // 16-page file resource (16 + 32 + 16 * 65 bytes).
    std::vector<std::uint8_t> bundle(16 + 32 + 16 * 65, 0x3c);

    bench::header("Host wall-time: reference vs optimized pipeline");
    std::printf("  %-24s %-25s -> %-25s\n", "operation",
                "reference (pre-opt)", "optimized");

    reportHostPair(report, "page_encrypt_mac",
                   measurePageEncryptMac(ref_aes, page_iters),
                   measurePageEncryptMac(opt_aes, page_iters));
    reportHostPair(report, "page_decrypt_verify",
                   measurePageDecryptVerify(ref_aes, page_iters),
                   measurePageDecryptVerify(opt_aes, page_iters));
    reportHostPair(report, "hmac_seal_1k",
                   measureHmacSeal(bundle, false, mac_iters),
                   measureHmacSeal(bundle, true, mac_iters));
}

// ---------------------------------------------------------------------------
// Section 2: simulated cycles, batched vs per-page engine API
// ---------------------------------------------------------------------------

/** Minimal guest OS for driving the engine directly. */
class BenchOs : public vmm::GuestOsHooks
{
  public:
    void
    map(Asid asid, GuestVA va, Gpa gpa)
    {
        ptes_[{asid, pageBase(va)}] =
            vmm::GuestPte{pageBase(gpa), true, true, true, false};
    }

    vmm::GuestPte
    translateGuest(Asid asid, GuestVA va) override
    {
        auto it = ptes_.find({asid, pageBase(va)});
        return it == ptes_.end() ? vmm::GuestPte{} : it->second;
    }

    void
    handleGuestPageFault(vmm::Vcpu&, GuestVA, vmm::AccessType) override
    {
        osh_panic("unexpected guest fault in bench harness");
    }

  private:
    std::map<std::pair<Asid, GuestVA>, vmm::GuestPte> ptes_;
};

constexpr std::uint64_t benchPages = 32;

/**
 * Engine harness with a cloaked region of `pages` pages (default
 * `benchPages`; the worker sweep uses 64). Fast paths are off (no
 * shadow retention, no victim cache) so every seal and decrypt pays
 * the full AES + SHA cost — the quantity the batch API is supposed to
 * leave untouched.
 */
struct Harness
{
    explicit Harness(std::uint64_t pages_ = benchPages)
        : pages(pages_), machine(sim::MachineConfig{512, 1, {}, {}}),
          vmm(machine, 512), engine(vmm, 7, 4096)
    {
        vmm.setGuestOs(&os);
        vmm.setShadowRetention(false);
        engine.setVictimCacheCapacity(0);
        domain = engine.createDomain(appAsid, 1,
                                     cloak::programIdentity("bench"));
        for (std::uint64_t i = 0; i < pages; ++i) {
            os.map(appAsid, appVa + i * pageSize, gpa0 + i * pageSize);
            os.map(0, kernelVa + i * pageSize, gpa0 + i * pageSize);
        }
        resource = engine.registerRegion(domain, appVa, pages);
    }

    vmm::Vcpu
    appCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{appAsid, domain, false});
    }

    vmm::Vcpu
    kernelCpu()
    {
        return vmm::Vcpu(vmm, vmm::Context{0, systemDomain, true});
    }

    static constexpr Asid appAsid = 3;
    static constexpr GuestVA appVa = 0x10000;
    static constexpr Gpa gpa0 = 0x4000;
    static constexpr GuestVA kernelVa = 0x0000'8000'0000'0000ull + gpa0;

    std::uint64_t pages;
    sim::Machine machine;
    vmm::Vmm vmm;
    cloak::CloakEngine engine;
    BenchOs os;
    DomainId domain = 0;
    ResourceId resource = 0;
};

struct Ctx
{
    Ctx() : app(h.appCpu()), kernel(h.kernelCpu()) {}

    /** Touch every page for writing: all plaintext-dirty afterwards. */
    void
    dirtyAll()
    {
        for (std::uint64_t i = 0; i < benchPages; ++i)
            app.store64(Harness::appVa + i * pageSize, ++scratch);
    }

    std::array<Gpa, benchPages>
    gpas() const
    {
        std::array<Gpa, benchPages> v{};
        for (std::uint64_t i = 0; i < benchPages; ++i)
            v[i] = Harness::gpa0 + i * pageSize;
        return v;
    }

    Harness h;
    vmm::Vcpu app;
    vmm::Vcpu kernel;
    std::uint64_t scratch = 0;
};

/**
 * Fixed warmup + fixed iterations, like bench_t1: deterministic
 * averages, independent of host speed.
 */
std::uint64_t
fixedCycles(const std::function<void(Ctx&)>& prep,
            const std::function<void(Ctx&)>& op)
{
    constexpr int warmup = 2;
    constexpr int iters = 4;
    Ctx ctx;
    for (int i = 0; i < warmup; ++i) {
        prep(ctx);
        op(ctx);
    }
    Cycles total = 0;
    for (int i = 0; i < iters; ++i) {
        prep(ctx);
        Cycles before = ctx.h.machine.cost().cycles();
        op(ctx);
        total += ctx.h.machine.cost().cycles() - before;
    }
    return total / iters;
}

void
runSimSection(bench::BenchReport& report)
{
    bench::header("Simulated cycles: batched vs per-page engine API");

    // Seal 32 dirty pages for the kernel: per-page faults vs one
    // prepareFramesForKernel hint. Contract: identical cycles.
    std::uint64_t seal_single = fixedCycles(
        [](Ctx& c) { c.dirtyAll(); },
        [](Ctx& c) {
            for (std::uint64_t i = 0; i < benchPages; ++i)
                c.kernel.load64(Harness::kernelVa + i * pageSize);
        });
    std::uint64_t seal_batch = fixedCycles(
        [](Ctx& c) { c.dirtyAll(); },
        [](Ctx& c) {
            auto gpas = c.gpas();
            c.h.vmm.prepareFramesForKernel(gpas);
            for (std::uint64_t i = 0; i < benchPages; ++i)
                c.kernel.load64(Harness::kernelVa + i * pageSize);
        });

    // Decrypt 32 sealed pages back into the app's view: one
    // decryptPages batch vs 32 single-item calls. Contract: identical.
    auto seal_all = [](Ctx& c) {
        c.dirtyAll();
        auto gpas = c.gpas();
        c.h.vmm.prepareFramesForKernel(gpas);
    };
    auto build_items = [](Ctx& c, cloak::Resource*& res) {
        res = c.h.engine.metadata().lookup(c.h.resource).valueOr(nullptr);
        osh_assert(res != nullptr, "bench resource exists");
        std::array<cloak::PageCryptoItem, benchPages> items{};
        for (std::uint64_t i = 0; i < benchPages; ++i) {
            items[i].pageIndex = i;
            items[i].meta = &c.h.engine.metadata().page(*res, i);
            items[i].gpa = Harness::gpa0 + i * pageSize;
        }
        return items;
    };
    std::uint64_t decrypt_single = fixedCycles(seal_all, [&](Ctx& c) {
        cloak::Resource* res = nullptr;
        auto items = build_items(c, res);
        for (std::uint64_t i = 0; i < benchPages; ++i)
            c.h.engine.decryptPages(
                *res, std::span<const cloak::PageCryptoItem>(
                          &items[i], 1));
    });
    std::uint64_t decrypt_batch = fixedCycles(seal_all, [&](Ctx& c) {
        cloak::Resource* res = nullptr;
        auto items = build_items(c, res);
        c.h.engine.decryptPages(*res, items);
    });

    std::printf("  seal %llu dirty pages:    per-page faults %llu "
                "cycles, batched hint %llu cycles\n",
                static_cast<unsigned long long>(benchPages),
                static_cast<unsigned long long>(seal_single),
                static_cast<unsigned long long>(seal_batch));
    std::printf("  decrypt %llu pages:       single-item calls %llu "
                "cycles, one batch %llu cycles\n",
                static_cast<unsigned long long>(benchPages),
                static_cast<unsigned long long>(decrypt_single),
                static_cast<unsigned long long>(decrypt_batch));

    // The batch API's documented contract. A divergence here is a bug,
    // not a tuning choice — fail loudly before the JSON is compared.
    osh_assert(seal_single == seal_batch,
               "batched seal must charge identical simulated cycles");
    osh_assert(decrypt_single == decrypt_batch,
               "batched decrypt must charge identical simulated cycles");

    report.set("seal_single_32.sim_cycles", seal_single);
    report.set("seal_batch_32.sim_cycles", seal_batch);
    report.set("decrypt_single_32.sim_cycles", decrypt_single);
    report.set("decrypt_batch_32.sim_cycles", decrypt_batch);
}

// ---------------------------------------------------------------------------
// Section 3: host wall-time, crypto worker-pool sweep
// ---------------------------------------------------------------------------

constexpr std::uint64_t sweepPages = 64;

/** Measured host time for one worker count, plus a determinism seal. */
struct SweepResult
{
    std::uint64_t encNsPerBatch = 0;
    std::uint64_t decNsPerBatch = 0;
    crypto::Digest digest{};  ///< Frames + metadata + cycles at the end.
    Cycles simCycles = 0;
};

/**
 * Run `iters` encrypt-batch/decrypt-batch round trips over a fresh
 * 64-page harness with `workers` crypto lanes, timing only the
 * engine batch calls (dirtying and item building are untimed prep).
 * Because every harness starts from the same seed and performs the
 * same operation sequence, the final frames, metadata and simulated
 * cycles must be identical for every worker count — the digest pins
 * that.
 */
SweepResult
runSweepOnce(unsigned workers, int iters)
{
    Harness h(sweepPages);
    h.engine.setCryptoWorkers(workers);
    auto app = h.appCpu();
    std::uint64_t scratch = 0;

    cloak::Resource* res =
        h.engine.metadata().lookup(h.resource).valueOr(nullptr);
    osh_assert(res != nullptr, "sweep resource exists");

    std::vector<cloak::PageCryptoItem> items(sweepPages);
    auto build_items = [&] {
        for (std::uint64_t i = 0; i < sweepPages; ++i) {
            items[i].pageIndex = i;
            items[i].meta = &h.engine.metadata().page(*res, i);
            items[i].gpa = Harness::gpa0 + i * pageSize;
        }
    };

    SweepResult r;
    for (int it = 0; it < iters + 1; ++it) {
        // Untimed prep: dirty every page through the app's view.
        for (std::uint64_t i = 0; i < sweepPages; ++i)
            app.store64(Harness::appVa + i * pageSize, ++scratch);

        build_items();
        std::uint64_t t0 = bench::hostNowNs();
        h.engine.encryptPages(*res, items);
        std::uint64_t enc = bench::hostNowNs() - t0;

        build_items();
        t0 = bench::hostNowNs();
        h.engine.decryptPages(*res, items);
        std::uint64_t dec = bench::hostNowNs() - t0;

        if (it > 0) {  // first round trip is warmup
            r.encNsPerBatch += enc;
            r.decNsPerBatch += dec;
        }
    }
    r.encNsPerBatch /= static_cast<std::uint64_t>(iters);
    r.decNsPerBatch /= static_cast<std::uint64_t>(iters);

    crypto::Sha256 seal;
    for (std::uint64_t i = 0; i < sweepPages; ++i) {
        auto frame = h.machine.memory().framePlain(
            h.vmm.pmap().translate(Harness::gpa0 + i * pageSize));
        seal.update(frame);
        const cloak::PageMeta& meta =
            h.engine.metadata().page(*res, i);
        seal.update(meta.iv);
        seal.update(meta.hash);
        std::uint8_t tail[9];
        std::memcpy(tail, &meta.version, 8);
        tail[8] = static_cast<std::uint8_t>(meta.state);
        seal.update(tail);
    }
    r.simCycles = h.machine.cost().cycles();
    std::uint8_t cyc[8];
    std::memcpy(cyc, &r.simCycles, sizeof(cyc));
    seal.update(cyc);
    r.digest = seal.final();
    return r;
}

void
runSweepSection(bench::BenchReport& report,
                const std::vector<unsigned>& threads, bool quick)
{
    const int iters = quick ? 2 : 8;
    constexpr std::uint64_t batchBytes = sweepPages * pageSize;

    bench::header("Host wall-time: page-crypto worker sweep "
                  "(64-page batch)");
    std::printf("  host reports %u hardware thread(s); results are "
                "informational, never gated\n",
                WorkerPool::hardwareWorkers());
    std::printf("  %-8s %-26s %-26s\n", "workers",
                "encrypt batch", "decrypt batch");

    SweepResult base{};
    for (std::size_t t = 0; t < threads.size(); ++t) {
        unsigned w = threads[t];
        SweepResult r = runSweepOnce(w, iters);
        if (t == 0)
            base = r;

        // Same seed + same ops must mean bit-identical output and
        // simulated cost at every worker count. This is the bench-side
        // restatement of the determinism tests; a divergence here is a
        // bug in the pool merge, not noise.
        osh_assert(r.simCycles == base.simCycles,
                   "worker sweep: simulated cycles diverged at w=%u", w);
        osh_assert(r.digest == base.digest,
                   "worker sweep: frame/metadata digest diverged at "
                   "w=%u", w);

        std::uint64_t enc_mb = bench::mbPerSec(batchBytes,
                                               r.encNsPerBatch);
        std::uint64_t dec_mb = bench::mbPerSec(batchBytes,
                                               r.decNsPerBatch);
        std::uint64_t enc_x100 =
            r.encNsPerBatch == 0
                ? 0 : base.encNsPerBatch * 100 / r.encNsPerBatch;
        std::uint64_t dec_x100 =
            r.decNsPerBatch == 0
                ? 0 : base.decNsPerBatch * 100 / r.decNsPerBatch;
        std::printf("  %-8u %8llu ns %6llu MB/s   %8llu ns %6llu MB/s"
                    "   (%llu.%02llux / %llu.%02llux)\n", w,
                    static_cast<unsigned long long>(r.encNsPerBatch),
                    static_cast<unsigned long long>(enc_mb),
                    static_cast<unsigned long long>(r.decNsPerBatch),
                    static_cast<unsigned long long>(dec_mb),
                    static_cast<unsigned long long>(enc_x100 / 100),
                    static_cast<unsigned long long>(enc_x100 % 100),
                    static_cast<unsigned long long>(dec_x100 / 100),
                    static_cast<unsigned long long>(dec_x100 % 100));

        std::string k = "par.encrypt_64.w" + std::to_string(w);
        report.setHost(k + ".ns", r.encNsPerBatch);
        report.setHost(k + ".mb_s", enc_mb);
        report.setHost(k + ".speedup_x100", enc_x100);
        k = "par.decrypt_64.w" + std::to_string(w);
        report.setHost(k + ".ns", r.decNsPerBatch);
        report.setHost(k + ".mb_s", dec_mb);
        report.setHost(k + ".speedup_x100", dec_x100);
    }
}

/** Parse "1,2,4,8" into worker counts; exits on malformed input. */
std::vector<unsigned>
parseThreadList(const char* arg)
{
    std::vector<unsigned> out;
    const char* p = arg;
    while (*p != '\0') {
        char* end = nullptr;
        unsigned long v = std::strtoul(p, &end, 10);
        if (end == p || v == 0 || v > 256 ||
            (*end != ',' && *end != '\0')) {
            std::fprintf(stderr,
                         "bad --threads list '%s' (want e.g. 1,2,4,8)\n",
                         arg);
            std::exit(1);
        }
        out.push_back(static_cast<unsigned>(v));
        p = *end == ',' ? end + 1 : end;
    }
    if (out.empty()) {
        std::fprintf(stderr, "--threads list is empty\n");
        std::exit(1);
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    std::vector<unsigned> threads = {1, 2, 4, 8};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threads = parseThreadList(argv[i] + 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--threads=1,2,4,8]\n",
                         argv[0]);
            return 1;
        }
    }

    osh::bench::BenchReport report("crypto");
    runHostSection(report, quick);
    runSweepSection(report, threads, quick);
    runSimSection(report);
    report.write();
    return 0;
}
