/**
 * @file
 * Figure F3 — process-creation-heavy "build" workload.
 *
 * Reproduces the paper's worst case: a parallel-compilation-style
 * driver that spawns one process per task. Under Overshadow every
 * spawn pays domain setup, shim initialization and eager encryption of
 * the parent's cloaked pages, so the slowdown here is the largest of
 * any workload — a several-fold factor, matching the paper's
 * fork/exec-heavy results.
 */

#include "bench_common.hh"

int
main()
{
    using namespace osh;
    bench::header("Figure F3: build workload (spawn-per-task)");

    std::printf("%-8s %14s %14s %10s\n", "tasks", "native(cyc)",
                "cloaked(cyc)", "slowdown");
    for (std::uint64_t tasks : {1, 2, 4, 8, 16}) {
        std::vector<std::string> argv = {std::to_string(tasks), "16"};
        Cycles n = bench::runCycles(false, "wl.build", argv, 8192);
        Cycles c = bench::runCycles(true, "wl.build", argv, 8192);
        std::printf("%-8llu %14llu %14llu %9.2fx\n",
                    static_cast<unsigned long long>(tasks),
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(c),
                    static_cast<double>(c) / static_cast<double>(n));
    }
    std::printf("\n(paper shape: the process-creation path is "
                "Overshadow's most expensive)\n");
    return 0;
}
