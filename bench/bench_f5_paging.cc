/**
 * @file
 * Figure F5 — memory pressure: runtime vs resident fraction.
 *
 * Reproduces the paper's paging experiment: a fixed working set cycled
 * repeatedly while guest RAM shrinks, so the kernel pages cloaked
 * memory in and out. Every page-out forces an encryption and every
 * page-in a decryption+verification, so Overshadow's overhead grows
 * with paging traffic while the native baseline pays only disk costs.
 */

#include "bench_common.hh"

int
main()
{
    using namespace osh;
    bench::header("Figure F5: paging pressure (working set 256 pages, "
                  "3 passes)");

    const std::vector<std::string> argv = {"256", "3", "1"};
    std::printf("%-14s %14s %10s %14s %10s %8s\n", "guest frames",
                "native(cyc)", "swaps", "cloaked(cyc)", "swaps",
                "ratio");
    for (std::uint64_t frames : {384u, 272u, 256u, 240u, 224u, 208u}) {
        auto nat = bench::makeSystem(false, frames);
        auto nr = nat->runProgram("wl.memstress", argv);
        if (nr.status != 0)
            osh_fatal("memstress failed: %s", nr.killReason.c_str());
        Cycles n = nat->cycles();
        std::uint64_t nswaps = nat->kernel().stats().value("swap_ins");
        bench::reportPhase(*nat,
                           "f5_native_" + std::to_string(frames));

        auto sys = bench::makeSystem(true, frames);
        auto r = sys->runProgram("wl.memstress", argv);
        if (r.status != 0)
            osh_fatal("memstress failed: %s", r.killReason.c_str());
        Cycles c = sys->cycles();
        std::uint64_t swaps = sys->kernel().stats().value("swap_ins");
        bench::reportPhase(*sys,
                           "f5_cloaked_" + std::to_string(frames));

        std::printf("%-14llu %14llu %10llu %14llu %10llu %7.2fx\n",
                    static_cast<unsigned long long>(frames),
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(nswaps),
                    static_cast<unsigned long long>(c),
                    static_cast<unsigned long long>(swaps),
                    static_cast<double>(c) / static_cast<double>(n));
    }
    std::printf("\n(paper shape: overhead grows as the resident "
                "fraction shrinks — every swap adds crypto)\n");
    return 0;
}
