/**
 * @file
 * Figure F5 — memory pressure: runtime vs resident fraction.
 *
 * Reproduces the paper's paging experiment: a fixed working set cycled
 * repeatedly while guest RAM shrinks, so the kernel pages cloaked
 * memory in and out. Every page-out forces an encryption and every
 * page-in a decryption+verification, so Overshadow's overhead grows
 * with paging traffic while the native baseline pays only disk costs.
 *
 * On top of the paper's series this bench runs the same cloaked sweep
 * with the asynchronous eviction pipeline at depth 4 (async4): the
 * seal + swap-slot write ride the background lane and the kernel pays
 * only the enqueue cost, so the cloaked/native ratio collapses toward
 * the stall-bounded floor. All three series land in BENCH_f5.json for
 * the perf-regression harness (bench/compare.py).
 */

#include "bench_common.hh"

namespace
{

/** One memstress run; returns (total cycles, swap-ins). */
struct RunResult
{
    osh::Cycles cycles = 0;
    std::uint64_t swapIns = 0;
};

RunResult
runOne(osh::bench::BenchReport& report, std::uint64_t frames,
       bool cloaked, std::size_t async_depth, const char* tag,
       bool hardened = false)
{
    using namespace osh;
    const std::vector<std::string> argv = {"256", "3", "1"};
    bench::BenchOptions opt;
    opt.cloaked = cloaked;
    opt.frames = frames;
    opt.asyncEvictDepth = async_depth;
    opt.timingHardened = hardened;
    auto sys = bench::makeSystem(opt);
    auto r = sys->runProgram("wl.memstress", argv);
    if (r.status != 0)
        osh_fatal("memstress failed: %s", r.killReason.c_str());

    RunResult res;
    res.cycles = sys->cycles();
    res.swapIns = sys->kernel().stats().value("swap_ins");

    std::string prefix =
        "frames_" + std::to_string(frames) + "." + tag;
    report.set(prefix + ".cycles", res.cycles);
    report.set(prefix + ".swap_ins", res.swapIns);
    if (cloaked && async_depth > 0) {
        const StatGroup& cs = sys->cloak()->stats();
        report.set(prefix + ".async_evictions",
                   cs.value("async_evictions"));
        report.set(prefix + ".async_evict_commits",
                   cs.value("async_evict_commits"));
        report.set(prefix + ".async_evict_stalls",
                   cs.value("async_evict_stalls"));
    }
    bench::reportPhase(*sys, "f5_" + std::string(tag) + "_" +
                                 std::to_string(frames));
    return res;
}

} // namespace

int
main()
{
    using namespace osh;
    bench::header("Figure F5: paging pressure (working set 256 pages, "
                  "3 passes)");

    bench::BenchReport report("f5");
    std::printf("%-12s %14s %8s %14s %8s %7s %14s %8s %7s %14s %7s\n",
                "guest frames", "native(cyc)", "swaps", "cloaked(cyc)",
                "swaps", "ratio", "async4(cyc)", "swaps", "ratio",
                "hardened(cyc)", "ratio");
    for (std::uint64_t frames : {384u, 272u, 256u, 240u, 224u, 208u}) {
        RunResult nat = runOne(report, frames, false, 0, "native");
        RunResult sync = runOne(report, frames, true, 0, "cloaked");
        RunResult async4 = runOne(report, frames, true, 4, "async4");
        // Timing-hardened cloaked run (virtualized clock +
        // constant-cost responses): the cost of closing the paging
        // timing oracles, measured against the same paging pressure.
        RunResult hard = runOne(report, frames, true, 0, "hardened",
                                /*hardened=*/true);

        std::printf(
            "%-12llu %14llu %8llu %14llu %8llu %6.2fx %14llu %8llu "
            "%6.2fx %14llu %6.2fx\n",
            static_cast<unsigned long long>(frames),
            static_cast<unsigned long long>(nat.cycles),
            static_cast<unsigned long long>(nat.swapIns),
            static_cast<unsigned long long>(sync.cycles),
            static_cast<unsigned long long>(sync.swapIns),
            static_cast<double>(sync.cycles) /
                static_cast<double>(nat.cycles),
            static_cast<unsigned long long>(async4.cycles),
            static_cast<unsigned long long>(async4.swapIns),
            static_cast<double>(async4.cycles) /
                static_cast<double>(nat.cycles),
            static_cast<unsigned long long>(hard.cycles),
            static_cast<double>(hard.cycles) /
                static_cast<double>(nat.cycles));
    }
    std::printf("\n(paper shape: overhead grows as the resident "
                "fraction shrinks — every swap adds crypto; the async4 "
                "series defers the seal + swap write off the critical "
                "path; the hardened series prices the constant-cost "
                "timing defenses of docs/threat-model.md)\n");
    report.write();
    return 0;
}
