/**
 * @file
 * Migration costs: checkpoint/restore and live pre-copy of cloaked
 * victims.
 *
 * For each migration-capable victim (compute, paging) this bench
 * measures, in deterministic simulated cycles:
 *
 *   - cold migration: the victim is frozen once, a full checkpoint
 *     image is cut, and a fresh machine restores it — downtime is the
 *     whole capture + restore;
 *   - live migration: pre-copy rounds stream dirty pages while the
 *     victim runs, then a bounded stop-and-copy — downtime is only the
 *     final capture + restore, bought with extra bytes on the wire.
 *
 * Every migrated run is checked against an unmigrated reference run of
 * the same seed (exit status and result checksum must match), so the
 * numbers only ever describe *successful* migrations. Writes
 * BENCH_migrate.json; bench/compare.py gates the *_cycles metrics
 * (downtime and end-to-end totals) against the committed baseline.
 */

#include "bench_common.hh"
#include "migrate/checkpoint.hh"
#include "migrate/live.hh"

#include <cstdio>
#include <string>

namespace
{

using namespace osh;

constexpr std::uint64_t benchSeed = 42;
constexpr std::uint64_t freezeEntries = 12;

system::SystemConfig
victimConfig(const std::string& workload)
{
    // Mirror the attack campaign's sizing: the paging victim must
    // thrash, so it gets fewer frames than its arena.
    bool paging = workload == "wl.victim.paging";
    return system::SystemConfig::Builder{}
        .seed(benchSeed)
        .guestFrames(paging ? 96 : 512)
        .cloaking(true)
        .build();
}

struct RunRef
{
    int status = 0;
    std::string checksum;
    Cycles cycles = 0;
};

RunRef
referenceRun(const std::string& workload)
{
    system::System sys(victimConfig(workload));
    workloads::registerAll(sys);
    system::ExitResult r = sys.runProgram(workload);
    if (r.status != 0)
        osh_fatal("bench reference run failed: %s status=%d",
                  workload.c_str(), r.status);
    return {r.status, workloads::resultOf(sys, workload), sys.cycles()};
}

void
checkMigrated(system::System& dst, Pid pid, const std::string& workload,
              const RunRef& ref)
{
    dst.run();
    const system::ExitResult* r = dst.resultOf(pid);
    if (r == nullptr || r->status != ref.status ||
        workloads::resultOf(dst, workload) != ref.checksum)
        osh_fatal("bench migration diverged from reference: %s",
                  workload.c_str());
}

void
abandonSource(system::System& src, Pid pid)
{
    os::Process* proc = src.kernel().findProcess(pid);
    if (proc != nullptr) {
        proc->killRequested = true;
        proc->killReason = "migrated away";
        src.kernel().thaw(pid);
    }
    src.run();
}

void
benchCold(const std::string& workload, const RunRef& ref,
          bench::BenchReport& report, const std::string& key)
{
    system::System src(victimConfig(workload));
    workloads::registerAll(src);
    system::System dst(victimConfig(workload));
    workloads::registerAll(dst);

    Pid pid = src.launch(workload);
    src.kernel().requestFreeze(pid, freezeEntries);
    src.run();
    if (!src.kernel().isFrozen(pid))
        osh_fatal("bench victim finished before the freeze: %s",
                  workload.c_str());

    migrate::CheckpointOptions copts;
    copts.nonce = benchSeed ^ 0x6d19;
    Cycles ckpt_start = src.cycles();
    auto ckpt = migrate::checkpoint(src, pid, copts);
    if (!ckpt.ok())
        osh_fatal("bench checkpoint refused: %s",
                  migrate::migrateErrorName(ckpt.error()));
    Cycles ckpt_cycles = src.cycles() - ckpt_start;

    Cycles restore_start = dst.cycles();
    auto restored = migrate::restore(dst, (*ckpt).image, (*ckpt).ticket);
    if (!restored.ok())
        osh_fatal("bench restore refused: %s",
                  migrate::migrateErrorName(restored.error()));
    Cycles restore_cycles = dst.cycles() - restore_start;

    abandonSource(src, pid);
    checkMigrated(dst, (*restored).pid, workload, ref);

    std::printf("  %-18s cold  image=%8zu B  pages=%4llu  "
                "downtime=%9llu cycles  total=%9llu cycles\n",
                workload.c_str(), (*ckpt).image.size(),
                static_cast<unsigned long long>((*ckpt).pagesCaptured),
                static_cast<unsigned long long>(ckpt_cycles +
                                                restore_cycles),
                static_cast<unsigned long long>(dst.cycles()));

    report.set(key + ".image_bytes", (*ckpt).image.size());
    report.set(key + ".pages", (*ckpt).pagesCaptured);
    report.set(key + ".downtime_cycles", ckpt_cycles + restore_cycles);
    report.set(key + ".target_total_cycles", dst.cycles());
}

void
benchLive(const std::string& workload, const RunRef& ref,
          bench::BenchReport& report, const std::string& key)
{
    system::System src(victimConfig(workload));
    workloads::registerAll(src);
    system::System dst(victimConfig(workload));
    workloads::registerAll(dst);

    Pid pid = src.launch(workload);
    migrate::LiveOptions lopts;
    lopts.nonce = benchSeed ^ 0x11fe;
    lopts.entriesPerRound = freezeEntries;
    auto live = migrate::migrateLive(src, pid, dst, lopts);
    if (!live.ok())
        osh_fatal("bench live migration failed: %s",
                  migrate::migrateErrorName(live.error()));
    checkMigrated(dst, (*live).targetPid, workload, ref);

    std::printf("  %-18s live  rounds=%llu  precopy=%4llu  "
                "stopcopy=%4llu  bytes=%8llu  downtime=%9llu cycles\n",
                workload.c_str(),
                static_cast<unsigned long long>((*live).rounds),
                static_cast<unsigned long long>((*live).precopyPages),
                static_cast<unsigned long long>((*live).stopCopyPages),
                static_cast<unsigned long long>((*live).bytesStreamed),
                static_cast<unsigned long long>((*live).downtimeCycles));

    report.set(key + ".rounds", (*live).rounds);
    report.set(key + ".precopy_pages", (*live).precopyPages);
    report.set(key + ".stopcopy_pages", (*live).stopCopyPages);
    report.set(key + ".bytes_streamed", (*live).bytesStreamed);
    report.set(key + ".downtime_cycles", (*live).downtimeCycles);
    report.set(key + ".target_total_cycles", dst.cycles());
}

} // namespace

int
main()
{
    bench::header("Migration: checkpoint/restore and live pre-copy "
                  "(simulated cycles)");

    bench::BenchReport report("migrate");
    std::uint64_t host_start = bench::hostNowNs();

    for (const char* name : {"wl.victim.compute", "wl.victim.paging"}) {
        std::string workload = name;
        RunRef ref = referenceRun(workload);
        std::string base = workload == "wl.victim.paging" ? "paging"
                                                          : "compute";
        std::printf("\n%s (unmigrated reference: %llu cycles)\n",
                    workload.c_str(),
                    static_cast<unsigned long long>(ref.cycles));
        report.set(base + ".reference_total_cycles", ref.cycles);
        benchCold(workload, ref, report, "cold." + base);
        benchLive(workload, ref, report, "live." + base);
    }

    report.setHost("bench_ns", bench::hostNowNs() - host_start);
    report.write();
    return 0;
}
