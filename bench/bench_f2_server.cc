/**
 * @file
 * Figure F2 — file-server throughput vs request size.
 *
 * Reproduces the paper's Apache-style figure: a request loop serving
 * ranges of a data file, swept over request sizes. Throughput is bytes
 * served per million simulated cycles. Overshadow's degradation is
 * largest for small requests (per-request trap/marshal overhead) and
 * shrinks as requests grow; serving from a protected file via the
 * shim's memory-mapped emulation amortizes crypto to once per page.
 *
 * The third series runs the same cloaked server with batched syscall
 * submission (depth 8): requests are enqueued on the submission ring
 * and dispatched in one secure control transfer per batch, so the
 * fixed per-trap cost — the reason small requests hurt — is amortized
 * across the batch.
 */

#include "bench_common.hh"

int
main()
{
    using namespace osh;
    bench::header("Figure F2: file server throughput vs request size");

    bench::BenchReport report("f2");

    const std::uint64_t file_kb = 256;
    const std::uint64_t total_kb = 65536; // bytes served per point
    const std::uint64_t batch_depth = 8;
    const std::uint64_t req_sizes[] = {1024, 4096, 16384, 65536,
                                       262144};

    std::printf("%-10s %14s %14s %14s %9s %9s\n", "req size",
                "native MB/Mc", "cloaked MB/Mc", "batched MB/Mc",
                "slowdown", "batched");
    for (std::uint64_t req : req_sizes) {
        std::uint64_t requests =
            std::max<std::uint64_t>(4, total_kb * 1024 / req);
        std::vector<std::string> argv = {
            std::to_string(file_kb), std::to_string(requests),
            std::to_string(req), "1"};
        std::vector<std::string> argv_batched = argv;
        argv_batched.push_back(std::to_string(batch_depth));
        double bytes = static_cast<double>(requests * req);

        Cycles n = bench::runCycles(false, "wl.fileserver", argv);
        Cycles c = bench::runCycles(true, "wl.fileserver", argv);
        Cycles b = bench::runCycles(true, "wl.fileserver",
                                    argv_batched);
        std::string key = "req_" + std::to_string(req);
        report.set("native." + key + ".cycles", n);
        report.set("cloaked." + key + ".cycles", c);
        report.set("batched." + key + ".cycles", b);

        double tn = bytes / (static_cast<double>(n) / 1e6) / 1e6;
        double tc = bytes / (static_cast<double>(c) / 1e6) / 1e6;
        double tb = bytes / (static_cast<double>(b) / 1e6) / 1e6;
        std::printf("%7lluB %14.2f %14.2f %14.2f %8.2fx %8.2fx\n",
                    static_cast<unsigned long long>(req), tn, tc, tb,
                    tn / tc, tn / tb);
    }
    std::printf("\n(slowdown = native/cloaked per-trap; batched = "
                "native/cloaked with depth-%llu\nsubmission rings — "
                "one secure control transfer per batch instead of "
                "per call)\n",
                static_cast<unsigned long long>(batch_depth));

    report.write();
    return 0;
}
