/**
 * @file
 * Figure F2 — file-server throughput vs request size.
 *
 * Reproduces the paper's Apache-style figure: a request loop serving
 * ranges of a data file, swept over request sizes. Throughput is bytes
 * served per million simulated cycles. Overshadow's degradation is
 * largest for small requests (per-request trap/marshal overhead) and
 * shrinks as requests grow; serving from a protected file via the
 * shim's memory-mapped emulation amortizes crypto to once per page.
 */

#include "bench_common.hh"

int
main()
{
    using namespace osh;
    bench::header("Figure F2: file server throughput vs request size");

    const std::uint64_t file_kb = 256;
    const std::uint64_t total_kb = 65536; // bytes served per point
    const std::uint64_t req_sizes[] = {1024, 4096, 16384, 65536,
                                       262144};

    std::printf("%-10s %16s %16s %10s\n", "req size",
                "native MB/Mcyc", "cloaked MB/Mcyc", "ratio");
    for (std::uint64_t req : req_sizes) {
        std::uint64_t requests =
            std::max<std::uint64_t>(4, total_kb * 1024 / req);
        std::vector<std::string> argv = {
            std::to_string(file_kb), std::to_string(requests),
            std::to_string(req), "1"};
        double bytes = static_cast<double>(requests * req);

        Cycles n = bench::runCycles(false, "wl.fileserver", argv);
        Cycles c = bench::runCycles(true, "wl.fileserver", argv);
        double tn = bytes / (static_cast<double>(n) / 1e6) / 1e6;
        double tc = bytes / (static_cast<double>(c) / 1e6) / 1e6;
        std::printf("%7lluB %16.2f %16.2f %9.2fx\n",
                    static_cast<unsigned long long>(req), tn, tc,
                    tn / tc);
    }
    std::printf("\n(ratio = native/cloaked; paper shape: worst for "
                "small requests, converging for large)\n");
    return 0;
}
