/**
 * @file
 * Demo: a hostile operating system versus Overshadow.
 *
 * Runs the same secret-holding application twice — once native, once
 * cloaked — under a kernel configured to (a) snoop application memory
 * on every trap, (b) record register files at syscall entry, and
 * (c) tamper with pages it swaps out. The output shows the paper's
 * claims side by side: natively everything leaks and corruption is
 * silent; cloaked, the kernel sees only ciphertext and tampering is
 * detected.
 */

#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <cstdio>
#include <cstring>

using namespace osh;
using os::Env;

namespace
{

constexpr std::uint64_t secret = 0x5ec2e7c0de5ec2e7ull;
constexpr GuestVA secretVa = os::stackTop - 512;

int
victimMain(Env& env)
{
    env.store64(secretVa, secret);
    env.regs().gpr[9] = secret; // secret also lives in a register
    for (int i = 0; i < 8; ++i)
        env.getpid(); // each trap lets the kernel snoop
    if (env.load64(secretVa) != secret)
        return 1;
    if (env.regs().gpr[9] != secret)
        return 2;
    return 0;
}

void
runScenario(bool cloaked)
{
    std::printf("\n--- %s run ---\n",
                cloaked ? "OVERSHADOW (cloaked)" : "NATIVE");
    system::System sys(
        system::SystemConfig::Builder{}.cloaking(cloaked).build());
    sys.kernel().malice().snoopUserMemory = true;
    sys.kernel().malice().snoopVa = secretVa;
    sys.kernel().malice().recordTrapFrames = true;

    sys.addProgram("victim", os::Program{victimMain, true, 64});
    auto r = sys.runProgram("victim");
    std::printf("victim exited: status=%d%s\n", r.status,
                r.killed ? " (killed)" : "");

    bool mem_leak = false;
    for (const auto& bytes : sys.kernel().malice().snoopedData) {
        std::uint64_t v;
        std::memcpy(&v, bytes.data(), 8);
        mem_leak |= v == secret;
    }
    bool reg_leak = false;
    for (const auto& f : sys.kernel().malice().trapFrames) {
        for (std::size_t i = 0; i < vmm::numGprs; ++i)
            reg_leak |= f.gpr[i] == secret;
    }
    std::printf("kernel snooped %zu memory samples: %s\n",
                sys.kernel().malice().snoopedData.size(),
                mem_leak ? "SECRET LEAKED" : "ciphertext only");
    std::printf("kernel recorded %zu trap frames:   %s\n",
                sys.kernel().malice().trapFrames.size(),
                reg_leak ? "SECRET LEAKED" : "registers scrubbed");
}

void
runTamperScenario(bool cloaked)
{
    std::printf("\n--- swap tampering, %s ---\n",
                cloaked ? "OVERSHADOW (cloaked)" : "NATIVE");
    auto cfg = system::SystemConfig::Builder{}
                   .cloaking(cloaked)
                   .guestFrames(96) // force paging of the 200-page set
                   .build();
    system::System sys(cfg);
    workloads::registerAll(sys);
    sys.kernel().malice().tamperSwap = true;

    auto r = sys.runProgram("wl.memstress", {"200", "2"});
    if (r.killed) {
        std::printf("application terminated: %s\n",
                    r.killReason.c_str());
        std::printf("=> tampering DETECTED before any corrupt data "
                    "was consumed\n");
    } else {
        std::printf("application completed \"successfully\" "
                    "(status %d)\n", r.status);
        std::printf("=> it silently computed with CORRUPTED data "
                    "(checksum %s)\n",
                    workloads::resultOf(sys, "wl.memstress").c_str());
    }
}

} // namespace

int
main()
{
    std::printf("Overshadow demo: running a secret-holding app under "
                "an actively hostile OS\n");
    runScenario(false);
    runScenario(true);
    runTamperScenario(false);
    runTamperScenario(true);
    std::printf("\ndone.\n");
    return 0;
}
