/**
 * @file
 * Quickstart: run one cloaked application end to end.
 *
 * A cloaked guest program writes a secret into protected memory, stores
 * it in a protected file and reads it back. Along the way the host
 * demonstrates the core Overshadow property: the same physical page
 * that the application sees as plaintext is ciphertext from the
 * kernel's point of view.
 */

#include "os/env.hh"
#include "system/system.hh"
#include "trace/export.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace osh;

int
main()
{
    // OSH_TRACE=1 records a timeline + metrics of the run (see
    // docs/tracing.md); it does not change the simulated cycle counts.
    trace::TraceConfig tc;
#if OSH_TRACE_ENABLED
    const char* trace_env = std::getenv("OSH_TRACE");
    tc.enabled = trace_env != nullptr && trace_env[0] != '\0' &&
                 trace_env[0] != '0';
#endif
    system::System sys(system::SystemConfig::Builder{}
                           .cloaking(true)
                           .trace(tc)
                           .build());

    const std::string secret = "attack at dawn";

    sys.addProgram("hello-secrets", os::Program{
        .main =
            [&secret](os::Env& env) {
                // Private (cloaked) working memory.
                GuestVA buf = env.allocPages(1);
                env.writeString(buf, secret);

                // Store the secret in a protected file; the shim turns
                // these read()/write() calls into memory-mapped access
                // so the kernel only ever sees ciphertext.
                env.mkdir("/cloaked");
                std::int64_t fd =
                    env.open("/cloaked/secret.txt",
                             os::openCreate | os::openRead |
                                 os::openWrite);
                if (fd < 0)
                    return 10;
                if (env.write(fd, buf, secret.size()) !=
                    static_cast<std::int64_t>(secret.size()))
                    return 11;

                // Read it back through the same protected path.
                env.lseek(fd, 0, os::seekSet);
                GuestVA out = env.allocPages(1);
                if (env.read(fd, out, secret.size()) !=
                    static_cast<std::int64_t>(secret.size()))
                    return 12;
                std::string back = env.readString(out);
                env.close(fd);
                return back == secret ? 0 : 13;
            },
        .cloaked = true,
    });

    system::ExitResult r = sys.runProgram("hello-secrets");
    std::printf("hello-secrets exited with status %d%s%s\n", r.status,
                r.killed ? " (killed: " : "",
                r.killed ? (r.killReason + ")").c_str() : "");
    std::printf("simulated cycles: %llu\n",
                static_cast<unsigned long long>(sys.cycles()));
    std::printf("cloak stats:\n%s", sys.cloak()->stats().dump().c_str());

    // Show what the kernel's "disk" holds for the protected file: it
    // must be ciphertext, not the secret.
    auto& vfs = sys.kernel().vfs();
    std::int64_t ino = vfs.lookup("/cloaked/secret.txt");
    if (ino > 0) {
        const auto& disk =
            vfs.inode(static_cast<os::InodeId>(ino)).diskData;
        std::string on_disk(reinterpret_cast<const char*>(disk.data()),
                            std::min<std::size_t>(disk.size(),
                                                  secret.size()));
        std::printf("on-disk bytes (kernel view): %s\n",
                    on_disk == secret ? "PLAINTEXT (BROKEN!)"
                                      : "ciphertext (as intended)");
    }

    if (sys.tracer().enabled()) {
        std::printf("%s", trace::metricsReport(sys.tracer().metrics(),
                                               "quickstart").c_str());
        if (trace::writeChromeJson(sys.tracer().buffer(),
                                   "quickstart.trace.json"))
            std::printf("[trace] wrote quickstart.trace.json\n");
    }
    return r.status;
}
