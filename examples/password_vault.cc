/**
 * @file
 * Example: a password vault built on protected files.
 *
 * The vault program stores name=secret records in a file under
 * /cloaked. The shim's memory-mapped I/O emulation keeps the records
 * plaintext only inside the vault's own protection domain: the page
 * cache, the disk image and anything the kernel can reach hold
 * ciphertext, and the sealed metadata binds the file to the vault's
 * identity — a different program (here, "snoop-tool") cannot even open
 * it. The vault runs three times (add, add, list) to show protection
 * persisting across process lifetimes.
 */

#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <cstdio>
#include <string>

using namespace osh;
using os::Env;

namespace
{

constexpr const char* vaultPath = "/cloaked/vault.db";

/** vault add <name> <secret> | vault list */
int
vaultMain(Env& env)
{
    const auto& args = env.args();
    if (args.empty())
        return 64;
    env.mkdir("/cloaked");

    if (args[0] == "add") {
        if (args.size() != 3)
            return 64;
        std::int64_t fd = env.open(vaultPath,
                                   os::openCreate | os::openRead |
                                       os::openWrite);
        if (fd < 0)
            return 1;
        env.lseek(fd, 0, os::seekEnd);
        env.writeAll(fd, args[1] + "=" + args[2] + "\n");
        env.close(fd);
        return 0;
    }

    if (args[0] == "list") {
        std::int64_t fd = env.open(vaultPath, os::openRead);
        if (fd < 0)
            return 2;
        std::string all = env.readSome(fd, 4096);
        env.close(fd);
        // "Print" by returning the number of records; the host shows
        // the plaintext the vault itself can see.
        int records = 0;
        for (char c : all)
            records += c == '\n';
        std::printf("  [vault] decrypted %d record(s):\n", records);
        std::printf("%s", ("    " + all).c_str());
        return records;
    }
    return 64;
}

int
snoopToolMain(Env& env)
{
    std::int64_t fd = env.open(vaultPath, os::openRead);
    if (fd == -os::errPerm) {
        std::printf("  [snoop-tool] open(%s) rejected: identity "
                    "mismatch on sealed metadata\n", vaultPath);
        return 0;
    }
    std::printf("  [snoop-tool] unexpectedly opened the vault!\n");
    return 1;
}

} // namespace

int
main()
{
    system::System sys(system::SystemConfig::Builder{}.build());
    sys.addProgram("vault", os::Program{vaultMain, true, 64});
    sys.addProgram("snoop-tool", os::Program{snoopToolMain, true, 64});

    std::printf("adding records (separate vault processes):\n");
    if (sys.runProgram("vault", {"add", "github", "hunter2"}).status != 0)
        return 1;
    if (sys.runProgram("vault", {"add", "bank", "tr0ub4dor&3"}).status !=
        0)
        return 1;

    std::printf("\nlisting from a third vault process:\n");
    auto r = sys.runProgram("vault", {"list"});
    std::printf("  vault saw %d records\n", r.status);

    std::printf("\nwhat the kernel/disk sees at rest:\n");
    std::string disk = workloads::readGuestFile(sys, vaultPath);
    bool leaked = disk.find("hunter2") != std::string::npos ||
                  disk.find("tr0ub4dor") != std::string::npos;
    std::printf("  %zu bytes on disk, plaintext visible: %s\n",
                disk.size(), leaked ? "YES (BROKEN!)" : "no");

    std::printf("\na different (cloaked) program tries to open the "
                "vault:\n");
    auto s = sys.runProgram("snoop-tool");
    if (s.status != 0)
        return 1;

    std::printf("\ncloak stats:\n%s",
                sys.cloak()->stats().dump().c_str());
    return leaked ? 1 : 0;
}
