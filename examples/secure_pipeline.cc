/**
 * @file
 * Example: a multi-process cloaked pipeline.
 *
 * A cloaked coordinator forks cloaked workers and farms out chunks of
 * a private data set over pipes. It demonstrates the pieces of
 * Overshadow that make multi-process applications work unmodified:
 * cloaked fork (the child inherits the parent's protected memory via
 * VMM-mediated resource cloning), marshalled pipe I/O through the
 * shim's bounce buffers, and waitpid/exit through the scrubbed trap
 * path. Note the paper's caveat, visible here too: bytes an
 * application *chooses* to push through an IPC channel cross the
 * kernel — Overshadow protects memory and files, not explicit
 * communication (the workers therefore send only digests, not raw
 * secrets).
 */

#include "os/env.hh"
#include "system/system.hh"

#include <cstdio>

using namespace osh;
using os::Env;

namespace
{

constexpr std::uint64_t chunkWords = 2048;
constexpr int numWorkers = 3;

std::uint64_t
mixWord(std::uint64_t v)
{
    v ^= 0x9e3779b97f4a7c15ull;
    v *= 0x100000001b3ull;
    return (v << 17) | (v >> 47);
}

int
coordinatorMain(Env& env)
{
    // Private data set in cloaked memory.
    const std::uint64_t words = chunkWords * numWorkers;
    GuestVA data = env.allocPages(roundUpToPage(words * 8) / pageSize);
    std::uint64_t seed = 0x600dda7a;
    for (std::uint64_t i = 0; i < words; ++i) {
        seed = seed * 6364136223846793005ull + 1;
        env.store64(data + i * 8, seed);
    }

    // Reference answer computed locally.
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < words; ++i)
        expect ^= mixWord(env.load64(data + i * 8));

    // Fan out: one pipe per worker; each child inherits the cloaked
    // data by fork and digests its chunk.
    std::uint64_t answer = 0;
    std::vector<Pid> kids;
    std::vector<int> read_fds;
    for (int w = 0; w < numWorkers; ++w) {
        int rfd = -1, wfd = -1;
        if (env.pipe(rfd, wfd) != 0)
            return 1;
        Pid pid = env.fork([w, wfd, data](Env& c) {
            GuestVA chunk = data + static_cast<std::uint64_t>(w) *
                                       chunkWords * 8;
            std::uint64_t digest = 0;
            for (std::uint64_t i = 0; i < chunkWords; ++i)
                digest ^= mixWord(c.load64(chunk + i * 8));
            // Send only the digest through the kernel.
            GuestVA out = c.allocPages(1);
            c.store64(out, digest);
            c.write(static_cast<std::uint64_t>(wfd), out, 8);
            c.close(static_cast<std::uint64_t>(wfd));
            return 0;
        });
        if (pid <= 0)
            return 2;
        env.close(static_cast<std::uint64_t>(wfd));
        kids.push_back(pid);
        read_fds.push_back(rfd);
    }

    GuestVA in = env.allocPages(1);
    for (int w = 0; w < numWorkers; ++w) {
        if (env.read(static_cast<std::uint64_t>(read_fds[w]), in, 8) !=
            8)
            return 3;
        answer ^= env.load64(in);
        env.close(static_cast<std::uint64_t>(read_fds[w]));
    }
    for (Pid pid : kids) {
        int status = -1;
        env.waitpid(pid, &status);
        if (status != 0)
            return 4;
    }
    return answer == expect ? 0 : 5;
}

} // namespace

int
main()
{
    system::System sys(system::SystemConfig::Builder{}.build());
    sys.addProgram("pipeline", os::Program{coordinatorMain, true, 64});

    auto r = sys.runProgram("pipeline");
    std::printf("pipeline: %s (status %d)%s%s\n",
                r.status == 0 ? "digests agree across cloaked fork"
                              : "FAILED",
                r.status, r.killed ? " killed: " : "",
                r.killed ? r.killReason.c_str() : "");
    std::printf("fork attaches: %llu, marshalled writes: %llu, "
                "cycles: %llu\n",
                static_cast<unsigned long long>(
                    sys.cloak()->stats().value("fork_attaches")),
                static_cast<unsigned long long>(
                    sys.cloak()->stats().value("shim_marshalled_writes")),
                static_cast<unsigned long long>(sys.cycles()));
    return r.status;
}
