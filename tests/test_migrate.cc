/**
 * @file
 * Checkpoint/restore and live-migration tests: image-format round
 * trips and refusals, canonical (byte-identical) serialization,
 * deterministic resume across machines, and the stream-replay defense.
 */

#include "migrate/checkpoint.hh"
#include "migrate/live.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace
{

using namespace osh;
using migrate::MigrateError;
using migrate::RecordType;

crypto::Digest
testKey(std::uint8_t fill)
{
    crypto::Digest key{};
    key.fill(fill);
    return key;
}

std::vector<std::uint8_t>
sampleImage(const crypto::Digest& key)
{
    migrate::ImageWriter writer(key);
    migrate::PayloadWriter a;
    a.u64(0x1122334455667788ull);
    a.str("hello");
    writer.append(RecordType::Manifest, a.view());
    migrate::PayloadWriter b;
    b.u32(7);
    writer.append(RecordType::Vma, b.view());
    return writer.finish();
}

system::SystemConfig
victimConfig(const std::string& workload, std::uint64_t seed)
{
    bool paging = workload == "wl.victim.paging";
    return system::SystemConfig::Builder{}
        .seed(seed)
        .guestFrames(paging ? 96 : 512)
        .cloaking(true)
        .build();
}

struct RunRef
{
    int status = 0;
    bool killed = false;
    std::string checksum;
};

RunRef
referenceRun(const std::string& workload, std::uint64_t seed)
{
    system::System sys(victimConfig(workload, seed));
    workloads::registerAll(sys);
    system::ExitResult r = sys.runProgram(workload);
    return {r.status, r.killed, workloads::resultOf(sys, workload)};
}

/** Launch + park the victim; asserts the freeze landed. */
Pid
launchFrozen(system::System& sys, const std::string& workload,
             std::uint64_t entries)
{
    Pid pid = sys.launch(workload);
    sys.kernel().requestFreeze(pid, entries);
    sys.run();
    EXPECT_TRUE(sys.kernel().isFrozen(pid));
    return pid;
}

void
abandonSource(system::System& sys, Pid pid)
{
    os::Process* proc = sys.kernel().findProcess(pid);
    ASSERT_NE(proc, nullptr);
    proc->killRequested = true;
    proc->killReason = "migrated away";
    sys.kernel().thaw(pid);
    sys.run();
}

// --- image format ---------------------------------------------------

TEST(MigrateImage, PayloadRoundTrip)
{
    migrate::PayloadWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.str("cloak");
    std::array<std::uint8_t, 4> blob = {1, 2, 3, 4};
    w.bytes(blob);

    migrate::PayloadReader r(w.view());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.str(), "cloak");
    std::array<std::uint8_t, 4> out{};
    r.bytes(out);
    EXPECT_EQ(out, blob);
    EXPECT_TRUE(r.done());

    // Reading past the end flips ok() instead of overrunning.
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(MigrateImage, ChainRoundTrip)
{
    const crypto::Digest key = testKey(0x5a);
    std::vector<std::uint8_t> image = sampleImage(key);

    migrate::ImageReader reader(key, image);
    auto first = reader.next();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ((*first).type, RecordType::Manifest);
    migrate::PayloadReader pr((*first).payload);
    EXPECT_EQ(pr.u64(), 0x1122334455667788ull);
    EXPECT_EQ(pr.str(), "hello");

    auto second = reader.next();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ((*second).type, RecordType::Vma);

    auto end = reader.next();
    ASSERT_TRUE(end.ok());
    EXPECT_EQ((*end).type, RecordType::End);
    EXPECT_TRUE(reader.atEnd());
}

TEST(MigrateImage, EveryFlippedByteIsRefused)
{
    const crypto::Digest key = testKey(0x5a);
    const std::vector<std::uint8_t> image = sampleImage(key);

    for (std::size_t i = 0; i < image.size(); ++i) {
        std::vector<std::uint8_t> bad = image;
        bad[i] ^= 0x40;
        migrate::ImageReader reader(key, bad);
        bool refused = false;
        while (true) {
            auto rec = reader.next();
            if (!rec.ok()) {
                refused = true;
                break;
            }
            if ((*rec).type == RecordType::End)
                break;
        }
        EXPECT_TRUE(refused) << "flipped byte " << i;
    }
}

TEST(MigrateImage, EveryTruncationIsRefused)
{
    const crypto::Digest key = testKey(0x5a);
    const std::vector<std::uint8_t> image = sampleImage(key);

    for (std::size_t len = 0; len < image.size(); ++len) {
        std::vector<std::uint8_t> cut(image.begin(),
                                      image.begin() + len);
        migrate::ImageReader reader(key, cut);
        bool refused = false;
        while (true) {
            auto rec = reader.next();
            if (!rec.ok()) {
                refused = true;
                break;
            }
            if ((*rec).type == RecordType::End)
                break;
        }
        EXPECT_TRUE(refused) << "truncated to " << len;
    }
}

TEST(MigrateImage, WrongKeyIsRefused)
{
    std::vector<std::uint8_t> image = sampleImage(testKey(0x5a));
    migrate::ImageReader reader(testKey(0x5b), image);
    auto rec = reader.next();
    ASSERT_FALSE(rec.ok());
    EXPECT_EQ(rec.error(), MigrateError::BadMac);
}

// --- pre-copy stream ------------------------------------------------

TEST(MigrateStream, RoundKeysDiffer)
{
    const crypto::Digest base = testKey(0x11);
    EXPECT_NE(migrate::streamRoundKey(base, 0),
              migrate::streamRoundKey(base, 1));
    EXPECT_EQ(migrate::streamRoundKey(base, 3),
              migrate::streamRoundKey(base, 3));
}

TEST(MigrateStream, ReplayedRoundIsRefusedAndStagesNothing)
{
    const crypto::Digest base = testKey(0x11);
    migrate::ImageWriter writer(migrate::streamRoundKey(base, 0));
    migrate::PayloadWriter p;
    p.u64(0x10000000);
    std::array<std::uint8_t, pageSize> page{};
    page.fill(0xcd);
    p.bytes(page);
    writer.append(RecordType::PageData, p.view());
    std::vector<std::uint8_t> segment = writer.finish();

    // Round 0's segment verifies under round 0's key...
    migrate::StagedPages staged;
    auto ok = migrate::applyStreamSegment(
        segment, migrate::streamRoundKey(base, 0), staged);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(*ok, 1u);
    EXPECT_EQ(staged.size(), 1u);

    // ...and is refused when replayed into any later round.
    migrate::StagedPages replay_staged;
    auto replay = migrate::applyStreamSegment(
        segment, migrate::streamRoundKey(base, 2), replay_staged);
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.error(), MigrateError::BadMac);
    EXPECT_TRUE(replay_staged.empty());
}

// --- checkpoint/restore ---------------------------------------------

TEST(MigrateCheckpoint, SerializationIsCanonical)
{
    system::System src(victimConfig("wl.victim.compute", 7));
    workloads::registerAll(src);
    Pid pid = launchFrozen(src, "wl.victim.compute", 16);

    migrate::CheckpointOptions copts;
    copts.nonce = 99;
    auto first = migrate::checkpoint(src, pid, copts);
    ASSERT_TRUE(first.ok());
    // A second checkpoint of the same quiesced state must produce
    // byte-identical output — the format has no hidden nondeterminism.
    auto second = migrate::checkpoint(src, pid, copts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ((*first).image, (*second).image);

    src.kernel().thaw(pid);
    src.run();
}

TEST(MigrateCheckpoint, RestoreThenRecheckpointIsByteIdentical)
{
    system::System src(victimConfig("wl.victim.compute", 7));
    workloads::registerAll(src);
    Pid pid = launchFrozen(src, "wl.victim.compute", 16);

    migrate::CheckpointOptions copts;
    copts.nonce = 99;
    auto ckpt = migrate::checkpoint(src, pid, copts);
    ASSERT_TRUE(ckpt.ok());

    // Restore on a fresh machine and re-checkpoint before the restored
    // victim runs: the image must survive the round trip bit-for-bit.
    system::System dst(victimConfig("wl.victim.compute", 7));
    workloads::registerAll(dst);
    auto restored = migrate::restore(dst, (*ckpt).image, (*ckpt).ticket);
    ASSERT_TRUE(restored.ok());
    auto again = migrate::checkpoint(dst, (*restored).pid, copts);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ((*ckpt).image, (*again).image);

    // Both copies still finish correctly (only the target is kept).
    abandonSource(src, pid);
    dst.run();
    const system::ExitResult* r = dst.resultOf((*restored).pid);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->status, 0);
}

TEST(MigrateCheckpoint, TamperedImageIsRefusedUntouched)
{
    system::System src(victimConfig("wl.victim.compute", 7));
    workloads::registerAll(src);
    Pid pid = launchFrozen(src, "wl.victim.compute", 16);

    auto ckpt = migrate::checkpoint(src, pid, {});
    ASSERT_TRUE(ckpt.ok());

    system::System dst(victimConfig("wl.victim.compute", 7));
    workloads::registerAll(dst);

    // A flipped byte mid-image and a truncation must both be refused
    // with a typed error, leaving the target machine untouched.
    std::vector<std::uint8_t> flipped = (*ckpt).image;
    flipped[flipped.size() / 2] ^= 0x01;
    auto r1 = migrate::restore(dst, flipped, (*ckpt).ticket);
    ASSERT_FALSE(r1.ok());

    std::vector<std::uint8_t> cut = (*ckpt).image;
    cut.resize(cut.size() - 1);
    auto r2 = migrate::restore(dst, cut, (*ckpt).ticket);
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error(), MigrateError::Truncated);

    // Wrong identity and image-version rollback are caught by the
    // out-of-band ticket.
    migrate::Ticket wrong_id = (*ckpt).ticket;
    wrong_id.identity[0] ^= 1;
    auto r3 = migrate::restore(dst, (*ckpt).image, wrong_id);
    ASSERT_FALSE(r3.ok());
    EXPECT_EQ(r3.error(), MigrateError::IdentityMismatch);

    migrate::Ticket newer = (*ckpt).ticket;
    newer.imageVersion += 1;
    auto r4 = migrate::restore(dst, (*ckpt).image, newer);
    ASSERT_FALSE(r4.ok());
    EXPECT_EQ(r4.error(), MigrateError::ImageRollback);

    EXPECT_TRUE(dst.results().empty());

    src.kernel().thaw(pid);
    src.run();
    const system::ExitResult* r = src.resultOf(pid);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->status, 0);
}

/** Cold round trip: the migrated victim must finish with the same
 *  status and checksum as an unmigrated run, for every seed. */
TEST(MigrateCheckpoint, ColdMigrationMatchesReference)
{
    for (const char* workload :
         {"wl.victim.compute", "wl.victim.paging"}) {
        for (std::uint64_t seed : {7ull, 42ull}) {
            RunRef ref = referenceRun(workload, seed);
            ASSERT_EQ(ref.status, 0) << workload;

            system::System src(victimConfig(workload, seed));
            workloads::registerAll(src);
            system::System dst(victimConfig(workload, seed));
            workloads::registerAll(dst);

            Pid pid = launchFrozen(src, workload, 16);
            migrate::CheckpointOptions copts;
            copts.nonce = seed ^ 0x6d19;
            auto ckpt = migrate::checkpoint(src, pid, copts);
            ASSERT_TRUE(ckpt.ok())
                << migrate::migrateErrorName(ckpt.error());
            auto restored =
                migrate::restore(dst, (*ckpt).image, (*ckpt).ticket);
            ASSERT_TRUE(restored.ok())
                << migrate::migrateErrorName(restored.error());
            abandonSource(src, pid);

            dst.run();
            const system::ExitResult* r = dst.resultOf((*restored).pid);
            ASSERT_NE(r, nullptr);
            EXPECT_EQ(r->status, ref.status)
                << workload << " seed " << seed;
            EXPECT_EQ(workloads::resultOf(dst, workload), ref.checksum)
                << workload << " seed " << seed;
        }
    }
}

// --- live migration -------------------------------------------------

TEST(MigrateLive, LiveMigrationMatchesReference)
{
    for (const char* workload :
         {"wl.victim.compute", "wl.victim.paging"}) {
        const std::uint64_t seed = 42;
        RunRef ref = referenceRun(workload, seed);
        ASSERT_EQ(ref.status, 0) << workload;

        system::System src(victimConfig(workload, seed));
        workloads::registerAll(src);
        system::System dst(victimConfig(workload, seed));
        workloads::registerAll(dst);

        Pid pid = src.launch(workload);
        migrate::LiveOptions lopts;
        lopts.nonce = seed ^ 0x11fe;
        lopts.entriesPerRound = 12;
        auto live = migrate::migrateLive(src, pid, dst, lopts);
        ASSERT_TRUE(live.ok())
            << migrate::migrateErrorName(live.error());
        EXPECT_GE((*live).rounds, 1u);
        EXPECT_GT((*live).stopCopyPages, 0u);

        // The source copy is dead; only the target finishes.
        dst.run();
        const system::ExitResult* r = dst.resultOf((*live).targetPid);
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->status, ref.status) << workload;
        EXPECT_EQ(workloads::resultOf(dst, workload), ref.checksum)
            << workload;
    }
}

TEST(MigrateLive, ReplayedStreamAbortsAndVictimSurvives)
{
    const std::uint64_t seed = 42;
    system::System src(victimConfig("wl.victim.compute", seed));
    workloads::registerAll(src);
    system::System dst(victimConfig("wl.victim.compute", seed));
    workloads::registerAll(dst);

    Pid pid = src.launch("wl.victim.compute");
    migrate::LiveOptions lopts;
    lopts.nonce = seed ^ 0x11fe;
    lopts.entriesPerRound = 12;
    std::vector<std::uint8_t> first;
    std::uint64_t replays = 0;
    lopts.interceptSegment = [&](std::uint64_t round,
                                 std::vector<std::uint8_t>& seg) {
        if (round == 0) {
            first = seg;
            return;
        }
        seg = first;
        ++replays;
    };
    auto live = migrate::migrateLive(src, pid, dst, lopts);
    ASSERT_FALSE(live.ok());
    EXPECT_EQ(live.error(), MigrateError::BadMac);
    EXPECT_GE(replays, 1u);

    // The aborted migration must leave the victim able to finish on
    // the source with a correct result.
    RunRef ref = referenceRun("wl.victim.compute", seed);
    src.run();
    const system::ExitResult* r = src.resultOf(pid);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->status, ref.status);
    EXPECT_EQ(workloads::resultOf(src, "wl.victim.compute"),
              ref.checksum);
}

} // namespace
