/**
 * @file
 * Unit tests for the tracing subsystem: the event ring, the latency
 * histograms and percentile math, the Chrome trace JSON exporter, and
 * the RAII trace scopes.
 */

#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace osh::trace
{
namespace
{

// ---------------------------------------------------------------------------
// TraceBuffer
// ---------------------------------------------------------------------------

TraceEvent
instantAt(Cycles t, std::uint64_t arg0 = 0)
{
    TraceEvent ev;
    ev.category = Category::User;
    ev.name = "ev";
    ev.begin = t;
    ev.end = t;
    ev.arg0 = arg0;
    return ev;
}

TEST(TraceBuffer, FillsWithoutWrap)
{
    TraceBuffer buf(8);
    EXPECT_EQ(buf.capacity(), 8u);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_FALSE(buf.wrapped());

    for (std::uint64_t i = 0; i < 5; ++i)
        buf.record(instantAt(i, i));

    EXPECT_EQ(buf.size(), 5u);
    EXPECT_EQ(buf.totalRecorded(), 5u);
    EXPECT_FALSE(buf.wrapped());

    auto events = buf.snapshot();
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(events[i].arg0, i);
}

TEST(TraceBuffer, WrapOverwritesOldestKeepsOrder)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 11; ++i)
        buf.record(instantAt(i, i));

    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.totalRecorded(), 11u);
    EXPECT_TRUE(buf.wrapped());

    // The live window is the last 4 events, oldest first.
    auto events = buf.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(events[i].arg0, 7 + i);
}

TEST(TraceBuffer, ExactCapacityBoundary)
{
    TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 4; ++i)
        buf.record(instantAt(i, i));
    // Exactly full: nothing overwritten yet.
    EXPECT_FALSE(buf.wrapped());
    auto events = buf.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().arg0, 0u);
    EXPECT_EQ(events.back().arg0, 3u);

    // One more wraps.
    buf.record(instantAt(4, 4));
    EXPECT_TRUE(buf.wrapped());
    events = buf.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().arg0, 1u);
    EXPECT_EQ(events.back().arg0, 4u);
}

TEST(TraceBuffer, ClearResets)
{
    TraceBuffer buf(4);
    for (int i = 0; i < 6; ++i)
        buf.record(instantAt(i));
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.totalRecorded(), 0u);
    EXPECT_FALSE(buf.wrapped());
    EXPECT_TRUE(buf.snapshot().empty());
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, EmptyIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(99), 0u);
}

TEST(LatencyHistogram, BucketRanges)
{
    // Bucket 0 holds zero; bucket i >= 1 holds [2^(i-1), 2^i - 1].
    EXPECT_EQ(LatencyHistogram::bucketLow(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(0), 0u);
    EXPECT_EQ(LatencyHistogram::bucketLow(1), 1u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(1), 1u);
    EXPECT_EQ(LatencyHistogram::bucketLow(2), 2u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(2), 3u);
    EXPECT_EQ(LatencyHistogram::bucketLow(10), 512u);
    EXPECT_EQ(LatencyHistogram::bucketHigh(10), 1023u);
}

TEST(LatencyHistogram, BasicStats)
{
    LatencyHistogram h;
    for (std::uint64_t v : {10u, 20u, 30u, 40u})
        h.record(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 100u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 40u);
    EXPECT_EQ(h.mean(), 25u);
}

TEST(LatencyHistogram, PercentilesOnUniformRange)
{
    // 1..100: the p-th percentile by nearest rank is exactly p, and the
    // log-bucketed estimate must land in the right octave. p50's rank-50
    // sample sits in bucket 6 ([32, 63]); interpolation keeps the
    // estimate inside that bucket.
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);

    std::uint64_t p50 = h.percentile(50);
    EXPECT_GE(p50, 32u);
    EXPECT_LE(p50, 63u);

    // p95 and p99 fall in bucket 7 ([64, 100 after clamping]).
    std::uint64_t p95 = h.percentile(95);
    EXPECT_GE(p95, 64u);
    EXPECT_LE(p95, 100u);

    std::uint64_t p99 = h.percentile(99);
    EXPECT_GE(p99, p95);
    EXPECT_LE(p99, 100u);

    // p0 and p100 hit the exact extremes via the [min, max] clamp.
    EXPECT_EQ(h.percentile(0), 1u);
    EXPECT_EQ(h.percentile(100), 100u);
}

TEST(LatencyHistogram, AllEqualSamplesCollapse)
{
    LatencyHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(42);
    // Every percentile of a constant distribution is that constant —
    // the [min, max] clamp enforces it despite octave-wide buckets.
    EXPECT_EQ(h.percentile(1), 42u);
    EXPECT_EQ(h.percentile(50), 42u);
    EXPECT_EQ(h.percentile(99), 42u);
    EXPECT_EQ(h.min(), 42u);
    EXPECT_EQ(h.max(), 42u);
}

TEST(LatencyHistogram, ZeroSamples)
{
    LatencyHistogram h;
    h.record(0);
    h.record(0);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(LatencyHistogram, SkewedTail)
{
    // 99 fast samples and one huge outlier: p50 stays in the fast
    // octave ([8, 15]), max reports the outlier.
    LatencyHistogram h;
    for (int i = 0; i < 99; ++i)
        h.record(8);
    h.record(1'000'000);
    EXPECT_GE(h.percentile(50), 8u);
    EXPECT_LE(h.percentile(50), 15u);
    EXPECT_EQ(h.max(), 1'000'000u);
    EXPECT_GE(h.percentile(100), 524'288u); // outlier's octave or above
}

TEST(LatencyHistogram, ResetClears)
{
    LatencyHistogram h;
    h.record(7);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(LatencyHistogram, SummaryMentionsAllFields)
{
    LatencyHistogram h;
    h.record(5);
    std::string s = h.summary();
    EXPECT_NE(s.find("count=1"), std::string::npos);
    EXPECT_NE(s.find("sum=5"), std::string::npos);
    EXPECT_NE(s.find("p50="), std::string::npos);
    EXPECT_NE(s.find("p95="), std::string::npos);
    EXPECT_NE(s.find("p99="), std::string::npos);
    EXPECT_NE(s.find("max=5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersAndHistogramsAreSeparate)
{
    MetricsRegistry reg;
    reg.counter(0, "x") += 3;
    reg.histogram(0, "x").record(9);

    EXPECT_EQ(reg.counterValue(0, "x"), 3u);
    const LatencyHistogram* h = reg.findHistogram(0, "x");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);

    // Lookup of absent names does not create anything.
    EXPECT_EQ(reg.counterValue(1, "x"), 0u);
    EXPECT_EQ(reg.findHistogram(0, "y"), nullptr);
    EXPECT_EQ(reg.counters().size(), 1u);
    EXPECT_EQ(reg.histograms().size(), 1u);
}

// ---------------------------------------------------------------------------
// Tracer + TraceScope (with a locally driven fake clock)
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing)
{
    TraceConfig cfg;
    cfg.enabled = false;
    Tracer tracer(cfg);
    Cycles clock = 0;
    tracer.bindClock(&clock);

    {
        OSH_TRACE_SCOPE(&tracer, Category::User, "span");
        clock += 100;
    }
    OSH_TRACE_INSTANT(&tracer, Category::User, "point");
    OSH_TRACE_COUNT(&tracer, Category::User, "counter");

    EXPECT_EQ(tracer.buffer().size(), 0u);
    EXPECT_TRUE(tracer.metrics().counters().empty());
    EXPECT_TRUE(tracer.metrics().histograms().empty());
}

TEST(Tracer, NullTracerPointerIsSafe)
{
    Tracer* none = nullptr;
    {
        OSH_TRACE_SCOPE(none, Category::User, "span");
    }
    OSH_TRACE_INSTANT(none, Category::User, "point");
    OSH_TRACE_COUNT(none, Category::User, "counter");
    SUCCEED();
}

TEST(Tracer, ScopeMeasuresSimulatedDuration)
{
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg);
    Cycles clock = 1000;
    tracer.bindClock(&clock);

    {
        TraceScope scope(&tracer, Category::Syscall, "getpid",
                         systemDomain, 7, 1, 2);
        clock += 250;
    }

    auto events = tracer.buffer().snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].begin, 1000u);
    EXPECT_EQ(events[0].end, 1250u);
    EXPECT_EQ(events[0].duration(), 250u);
    EXPECT_EQ(events[0].pid, 7);
    EXPECT_EQ(events[0].arg0, 1u);
    EXPECT_FALSE(events[0].isInstant());

    // The same span fed the latency histogram.
    const LatencyHistogram* h = tracer.metrics().findHistogram(
        static_cast<std::uint8_t>(Category::Syscall), "getpid");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 1u);
    EXPECT_EQ(h->sum(), 250u);
}

TEST(Tracer, ScopeRecordsDuringUnwind)
{
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg);
    Cycles clock = 0;
    tracer.bindClock(&clock);

    try {
        TraceScope scope(&tracer, Category::User, "throwing");
        clock += 33;
        throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
    }

    auto events = tracer.buffer().snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].duration(), 33u);
}

TEST(Tracer, NamedScopeSetArgs)
{
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg);
    Cycles clock = 0;
    tracer.bindClock(&clock);

    {
        TraceScope span(&tracer, Category::User, "late_args");
        span.setArgs(11, 22);
    }
    auto events = tracer.buffer().snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].arg0, 11u);
    EXPECT_EQ(events[0].arg1, 22u);
}

TEST(Tracer, InstantBumpsCounter)
{
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg);
    Cycles clock = 5;
    tracer.bindClock(&clock);

    tracer.instant(Category::Vmm, "guest_fault", 1, 2, 3);
    tracer.instant(Category::Vmm, "guest_fault", 1, 2, 4);
    tracer.count(Category::Vmm, "world_switches");
    tracer.count(Category::Vmm, "world_switches", 9);

    EXPECT_EQ(tracer.buffer().size(), 2u); // counts don't hit the ring
    EXPECT_EQ(tracer.metrics().counterValue(
                  static_cast<std::uint8_t>(Category::Vmm),
                  "guest_fault"),
              2u);
    EXPECT_EQ(tracer.metrics().counterValue(
                  static_cast<std::uint8_t>(Category::Vmm),
                  "world_switches"),
              10u);

    auto events = tracer.buffer().snapshot();
    EXPECT_TRUE(events[0].isInstant());
    EXPECT_EQ(events[0].begin, 5u);
}

#if OSH_TRACE_ENABLED
TEST(Tracer, MacrosRecordWhenCompiledIn)
{
    TraceConfig cfg;
    cfg.enabled = true;
    Tracer tracer(cfg);
    Cycles clock = 0;
    tracer.bindClock(&clock);

    {
        OSH_TRACE_SCOPE(&tracer, Category::User, "span");
        clock += 10;
        OSH_TRACE_SCOPE_NAMED(inner, &tracer, Category::User, "inner");
        inner.setArgs(1, 2);
    }
    OSH_TRACE_INSTANT(&tracer, Category::User, "point");
    OSH_TRACE_COUNT(&tracer, Category::User, "ticks", 4);

    EXPECT_EQ(tracer.buffer().size(), 3u);
    EXPECT_EQ(tracer.metrics().counterValue(
                  static_cast<std::uint8_t>(Category::User), "ticks"),
              4u);
}
#endif // OSH_TRACE_ENABLED

// ---------------------------------------------------------------------------
// Chrome trace JSON exporter
// ---------------------------------------------------------------------------

/**
 * Minimal structural JSON validator: checks balanced braces/brackets
 * outside strings, legal string escapes, and that the document is a
 * single object. Not a full parser, but catches the classes of breakage
 * an exporter can produce (unbalanced nesting, raw control characters,
 * trailing garbage).
 */
bool
structurallyValidJson(const std::string& s)
{
    std::vector<char> stack;
    bool in_string = false;
    bool escaped = false;
    bool saw_root = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (in_string) {
            if (escaped) {
                if (std::string("\"\\/bfnrtu").find(c) ==
                    std::string::npos)
                    return false;
                escaped = false;
            } else if (c == '\\') {
                escaped = true;
            } else if (c == '"') {
                in_string = false;
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false; // raw control character in a string
            }
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            if (stack.empty() && saw_root)
                return false; // trailing garbage after the root value
            stack.push_back(c);
            saw_root = true;
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !in_string && stack.empty() && saw_root && s.front() == '{';
}

TEST(ChromeJson, EmptyBufferIsValid)
{
    TraceBuffer buf(4);
    std::string json = toChromeJson(buf);
    EXPECT_TRUE(structurallyValidJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeJson, SpansAndInstants)
{
    TraceBuffer buf(8);

    TraceEvent span;
    span.category = Category::Syscall;
    span.name = "read";
    span.domain = 3;
    span.pid = 42;
    span.begin = 100;
    span.end = 600;
    span.arg0 = 11;
    span.arg1 = 22;
    buf.record(span);

    buf.record(instantAt(700));

    std::string json = toChromeJson(buf);
    EXPECT_TRUE(structurallyValidJson(json));

    // Complete event: ph "X" with ts/dur; lanes map domain->pid,
    // guest pid->tid.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":500"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":42"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"syscall\""), std::string::npos);

    // Instant event.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(ChromeJson, EscapesHostileNames)
{
    TraceBuffer buf(2);
    TraceEvent ev;
    ev.category = Category::User;
    ev.name = "quote\"back\\slash\nnewline\ttab";
    ev.begin = 1;
    ev.end = 2;
    buf.record(ev);

    std::string json = toChromeJson(buf);
    EXPECT_TRUE(structurallyValidJson(json));
    EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline\\ttab"),
              std::string::npos);
}

TEST(MetricsReportTest, ListsCountersAndHistograms)
{
    MetricsRegistry reg;
    reg.counter(static_cast<std::uint8_t>(Category::Vmm),
                "world_switches") = 12;
    auto& h = reg.histogram(static_cast<std::uint8_t>(Category::Syscall),
                            "getpid");
    h.record(100);
    h.record(200);

    std::string report = metricsReport(reg, "unit-test phase");
    EXPECT_NE(report.find("unit-test phase"), std::string::npos);
    EXPECT_NE(report.find("world_switches"), std::string::npos);
    EXPECT_NE(report.find("12"), std::string::npos);
    EXPECT_NE(report.find("getpid"), std::string::npos);
    EXPECT_NE(report.find("count=2"), std::string::npos);
}

} // namespace
} // namespace osh::trace
