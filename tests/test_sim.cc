/**
 * @file
 * Unit tests for the simulated machine: memory bounds/round trips,
 * cost-model accounting, machine configuration.
 */

#include "sim/machine.hh"

#include <gtest/gtest.h>

namespace osh::sim
{
namespace
{

TEST(MachineMemory, ReadWriteRoundTrip)
{
    MachineMemory mem(4);
    mem.write64(0x100, 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read64(0x100), 0xdeadbeefcafebabeull);
    mem.write8(0x0, 0x42);
    EXPECT_EQ(mem.read8(0x0), 0x42);
    mem.write16(0x10, 0x1234);
    EXPECT_EQ(mem.read16(0x10), 0x1234);
    mem.write32(0x20, 0xabcdef01);
    EXPECT_EQ(mem.read32(0x20), 0xabcdef01u);
}

TEST(MachineMemory, SpanReadWrite)
{
    MachineMemory mem(2);
    std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
    mem.write(100, data);
    std::vector<std::uint8_t> out(5);
    mem.read(100, out);
    EXPECT_EQ(out, data);
}

TEST(MachineMemory, CrossPageAccess)
{
    MachineMemory mem(2);
    std::vector<std::uint8_t> data(100, 0x5a);
    mem.write(pageSize - 50, data);
    std::vector<std::uint8_t> out(100);
    mem.read(pageSize - 50, out);
    EXPECT_EQ(out, data);
}

TEST(MachineMemoryDeath, OutOfRangePanics)
{
    MachineMemory mem(1);
    EXPECT_DEATH(mem.read8(pageSize), "out of range");
    EXPECT_DEATH(mem.write64(pageSize - 4, 0), "out of range");
}

TEST(MachineMemory, FrameViewAndZero)
{
    MachineMemory mem(2);
    auto frame = mem.framePlain(pageSize);
    EXPECT_EQ(frame.size(), pageSize);
    frame[0] = 0xff;
    frame[4095] = 0xee;
    EXPECT_EQ(mem.read8(pageSize), 0xff);
    EXPECT_EQ(mem.read8(2 * pageSize - 1), 0xee);
    mem.zeroFrame(pageSize);
    EXPECT_EQ(mem.read8(pageSize), 0);
    EXPECT_EQ(mem.read8(2 * pageSize - 1), 0);
}

TEST(MachineMemoryDeath, UnalignedFramePanics)
{
    MachineMemory mem(2);
    EXPECT_DEATH(mem.framePlain(0x10), "page aligned");
}

TEST(CostModel, ChargesAccumulate)
{
    CostModel cm;
    EXPECT_EQ(cm.cycles(), 0u);
    cm.charge(100);
    cm.charge(50, "vm_exit");
    EXPECT_EQ(cm.cycles(), 150u);
    EXPECT_EQ(cm.stats().value("vm_exit"), 1u);
    cm.resetCycles();
    EXPECT_EQ(cm.cycles(), 0u);
    // Stats survive a cycle reset.
    EXPECT_EQ(cm.stats().value("vm_exit"), 1u);
}

TEST(CostModel, ParamsOverridable)
{
    CostParams p;
    p.vmExit = 1000;
    CostModel cm(p);
    EXPECT_EQ(cm.params().vmExit, 1000u);
    cm.params().vmExit = 5;
    EXPECT_EQ(cm.params().vmExit, 5u);
}

TEST(Machine, ConfigApplied)
{
    MachineConfig cfg;
    cfg.numFrames = 128;
    cfg.seed = 99;
    cfg.costs.memAccess = 2;
    Machine m(cfg);
    EXPECT_EQ(m.memory().numFrames(), 128u);
    EXPECT_EQ(m.memory().sizeBytes(), 128 * pageSize);
    EXPECT_EQ(m.cost().params().memAccess, 2u);
    // Same seed gives the same rng stream as a raw Rng.
    Rng ref(99);
    EXPECT_EQ(m.rng().next64(), ref.next64());
}

TEST(Machine, DefaultsAreSane)
{
    Machine m;
    EXPECT_GT(m.memory().numFrames(), 0u);
    EXPECT_EQ(m.cost().cycles(), 0u);
}

} // namespace
} // namespace osh::sim
