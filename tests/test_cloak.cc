/**
 * @file
 * Full-system Overshadow integration tests: the security properties
 * (privacy and integrity against an actively malicious kernel), the
 * transparency property (identical results cloaked vs native), secure
 * control transfer, cloaked fork/exec, protected-file persistence and
 * paging of cloaked memory.
 */

#include "cloak/engine.hh"
#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

#include <cstring>

namespace osh
{
namespace
{

using os::Env;
using system::System;
using system::SystemConfig;

SystemConfig
cloakedConfig(std::uint64_t frames = 1024)
{
    SystemConfig cfg;
    cfg.cloakingEnabled = true;
    cfg.guestFrames = frames;
    cfg.preemptOpsPerTick = 0;
    return cfg;
}

SystemConfig
nativeConfig(std::uint64_t frames = 1024)
{
    SystemConfig cfg = cloakedConfig(frames);
    cfg.cloakingEnabled = false;
    return cfg;
}

constexpr std::uint64_t secretValue = 0x5ec23e7'0dadbeefull;

/** Secret at a fixed stack address so malice knobs can target it. */
constexpr GuestVA secretVa = os::stackTop - 256;

system::ExitResult
runCloaked(System& sys, std::function<int(Env&)> body,
           const std::string& name = "victim")
{
    sys.addProgram(name, os::Program{std::move(body), true, 64});
    return sys.runProgram(name);
}

TEST(CloakPrivacy, KernelSnoopSeesOnlyCiphertext)
{
    System sys(cloakedConfig());
    sys.kernel().malice().snoopUserMemory = true;
    sys.kernel().malice().snoopVa = secretVa;

    auto r = runCloaked(sys, [](Env& env) {
        env.store64(secretVa, secretValue);
        env.store64(secretVa + 8, secretValue ^ 1);
        // Generate kernel entries (each snoops).
        for (int i = 0; i < 10; ++i)
            env.getpid();
        return env.load64(secretVa) == secretValue ? 0 : 1;
    });
    EXPECT_EQ(r.status, 0);
    EXPECT_FALSE(r.killed);

    const auto& snoops = sys.kernel().malice().snoopedData;
    ASSERT_FALSE(snoops.empty());
    for (const auto& bytes : snoops) {
        std::uint64_t v0 = 0;
        std::memcpy(&v0, bytes.data(), 8);
        EXPECT_NE(v0, secretValue) << "kernel snooped plaintext";
    }
}

TEST(CloakPrivacy, NativeBaselineLeaks)
{
    // Sanity check of the attack itself: without Overshadow the same
    // snoop reads the secret in plaintext.
    System sys(nativeConfig());
    sys.kernel().malice().snoopUserMemory = true;
    sys.kernel().malice().snoopVa = secretVa;

    runCloaked(sys, [](Env& env) {
        env.store64(secretVa, secretValue);
        for (int i = 0; i < 5; ++i)
            env.getpid();
        return 0;
    });
    const auto& snoops = sys.kernel().malice().snoopedData;
    ASSERT_FALSE(snoops.empty());
    bool leaked = false;
    for (const auto& bytes : snoops) {
        std::uint64_t v0 = 0;
        std::memcpy(&v0, bytes.data(), 8);
        leaked |= v0 == secretValue;
    }
    EXPECT_TRUE(leaked);
}

TEST(CloakIntegrity, KernelScribbleDetected)
{
    System sys(cloakedConfig());
    sys.kernel().malice().scribbleUserMemory = true;
    sys.kernel().malice().snoopVa = secretVa;

    auto r = runCloaked(sys, [](Env& env) {
        env.store64(secretVa, secretValue);
        env.getpid(); // kernel scribbles over the (now encrypted) page
        // Next access must detect the tampering, not return junk.
        return env.load64(secretVa) == secretValue ? 0 : 1;
    });
    EXPECT_TRUE(r.killed);
    EXPECT_NE(r.killReason.find("cloak violation"), std::string::npos);
    EXPECT_GE(sys.cloak()->auditLog().size(), 1u);
}

TEST(CloakIntegrity, SwapTamperDetectedCloaked)
{
    SystemConfig cfg = cloakedConfig(96);
    System sys(cfg);
    workloads::registerAll(sys);
    sys.kernel().malice().tamperSwap = true;
    auto r = sys.runProgram("wl.memstress", {"200", "2"});
    EXPECT_TRUE(r.killed);
    EXPECT_NE(r.killReason.find("cloak violation"), std::string::npos);
}

TEST(CloakIntegrity, SwapTamperSilentlyCorruptsNative)
{
    // The contrast case: a native process gets corrupt data back and
    // never notices — exactly the failure mode Overshadow closes.
    auto checksum_with = [](bool tamper) {
        SystemConfig cfg = nativeConfig(96);
        System sys(cfg);
        workloads::registerAll(sys);
        sys.kernel().malice().tamperSwap = tamper;
        auto r = sys.runProgram("wl.memstress", {"200", "2"});
        EXPECT_FALSE(r.killed);
        EXPECT_EQ(r.status, 0);
        return workloads::resultOf(sys, "wl.memstress");
    };
    std::string clean = checksum_with(false);
    std::string corrupted = checksum_with(true);
    ASSERT_FALSE(clean.empty());
    EXPECT_NE(clean, corrupted);
}

TEST(CloakIntegrity, SwapReplayDetected)
{
    SystemConfig cfg = cloakedConfig(96);
    System sys(cfg);
    workloads::registerAll(sys);
    sys.kernel().malice().replaySwap = true;
    // Multiple passes modify pages between swap cycles, so the replayed
    // first version no longer matches the metadata.
    auto r = sys.runProgram("wl.memstress", {"200", "3"});
    EXPECT_TRUE(r.killed);
    EXPECT_NE(r.killReason.find("cloak violation"), std::string::npos);
}

TEST(CloakIntegrity, EmulatedFileIoImmuneToReadBufferCorruption)
{
    // The kernel corrupts every read() destination buffer it serves.
    // Marshalled reads of ordinary files are corrupted; emulated reads
    // of protected files never enter the kernel and stay intact.
    auto run_case = [](bool protected_file) {
        System sys(cloakedConfig());
        sys.kernel().malice().corruptReadBuffers = true;
        return runCloaked(sys, [protected_file](Env& env) {
            std::string path;
            if (protected_file) {
                env.mkdir("/cloaked");
                path = "/cloaked/data";
            } else {
                path = "/data";
            }
            std::int64_t fd = env.open(path, os::openCreate |
                                                 os::openRead |
                                                 os::openWrite);
            if (fd < 0)
                return 90;
            env.writeAll(fd, "precious bytes");
            env.lseek(fd, 0, os::seekSet);
            std::string back = env.readSome(fd, 32);
            env.close(fd);
            return back == "precious bytes" ? 0 : 1;
        });
    };
    EXPECT_EQ(run_case(true).status, 0);
    EXPECT_EQ(run_case(false).status, 1);
}

TEST(CloakRegisters, ScrubHidesAndRestores)
{
    System sys(cloakedConfig());
    sys.kernel().malice().recordTrapFrames = true;

    auto r = runCloaked(sys, [](Env& env) {
        env.regs().gpr[8] = secretValue;
        env.regs().gpr[15] = secretValue ^ 0xff;
        for (int i = 0; i < 5; ++i)
            env.getpid();
        if (env.regs().gpr[8] != secretValue)
            return 1;
        if (env.regs().gpr[15] != (secretValue ^ 0xff))
            return 2;
        return 0;
    });
    EXPECT_EQ(r.status, 0);

    const auto& frames = sys.kernel().malice().trapFrames;
    ASSERT_FALSE(frames.empty());
    for (const auto& f : frames) {
        for (std::size_t i = 0; i < vmm::numGprs; ++i) {
            EXPECT_NE(f.gpr[i], secretValue);
            EXPECT_NE(f.gpr[i], secretValue ^ 0xff);
        }
    }
}

TEST(CloakRegisters, NativeTrapFramesLeakRegisters)
{
    System sys(nativeConfig());
    sys.kernel().malice().recordTrapFrames = true;
    runCloaked(sys, [](Env& env) {
        env.regs().gpr[8] = secretValue;
        env.getpid();
        return 0;
    });
    bool leaked = false;
    for (const auto& f : sys.kernel().malice().trapFrames)
        leaked |= f.gpr[8] == secretValue;
    EXPECT_TRUE(leaked);
}

TEST(CloakTransparency, WorkloadsProduceIdenticalResults)
{
    const std::vector<std::pair<std::string, std::vector<std::string>>>
        cases = {
            {"wl.matmul", {"12"}},
            {"wl.sort", {"512"}},
            {"wl.stream", {"32"}},
            {"wl.chase", {"1024", "2048"}},
            {"wl.histogram", {"8192"}},
            {"wl.stencil", {"24", "4"}},
            {"wl.fileserver", {"64", "20", "2048", "1"}},
            {"wl.build", {"2", "8"}},
        };
    for (const auto& [name, argv] : cases) {
        SystemConfig ncfg = nativeConfig();
        System native(ncfg);
        workloads::registerAll(native);
        auto nr = native.runProgram(name, argv);
        ASSERT_EQ(nr.status, 0) << name << " native";

        SystemConfig ccfg = cloakedConfig();
        System cloaked(ccfg);
        workloads::registerAll(cloaked);
        auto cr = cloaked.runProgram(name, argv);
        ASSERT_EQ(cr.status, 0) << name << " cloaked: "
                                << cr.killReason;

        EXPECT_EQ(workloads::resultOf(native, name),
                  workloads::resultOf(cloaked, name))
            << name << " transparency";
        EXPECT_FALSE(workloads::resultOf(native, name).empty());
    }
}

TEST(CloakTransparency, CryptoWorkerCountInvisible)
{
    // The crypto worker pool is a host-speed knob only: a full cloaked
    // workload that swaps (driving the bulk pre-seal and decrypt batch
    // paths) must produce the same result and charge the same total
    // simulated cycles at any worker count.
    auto run = [](std::size_t workers) {
        SystemConfig cfg = cloakedConfig(96);
        cfg.cryptoWorkers = workers;
        System sys(cfg);
        workloads::registerAll(sys);
        auto r = sys.runProgram("wl.memstress", {"200", "2"});
        EXPECT_EQ(r.status, 0) << "workers=" << workers << ": "
                               << r.killReason;
        return std::pair{workloads::resultOf(sys, "wl.memstress"),
                         sys.cycles()};
    };
    auto serial = run(1);
    auto pooled = run(8);
    EXPECT_EQ(pooled.first, serial.first);
    EXPECT_EQ(pooled.second, serial.second);
}

TEST(CloakFork, ChildInheritsSecretsAndDiverges)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        GuestVA p = env.allocPages(2);
        env.store64(p, secretValue);
        env.store64(p + pageSize, 1111);
        Pid child = env.fork([p](Env& c) {
            if (c.load64(p) != secretValue)
                return 1;
            c.store64(p, 2222); // private to the child
            return c.load64(p) == 2222 ? 42 : 2;
        });
        if (child <= 0)
            return 3;
        int status = -1;
        if (env.waitpid(child, &status) != child)
            return 4;
        if (status != 42)
            return 5;
        return env.load64(p) == secretValue ? 0 : 6;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
    EXPECT_GT(sys.cloak()->stats().value("fork_attaches"), 0u);
}

TEST(CloakFork, ForkedChildSyscallsStillMarshalled)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        Pid child = env.fork([](Env& c) {
            // The child's shim must be live: file I/O + getpid work.
            std::int64_t fd = c.open("/childfile",
                                     os::openCreate | os::openWrite);
            if (fd < 0)
                return 1;
            c.writeAll(fd, "from child");
            c.close(fd);
            return c.getpid() > 0 ? 21 : 2;
        });
        int status = -1;
        env.waitpid(child, &status);
        if (status != 21)
            return 1;
        std::int64_t fd = env.open("/childfile", os::openRead);
        if (fd < 0)
            return 2;
        std::string s = env.readSome(fd, 32);
        env.close(fd);
        return s == "from child" ? 0 : 3;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(CloakExec, ReplacesDomain)
{
    System sys(cloakedConfig());
    sys.addProgram("second", os::Program{[](Env& env) {
        if (env.load64(os::stackTop - 8) != 0)
            return 1; // old image leaked through
        env.store64(secretVa, 77);
        return env.args().size() == 1 && env.args()[0] == "x" ? 55 : 2;
    }, true, 64});
    sys.addProgram("first", os::Program{[](Env& env) {
        env.store64(os::stackTop - 8, secretValue);
        env.exec("second", {"x"});
        return 0;
    }, true, 64});
    auto r = sys.runProgram("first");
    EXPECT_EQ(r.status, 55) << r.killReason;
    // Both domains were created and torn down.
    EXPECT_EQ(sys.cloak()->stats().value("domains_created"), 2u);
    EXPECT_EQ(sys.cloak()->stats().value("domains_destroyed"), 2u);
}

TEST(CloakPaging, CloakedMemorySurvivesSwap)
{
    SystemConfig cfg = cloakedConfig(96);
    System sys(cfg);
    workloads::registerAll(sys);
    auto r = sys.runProgram("wl.memstress", {"200", "2"});
    EXPECT_EQ(r.status, 0) << r.killReason;
    EXPECT_GT(sys.kernel().stats().value("evicted_anon"), 0u);
    EXPECT_GT(sys.cloak()->stats().value("page_encrypts"), 0u);
    EXPECT_GT(sys.cloak()->stats().value("page_decrypts"), 0u);
}

TEST(CloakFiles, ProtectedFilePersistsAcrossProcesses)
{
    System sys(cloakedConfig());
    sys.addProgram("vault", os::Program{[](Env& env) {
        const auto& args = env.args();
        env.mkdir("/cloaked");
        if (!args.empty() && args[0] == "write") {
            std::int64_t fd = env.open("/cloaked/vault",
                                       os::openCreate | os::openWrite |
                                           os::openTrunc);
            if (fd < 0)
                return 1;
            env.writeAll(fd, "the crown jewels");
            env.close(fd);
            return 0;
        }
        std::int64_t fd = env.open("/cloaked/vault", os::openRead);
        if (fd < 0)
            return 2;
        std::string s = env.readSome(fd, 64);
        env.close(fd);
        return s == "the crown jewels" ? 0 : 3;
    }, true, 64});

    auto w = sys.runProgram("vault", {"write"});
    ASSERT_EQ(w.status, 0) << w.killReason;
    // The bytes at rest are ciphertext.
    std::string disk = workloads::readGuestFile(sys, "/cloaked/vault");
    EXPECT_EQ(disk.find("crown"), std::string::npos);

    auto rd = sys.runProgram("vault", {"read"});
    EXPECT_EQ(rd.status, 0) << rd.killReason;
}

TEST(CloakFiles, DifferentProgramCannotAttach)
{
    System sys(cloakedConfig());
    sys.addProgram("owner", os::Program{[](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t fd = env.open("/cloaked/private",
                                   os::openCreate | os::openWrite);
        if (fd < 0)
            return 1;
        env.writeAll(fd, "mine alone");
        env.close(fd);
        return 0;
    }, true, 64});
    sys.addProgram("thief", os::Program{[](Env& env) {
        // Attach is refused: identity mismatch on the sealed metadata.
        std::int64_t fd = env.open("/cloaked/private", os::openRead);
        return fd == -os::errPerm ? 0 : 1;
    }, true, 64});

    ASSERT_EQ(sys.runProgram("owner").status, 0);
    EXPECT_EQ(sys.runProgram("thief").status, 0);
    EXPECT_GT(sys.cloak()->stats().value("file_attach_rejected"), 0u);
}

TEST(CloakFiles, TamperedSealedMetadataRejected)
{
    System sys(cloakedConfig());
    sys.addProgram("vault", os::Program{[](Env& env) {
        const auto& args = env.args();
        env.mkdir("/cloaked");
        if (!args.empty() && args[0] == "write") {
            std::int64_t fd = env.open("/cloaked/v",
                                       os::openCreate | os::openWrite);
            if (fd < 0)
                return 1;
            env.writeAll(fd, "sealed data");
            env.close(fd);
            return 0;
        }
        std::int64_t fd = env.open("/cloaked/v", os::openRead);
        return fd == -os::errPerm ? 0 : 4;
    }, true, 64});

    ASSERT_EQ(sys.runProgram("vault", {"write"}).status, 0);
    // Corrupt every sealed bundle on "disk".
    for (auto& [key, bundle] : sys.cloak()->sealedStore()) {
        ASSERT_FALSE(bundle.empty());
        bundle[bundle.size() / 2] ^= 0x80;
    }
    EXPECT_EQ(sys.runProgram("vault", {"read"}).status, 0);
}

TEST(CloakFiles, LargeProtectedFileGrowsMapping)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        env.mkdir("/cloaked");
        std::int64_t fd = env.open("/cloaked/big",
                                   os::openCreate | os::openRead |
                                       os::openWrite);
        if (fd < 0)
            return 1;
        // Write 10 pages incrementally (forces mapping growth).
        GuestVA buf = env.allocPages(1);
        for (int chunk = 0; chunk < 10; ++chunk) {
            for (GuestVA off = 0; off < pageSize; off += 8)
                env.store64(buf + off, chunk * 100000 + off);
            if (env.write(fd, buf, pageSize) !=
                static_cast<std::int64_t>(pageSize))
                return 2;
        }
        // Verify a middle chunk.
        env.lseek(fd, 7 * pageSize, os::seekSet);
        if (env.read(fd, buf, pageSize) !=
            static_cast<std::int64_t>(pageSize))
            return 3;
        for (GuestVA off = 0; off < pageSize; off += 256) {
            if (env.load64(buf + off) != 7 * 100000 + off)
                return 4;
        }
        env.close(fd);
        return 0;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
    EXPECT_GT(sys.cloak()->stats().value("shim_map_grows"), 0u);
}

TEST(CloakSched, PreemptedCloakedProcessesComplete)
{
    SystemConfig cfg = cloakedConfig();
    cfg.preemptOpsPerTick = 2000;
    System sys(cfg);
    sys.addProgram("spin", os::Program{[](Env& env) {
        GuestVA p = env.allocPages(1);
        std::uint64_t acc = 0;
        for (int i = 0; i < 20000; ++i) {
            env.store64(p, acc);
            acc += env.load64(p) + 1;
        }
        return acc > 0 ? 0 : 1;
    }, true, 16});
    sys.addProgram("boss", os::Program{[](Env& env) {
        Pid a = env.spawn("spin");
        Pid b = env.spawn("spin");
        int sa = -1, sb = -1;
        env.waitpid(a, &sa);
        env.waitpid(b, &sb);
        return sa == 0 && sb == 0 ? 0 : 1;
    }, true, 16});
    auto r = sys.runProgram("boss");
    EXPECT_EQ(r.status, 0) << r.killReason;
    EXPECT_GT(sys.sched().stats().value("preemptions"), 0u);
    // Asynchronous interrupts went through secure control transfer.
    EXPECT_GT(sys.machine().cost().stats().value("ctc_save"), 0u);
}

TEST(CloakSignals, HandlersWorkUnderCloaking)
{
    System sys(cloakedConfig());
    auto r = runCloaked(sys, [](Env& env) {
        int fired = 0;
        env.onSignal(os::sigUser1, [&fired](Env&, int) { ++fired; });
        env.kill(env.getpid(), os::sigUser1);
        env.yield();
        return fired == 1 ? 0 : 1;
    });
    EXPECT_EQ(r.status, 0) << r.killReason;
}

TEST(CloakDeterminism, CloakedRunsAreReproducible)
{
    auto run_once = [] {
        SystemConfig cfg = cloakedConfig(512);
        cfg.seed = 1234;
        System sys(cfg);
        workloads::registerAll(sys);
        auto r = sys.runProgram("wl.fileserver", {"64", "20", "2048"});
        EXPECT_EQ(r.status, 0);
        return sys.cycles();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CloakOverhead, ComputeBoundOverheadIsSmall)
{
    // The paper's headline: compute-bound workloads pay almost nothing.
    SystemConfig ncfg = nativeConfig();
    System native(ncfg);
    workloads::registerAll(native);
    ASSERT_EQ(native.runProgram("wl.matmul", {"72"}).status, 0);

    SystemConfig ccfg = cloakedConfig();
    System cloaked(ccfg);
    workloads::registerAll(cloaked);
    ASSERT_EQ(cloaked.runProgram("wl.matmul", {"72"}).status, 0);

    double ratio = static_cast<double>(cloaked.cycles()) /
                   static_cast<double>(native.cycles());
    EXPECT_LT(ratio, 1.25);
    EXPECT_GE(ratio, 1.0);
}

TEST(CloakOverhead, CleanOptimizationReducesEncryptions)
{
    auto encrypts_with = [](bool opt) {
        SystemConfig cfg = cloakedConfig();
        cfg.cleanOptimization = opt;
        System sys(cfg);
        workloads::registerAll(sys);
        // Read-heavy protected-file workload: pages ping-pong between
        // the app (reads) and the kernel (writeback).
        auto r = sys.runProgram("wl.fileserver", {"64", "40", "4096"});
        EXPECT_EQ(r.status, 0) << r.killReason;
        return std::pair{sys.cloak()->stats().value("page_encrypts"),
                         sys.cycles()};
    };
    auto [enc_on, cycles_on] = encrypts_with(true);
    auto [enc_off, cycles_off] = encrypts_with(false);
    EXPECT_LT(enc_on, enc_off);
    EXPECT_LT(cycles_on, cycles_off);
}

} // namespace
} // namespace osh
