/**
 * @file
 * Unit tests for the protection-metadata store: page metadata, resource
 * cloning, the cache cost model, and sealed-bundle persistence
 * (MAC verification, identity binding, rollback refusal).
 */

#include "cloak/metadata.hh"
#include "crypto/sha256.hh"
#include "sim/cost_model.hh"

#include <gtest/gtest.h>

#include <cstring>

namespace osh::cloak
{
namespace
{

crypto::Digest
ident(const char* s)
{
    return crypto::Sha256::hash(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s), std::strlen(s)));
}

class MetadataTest : public ::testing::Test
{
  protected:
    MetadataTest() : cost_(), store_(cost_, 4) {}

    sim::CostModel cost_;
    MetadataStore store_;
};

TEST_F(MetadataTest, ResourceLifecycle)
{
    Resource& r = store_.createResource(3);
    EXPECT_EQ(r.domain, 3u);
    EXPECT_EQ(r.keyId, r.id);
    EXPECT_TRUE(store_.lookup(r.id).ok());
    EXPECT_EQ(store_.lookup(r.id).value(), &r);
    ResourceId id = r.id;
    store_.destroyResource(id);
    auto gone = store_.lookup(id);
    ASSERT_FALSE(gone.ok());
    EXPECT_EQ(gone.error(), CloakError::UnknownResource);
}

TEST_F(MetadataTest, PageMetaDefaults)
{
    Resource& r = store_.createResource(1);
    PageMeta& m = store_.page(r, 7);
    EXPECT_FALSE(m.initialized);
    EXPECT_EQ(m.version, 0u);
    m.initialized = true;
    m.version = 3;
    EXPECT_EQ(store_.page(r, 7).version, 3u);
}

TEST_F(MetadataTest, CloneAliasesKeyAndCopiesPages)
{
    Resource& src = store_.createResource(1);
    PageMeta& m = store_.page(src, 0);
    m.initialized = true;
    m.version = 5;
    m.state = PageState::Encrypted;
    m.hash[0] = 0xaa;

    Resource& clone = store_.cloneResource(src, 2);
    EXPECT_EQ(clone.keyId, src.keyId);
    EXPECT_NE(clone.id, src.id);
    EXPECT_EQ(clone.domain, 2u);
    const PageMeta& cm = clone.pages.at(0);
    EXPECT_EQ(cm.version, 5u);
    EXPECT_EQ(cm.hash[0], 0xaa);
    EXPECT_EQ(cm.state, PageState::Encrypted);
    EXPECT_EQ(cm.residentGpa, badAddr);
}

TEST_F(MetadataTest, ClonePlaintextStateForcedEncrypted)
{
    Resource& src = store_.createResource(1);
    PageMeta& m = store_.page(src, 0);
    m.initialized = true;
    m.state = PageState::PlaintextDirty;
    m.residentGpa = 0x1000;
    Resource& clone = store_.cloneResource(src, 2);
    EXPECT_EQ(clone.pages.at(0).state, PageState::Encrypted);
}

TEST_F(MetadataTest, CacheChargesHitVsMiss)
{
    Resource& r = store_.createResource(1);
    // Creation is born hot: charged as a hit.
    store_.page(r, 0);
    EXPECT_EQ(cost_.stats().value("metadata_hit"), 1u);
    EXPECT_EQ(cost_.stats().value("metadata_miss"), 0u);

    // Push page 0 out of the 4-entry cache with other entries.
    for (std::uint64_t i = 1; i <= 5; ++i)
        store_.page(r, i);
    EXPECT_EQ(cost_.stats().value("metadata_miss"), 0u);

    // Re-touching the evicted (but existing) entry is a miss and costs
    // more than a subsequent hit.
    Cycles before = cost_.cycles();
    store_.page(r, 0);
    Cycles miss_cost = cost_.cycles() - before;
    before = cost_.cycles();
    store_.page(r, 0);
    Cycles hit_cost = cost_.cycles() - before;
    EXPECT_GT(miss_cost, hit_cost);
    EXPECT_EQ(cost_.stats().value("metadata_miss"), 1u);
}

TEST_F(MetadataTest, CacheLruEvicts)
{
    Resource& r = store_.createResource(1);
    // Capacity 4: touch 5 distinct pages, then the first again.
    for (std::uint64_t i = 0; i < 5; ++i)
        store_.page(r, i);
    std::uint64_t misses = cost_.stats().value("metadata_miss");
    store_.page(r, 0); // evicted -> miss again
    EXPECT_EQ(cost_.stats().value("metadata_miss"), misses + 1);
    store_.page(r, 4); // recent -> hit
    EXPECT_EQ(cost_.stats().value("metadata_miss"), misses + 1);
}

TEST_F(MetadataTest, CapacityChangeShrinksCache)
{
    Resource& r = store_.createResource(1);
    for (std::uint64_t i = 0; i < 4; ++i)
        store_.page(r, i);
    store_.setCacheCapacity(1);
    std::uint64_t misses = cost_.stats().value("metadata_miss");
    store_.page(r, 0); // must have been evicted
    EXPECT_GT(cost_.stats().value("metadata_miss"), misses);
}

class SealTest : public MetadataTest
{
  protected:
    SealTest()
    {
        key_.fill(0x42);
        owner_ = ident("prog-a");
    }

    Resource&
    makeFileResource(std::uint64_t file_key = 77)
    {
        Resource& r = store_.createResource(1, true, file_key);
        PageMeta& m = store_.page(r, 0);
        m.initialized = true;
        m.version = 2;
        m.state = PageState::Encrypted;
        m.iv[3] = 9;
        m.hash[5] = 0x77;
        PageMeta& m1 = store_.page(r, 3);
        m1.initialized = true;
        m1.version = 1;
        return r;
    }

    crypto::Digest key_;
    crypto::Digest owner_;
};

TEST_F(SealTest, SealUnsealRoundTrip)
{
    Resource& src = makeFileResource();
    auto bundle = store_.seal(src, key_, owner_);

    Resource& dst = store_.createResource(2, true, 77);
    ASSERT_TRUE(store_.unseal(bundle, key_, owner_, dst).ok());
    EXPECT_EQ(dst.pages.size(), 2u);
    EXPECT_EQ(dst.pages.at(0).version, 2u);
    EXPECT_EQ(dst.pages.at(0).iv[3], 9);
    EXPECT_EQ(dst.pages.at(0).hash[5], 0x77);
    EXPECT_EQ(dst.pages.at(3).version, 1u);
    EXPECT_EQ(dst.pages.at(0).state, PageState::Encrypted);
}

TEST_F(SealTest, TamperedBundleRejected)
{
    Resource& src = makeFileResource();
    auto bundle = store_.seal(src, key_, owner_);
    Resource& dst = store_.createResource(2, true, 77);
    for (std::size_t pos : {0u, 20u, 60u}) {
        auto bad = bundle;
        bad[pos % bad.size()] ^= 1;
        auto r = store_.unseal(bad, key_, owner_, dst);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error(), CloakError::SealBadMac);
    }
    // MAC truncation: the (shorter) body no longer matches the MAC.
    auto shorter = bundle;
    shorter.pop_back();
    auto trunc = store_.unseal(shorter, key_, owner_, dst);
    ASSERT_FALSE(trunc.ok());
    EXPECT_EQ(trunc.error(), CloakError::SealBadMac);
    // Empty bundle: structurally invalid before any MAC exists.
    auto empty = store_.unseal({}, key_, owner_, dst);
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error(), CloakError::SealMalformed);
}

TEST_F(SealTest, WrongKeyRejected)
{
    Resource& src = makeFileResource();
    auto bundle = store_.seal(src, key_, owner_);
    crypto::Digest other_key = key_;
    other_key[0] ^= 1;
    Resource& dst = store_.createResource(2, true, 77);
    auto r = store_.unseal(bundle, other_key, owner_, dst);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), CloakError::SealBadMac);
}

TEST_F(SealTest, WrongIdentityRejected)
{
    Resource& src = makeFileResource();
    auto bundle = store_.seal(src, key_, owner_);
    Resource& dst = store_.createResource(2, true, 77);
    auto r = store_.unseal(bundle, key_, ident("prog-b"), dst);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), CloakError::SealBadIdentity);
}

TEST_F(SealTest, RollbackRejected)
{
    Resource& src = makeFileResource();
    auto v1 = store_.seal(src, key_, owner_); // version 1
    auto v2 = store_.seal(src, key_, owner_); // version 2

    Resource& dst = store_.createResource(2, true, 77);
    // The newest bundle imports fine.
    EXPECT_TRUE(store_.unseal(v2, key_, owner_, dst).ok());
    // Replaying the older bundle is refused with the typed cause.
    auto r = store_.unseal(v1, key_, owner_, dst);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), CloakError::SealRollback);
    EXPECT_EQ(store_.stats().value("unseal_rollback"), 1u);
    EXPECT_EQ(store_.lastSealedVersion(77), 2u);
}

TEST_F(SealTest, UnsealAdvancesRollbackFloor)
{
    Resource& src = makeFileResource();
    auto v1 = store_.seal(src, key_, owner_); // version 1
    auto v2 = store_.seal(src, key_, owner_); // version 2

    // A *fresh* store (a rebooted VMM) has never sealed file key 77,
    // so its floor starts at zero. Accepting the v2 bundle must raise
    // the floor so a later replay of v1 is refused — otherwise an
    // attacker could feed bundles oldest-last across reboots.
    sim::CostModel cost2;
    MetadataStore store2(cost2, 4);
    Resource& dst = store2.createResource(2, true, 77);
    ASSERT_TRUE(store2.unseal(v2, key_, owner_, dst).ok());
    EXPECT_EQ(store2.lastSealedVersion(77), 2u);

    Resource& dst2 = store2.createResource(3, true, 77);
    EXPECT_FALSE(store2.unseal(v1, key_, owner_, dst2).ok());
    EXPECT_EQ(store2.stats().value("unseal_rollback"), 1u);

    // Re-importing the same (newest) version stays legal.
    Resource& dst3 = store2.createResource(4, true, 77);
    EXPECT_TRUE(store2.unseal(v2, key_, owner_, dst3).ok());
}

TEST_F(SealTest, SealAfterUnsealContinuesVersionChain)
{
    Resource& src = makeFileResource();
    auto v1 = store_.seal(src, key_, owner_); // version 1

    // Import into a fresh store, then seal there: the new bundle must
    // be version 2, not version 1 again.
    sim::CostModel cost2;
    MetadataStore store2(cost2, 4);
    Resource& dst = store2.createResource(2, true, 77);
    ASSERT_TRUE(store2.unseal(v1, key_, owner_, dst).ok());
    store2.seal(dst, key_, owner_);
    EXPECT_EQ(store2.lastSealedVersion(77), 2u);

    // The original v1 bundle is now stale for store2.
    Resource& dst2 = store2.createResource(3, true, 77);
    EXPECT_FALSE(store2.unseal(v1, key_, owner_, dst2).ok());
}

TEST_F(SealTest, DistinctFileKeysVersionIndependently)
{
    Resource& a = makeFileResource(100);
    Resource& b = makeFileResource(200);
    store_.seal(a, key_, owner_);
    store_.seal(a, key_, owner_);
    auto bundle_b = store_.seal(b, key_, owner_);
    // b's first seal is version 1 for key 200 and imports fine even
    // though key 100 is at version 2.
    Resource& dst = store_.createResource(2, true, 200);
    EXPECT_TRUE(store_.unseal(bundle_b, key_, owner_, dst).ok());
}

TEST_F(SealTest, SplicedPageCountRejected)
{
    Resource& src = makeFileResource();
    auto bundle = store_.seal(src, key_, owner_);
    // Chop a page record out (keeping the MAC): must fail the MAC.
    auto bad = bundle;
    bad.erase(bad.begin() + 60, bad.begin() + 60 + 65);
    Resource& dst = store_.createResource(2, true, 77);
    EXPECT_FALSE(store_.unseal(bad, key_, owner_, dst).ok());
}

// ---------------------------------------------------------------------------
// LRU consistency regressions
// ---------------------------------------------------------------------------

TEST_F(MetadataTest, DestroyPurgesCachedKeys)
{
    // Regression: destroyResource left the resource's CacheKeys in the
    // LRU, permanently occupying cache capacity.
    Resource& a = store_.createResource(1);
    for (std::uint64_t i = 0; i < 4; ++i)
        store_.page(a, i);
    ASSERT_EQ(store_.cacheSize(), 4u);
    ResourceId id = a.id;
    store_.destroyResource(id);
    EXPECT_EQ(store_.cacheSize(), 0u);
    EXPECT_EQ(store_.lruLength(), 0u);
}

TEST_F(MetadataTest, FreshPageWithCachedKeyDoesNotDuplicateLruNode)
{
    // Regression: recreating page metadata whose CacheKey was still
    // cached pushed a duplicate LRU node, orphaning the old one; a
    // later eviction of the orphan erased the *live* index entry.
    Resource& a = store_.createResource(1);
    store_.page(a, 0);
    a.pages.clear(); // Metadata reload (the unseal path does this).
    store_.page(a, 0);
    EXPECT_EQ(store_.lruLength(), store_.cacheSize());

    // Fill to capacity and roll the cache over; the index and list must
    // stay in lockstep throughout.
    for (std::uint64_t i = 1; i < 12; ++i)
        store_.page(a, i);
    EXPECT_EQ(store_.lruLength(), store_.cacheSize());
    EXPECT_LE(store_.cacheSize(), 4u);
}

TEST_F(SealTest, UnsealPurgesStaleCachedKeys)
{
    Resource& src = makeFileResource();
    auto bundle = store_.seal(src, key_, owner_);

    Resource& dst = store_.createResource(2, true, 77);
    store_.page(dst, 0); // Pre-unseal metadata occupies the cache.
    store_.page(dst, 9);
    ASSERT_TRUE(store_.cached(dst.id, 9));
    ASSERT_TRUE(store_.unseal(bundle, key_, owner_, dst).ok());
    // The reload dropped every page; its cache keys must go with it
    // (page 9 is not even in the bundle).
    EXPECT_FALSE(store_.cached(dst.id, 0));
    EXPECT_FALSE(store_.cached(dst.id, 9));
    EXPECT_EQ(store_.lruLength(), store_.cacheSize());
}

} // namespace
} // namespace osh::cloak
