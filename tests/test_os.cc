/**
 * @file
 * Guest-OS integration tests (native, no cloaking): memory management,
 * demand paging, COW fork, files, pipes, signals, spawn/exec/wait,
 * swapping under memory pressure.
 */

#include "os/env.hh"
#include "system/system.hh"
#include "workloads/workloads.hh"

#include <gtest/gtest.h>

namespace osh
{
namespace
{

using os::Env;
using system::System;
using system::SystemConfig;

SystemConfig
nativeConfig(std::uint64_t frames = 1024)
{
    SystemConfig cfg;
    cfg.cloakingEnabled = false;
    cfg.guestFrames = frames;
    cfg.preemptOpsPerTick = 0; // Deterministic single-flow tests.
    return cfg;
}

/** Run a single program body and return its exit result. */
system::ExitResult
runBody(const SystemConfig& cfg, std::function<int(Env&)> body)
{
    System sys(cfg);
    sys.addProgram("test", os::Program{std::move(body), false, 64});
    return sys.runProgram("test");
}

TEST(OsMemory, AnonAllocZeroFilledAndWritable)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        GuestVA p = env.allocPages(4);
        // Demand-zero contents.
        for (GuestVA off = 0; off < 4 * pageSize; off += 512) {
            if (env.load64(p + off) != 0)
                return 1;
        }
        env.store64(p + 100, 0xdeadbeef);
        if (env.load64(p + 100) != 0xdeadbeef)
            return 2;
        // Page-crossing access.
        env.store64(p + pageSize - 4, 0x1122334455667788ull);
        if (env.load64(p + pageSize - 4) != 0x1122334455667788ull)
            return 3;
        return 0;
    });
    EXPECT_EQ(r.status, 0);
    EXPECT_FALSE(r.killed);
}

TEST(OsMemory, MunmapThenAccessKills)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        GuestVA p = env.allocPages(1);
        env.store64(p, 1);
        env.munmap(p);
        env.load64(p); // must fault fatally
        return 0;
    });
    EXPECT_TRUE(r.killed);
    EXPECT_NE(r.killReason.find("segfault"), std::string::npos);
}

TEST(OsMemory, WriteToReadOnlyMappingKills)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        std::int64_t va = env.mmap(pageSize, os::protRead, os::mapAnon);
        if (va < 0)
            return 1;
        env.store8(static_cast<GuestVA>(va), 1);
        return 0;
    });
    EXPECT_TRUE(r.killed);
}

TEST(OsMemory, StackIsUsable)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        GuestVA sp = os::stackTop - 8;
        env.store64(sp, 0xabcd);
        return env.load64(sp) == 0xabcd ? 0 : 1;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsFiles, CreateWriteReadRoundTrip)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        env.mkdir("/data");
        std::int64_t fd = env.open("/data/f.txt",
                                   os::openCreate | os::openRead |
                                       os::openWrite);
        if (fd < 0)
            return 1;
        if (env.writeAll(fd, "hello world") != 11)
            return 2;
        env.lseek(fd, 0, os::seekSet);
        if (env.readSome(fd, 64) != "hello world")
            return 3;
        os::StatBuf sb{};
        env.fstat(fd, sb);
        if (sb.size != 11 || sb.isDir != 0)
            return 4;
        env.close(fd);
        return 0;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsFiles, LargeFileSpanningManyPages)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        std::int64_t fd = env.open("/big",
                                   os::openCreate | os::openRead |
                                       os::openWrite);
        GuestVA buf = env.allocPages(4);
        // Write 5 pages worth with a pattern.
        for (int chunk = 0; chunk < 5; ++chunk) {
            for (GuestVA off = 0; off < pageSize; off += 8)
                env.store64(buf + off, chunk * 1000 + off);
            if (env.write(fd, buf, pageSize) !=
                static_cast<std::int64_t>(pageSize))
                return 1;
        }
        // Seek into the middle and verify.
        env.lseek(fd, 3 * pageSize + 16, os::seekSet);
        GuestVA rd = env.allocPages(1);
        if (env.read(fd, rd, 8) != 8)
            return 2;
        if (env.load64(rd) != 3000 + 16)
            return 3;
        os::StatBuf sb{};
        env.fstat(fd, sb);
        return sb.size == 5 * pageSize ? 0 : 4;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsFiles, UnlinkRenameReaddir)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        env.mkdir("/d");
        std::int64_t a = env.open("/d/a", os::openCreate | os::openWrite);
        std::int64_t b = env.open("/d/b", os::openCreate | os::openWrite);
        env.close(a);
        env.close(b);
        if (env.rename("/d/a", "/d/c") != 0)
            return 1;
        if (env.open("/d/a", os::openRead) >= 0)
            return 2;
        if (env.unlink("/d/b") != 0)
            return 3;

        std::int64_t dfd = env.open("/d", os::openRead);
        std::string name;
        if (env.readdir(dfd, 0, name) < 0 || name != "c")
            return 4;
        if (env.readdir(dfd, 1, name) != -os::errNoEnt)
            return 5;
        env.close(dfd);
        return 0;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsFiles, FtruncateAndEof)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        std::int64_t fd = env.open("/t", os::openCreate | os::openRead |
                                             os::openWrite);
        env.writeAll(fd, "0123456789");
        env.ftruncate(fd, 4);
        env.lseek(fd, 0, os::seekSet);
        if (env.readSome(fd, 32) != "0123")
            return 1;
        // Read at EOF returns 0.
        GuestVA buf = env.allocPages(1);
        if (env.read(fd, buf, 8) != 0)
            return 2;
        env.close(fd);
        return 0;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsFiles, MmapSharedFileReflectsWrites)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        std::int64_t fd = env.open("/m", os::openCreate | os::openRead |
                                             os::openWrite);
        env.writeAll(fd, std::string(100, 'x'));
        std::int64_t va = env.mmap(pageSize, os::protRead | os::protWrite,
                                   os::mapShared, fd, 0);
        if (va < 0)
            return 1;
        if (env.load8(static_cast<GuestVA>(va)) != 'x')
            return 2;
        env.store8(static_cast<GuestVA>(va), 'y');
        // read() must see the mmap write (same page cache).
        env.lseek(fd, 0, os::seekSet);
        std::string s = env.readSome(fd, 1);
        env.close(fd);
        return s == "y" ? 0 : 3;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsFiles, BadDescriptorErrors)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        GuestVA buf = env.allocPages(1);
        if (env.read(99, buf, 8) != -os::errBadF)
            return 1;
        if (env.close(99) != -os::errBadF)
            return 2;
        if (env.open("/nope/deep", os::openRead) != -os::errNoEnt)
            return 3;
        if (env.open("/nofile", os::openRead) != -os::errNoEnt)
            return 4;
        return 0;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsPipes, RoundTripAndEof)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        int rfd = -1, wfd = -1;
        if (env.pipe(rfd, wfd) != 0)
            return 1;
        if (env.writeAll(wfd, "ping") != 4)
            return 2;
        if (env.readSome(rfd, 16) != "ping")
            return 3;
        env.close(wfd);
        GuestVA buf = env.allocPages(1);
        // All writers closed: EOF.
        if (env.read(rfd, buf, 8) != 0)
            return 4;
        env.close(rfd);
        return 0;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsPipes, WriteToClosedReaderFails)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        int rfd = -1, wfd = -1;
        env.pipe(rfd, wfd);
        env.close(rfd);
        GuestVA buf = env.allocPages(1);
        return env.write(wfd, buf, 4) == -os::errPipe ? 0 : 1;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsPipes, BlockingHandoffBetweenProcesses)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        int rfd = -1, wfd = -1;
        env.pipe(rfd, wfd);
        Pid child = env.fork([rfd, wfd](Env& c) {
            c.close(wfd);
            // Blocks until the parent writes.
            std::string got = c.readSome(rfd, 32);
            c.close(rfd);
            return got == "work item" ? 7 : 1;
        });
        if (child <= 0)
            return 1;
        env.close(rfd);
        env.yield(); // Let the child block on the empty pipe first.
        env.writeAll(wfd, "work item");
        env.close(wfd);
        int status = -1;
        if (env.waitpid(child, &status) != child)
            return 2;
        return status == 7 ? 0 : 3;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsProcess, ForkSeesSnapshotCow)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        GuestVA p = env.allocPages(2);
        env.store64(p, 111);
        env.store64(p + pageSize, 222);
        Pid child = env.fork([p](Env& c) {
            // Child sees the snapshot...
            if (c.load64(p) != 111)
                return 1;
            // ...and its writes are private.
            c.store64(p, 999);
            return c.load64(p) == 999 ? 5 : 2;
        });
        int status = -1;
        env.waitpid(child, &status);
        if (status != 5)
            return 3;
        // Parent value undisturbed by the child's write.
        if (env.load64(p) != 111)
            return 4;
        // Parent writes work too (COW break on the parent side).
        env.store64(p, 123);
        return env.load64(p) == 123 ? 0 : 5;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsProcess, WaitPidSpecificAndAny)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        Pid a = env.fork([](Env&) { return 10; });
        Pid b = env.fork([](Env&) { return 20; });
        int status = -1;
        if (env.waitpid(b, &status) != b || status != 20)
            return 1;
        if (env.waitpid(-1, &status) != a || status != 10)
            return 2;
        // No children left.
        if (env.waitpid(-1, &status) != -os::errChild)
            return 3;
        return 0;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsProcess, SpawnRunsProgramWithArgs)
{
    SystemConfig cfg = nativeConfig();
    System sys(cfg);
    sys.addProgram("child", os::Program{[](Env& env) {
        if (env.args().size() != 2)
            return 1;
        return env.args()[0] == "alpha" && env.args()[1] == "42" ? 33
                                                                  : 2;
    }, false, 64});
    sys.addProgram("parent", os::Program{[](Env& env) {
        Pid c = env.spawn("child", {"alpha", "42"});
        if (c <= 0)
            return 1;
        int status = -1;
        env.waitpid(c, &status);
        return status == 33 ? 0 : 2;
    }, false, 64});
    auto r = sys.runProgram("parent");
    EXPECT_EQ(r.status, 0);
}

TEST(OsProcess, ExecReplacesImage)
{
    SystemConfig cfg = nativeConfig();
    System sys(cfg);
    sys.addProgram("second", os::Program{[](Env& env) {
        // Fresh image: the first stack page must be demand-zero.
        if (env.load64(os::stackTop - 8) != 0)
            return 1;
        if (env.args().size() != 1 || env.args()[0] != "from-exec")
            return 2;
        return 44;
    }, false, 64});
    sys.addProgram("first", os::Program{[](Env& env) {
        env.store64(os::stackTop - 8, 0x5a5a); // dirty the stack
        env.exec("second", {"from-exec"});
        return 0; // exec does not return
    }, false, 64});
    auto r = sys.runProgram("first");
    EXPECT_EQ(r.status, 44);
}

TEST(OsProcess, GetPidAndParent)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        Pid self = env.getpid();
        if (self <= 0)
            return 1;
        Pid child = env.fork([self](Env& c) {
            return c.getppid() == self ? 11 : 1;
        });
        int status = -1;
        env.waitpid(child, &status);
        return status == 11 ? 0 : 2;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsSignals, HandlerRunsAtSyscallBoundary)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        int fired = 0;
        env.onSignal(os::sigUser1, [&fired](Env&, int sig) {
            fired = sig;
        });
        env.kill(env.getpid(), os::sigUser1);
        env.yield(); // Delivery point.
        return fired == os::sigUser1 ? 0 : 1;
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsSignals, DefaultActionTerminates)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        env.kill(env.getpid(), os::sigTerm);
        env.yield();
        return 0; // Unreachable.
    });
    EXPECT_TRUE(r.killed);
    EXPECT_NE(r.killReason.find("signal"), std::string::npos);
}

TEST(OsSignals, KillAnotherBlockedProcess)
{
    auto r = runBody(nativeConfig(), [](Env& env) {
        int rfd = -1, wfd = -1;
        env.pipe(rfd, wfd);
        Pid child = env.fork([rfd](Env& c) {
            GuestVA buf = c.allocPages(1);
            c.read(rfd, buf, 8); // Blocks forever.
            return 0;
        });
        env.yield(); // Let the child block.
        env.kill(child, os::sigKill);
        int status = -1;
        if (env.waitpid(child, &status) != child)
            return 1;
        return status == -1 ? 0 : 2; // Killed marker.
    });
    EXPECT_EQ(r.status, 0);
}

TEST(OsSwap, SurvivesMemoryPressure)
{
    // 96 frames of RAM, a working set of ~200 pages: must swap and
    // still compute the right answer.
    SystemConfig cfg = nativeConfig(96);
    System sys(cfg);
    sys.addProgram("stress", os::Program{[](Env& env) {
        const std::uint64_t pages = 200;
        GuestVA buf = env.allocPages(pages);
        for (std::uint64_t p = 0; p < pages; ++p)
            env.store64(buf + p * pageSize, p * 7 + 1);
        // Re-walk: every page verifies after swap-out/swap-in.
        for (std::uint64_t p = 0; p < pages; ++p) {
            if (env.load64(buf + p * pageSize) != p * 7 + 1)
                return static_cast<int>(p + 1);
        }
        return 0;
    }, false, 16});
    auto r = sys.runProgram("stress");
    EXPECT_EQ(r.status, 0);
    EXPECT_GT(sys.kernel().stats().value("evicted_anon"), 0u);
    EXPECT_GT(sys.kernel().stats().value("swap_ins"), 0u);
}

TEST(OsSwap, FileCacheEvictionWritesBack)
{
    SystemConfig cfg = nativeConfig(64);
    System sys(cfg);
    sys.addProgram("filepress", os::Program{[](Env& env) {
        // Write a file bigger than RAM, then read it all back.
        std::int64_t fd = env.open("/huge",
                                   os::openCreate | os::openRead |
                                       os::openWrite);
        GuestVA buf = env.allocPages(1);
        const std::uint64_t file_pages = 128;
        for (std::uint64_t p = 0; p < file_pages; ++p) {
            for (GuestVA off = 0; off < pageSize; off += 8)
                env.store64(buf + off, p * pageSize + off);
            env.write(fd, buf, pageSize);
        }
        env.lseek(fd, 0, os::seekSet);
        for (std::uint64_t p = 0; p < file_pages; ++p) {
            env.read(fd, buf, pageSize);
            for (GuestVA off = 0; off < pageSize; off += 512) {
                if (env.load64(buf + off) != p * pageSize + off)
                    return static_cast<int>(p + 1);
            }
        }
        env.close(fd);
        return 0;
    }, false, 16});
    auto r = sys.runProgram("filepress");
    EXPECT_EQ(r.status, 0);
    EXPECT_GT(sys.kernel().stats().value("writebacks"), 0u);
}

TEST(OsSched, PreemptionInterleavesCompute)
{
    SystemConfig cfg = nativeConfig();
    cfg.preemptOpsPerTick = 2000;
    System sys(cfg);
    sys.addProgram("spin", os::Program{[](Env& env) {
        GuestVA p = env.allocPages(1);
        for (int i = 0; i < 20000; ++i)
            env.store64(p, static_cast<std::uint64_t>(i));
        return 0;
    }, false, 16});
    sys.addProgram("boss", os::Program{[](Env& env) {
        Pid a = env.spawn("spin");
        Pid b = env.spawn("spin");
        int sa = -1, sb = -1;
        env.waitpid(a, &sa);
        env.waitpid(b, &sb);
        return sa == 0 && sb == 0 ? 0 : 1;
    }, false, 16});
    auto r = sys.runProgram("boss");
    EXPECT_EQ(r.status, 0);
    EXPECT_GT(sys.sched().stats().value("preemptions"), 0u);
}

TEST(OsDeterminism, IdenticalSeedsGiveIdenticalCycles)
{
    auto run_once = [] {
        SystemConfig cfg;
        cfg.cloakingEnabled = false;
        cfg.guestFrames = 512;
        cfg.seed = 77;
        System sys(cfg);
        workloads::registerAll(sys);
        sys.runProgram("wl.sort", {"512"});
        return sys.cycles();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace osh
